// Observability: the bundle a simulation carries — one TraceRecorder plus
// one MetricsRegistry. Attach it to an EventLoop
// (EventLoop::set_observability) and every instrumented layer above (flows,
// links, KSM, VM boots, Tor bootstrap, nym lifecycle, page loads) starts
// reporting. Both halves default to disabled; an attached-but-disabled or
// simply unattached Observability keeps the per-event cost at a pointer
// check.
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace nymix {

struct Observability {
  TraceRecorder trace;
  MetricsRegistry metrics;

  void EnableAll() {
    trace.set_enabled(true);
    metrics.set_enabled(true);
  }
};

}  // namespace nymix

#endif  // SRC_OBS_OBSERVABILITY_H_
