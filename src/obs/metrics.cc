#include "src/obs/metrics.h"

#include <cmath>
#include <limits>

#include "src/obs/json.h"

namespace nymix {

namespace {

constexpr double kBucketsPerOctave = 8.0;  // ratio 2^(1/8) per bucket
constexpr int32_t kUnderflowBucket = std::numeric_limits<int32_t>::min();

// Geometric midpoint of bucket `index`: 2^((index - 0.5) / 8).
double BucketMidpoint(int32_t index) {
  if (index == kUnderflowBucket) {
    return 0;
  }
  return std::exp2((static_cast<double>(index) - 0.5) / kBucketsPerOctave);
}

}  // namespace

int32_t Histogram::BucketIndex(double value) {
  if (!(value > 0)) {  // zero, negative, NaN
    return kUnderflowBucket;
  }
  return static_cast<int32_t>(std::ceil(std::log2(value) * kBucketsPerOctave));
}

void Histogram::Record(double value) {
  if (std::isnan(value)) {
    return;
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketIndex(value)];
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [index, bucket_count] : other.buckets_) {
    buckets_[index] += bucket_count;
  }
}

void Histogram::RestoreState(std::map<int32_t, uint64_t> buckets, uint64_t count, double sum,
                             double min, double max) {
  buckets_ = std::move(buckets);
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    counters_[name].Increment(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    gauges_[name].Add(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    histograms_[name].MergeFrom(histogram);
  }
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  if (p >= 100) {
    return max_;
  }
  double target = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (const auto& [index, bucket_count] : buckets_) {
    cumulative += bucket_count;
    if (static_cast<double>(cumulative) >= target) {
      return std::min(std::max(BucketMidpoint(index), min_), max_);
    }
  }
  return max_;
}

void MetricsRegistry::WriteJson(std::ostream& out, const std::string& indent) const {
  const std::string inner = indent + "  ";
  const std::string item = inner + "  ";
  out << "{";
  bool first_section = true;
  auto section = [&](const char* name) {
    if (!first_section) {
      out << ",";
    }
    first_section = false;
    out << "\n" << inner << "\"" << name << "\": {";
  };

  section("counters");
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "" : ",") << "\n"
        << item << "\"" << JsonEscape(name) << "\": " << JsonNumber(counter.value());
    first = false;
  }
  out << (first ? "" : "\n" + inner) << "}";

  section("gauges");
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "" : ",") << "\n"
        << item << "\"" << JsonEscape(name) << "\": " << JsonNumber(gauge.value());
    first = false;
  }
  out << (first ? "" : "\n" + inner) << "}";

  section("histograms");
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\n"
        << item << "\"" << JsonEscape(name) << "\": {"
        << "\"count\": " << JsonNumber(histogram.count())
        << ", \"sum\": " << JsonNumber(histogram.sum())
        << ", \"min\": " << JsonNumber(histogram.min())
        << ", \"max\": " << JsonNumber(histogram.max())
        << ", \"mean\": " << JsonNumber(histogram.mean())
        << ", \"p50\": " << JsonNumber(histogram.Percentile(50))
        << ", \"p95\": " << JsonNumber(histogram.Percentile(95))
        << ", \"p99\": " << JsonNumber(histogram.Percentile(99)) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + inner) << "}";

  out << "\n" << indent << "}";
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  out << "kind,name,field,value\n";
  for (const auto& [name, counter] : counters_) {
    out << "counter," << name << ",value," << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge," << name << ",value," << JsonNumber(gauge.value()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out << "histogram," << name << ",count," << histogram.count() << "\n";
    out << "histogram," << name << ",sum," << JsonNumber(histogram.sum()) << "\n";
    out << "histogram," << name << ",min," << JsonNumber(histogram.min()) << "\n";
    out << "histogram," << name << ",max," << JsonNumber(histogram.max()) << "\n";
    out << "histogram," << name << ",p50," << JsonNumber(histogram.Percentile(50)) << "\n";
    out << "histogram," << name << ",p95," << JsonNumber(histogram.Percentile(95)) << "\n";
    out << "histogram," << name << ",p99," << JsonNumber(histogram.Percentile(99)) << "\n";
  }
}

}  // namespace nymix
