// Minimal JSON emission and validation helpers for the observability
// subsystem. Emission is string-escaping plus stable number formatting so
// trace/stats dumps are byte-stable across runs; validation is a strict
// recursive-descent parser used by tests (and the bench helper) to prove
// that every exported document round-trips through a real parser.
//
// nymix_obs sits below nymix_util, so this header must not pull in any
// linked util code.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace nymix {

// Escapes `text` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view text);

// Formats a double with enough precision to round-trip, rendering integral
// values without a trailing ".0" noise and non-finite values as 0 (JSON has
// no NaN/Inf).
std::string JsonNumber(double value);
std::string JsonNumber(uint64_t value);
std::string JsonNumber(int64_t value);

// Strict validation: exactly one JSON value spanning the whole input.
// Accepts objects, arrays, strings, numbers, booleans and null; rejects
// trailing garbage, unterminated literals and bad escapes.
bool JsonValidate(std::string_view text);

}  // namespace nymix

#endif  // SRC_OBS_JSON_H_
