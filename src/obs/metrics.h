// MetricsRegistry: named counters, gauges and log-scale histograms with a
// stable JSON/CSV dump — the machine-readable side of the observability
// subsystem (the Chrome trace is the human-readable side).
//
// Instruments are owned by the registry and handed out as stable pointers,
// so hot paths can cache them and pay a plain add per update. The registry
// is disabled by default; call sites gate on enabled() (via
// EventLoop::meters()) so the disabled path is a pointer/flag check.
//
// Histograms are log-scale: geometric buckets with ratio 2^(1/8) (~9% per
// bucket), which bounds the relative error of the reported p50/p95/p99 at
// ~4.5% across any value range without pre-declaring bounds.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace nymix {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Histogram {
 public:
  void Record(double value);

  // Folds `other` in: bucket-exact, so merging shard histograms in any
  // grouping yields the same result as recording every sample into one
  // histogram (up to float-summation order of `sum`, which is why merges
  // must happen in a deterministic order — see MetricsRegistry::MergeFrom).
  void MergeFrom(const Histogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / static_cast<double>(count_); }

  // `p` in [0, 100]. Interpolates inside the matching log bucket and clamps
  // to the observed [min, max]. Returns 0 on an empty histogram.
  double Percentile(double p) const;

  // Read-only bucket view / exact-state restore, for binary serialization
  // (src/store/nbt). RestoreState replaces all recorded state; the caller
  // supplies the same fields a Record() sequence would have produced, so a
  // restored histogram reports identical statistics.
  const std::map<int32_t, uint64_t>& buckets() const { return buckets_; }
  void RestoreState(std::map<int32_t, uint64_t> buckets, uint64_t count, double sum, double min,
                    double max);

 private:
  // value -> geometric bucket index (ratio 2^(1/8)); <= 0 collapses into a
  // dedicated underflow bucket below every positive index.
  static int32_t BucketIndex(double value);

  std::map<int32_t, uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

class MetricsRegistry {
 public:
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Find-or-create; returned pointers stay valid for the registry's life.
  Counter* GetCounter(const std::string& name) { return &counters_[name]; }
  Gauge* GetGauge(const std::string& name) { return &gauges_[name]; }
  Histogram* GetHistogram(const std::string& name) { return &histograms_[name]; }

  size_t instrument_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Read-only instrument views in name order, for serialization (src/store).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  // Wall-clock self-profiling instruments (EventLoop's event_wall_ns) are
  // recorded by default. Turn them off to make the registry dump
  // byte-identical across identically-seeded runs — the metrics-side twin
  // of TraceRecorder::set_record_wall_time(false). Virtual-time metrics
  // are unaffected.
  bool record_wall_time() const { return record_wall_time_; }
  void set_record_wall_time(bool record) { record_wall_time_ = record; }

  // Folds `other` into this registry: counters and gauges add, histograms
  // bucket-merge; instruments missing here are created. The parallel
  // executor merges per-shard registries in shard-id order, which fixes
  // the float-summation order and keeps the merged dump byte-identical
  // across thread counts.
  void MergeFrom(const MetricsRegistry& other);

  // {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
  // min, max, mean, p50, p95, p99}}} — keys in lexicographic order, so the
  // document is stable across runs.
  void WriteJson(std::ostream& out, const std::string& indent = "") const;

  // CSV lines "kind,name,field,value", same ordering guarantee.
  void WriteCsv(std::ostream& out) const;

 private:
  bool enabled_ = false;
  bool record_wall_time_ = true;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace nymix

#endif  // SRC_OBS_METRICS_H_
