#include "src/obs/trace.h"

#include <algorithm>
// nymlint:allow(store-raw-io): WriteChromeJsonFile streams below — src/store depends on src/obs, so file_io.h is off-limits here
#include <fstream>
#include <set>
#include <sstream>

#include "src/obs/json.h"

namespace nymix {

uint32_t TraceRecorder::TidForTrack(const std::string& track) {
  auto it = track_tids_.find(track);
  if (it != track_tids_.end()) {
    return it->second;
  }
  uint32_t tid = next_tid_++;
  track_tids_.emplace(track, tid);
  return tid;
}

void TraceRecorder::AddComplete(const char* category, const std::string& name,
                                const std::string& track, SimTime ts, SimDuration dur,
                                double wall_us) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'X';
  event.category = category;
  event.name = name;
  event.tid = TidForTrack(track);
  event.ts = ts + offset_;
  event.dur = std::max<SimDuration>(dur, 0);
  event.wall_us = record_wall_time_ ? wall_us : -1.0;
  max_ts_ = std::max(max_ts_, event.ts + event.dur);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddInstant(const char* category, const std::string& name,
                               const std::string& track, SimTime ts) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'i';
  event.category = category;
  event.name = name;
  event.tid = TidForTrack(track);
  event.ts = ts + offset_;
  max_ts_ = std::max(max_ts_, event.ts);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddCounter(const char* category, const std::string& name, SimTime ts,
                               double value) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'C';
  event.category = category;
  event.name = name;
  event.ts = ts + offset_;
  event.value = value;
  max_ts_ = std::max(max_ts_, event.ts);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddAsyncBegin(const char* category, const std::string& name, uint64_t id,
                                  SimTime ts) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'b';
  event.category = category;
  event.name = name;
  event.async_id = id;
  event.ts = ts + offset_;
  max_ts_ = std::max(max_ts_, event.ts);
  events_.push_back(std::move(event));
}

void TraceRecorder::AddAsyncEnd(const char* category, const std::string& name, uint64_t id,
                                SimTime ts) {
  if (!enabled_) {
    return;
  }
  Event event;
  event.phase = 'e';
  event.category = category;
  event.name = name;
  event.async_id = id;
  event.ts = ts + offset_;
  max_ts_ = std::max(max_ts_, event.ts);
  events_.push_back(std::move(event));
}

void TraceRecorder::MergeShardTraces(const std::vector<const TraceRecorder*>& parts) {
  if (!enabled_) {
    return;
  }
  // Reverse tid -> track-name view of every part, so merged events can be
  // re-homed onto prefixed tracks through this recorder's own tid table.
  std::vector<std::vector<const std::string*>> part_tracks(parts.size());
  std::vector<std::string> part_prefixes(parts.size());
  size_t total = 0;
  for (size_t p = 0; p < parts.size(); ++p) {
    part_tracks[p].resize(parts[p]->next_tid_, nullptr);
    for (const auto& [track, tid] : parts[p]->track_tids_) {
      part_tracks[p][tid] = &track;
    }
    part_prefixes[p] = "s" + std::to_string(p) + "/";
    total += parts[p]->events_.size();
  }

  struct Ref {
    uint32_t part;
    uint32_t index;
  };
  std::vector<Ref> order;
  order.reserve(total);
  for (size_t p = 0; p < parts.size(); ++p) {
    for (size_t i = 0; i < parts[p]->events_.size(); ++i) {
      order.push_back(Ref{static_cast<uint32_t>(p), static_cast<uint32_t>(i)});
    }
  }
  // Stable sort on virtual time only: ties keep the (shard id, in-shard
  // recording order) sequence the loop above laid down.
  std::stable_sort(order.begin(), order.end(), [&](const Ref& a, const Ref& b) {
    return parts[a.part]->events_[a.index].ts < parts[b.part]->events_[b.index].ts;
  });

  events_.reserve(events_.size() + total);
  for (const Ref& ref : order) {
    Event event = parts[ref.part]->events_[ref.index];
    const std::string& prefix = part_prefixes[ref.part];
    event.ts += offset_;
    switch (event.phase) {
      case 'X':
        if (!record_wall_time_) {
          event.wall_us = -1.0;
        }
        [[fallthrough]];
      case 'i':
        event.tid = TidForTrack(prefix + *part_tracks[ref.part][event.tid]);
        break;
      case 'C':
        // Counters carry no track; the shard prefix on the name keeps one
        // shard's series from interleaving into another's.
        event.name = prefix + event.name;
        break;
      case 'b':
      case 'e':
        // Shard-salted async ids: per-shard flow ids restart at 1, so two
        // shards' flow 7 must not pair up in the merged stream. Real ids
        // are small (event counters), far below the 2^48 salt boundary.
        event.async_id |= static_cast<uint64_t>(ref.part) << 48;
        break;
      default:
        break;
    }
    max_ts_ = std::max(max_ts_, event.ts + (event.phase == 'X' ? event.dur : 0));
    events_.push_back(std::move(event));
  }
}

void TraceRecorder::NextTimeline(SimDuration gap) {
  if (!enabled_) {
    return;
  }
  offset_ = max_ts_ + std::max<SimDuration>(gap, 0);
}

const char* TraceRecorder::InternCategory(std::string_view category) {
  // std::set node addresses are stable across inserts, so the returned
  // c_str() stays valid for the process lifetime.
  static std::set<std::string, std::less<>>* interned = new std::set<std::string, std::less<>>();
  auto it = interned->find(category);
  if (it == interned->end()) {
    it = interned->emplace(category).first;
  }
  return it->c_str();
}

void TraceRecorder::RestoreForDecode(std::vector<Event> events,
                                     std::map<std::string, uint32_t> track_tids) {
  events_ = std::move(events);
  track_tids_ = std::move(track_tids);
  enabled_ = true;
  next_tid_ = 1;
  for (const auto& [track, tid] : track_tids_) {
    next_tid_ = std::max(next_tid_, tid + 1);
  }
  max_ts_ = 0;
  for (const Event& event : events_) {
    max_ts_ = std::max(max_ts_, event.ts + (event.phase == 'X' ? event.dur : 0));
  }
  offset_ = 0;
}

void TraceRecorder::Clear() {
  events_.clear();
  track_tids_.clear();
  next_tid_ = 1;
  offset_ = 0;
  max_ts_ = 0;
}

void TraceRecorder::WriteChromeJson(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto separator = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n";
  };
  // Process / thread metadata so tracks render with readable names.
  separator();
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"nymix-sim (virtual time)\"}}";
  for (const auto& [track, tid] : track_tids_) {
    separator();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << JsonEscape(track) << "\"}}";
  }
  for (const Event& event : events_) {
    separator();
    out << "{\"ph\":\"" << event.phase << "\",\"pid\":1,\"cat\":\"" << event.category
        << "\",\"name\":\"" << JsonEscape(event.name) << "\",\"ts\":" << event.ts;
    switch (event.phase) {
      case 'X':
        out << ",\"tid\":" << event.tid << ",\"dur\":" << event.dur;
        if (event.wall_us >= 0) {
          out << ",\"args\":{\"wall_us\":" << JsonNumber(event.wall_us) << "}";
        }
        break;
      case 'i':
        out << ",\"tid\":" << event.tid << ",\"s\":\"t\"";
        break;
      case 'C':
        out << ",\"tid\":0,\"args\":{\"value\":" << JsonNumber(event.value) << "}";
        break;
      case 'b':
      case 'e':
        out << ",\"tid\":0,\"id\":\"0x" << std::hex << event.async_id << std::dec << "\"";
        break;
      default:
        break;
    }
    out << "}";
  }
  out << "\n]}\n";
}

std::string TraceRecorder::ToChromeJson() const {
  std::ostringstream out;
  WriteChromeJson(out);
  return out.str();
}

bool TraceRecorder::WriteChromeJsonFile(const std::string& path) const {
  // src/store depends on src/obs (the NBT codec reads recorder internals),
  // so the trace writer cannot call into src/store/file_io.h without a
  // dependency cycle; it streams straight from WriteChromeJson instead.
  // nymlint:allow(store-raw-io): dependency cycle — see the note above
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  WriteChromeJson(out);
  out.flush();
  return static_cast<bool>(out);
}

TraceSpan::TraceSpan(TraceRecorder* recorder, const SimClock& clock, const char* category,
                     std::string name, std::string track) {
  if (recorder == nullptr || !recorder->enabled()) {
    return;
  }
  recorder_ = recorder;
  clock_ = &clock;
  category_ = category;
  name_ = std::move(name);
  track_ = std::move(track);
  start_ = clock.now();
  if (recorder->record_wall_time()) {
    // nymlint:allow(determinism-wallclock): span self-profiling; wall cost is an arg on the span, never simulated time
    wall_start_ = std::chrono::steady_clock::now();
  }
}

TraceSpan::~TraceSpan() {
  if (recorder_ == nullptr) {
    return;
  }
  double wall_us = -1.0;
  if (recorder_->record_wall_time()) {
    // nymlint:allow(determinism-wallclock): span self-profiling; wall cost is an arg on the span, never simulated time
    auto wall_end = std::chrono::steady_clock::now();
    wall_us = std::chrono::duration<double, std::micro>(wall_end - wall_start_).count();
  }
  recorder_->AddComplete(category_, name_, track_, start_, clock_->now() - start_, wall_us);
}

}  // namespace nymix
