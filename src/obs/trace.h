// TraceRecorder: virtual-time span and event recording with Chrome
// `trace_event` JSON export (loadable in chrome://tracing or Perfetto).
//
// Spans are recorded against the simulation's virtual clock, so a trace of
// a Figure-7 run shows the paper's phases (boot VM -> start Tor -> load
// page) at their *reported* durations; each span also carries the wall
// time the simulator spent producing it, which is how the simulator
// profiles itself.
//
// Tracks: every span/instant names a track (a nym, a VM, "ksm", ...).
// Tracks map to Chrome thread ids with thread_name metadata, so parallel
// activities (two VMs booting at once) render on separate rows while spans
// on one track nest by containment.
//
// The disabled path is the default and costs one pointer/flag check per
// call site; no clock is read and nothing allocates.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/sim_clock.h"

namespace nymix {

class TraceRecorder {
 public:
  // One recorded trace event. Public so binary codecs (src/store/nbt) can
  // re-encode a recorder's exact state; `category` must point at storage
  // that outlives the recorder (string literals, or InternCategory below).
  struct Event {
    char phase;  // 'X', 'i', 'C', 'b', 'e'
    const char* category;
    std::string name;
    uint32_t tid = 0;       // track row ('X'/'i')
    uint64_t async_id = 0;  // 'b'/'e'
    SimTime ts = 0;
    SimDuration dur = 0;    // 'X'
    double wall_us = -1.0;  // 'X': simulator self-profiling arg
    double value = 0;       // 'C'
  };

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Complete ("X") event covering virtual [ts, ts + dur] on `track`.
  // `wall_us` >= 0 attaches the simulator's own wall-clock cost as an arg.
  void AddComplete(const char* category, const std::string& name, const std::string& track,
                   SimTime ts, SimDuration dur, double wall_us = -1.0);

  // Instant ("i") event: a point in virtual time on a track.
  void AddInstant(const char* category, const std::string& name, const std::string& track,
                  SimTime ts);

  // Counter ("C") event: a sampled value series (e.g. event-queue depth).
  void AddCounter(const char* category, const std::string& name, SimTime ts, double value);

  // Async ("b"/"e") events: intervals that may overlap freely (flows).
  void AddAsyncBegin(const char* category, const std::string& name, uint64_t id, SimTime ts);
  void AddAsyncEnd(const char* category, const std::string& name, uint64_t id, SimTime ts);

  // Starts a fresh timeline segment: subsequent events are shifted past
  // everything recorded so far. Benches that run several simulations (each
  // starting at virtual t=0) call this per run so the runs lay out
  // sequentially instead of piling onto t=0.
  void NextTimeline(SimDuration gap = Seconds(1));

  size_t event_count() const { return events_.size(); }
  void Clear();

  // Read-only views of the recorded state, for serialization (src/store).
  const std::vector<Event>& events() const { return events_; }
  const std::map<std::string, uint32_t>& track_tids() const { return track_tids_; }

  // Stable storage for category strings decoded from a serialized trace:
  // Event holds `const char*` (call sites pass literals), so a decoder
  // needs pointers that outlive any recorder. Interned strings are never
  // freed. Not thread-safe: decode happens on one thread, like every
  // single-writer path in the store.
  static const char* InternCategory(std::string_view category);

  // Replaces this recorder's contents with a decoded event stream + track
  // table, recomputing the derived counters (next tid, timeline high-water
  // mark) so a restored recorder exports byte-identical JSON and can keep
  // recording. The recorder is left enabled.
  void RestoreForDecode(std::vector<Event> events, std::map<std::string, uint32_t> track_tids);

  // Folds per-shard recorders into this one as one stream, deterministically:
  // events are interleaved by (virtual time, position in `parts`, in-shard
  // recording order), tracks and counter names gain an "s<i>/" shard prefix,
  // and async ids are salted with the shard index so same-numbered flows in
  // different shards stay distinct. Because the order depends only on
  // recorded virtual times and the caller passing shards in id order, the
  // merged JSON is byte-identical no matter how many threads produced the
  // parts (src/parallel's determinism contract). Events land after this
  // recorder's current timeline offset, so NextTimeline() composes.
  void MergeShardTraces(const std::vector<const TraceRecorder*>& parts);

  // Wall-clock self-profiling args ("wall_us" on 'X' events) are recorded
  // by default. Turn them off to make exported JSON byte-identical across
  // identically-seeded runs: all virtual-time content is reproducible, the
  // simulator's own wall time never is (tests/determinism_test.cc).
  bool record_wall_time() const { return record_wall_time_; }
  void set_record_wall_time(bool record) { record_wall_time_ = record; }

  // Chrome trace_event JSON: {"traceEvents": [...], ...}.
  void WriteChromeJson(std::ostream& out) const;
  std::string ToChromeJson() const;
  // Returns false on I/O failure.
  bool WriteChromeJsonFile(const std::string& path) const;

 private:
  uint32_t TidForTrack(const std::string& track);

  bool enabled_ = false;
  bool record_wall_time_ = true;
  SimTime offset_ = 0;    // applied to every recorded timestamp
  SimTime max_ts_ = 0;    // high-water mark of shifted timestamps
  std::vector<Event> events_;
  std::map<std::string, uint32_t> track_tids_;
  uint32_t next_tid_ = 1;
};

// RAII span over virtual time, with wall-clock self-profiling. A null or
// disabled recorder makes construction and destruction no-ops.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, const SimClock& clock, const char* category,
            std::string name, std::string track);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;  // null when disabled
  const SimClock* clock_ = nullptr;
  const char* category_ = nullptr;
  std::string name_;
  std::string track_;
  SimTime start_ = 0;
  // nymlint:allow(determinism-wallclock): span self-profiling; wall cost is an arg on the span, never simulated time
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace nymix

#endif  // SRC_OBS_TRACE_H_
