#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace nymix {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string JsonNumber(uint64_t value) { return std::to_string(value); }
std::string JsonNumber(int64_t value) { return std::to_string(value); }

namespace {

// Recursive-descent validator over a string_view with an explicit cursor.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool Run() {
    SkipSpace();
    if (!Value()) {
      return false;
    }
    SkipSpace();
    return position_ == text_.size();
  }

 private:
  bool AtEnd() const { return position_ >= text_.size(); }
  char Peek() const { return text_[position_]; }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\n' || Peek() == '\r' || Peek() == '\t')) {
      ++position_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(position_, word.size()) != word) {
      return false;
    }
    position_ += word.size();
    return true;
  }

  bool String() {
    if (AtEnd() || Peek() != '"') {
      return false;
    }
    ++position_;
    while (!AtEnd() && Peek() != '"') {
      if (Peek() == '\\') {
        ++position_;
        if (AtEnd()) {
          return false;
        }
        char escape = Peek();
        if (escape == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++position_;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
              return false;
            }
          }
        } else if (escape != '"' && escape != '\\' && escape != '/' && escape != 'b' &&
                   escape != 'f' && escape != 'n' && escape != 'r' && escape != 't') {
          return false;
        }
      }
      ++position_;
    }
    if (AtEnd()) {
      return false;
    }
    ++position_;  // closing quote
    return true;
  }

  bool Number() {
    size_t start = position_;
    if (!AtEnd() && Peek() == '-') {
      ++position_;
    }
    size_t digits = 0;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      ++position_;
      ++digits;
    }
    if (digits == 0) {
      position_ = start;
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      ++position_;
      digits = 0;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++position_;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++position_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
        ++position_;
      }
      digits = 0;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++position_;
        ++digits;
      }
      if (digits == 0) {
        return false;
      }
    }
    return true;
  }

  bool Array() {
    ++position_;  // '['
    SkipSpace();
    if (!AtEnd() && Peek() == ']') {
      ++position_;
      return true;
    }
    for (;;) {
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (AtEnd()) {
        return false;
      }
      if (Peek() == ',') {
        ++position_;
        SkipSpace();
        continue;
      }
      if (Peek() == ']') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool Object() {
    ++position_;  // '{'
    SkipSpace();
    if (!AtEnd() && Peek() == '}') {
      ++position_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (!String()) {
        return false;
      }
      SkipSpace();
      if (AtEnd() || Peek() != ':') {
        return false;
      }
      ++position_;
      if (!Value()) {
        return false;
      }
      SkipSpace();
      if (AtEnd()) {
        return false;
      }
      if (Peek() == ',') {
        ++position_;
        continue;
      }
      if (Peek() == '}') {
        ++position_;
        return true;
      }
      return false;
    }
  }

  bool Value() {
    SkipSpace();
    if (AtEnd()) {
      return false;
    }
    switch (Peek()) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  std::string_view text_;
  size_t position_ = 0;
};

}  // namespace

bool JsonValidate(std::string_view text) { return Validator(text).Run(); }

}  // namespace nymix
