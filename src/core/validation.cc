#include "src/core/validation.h"

namespace nymix {

LeakProbeResult ProbeAnonVmIsolation(Simulation& sim, HostMachine& host, Nym& from,
                                     Nym* other) {
  LeakProbeResult result;
  uint64_t received_before = from.anon_vm()->packets_received();
  uint64_t dropped_before = from.leak_packets_dropped();

  std::vector<Ipv4Address> targets = {
      kHostLanIp,                     // the physical host on its LAN
      kLanRouterIp,                   // the LAN gateway
      host.public_ip(),               // the host's public address
      Ipv4Address(203, 0, 113, 250),  // arbitrary Internet host
      kGuestCommVmIp,                 // this (and every) CommVM's address
      kGuestAnonVmIp,                 // other AnonVMs share this address
  };
  (void)other;  // other nyms' VMs carry the same homogeneous addresses

  for (Ipv4Address target : targets) {
    for (IpProtocol protocol : {IpProtocol::kIcmp, IpProtocol::kUdp, IpProtocol::kTcp}) {
      Packet probe;
      probe.src_mac = MacAddress::StandardGuest();
      probe.src_ip = kGuestAnonVmIp;
      probe.src_port = 31337;
      probe.dst_ip = target;
      probe.dst_port = 7;
      probe.protocol = protocol;
      probe.payload = BytesFromString("probe");
      probe.annotation = "Probe";
      from.anon_vm()->SendPacket(from.wire(), std::move(probe));
      ++result.probes_sent;
    }
  }
  // A bounded listen window (not RunUntilIdle: periodic daemons such as
  // KSM keep the loop permanently non-idle). Any reachable responder would
  // answer within a couple of RTTs.
  sim.RunFor(Seconds(5));

  result.responses_received = from.anon_vm()->packets_received() - received_before;
  result.dropped_by_commvm = from.leak_packets_dropped() - dropped_before;
  return result;
}

void EchoResponder::OnPacket(const Packet& packet, Link& link, bool from_a) {
  ++probes_heard_;
  Packet reply;
  reply.src_ip = packet.dst_ip;
  reply.src_port = packet.dst_port;
  reply.dst_ip = packet.src_ip;
  reply.dst_port = packet.src_port;
  reply.protocol = packet.protocol;
  reply.payload = BytesFromString("ProbeReply");
  reply.annotation = "ProbeReply";
  if (from_a) {
    link.SendFromB(std::move(reply));
  } else {
    link.SendFromA(std::move(reply));
  }
}

CaptureAudit AuditUplinkCapture(const PacketCapture& capture) {
  CaptureAudit audit;
  audit.histogram = capture.AnnotationHistogram();
  static const std::vector<std::string> kAllowed = {"DHCP",    "Tor",   "Dissent",
                                                    "SWEET",   "Chained", "Incognito"};
  audit.only_dhcp_and_anonymizers = capture.OnlyContains(kAllowed);
  for (const auto& captured : capture.packets()) {
    // DHCP legitimately uses local-segment addresses; everything else on
    // the uplink must already be masqueraded (no 10.0.2.x guest leaks).
    if (captured.packet.annotation == "DHCP") {
      continue;
    }
    if (captured.packet.src_ip.IsPrivate()) {
      audit.no_private_sources = false;
    }
  }
  return audit;
}

}  // namespace nymix
