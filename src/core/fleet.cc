#include "src/core/fleet.h"

namespace nymix {
namespace {

// Retry budgets for the fault-tolerant slot paths. Generous relative to
// recovery times (a crashed VM is back in tens of virtual seconds, a visit
// retry waits 0.5–2 s), so only a genuinely unrecoverable schedule — e.g. a
// host whose uplink never comes back — burns through them.
constexpr int kMaxVisitRetries = 64;
constexpr int kMaxCreateRetries = 8;

// Cloud fetch wire sizes: a small consensus-style request, a directory-ish
// reply. Serialization on the 50 Mbit default channel stays well under the
// window period, so replies always make their promised window.
constexpr size_t kCloudRequestBytes = 512;
constexpr size_t kCloudReplyBytes = 4096;

// Adapter so the cloud gateway/client sinks can be plain lambdas owned by
// the fleet (PacketSink is the only wire-facing interface).
class FnPacketSink : public PacketSink {
 public:
  explicit FnPacketSink(std::function<void(const Packet&)> fn) : fn_(std::move(fn)) {}
  void OnPacket(const Packet& packet, Link&, bool) override { fn_(packet); }

 private:
  std::function<void(const Packet&)> fn_;
};

}  // namespace

ShardedFleet::ShardedFleet(ShardedSimulation& sharded, const FleetOptions& options,
                           uint64_t seed)
    : sharded_(sharded), options_(options) {
  NYMIX_CHECK(options_.nym_count >= 1);
  NYMIX_CHECK(options_.nyms_per_host >= 1);
  int shards = sharded_.shard_count();
  // A crossed fleet needs a second shard to host the cloud; on a 1-shard
  // plan it degrades to the isolated workload (fleet.h documents this).
  crossed_ = options_.topology == FleetTopology::kCrossed && shards >= 2;
  if (crossed_) {
    NYMIX_CHECK(options_.cloud_weight_max >= 1);
    NYMIX_CHECK(options_.cloud_window > 0);
    NYMIX_CHECK(options_.cloud_latency > 0);
  }
  for (int s = 0; s < shards; ++s) {
    // Think-time randomness is per shard and derived from (seed, shard id):
    // a slot's think stream must not depend on how other shards interleave.
    shard_states_.push_back(std::make_unique<ShardState>(
        Mix64(seed ^ Fnv1a64("fleet.think") ^ static_cast<uint64_t>(s))));
  }

  int hosts = (options_.nym_count + options_.nyms_per_host - 1) / options_.nyms_per_host;
  if (!options_.placement.empty()) {
    // A placement is part of the experiment definition; a partial or
    // out-of-range table would silently fall back to round-robin for the
    // missing hosts, so reject it loudly instead.
    NYMIX_CHECK_MSG(static_cast<int>(options_.placement.shard_of_host.size()) == hosts,
                    "ShardPlacement must assign exactly one shard per host");
    for (int assigned : options_.placement.shard_of_host) {
      NYMIX_CHECK(assigned >= 0 && assigned < shards);
    }
    sharded_.set_placement_label(options_.placement.Label());
  }
  // One distribution image per shard, like every host booting from a copy
  // of the same release stick. Per shard, not fleet-global: the image
  // memoizes its whole-image Merkle verification, and two shards verifying
  // concurrently must not race on (or order-depend on) that cache. Content
  // is a pure function of (name, seed, size), so every copy is identical.
  std::vector<std::shared_ptr<BaseImage>> images = options_.images;
  if (static_cast<int>(images.size()) != shards) {
    NYMIX_CHECK_MSG(images.empty(), "FleetOptions.images must match the shard plan");
    for (int s = 0; s < shards; ++s) {
      images.push_back(
          BaseImage::CreateDistribution(kFleetImageName, kFleetImageSeed, kFleetImageSizeBytes));
    }
  }

  for (int c = 0; c < hosts; ++c) {
    int shard = options_.placement.shard_for(static_cast<size_t>(c), shards);
    Simulation& sim = sharded_.shard(shard);
    auto cluster = std::make_unique<Cluster>();
    cluster->shard = shard;
    if (crossed_) {
      // Seeded per-host heterogeneity: this is the load skew BalancedPlacement
      // exists to repack. Derived from (seed, host index) only, so the
      // multiplier survives any placement change.
      cluster->visit_multiplier =
          1 + static_cast<int>(Mix64(seed ^ Fnv1a64("fleet.hostweight") ^ static_cast<uint64_t>(c)) %
                               static_cast<uint64_t>(options_.cloud_weight_max));
    }
    cluster->host = std::make_unique<HostMachine>(sim, HostConfig{});
    cluster->host->ksm().set_full_rescan(options_.full_recompute);
    sim.flows().set_full_recompute(options_.full_recompute);
    cluster->tor = std::make_unique<TorNetwork>(sim, options_.tor);
    cluster->manager = std::make_unique<NymManager>(*cluster->host, images[static_cast<size_t>(shard)],
                                                    cluster->tor.get(), nullptr);
    WebsiteProfile profile;
    profile.name = "site-" + std::to_string(c);
    profile.domain = "site" + std::to_string(c) + ".example.com";
    cluster->site = std::make_unique<Website>(sim, profile);
    cluster->host->ksm().Start(options_.ksm_interval);
    clusters_.push_back(std::move(cluster));
    // Snapshot this host's shareable-content histogram mid-run for the
    // cross-host reconcile. A plain scheduled event on the host's own loop:
    // shard-local, so exact virtual-time capture with no cross-thread read.
    Cluster* raw = clusters_.back().get();
    sim.loop().ScheduleAt(options_.ksm_snapshot_time, [raw] {
      raw->ksm_snapshot = raw->host->ksm().ContentHistogram();
    });
  }

  if (crossed_) {
    // The cloud ring: shard s's nyms fetch from a gateway hosted on shard
    // (s+1) % K. Both directions promise windowed departures (requests on
    // the hour, replies half a window later), which is the application
    // lookahead the executor's adaptive horizon feeds on.
    SendSchedule request_windows{options_.cloud_window, 0};
    SendSchedule reply_windows{options_.cloud_window, options_.cloud_window / 2};
    cloud_edges_.resize(static_cast<size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      int server = (s + 1) % shards;
      CloudEdge& edge = cloud_edges_[static_cast<size_t>(s)];
      edge.channel =
          sharded_.CreateChannel("cloud-s" + std::to_string(s), s, server,
                                 options_.cloud_latency, options_.cloud_bandwidth_bps);
      edge.channel->PromiseSendWindows(request_windows, reply_windows);
      // Worst case every slot on the shard has a request and a reply
      // buffered in the same epoch.
      edge.channel->ReserveOutboxes(static_cast<size_t>(options_.nym_count) + 1);
      CrossShardChannel* channel = edge.channel;
      EventLoop* server_loop = &sharded_.shard(server).loop();
      edge.gateway = std::make_unique<FnPacketSink>([channel, server_loop](const Packet& request) {
        // Serve the fetch: the reply departs at the next promised reply
        // window, echoing the request's correlation annotation.
        std::string annotation = request.annotation;
        SimTime window = NextSendWindow(channel->schedule_b_to_a(), server_loop->now());
        server_loop->ScheduleAt(window, [channel, annotation = std::move(annotation)] {
          Packet reply;
          reply.payload = Bytes(kCloudReplyBytes, 0);
          reply.annotation = annotation;
          channel->b_end()->SendFromA(std::move(reply));
        });
      });
      edge.channel->b_end()->AttachA(edge.gateway.get());
      edge.client = std::make_unique<FnPacketSink>(
          [this](const Packet& reply) { HandleCloudReply(reply.annotation); });
      edge.channel->a_end()->AttachA(edge.client.get());
    }
  }

  slots_.resize(static_cast<size_t>(options_.nym_count));
  for (int i = 0; i < options_.nym_count; ++i) {
    slots_[static_cast<size_t>(i)].cluster = i / options_.nyms_per_host;
    ++ShardOf(i).total_slots;
  }
  // Shards that got hosts but no remaining live slots never occur (every
  // host owns at least one slot), but a plan with more shards than hosts
  // leaves some shards empty — they simply idle through every epoch.
}

ShardedFleet::~ShardedFleet() = default;

void ShardedFleet::Run() {
  for (int i = 0; i < options_.nym_count; ++i) {
    SpawnNym(i);
  }
  sharded_.RunUntilIdle();
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    const ShardState& state = *shard_states_[static_cast<size_t>(s)];
    NYMIX_CHECK(state.finished_slots == state.total_slots);
  }
}

SimDuration ShardedFleet::ThinkTime(ShardState& shard) {
  return Millis(500 + static_cast<SimDuration>(shard.think_prng.NextBelow(1500)));
}

void ShardedFleet::SpawnNym(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  const int epoch = state.epoch;
  std::string name = "c" + std::to_string(state.cluster) + "-s" +
                     std::to_string(slot % options_.nyms_per_host) + "-g" +
                     std::to_string(state.generation);
  ClusterOf(slot).manager->CreateNym(
      name, NymManager::CreateOptions{},
      [this, slot, epoch](Result<Nym*> nym, NymStartupReport) {
        Slot& state = slots_[static_cast<size_t>(slot)];
        if (state.finished || state.epoch != epoch) {
          // Abandoned or superseded while booting; tear the straggler down
          // if it made it.
          if (nym.ok()) {
            Status ignored = ClusterOf(slot).manager->TerminateNym(*nym);
            (void)ignored;
          }
          return;
        }
        ShardState& shard = ShardOf(slot);
        if (!nym.ok()) {
          // A create can fail under fault schedules (anonymizer bootstrap
          // exhausted its retry budget, say). Back off and try again; the
          // boot is from pristine base state, so a retry is safe.
          ++shard.create_failures;
          if (++state.create_retries > kMaxCreateRetries) {
            AbandonSlot(slot);
            return;
          }
          sharded_.shard(ClusterOf(slot).shard)
              .loop()
              .ScheduleAfter(ThinkTime(shard), [this, slot] { SpawnNym(slot); });
          return;
        }
        state.create_retries = 0;
        state.nym = *nym;
        state.visits_done = 0;
        VisitNext(slot, epoch);
      });
}

void ShardedFleet::VisitNext(int slot, int epoch) {
  Cluster& cluster = ClusterOf(slot);
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  if (state.nym == nullptr) {
    // The slot's VM crashed and its recovery has not handed back a nym yet
    // (ScheduleVmCrash nulls the pointer at crash time). Wait a think-time
    // and look again, on the same budget as failed visits.
    ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
    if (++state.visit_retries > kMaxVisitRetries) {
      AbandonSlot(slot);
      return;
    }
    sharded_.shard(cluster.shard)
        .loop()
        .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { VisitNext(slot, epoch); });
    return;
  }
  state.nym->browser()->Visit(*cluster.site, [this, slot, epoch](Result<SimTime> done) {
    Cluster& cluster = ClusterOf(slot);
    ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
    Slot& state = slots_[static_cast<size_t>(slot)];
    if (state.finished || state.epoch != epoch) {
      return;
    }
    if (!done.ok()) {
      // Failed visit (aborted flow, dead uplink, crashed VM): retry after a
      // think-time. The budget keeps a never-healing fault from looping.
      ++shard.visit_failures;
      if (++state.visit_retries > kMaxVisitRetries) {
        AbandonSlot(slot);
        return;
      }
      sharded_.shard(cluster.shard)
          .loop()
          .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { VisitNext(slot, epoch); });
      return;
    }
    state.visit_retries = 0;
    ++shard.visits;
    ++state.visits_done;
    ++cluster.weight_events;
    // Think time before the next action; acting from a fresh event also
    // means churn never tears a nym down from inside its own callback.
    sharded_.shard(cluster.shard)
        .loop()
        .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { NextAction(slot, epoch); });
  });
}

void ShardedFleet::NextAction(int slot, int epoch) {
  if (crossed_) {
    StartCloudFetch(slot, epoch);
    return;
  }
  Advance(slot, epoch);
}

void ShardedFleet::StartCloudFetch(int slot, int epoch) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  int shard = ClusterOf(slot).shard;
  EventLoop& loop = sharded_.shard(shard).loop();
  const CloudEdge& edge = cloud_edges_[static_cast<size_t>(shard)];
  // Hold the request until the promised departure window (the send-time
  // CHECK in Link would fire otherwise, by design).
  SimTime window = NextSendWindow(edge.channel->schedule_a_to_b(), loop.now());
  loop.ScheduleAt(window, [this, slot, epoch] { SendCloudFetch(slot, epoch); });
}

void ShardedFleet::SendCloudFetch(int slot, int epoch) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  int shard = ClusterOf(slot).shard;
  Packet request;
  request.payload = Bytes(kCloudRequestBytes, 0);
  // Correlation tag: the reply carries it back so the cloud round can
  // resume exactly the slot/epoch chain that started it.
  request.annotation = "cf:" + std::to_string(slot) + ":" + std::to_string(epoch);
  cloud_edges_[static_cast<size_t>(shard)].channel->a_end()->SendFromA(std::move(request));
}

void ShardedFleet::HandleCloudReply(const std::string& annotation) {
  // Annotation format: "cf:<slot>:<epoch>" (written by SendCloudFetch).
  size_t first = annotation.find(':');
  size_t second = annotation.find(':', first + 1);
  NYMIX_CHECK_MSG(first != std::string::npos && second != std::string::npos,
                  "malformed cloud fetch annotation");
  int slot = std::stoi(annotation.substr(first + 1, second - first - 1));
  int epoch = std::stoi(annotation.substr(second + 1));
  NYMIX_CHECK(slot >= 0 && slot < options_.nym_count);
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    // The slot crashed, churned, or gave up while the round was in flight;
    // the reply is stale and its chain is already dead.
    return;
  }
  Cluster& cluster = ClusterOf(slot);
  ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
  ++shard.cloud_fetches;
  ++cluster.weight_events;
  sharded_.shard(cluster.shard)
      .loop()
      .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { Advance(slot, epoch); });
}

int ShardedFleet::VisitTarget(int slot) {
  return options_.visits_per_generation * ClusterOf(slot).visit_multiplier;
}

void ShardedFleet::Advance(int slot, int epoch) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  if (state.visits_done < VisitTarget(slot)) {
    VisitNext(slot, epoch);
    return;
  }
  if (state.nym == nullptr) {
    // A crash landed between the last visit and this churn; wait for the
    // recovery to hand the slot a nym to terminate (same retry budget).
    ShardState& shard = ShardOf(slot);
    if (++state.visit_retries > kMaxVisitRetries) {
      AbandonSlot(slot);
      return;
    }
    sharded_.shard(ClusterOf(slot).shard)
        .loop()
        .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { Advance(slot, epoch); });
    return;
  }
  ++state.generation;
  Status terminated = ClusterOf(slot).manager->TerminateNym(state.nym);
  NYMIX_CHECK_MSG(terminated.ok(), terminated.ToString().c_str());
  state.nym = nullptr;
  if (state.generation >= options_.generations) {
    FinishSlot(slot);
    return;
  }
  ++ShardOf(slot).churns;
  ++ClusterOf(slot).weight_events;
  SpawnNym(slot);
}

void ShardedFleet::AbandonSlot(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  ShardState& shard = ShardOf(slot);
  ++shard.slots_abandoned;
  state.finished = true;
  if (state.nym != nullptr) {
    // Best-effort teardown; a half-crashed wreck may refuse, and the slot
    // is being written off either way.
    Status ignored = ClusterOf(slot).manager->TerminateNym(state.nym);
    (void)ignored;
    state.nym = nullptr;
  }
  FinishSlot(slot);
}

void ShardedFleet::ScheduleVmCrash(int host, SimTime at) {
  NYMIX_CHECK(host >= 0 && host < host_count());
  Cluster& cluster = *clusters_[static_cast<size_t>(host)];
  sharded_.shard(cluster.shard).loop().ScheduleAt(at, [this, host] {
    // Crash the first slot on this host that currently has a live nym; a
    // host whose slots are all booting, recovering, or finished absorbs the
    // event as a no-op (so shrinking a scenario never creates a crash that
    // aborts the run).
    for (int i = 0; i < options_.nym_count; ++i) {
      Slot& state = slots_[static_cast<size_t>(i)];
      if (state.cluster != host || state.finished || state.nym == nullptr) {
        continue;
      }
      Cluster& cluster = *clusters_[static_cast<size_t>(host)];
      Nym* wreck = state.nym;
      // Null the pointer and bump the epoch first: the wreck's in-flight
      // work evaporates at its lifetime guards (no failure callback comes
      // back), so the old drive chain is dead — and any timer of it that
      // does survive now stands down as stale. The recovery callback below
      // starts the slot's one replacement chain.
      state.nym = nullptr;
      ++state.epoch;
      cluster.manager->InjectCrash(*wreck);
      cluster.manager->RecoverNym(wreck, [this, i, host](Result<Nym*> nym, NymStartupReport) {
        Cluster& cluster = *clusters_[static_cast<size_t>(host)];
        ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
        Slot& state = slots_[static_cast<size_t>(i)];
        if (state.finished) {
          // The slot gave up while we were rebooting; don't leave a live
          // orphan VM keeping the shard from quiescing.
          if (nym.ok()) {
            Status ignored = cluster.manager->TerminateNym(*nym);
            (void)ignored;
          }
          return;
        }
        if (!nym.ok()) {
          AbandonSlot(i);
          return;
        }
        ++shard.vm_recoveries;
        state.nym = *nym;
        // Resume the drive loop. Advance handles both positions the severed
        // chain could have been in: mid-generation (more visits due) and the
        // churn boundary. Epoch is re-read, not captured from crash time: a
        // later crash landing before this timer fires supersedes it.
        const int epoch = state.epoch;
        sharded_.shard(cluster.shard)
            .loop()
            .ScheduleAfter(ThinkTime(shard), [this, i, epoch] { Advance(i, epoch); });
      });
      return;
    }
  });
}

void ShardedFleet::FinishSlot(int slot) {
  int shard = ClusterOf(slot).shard;
  ShardState& state = *shard_states_[static_cast<size_t>(shard)];
  ++state.finished_slots;
  if (state.finished_slots < state.total_slots) {
    return;
  }
  // Last slot on this shard: stop the shard's periodic KSM daemons so the
  // shard can go idle. Shard-local state only — safe on a worker thread.
  for (auto& cluster : clusters_) {
    if (cluster->shard == shard) {
      cluster->host->ksm().Stop();
    }
  }
}

uint64_t ShardedFleet::visits() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->visits;
  }
  return total;
}

uint64_t ShardedFleet::churns() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->churns;
  }
  return total;
}

uint64_t ShardedFleet::cloud_fetches() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->cloud_fetches;
  }
  return total;
}

std::vector<double> ShardedFleet::HostWeights() const {
  std::vector<double> weights;
  weights.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    // Floor at 1 so an idle host still gets packed somewhere deliberate.
    weights.push_back(cluster->weight_events > 0 ? static_cast<double>(cluster->weight_events)
                                                 : 1.0);
  }
  return weights;
}

uint64_t ShardedFleet::visit_failures() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->visit_failures;
  }
  return total;
}

uint64_t ShardedFleet::create_failures() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->create_failures;
  }
  return total;
}

uint64_t ShardedFleet::slots_abandoned() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->slots_abandoned;
  }
  return total;
}

uint64_t ShardedFleet::vm_recoveries() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->vm_recoveries;
  }
  return total;
}

uint64_t ShardedFleet::events_executed() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).loop().events_executed();
  }
  return total;
}

uint64_t ShardedFleet::waterfills_full() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfills_full();
  }
  return total;
}

uint64_t ShardedFleet::waterfills_component() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfills_component();
  }
  return total;
}

uint64_t ShardedFleet::waterfill_skips() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfill_skips();
  }
  return total;
}

uint64_t ShardedFleet::ksm_memories_merged() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().memories_merged();
  }
  return total;
}

uint64_t ShardedFleet::ksm_memories_skipped() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().memories_skipped();
  }
  return total;
}

uint64_t ShardedFleet::ksm_pages_sharing() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().stats().pages_sharing;
  }
  return total;
}

FleetKsmStats ShardedFleet::ReconcileKsm() const {
  std::vector<std::map<uint64_t, uint64_t>> hosts;
  hosts.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    hosts.push_back(cluster->ksm_snapshot);
  }
  return FleetKsmIndex::ReconcileHistograms(hosts);
}

}  // namespace nymix
