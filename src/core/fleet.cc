#include "src/core/fleet.h"

namespace nymix {

ShardedFleet::ShardedFleet(ShardedSimulation& sharded, const FleetOptions& options,
                           uint64_t seed)
    : sharded_(sharded), options_(options) {
  NYMIX_CHECK(options_.nym_count >= 1);
  NYMIX_CHECK(options_.nyms_per_host >= 1);
  int shards = sharded_.shard_count();
  for (int s = 0; s < shards; ++s) {
    // Think-time randomness is per shard and derived from (seed, shard id):
    // a slot's think stream must not depend on how other shards interleave.
    shard_states_.push_back(std::make_unique<ShardState>(
        Mix64(seed ^ Fnv1a64("fleet.think") ^ static_cast<uint64_t>(s))));
  }

  int hosts = (options_.nym_count + options_.nyms_per_host - 1) / options_.nyms_per_host;
  // One distribution image per shard, like every host booting from a copy
  // of the same release stick. Per shard, not fleet-global: the image
  // memoizes its whole-image Merkle verification, and two shards verifying
  // concurrently must not race on (or order-depend on) that cache. Content
  // is a pure function of (name, seed, size), so every copy is identical.
  std::vector<std::shared_ptr<BaseImage>> images = options_.images;
  if (static_cast<int>(images.size()) != shards) {
    NYMIX_CHECK_MSG(images.empty(), "FleetOptions.images must match the shard plan");
    for (int s = 0; s < shards; ++s) {
      images.push_back(
          BaseImage::CreateDistribution(kFleetImageName, kFleetImageSeed, kFleetImageSizeBytes));
    }
  }

  for (int c = 0; c < hosts; ++c) {
    int shard = ShardForIndex(static_cast<size_t>(c), shards);
    Simulation& sim = sharded_.shard(shard);
    auto cluster = std::make_unique<Cluster>();
    cluster->shard = shard;
    cluster->host = std::make_unique<HostMachine>(sim, HostConfig{});
    cluster->host->ksm().set_full_rescan(options_.full_recompute);
    sim.flows().set_full_recompute(options_.full_recompute);
    cluster->tor = std::make_unique<TorNetwork>(sim, options_.tor);
    cluster->manager = std::make_unique<NymManager>(*cluster->host, images[static_cast<size_t>(shard)],
                                                    cluster->tor.get(), nullptr);
    WebsiteProfile profile;
    profile.name = "site-" + std::to_string(c);
    profile.domain = "site" + std::to_string(c) + ".example.com";
    cluster->site = std::make_unique<Website>(sim, profile);
    cluster->host->ksm().Start(options_.ksm_interval);
    clusters_.push_back(std::move(cluster));
    // Snapshot this host's shareable-content histogram mid-run for the
    // cross-host reconcile. A plain scheduled event on the host's own loop:
    // shard-local, so exact virtual-time capture with no cross-thread read.
    Cluster* raw = clusters_.back().get();
    sim.loop().ScheduleAt(options_.ksm_snapshot_time, [raw] {
      raw->ksm_snapshot = raw->host->ksm().ContentHistogram();
    });
  }

  slots_.resize(static_cast<size_t>(options_.nym_count));
  for (int i = 0; i < options_.nym_count; ++i) {
    slots_[static_cast<size_t>(i)].cluster = i / options_.nyms_per_host;
    ++ShardOf(i).total_slots;
  }
  // Shards that got hosts but no remaining live slots never occur (every
  // host owns at least one slot), but a plan with more shards than hosts
  // leaves some shards empty — they simply idle through every epoch.
}

ShardedFleet::~ShardedFleet() = default;

void ShardedFleet::Run() {
  for (int i = 0; i < options_.nym_count; ++i) {
    SpawnNym(i);
  }
  sharded_.RunUntilIdle();
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    const ShardState& state = *shard_states_[static_cast<size_t>(s)];
    NYMIX_CHECK(state.finished_slots == state.total_slots);
  }
}

void ShardedFleet::SpawnNym(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  std::string name = "c" + std::to_string(state.cluster) + "-s" +
                     std::to_string(slot % options_.nyms_per_host) + "-g" +
                     std::to_string(state.generation);
  ClusterOf(slot).manager->CreateNym(
      name, NymManager::CreateOptions{}, [this, slot](Result<Nym*> nym, NymStartupReport) {
        NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
        slots_[static_cast<size_t>(slot)].nym = *nym;
        slots_[static_cast<size_t>(slot)].visits_done = 0;
        VisitNext(slot);
      });
}

void ShardedFleet::VisitNext(int slot) {
  Cluster& cluster = ClusterOf(slot);
  Slot& state = slots_[static_cast<size_t>(slot)];
  state.nym->browser()->Visit(*cluster.site, [this, slot](Result<SimTime> done) {
    NYMIX_CHECK_MSG(done.ok(), done.status().ToString().c_str());
    Cluster& cluster = ClusterOf(slot);
    ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
    ++shard.visits;
    ++slots_[static_cast<size_t>(slot)].visits_done;
    // Think time before the next action; acting from a fresh event also
    // means churn never tears a nym down from inside its own callback.
    SimDuration think =
        Millis(500 + static_cast<SimDuration>(shard.think_prng.NextBelow(1500)));
    sharded_.shard(cluster.shard).loop().ScheduleAfter(think, [this, slot] { Advance(slot); });
  });
}

void ShardedFleet::Advance(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.visits_done < options_.visits_per_generation) {
    VisitNext(slot);
    return;
  }
  ++state.generation;
  NYMIX_CHECK(ClusterOf(slot).manager->TerminateNym(state.nym).ok());
  state.nym = nullptr;
  if (state.generation >= options_.generations) {
    FinishSlot(slot);
    return;
  }
  ++ShardOf(slot).churns;
  SpawnNym(slot);
}

void ShardedFleet::FinishSlot(int slot) {
  int shard = ClusterOf(slot).shard;
  ShardState& state = *shard_states_[static_cast<size_t>(shard)];
  ++state.finished_slots;
  if (state.finished_slots < state.total_slots) {
    return;
  }
  // Last slot on this shard: stop the shard's periodic KSM daemons so the
  // shard can go idle. Shard-local state only — safe on a worker thread.
  for (auto& cluster : clusters_) {
    if (cluster->shard == shard) {
      cluster->host->ksm().Stop();
    }
  }
}

uint64_t ShardedFleet::visits() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->visits;
  }
  return total;
}

uint64_t ShardedFleet::churns() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->churns;
  }
  return total;
}

uint64_t ShardedFleet::events_executed() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).loop().events_executed();
  }
  return total;
}

uint64_t ShardedFleet::waterfills_full() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfills_full();
  }
  return total;
}

uint64_t ShardedFleet::waterfills_component() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfills_component();
  }
  return total;
}

uint64_t ShardedFleet::waterfill_skips() const {
  uint64_t total = 0;
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    total += sharded_.shard(s).flows().waterfill_skips();
  }
  return total;
}

uint64_t ShardedFleet::ksm_memories_merged() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().memories_merged();
  }
  return total;
}

uint64_t ShardedFleet::ksm_memories_skipped() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().memories_skipped();
  }
  return total;
}

uint64_t ShardedFleet::ksm_pages_sharing() const {
  uint64_t total = 0;
  for (const auto& cluster : clusters_) {
    total += cluster->host->ksm().stats().pages_sharing;
  }
  return total;
}

FleetKsmStats ShardedFleet::ReconcileKsm() const {
  std::vector<std::map<uint64_t, uint64_t>> hosts;
  hosts.reserve(clusters_.size());
  for (const auto& cluster : clusters_) {
    hosts.push_back(cluster->ksm_snapshot);
  }
  return FleetKsmIndex::ReconcileHistograms(hosts);
}

}  // namespace nymix
