#include "src/core/fleet_checkpoint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/unionfs/serialize.h"
#include "src/util/check.h"

namespace nymix {

namespace {

// Nym checkpoint payload: options, both writable layers, save sequence.
// Fixed-endian fields only; MemFs serialization is already deterministic
// (sorted paths), so the payload is a pure function of the nym's state.
Bytes EncodeNymState(const NymManager::CreateOptions& options, const MemFs& anon_writable,
                     const MemFs& comm_writable, uint32_t next_sequence) {
  Bytes payload;
  payload.push_back(static_cast<uint8_t>(options.anonymizer));
  payload.push_back(static_cast<uint8_t>(options.mode));
  payload.push_back(options.guard_seed.has_value() ? 1 : 0);
  AppendU64(payload, options.guard_seed.value_or(0));
  payload.push_back(static_cast<uint8_t>(options.chain_inner));
  payload.push_back(static_cast<uint8_t>(options.chain_outer));
  AppendLengthPrefixed(payload, SerializeMemFs(anon_writable));
  AppendLengthPrefixed(payload, SerializeMemFs(comm_writable));
  AppendU32(payload, next_sequence);
  return payload;
}

struct DecodedNymState {
  NymManager::CreateOptions options;
  std::unique_ptr<MemFs> anon_writable;
  std::unique_ptr<MemFs> comm_writable;
  uint32_t next_sequence = 0;
};

Result<DecodedNymState> DecodeNymState(ByteSpan payload) {
  if (payload.size() < 6) {
    return DataLossError("nym checkpoint: payload too short");
  }
  DecodedNymState out;
  size_t offset = 0;
  out.options.anonymizer = static_cast<AnonymizerKind>(payload[offset++]);
  out.options.mode = static_cast<NymMode>(payload[offset++]);
  const bool has_guard_seed = payload[offset++] != 0;
  NYMIX_ASSIGN_OR_RETURN(uint64_t guard_seed, ReadU64(payload, offset));
  if (has_guard_seed) {
    out.options.guard_seed = guard_seed;
  }
  out.options.chain_inner = static_cast<AnonymizerKind>(payload[offset++]);
  out.options.chain_outer = static_cast<AnonymizerKind>(payload[offset++]);
  NYMIX_ASSIGN_OR_RETURN(Bytes anon_fs, ReadLengthPrefixed(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(out.anon_writable, DeserializeMemFs(anon_fs));
  NYMIX_ASSIGN_OR_RETURN(Bytes comm_fs, ReadLengthPrefixed(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(out.comm_writable, DeserializeMemFs(comm_fs));
  NYMIX_ASSIGN_OR_RETURN(out.next_sequence, ReadU32(payload, offset));
  if (offset != payload.size()) {
    return DataLossError("nym checkpoint: trailing bytes");
  }
  return out;
}

std::string NymKeyPrefix(const std::string& host_key) { return host_key + "/nym/"; }

}  // namespace

Status CheckpointHost(NymManager& manager, const std::string& host_key, KvStore& store) {
  const std::string prefix = NymKeyPrefix(host_key);
  // Drop stale entries first: the checkpoint must mirror the host, not
  // accumulate every nym that ever lived on it.
  std::vector<std::string> stale;
  for (const auto& [key, value] : store.entries()) {
    if (key.compare(0, prefix.size(), prefix) == 0) {
      stale.push_back(key);
    }
  }
  for (const std::string& key : stale) {
    store.Delete(key);
  }
  // Checkpoint in name order, not manager order: recovery re-wires a nym at
  // the back of the manager's list, so manager order encodes the host's
  // crash history. The log must be a pure function of host *state* or a
  // restored host re-checkpoints differently (caught by the fuzzer's
  // checkpoint-identity oracle).
  std::vector<Nym*> live = manager.nyms();
  std::sort(live.begin(), live.end(),
            [](const Nym* a, const Nym* b) { return a->name() < b->name(); });
  for (Nym* nym : live) {
    if (nym->anon_vm() == nullptr || nym->comm_vm() == nullptr) {
      continue;  // mid-teardown; nothing coherent to capture
    }
    // Sync anonymizer state into the CommVM layer so the checkpoint holds
    // guards/consensus even if the nym never saved on its own.
    NYMIX_RETURN_IF_ERROR(manager.CheckpointNym(*nym));
    const NymManager::CreateOptions* options = manager.FindOptions(nym->name());
    if (options == nullptr) {
      return InternalError("checkpoint: nym without recorded options: " + nym->name());
    }
    // Warm-start checkpoints are keyed by nym name on purpose: the store is
    // host-local scratch state that never leaves this machine, and restore
    // has to find a nym by its name.
    // nymlint:allow(nymflow-identity-taint): host-local warm-start store; the key never leaves this machine
    store.Put(prefix + nym->name(),
              EncodeNymState(*options, nym->anon_vm()->disk().fs().writable(),
                             nym->comm_vm()->disk().fs().writable(), nym->save_sequence()));
  }
  return OkStatus();
}

Status RestoreHost(NymManager& manager, const std::string& host_key, KvStore& store,
                   int* restored_count) {
  const std::string prefix = NymKeyPrefix(host_key);
  int count = 0;
  for (const auto& [key, value] : store.entries()) {
    if (key.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string name = key.substr(prefix.size());
    NYMIX_ASSIGN_OR_RETURN(DecodedNymState state, DecodeNymState(value));
    manager.RestoreNymFromState(name, state.options, std::move(state.anon_writable),
                                std::move(state.comm_writable), state.next_sequence,
                                [name](Result<Nym*> nym, NymStartupReport) {
                                  NYMIX_CHECK_MSG(nym.ok(),
                                                  ("restore failed for " + name).c_str());
                                });
    ++count;
  }
  if (restored_count != nullptr) {
    *restored_count = count;
  }
  return OkStatus();
}

Status CheckpointFleet(ShardedFleet& fleet, KvStore& store) {
  for (int h = 0; h < fleet.host_count(); ++h) {
    NYMIX_RETURN_IF_ERROR(CheckpointHost(fleet.manager(h), "host/" + std::to_string(h), store));
  }
  return OkStatus();
}

Result<int> RestoreFleet(ShardedFleet& fleet, KvStore& store) {
  int total = 0;
  for (int h = 0; h < fleet.host_count(); ++h) {
    int restored = 0;
    NYMIX_RETURN_IF_ERROR(
        RestoreHost(fleet.manager(h), "host/" + std::to_string(h), store, &restored));
    total += restored;
  }
  return total;
}

}  // namespace nymix
