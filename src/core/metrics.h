// Anonymity metrics (§7 "Long Term Intersection Attacks" / Buddies).
//
// IntersectionObserver models the adversary: it watches which users are
// online whenever a linkable pseudonymous message appears and intersects
// those sets — with enough messages the owner is exposed. BuddiesPolicy is
// the paper's planned countermeasure: report the current anonymity-set
// size and refuse to post when it would fall below a floor.
//
// FingerprintSurface captures §4.2's homogeneity claim as a checkable
// predicate over the VM-visible identifiers.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <set>
#include <string>
#include <vector>

#include "src/hv/vm.h"

namespace nymix {

class IntersectionObserver {
 public:
  // One observation round: who was online, and whether the target
  // pseudonym posted a linkable message in that round.
  void RecordRound(const std::set<std::string>& online_users, bool pseudonym_posted);

  // Users consistent with every posting round so far (the pseudonym's
  // anonymity set from the adversary's viewpoint). Before any posting
  // round, everyone ever seen is possible.
  std::set<std::string> CandidateSet() const;
  size_t AnonymitySetSize() const { return CandidateSet().size(); }
  size_t rounds_observed() const { return rounds_.size(); }
  size_t posting_rounds() const;

 private:
  struct Round {
    std::set<std::string> online;
    bool posted = false;
  };
  std::vector<Round> rounds_;
  std::set<std::string> ever_seen_;
};

// Buddies-style policy: given who is online now, decide whether posting
// keeps the anonymity set at or above the threshold.
class BuddiesPolicy {
 public:
  explicit BuddiesPolicy(size_t min_anonymity_set) : threshold_(min_anonymity_set) {}

  size_t threshold() const { return threshold_; }

  // The set size *after* a hypothetical post in this round.
  size_t ProjectedSetSize(const IntersectionObserver& observer,
                          const std::set<std::string>& online_now) const;

  bool MayPost(const IntersectionObserver& observer,
               const std::set<std::string>& online_now) const {
    return ProjectedSetSize(observer, online_now) >= threshold_;
  }

 private:
  size_t threshold_;
};

struct FingerprintSurface {
  std::string cpu_model;
  std::string resolution;
  std::string mac;
  uint32_t visible_cpus = 0;

  bool operator==(const FingerprintSurface&) const = default;
};

FingerprintSurface FingerprintOf(const VirtualMachine& vm);

// §4.2's property: every AnonVM looks identical to a fingerprinter.
bool IndistinguishableFingerprints(const VirtualMachine& a, const VirtualMachine& b);

// Panopticlick-style surprisal: how many bits of identifying information
// the target's fingerprint carries within a population
// (-log2 P[fingerprint == target's]). 0 bits = perfectly hidden;
// log2(population) bits = uniquely identified.
double FingerprintSurprisalBits(const std::vector<FingerprintSurface>& population,
                                const FingerprintSurface& target);

// A population of conventional (non-Nymix) browsers with natural variety
// in hardware and configuration, for comparison benches.
std::vector<FingerprintSurface> SyntheticNativePopulation(size_t count, Prng& prng);

}  // namespace nymix

#endif  // SRC_CORE_METRICS_H_
