#include "src/core/installed_os.h"

#include "src/unionfs/serialize.h"

namespace nymix {

uint64_t DiskFingerprint(const MemFs& disk) {
  // XOR of per-file digests: order-independent, sensitive to any content
  // or path change.
  uint64_t fingerprint = 0x9e3779b97f4a7c15ULL;
  disk.ForEachFile([&fingerprint](const std::string& path, const Blob& blob) {
    fingerprint ^= Mix64(Fnv1a64(path) ^ blob.ContentHash());
  });
  return fingerprint;
}

Result<CowSnapshot> SaveCowState(const Nym& os_nym, const InstalledOsMedia& media) {
  if (os_nym.anon_vm() == nullptr) {
    return FailedPreconditionError("installed-OS nym has no VM");
  }
  CowSnapshot snapshot;
  snapshot.serialized_writable = SerializeMemFs(os_nym.anon_vm()->disk().fs().writable());
  snapshot.base_fingerprint = DiskFingerprint(*media.disk);
  return snapshot;
}

Status RestoreCowState(Nym& os_nym, const InstalledOsMedia& media,
                       const CowSnapshot& snapshot) {
  if (os_nym.anon_vm() == nullptr) {
    return FailedPreconditionError("installed-OS nym has no VM");
  }
  if (DiskFingerprint(*media.disk) != snapshot.base_fingerprint) {
    return DataLossError(
        "underlying disk changed since the COW snapshot; refusing to restore "
        "(§3.7: would lead to inconsistency or corruption)");
  }
  NYMIX_ASSIGN_OR_RETURN(auto restored, DeserializeMemFs(snapshot.serialized_writable));
  restored->ForEachFile([&os_nym](const std::string& path, const Blob& blob) {
    NYMIX_CHECK(
        os_nym.anon_vm()->disk().fs().writable_mutable().WriteFile(path, blob).ok());
  });
  return OkStatus();
}

std::string_view InstalledOsKindName(InstalledOsKind kind) {
  switch (kind) {
    case InstalledOsKind::kWindowsVista:
      return "Windows Vista";
    case InstalledOsKind::kWindows7:
      return "Windows 7";
    case InstalledOsKind::kWindows8:
      return "Windows 8";
    case InstalledOsKind::kLinux:
      return "Linux";
  }
  return "?";
}

InstalledOsProfile InstalledOsProfile::For(InstalledOsKind kind) {
  InstalledOsProfile profile;
  profile.kind = kind;
  switch (kind) {
    case InstalledOsKind::kWindowsVista:
      profile.driver_count = 211;
      profile.service_count = 60;
      break;
    case InstalledOsKind::kWindows7:
      profile.driver_count = 198;
      profile.service_count = 49;
      break;
    case InstalledOsKind::kWindows8:
      profile.driver_count = 277;
      profile.service_count = 123;
      profile.resets_hiberfile = true;
      break;
    case InstalledOsKind::kLinux:
      // "Linux usually boots without issue" (§3.7): no repair needed.
      profile.driver_count = 0;
      profile.service_count = 35;
      break;
  }
  return profile;
}

double RepairSecondsFor(const InstalledOsProfile& profile) {
  if (profile.driver_count == 0) {
    return 0.0;
  }
  // Fixed analysis pass plus per-driver re-enumeration.
  return 60.0 + 0.35 * profile.driver_count;
}

double BootSecondsFor(const InstalledOsProfile& profile) {
  return 18.0 + 0.33 * profile.service_count;
}

uint64_t CowBytesFor(const InstalledOsProfile& profile) {
  // Registry/driver-store rewrites, plus the hibernation-image reset.
  uint64_t bytes = 700 * kKiB + static_cast<uint64_t>(profile.driver_count) * 20 * kKiB;
  if (profile.resets_hiberfile) {
    bytes += 8 * kMiB;
  }
  return bytes;
}

InstalledOsMedia MakeInstalledOsMedia(InstalledOsKind kind, uint64_t seed) {
  InstalledOsMedia media;
  media.profile = InstalledOsProfile::For(kind);
  media.disk = std::make_shared<MemFs>();
  Prng prng(seed);
  MemFs& fs = *media.disk;
  NYMIX_CHECK(fs.WriteFile("/Windows/System32/drivers/store.dat",
                           Blob::Synthetic(media.profile.driver_count * 200 * kKiB,
                                           prng.NextU64(), 0.5))
                  .ok());
  NYMIX_CHECK(
      fs.WriteFile("/Windows/System32/config/SYSTEM",
                   Blob::Synthetic(30 * kMiB, prng.NextU64(), 0.5))
          .ok());
  // The state §3.7 wants to reuse: WiFi credentials and user files.
  NYMIX_CHECK(fs.WriteFile("/ProgramData/wifi/profiles.xml",
                           Blob::FromString("<wifi ssid=\"HomeLAN\" psk=\"hunter2\"/>"))
                  .ok());
  NYMIX_CHECK(fs.WriteFile("/Users/user/Documents/protest-photo.jpg",
                           Blob::Synthetic(3 * kMiB, prng.NextU64(), 0.95))
                  .ok());
  return media;
}

void InstalledOsNymService::BootAsNym(
    InstalledOsMedia& media, std::function<void(Result<Nym*>, InstalledOsReport)> done) {
  auto report = std::make_shared<InstalledOsReport>();
  Simulation& sim = manager_.sim();

  uint64_t disk_bytes_before = media.disk->TotalBytes();
  double repair_seconds = media.repaired ? 0.0 : RepairSecondsFor(media.profile);

  // Phase 1: the repair pass (a CPU-bound scan/reconfigure job).
  auto after_repair = [this, &media, report, disk_bytes_before, done = std::move(done)](
                          SimTime) mutable {
    media.repaired = true;

    // Phase 2: boot the installed OS in a nymbox. Installed-OS nyms are
    // non-anonymous by design — incognito networking lets them reuse the
    // machine's LAN access (§3.7).
    NymManager::CreateOptions options;
    options.anonymizer = AnonymizerKind::kIncognito;
    options.mode = NymMode::kEphemeral;
    std::string name = std::string("installed-") +
                       std::string(InstalledOsKindName(media.profile.kind));
    for (auto& c : name) {
      if (c == ' ') {
        c = '-';
      }
    }
    SimTime boot_start = manager_.sim().now();
    InstalledOsProfile profile = media.profile;
    auto disk = media.disk;
    manager_.CreateNym(
        name, options,
        [this, report, boot_start, profile, disk, disk_bytes_before,
         done = std::move(done)](Result<Nym*> nym, NymStartupReport) mutable {
          if (!nym.ok()) {
            done(nym.status(), *report);
            return;
          }
          // Extend the generic VM boot to the installed OS's measured cost.
          double generic_boot = ToSeconds(manager_.sim().now() - boot_start);
          double os_boot = BootSecondsFor(profile);
          SimDuration extra = os_boot > generic_boot ? SecondsF(os_boot - generic_boot) : 0;
          manager_.sim().loop().ScheduleAfter(extra, [this, report, profile, disk,
                                                      disk_bytes_before, nym,
                                                      done = std::move(done)]() mutable {
            // COW semantics: the repair + boot writes land in the nym's
            // writable layer; the physical disk is untouched.
            uint64_t cow = CowBytesFor(profile);
            Status cow_write = (*nym)->anon_vm()->disk().fs().writable_mutable().WriteFile(
                "/cow/installed-os-delta",
                Blob::Synthetic(cow, Mix64(disk_bytes_before), 0.6));
            NYMIX_CHECK_MSG(cow_write.ok(), cow_write.ToString().c_str());
            report->boot_seconds = BootSecondsFor(profile);
            report->cow_bytes = cow;
            NYMIX_CHECK(disk->TotalBytes() == disk_bytes_before);
            done(*nym, *report);
          });
        });
  };

  if (repair_seconds > 0) {
    report->repair_seconds = repair_seconds;
    sim.loop().ScheduleAfter(SecondsF(repair_seconds),
                             [after_repair, &sim]() mutable { after_repair(sim.now()); });
  } else {
    sim.loop().ScheduleAfter(0, [after_repair, &sim]() mutable { after_repair(sim.now()); });
  }
}

}  // namespace nymix
