// Installed OS as a nym (§3.7, Table 1). Nymix can boot the machine's own
// Windows/Linux installation inside a (non-anonymous) nymbox: the physical
// disk stays read-only, all writes land in a copy-on-write layer, and a
// one-time "repair" pass reconfigures the OS's driver set for the virtual
// hardware. Table 1 measures exactly the three costs this model exposes:
// repair time, boot time, and the size of the resulting COW delta.
#ifndef SRC_CORE_INSTALLED_OS_H_
#define SRC_CORE_INSTALLED_OS_H_

#include "src/core/nym_manager.h"

namespace nymix {

enum class InstalledOsKind { kWindowsVista, kWindows7, kWindows8, kLinux };
std::string_view InstalledOsKindName(InstalledOsKind kind);

struct InstalledOsProfile {
  InstalledOsKind kind = InstalledOsKind::kWindows7;
  // Hardware-bound drivers the repair pass must re-enumerate.
  uint32_t driver_count = 198;
  // Boot-time services started before the desktop appears.
  uint32_t service_count = 49;
  // Windows 8's fast-startup hibernation image must be reset when the
  // "hardware" changes, inflating the COW delta (Table 1's 14 MB outlier).
  bool resets_hiberfile = false;

  static InstalledOsProfile For(InstalledOsKind kind);
};

struct InstalledOsMedia {
  InstalledOsProfile profile;
  std::shared_ptr<MemFs> disk;  // the machine's installed-OS partition
  bool repaired = false;        // virtual-hardware repair already applied
};

// Builds a plausible installed-OS disk (user documents, WiFi credentials,
// a driver store) for the given kind.
InstalledOsMedia MakeInstalledOsMedia(InstalledOsKind kind, uint64_t seed);

struct InstalledOsReport {
  double repair_seconds = 0;  // Table 1 "Repair (S)"
  double boot_seconds = 0;    // Table 1 "Boot (S)"
  uint64_t cow_bytes = 0;     // Table 1 "Size (MB)"
};

class InstalledOsNymService {
 public:
  explicit InstalledOsNymService(NymManager& manager) : manager_(manager) {}

  // Repairs (if needed) and boots the installed OS in a COW nymbox with
  // incognito (non-anonymous) networking. The underlying disk is never
  // written: on completion `media.disk` is byte-identical, and the repair
  // plus all boot writes live in the VM's writable layer.
  void BootAsNym(InstalledOsMedia& media,
                 std::function<void(Result<Nym*>, InstalledOsReport)> done);

 private:
  NymManager& manager_;
};

// Deterministic Table 1 cost model, exposed for the bench and tests.
double RepairSecondsFor(const InstalledOsProfile& profile);
double BootSecondsFor(const InstalledOsProfile& profile);
uint64_t CowBytesFor(const InstalledOsProfile& profile);

// --- Quasi-persistent COW disks (§3.7) -----------------------------------
// "He may ... store his copy-on-write COW disk as quasi-persistent data.
// ... attempting to use the quasi-persistent COW disk after the underlying
// disk has changed can lead to inconsistency or corruption." The snapshot
// records a fingerprint of the base disk; restoring against a changed base
// fails with DATA_LOSS instead of corrupting silently.
struct CowSnapshot {
  Bytes serialized_writable;
  uint64_t base_fingerprint = 0;
};

// Content fingerprint of an installed-OS disk (order-independent over
// (path, content) pairs).
uint64_t DiskFingerprint(const MemFs& disk);

// Captures the running installed-OS nym's COW layer.
Result<CowSnapshot> SaveCowState(const Nym& os_nym, const InstalledOsMedia& media);

// Re-applies a snapshot onto a freshly booted installed-OS nym; refuses if
// the underlying disk changed since the snapshot.
Status RestoreCowState(Nym& os_nym, const InstalledOsMedia& media,
                       const CowSnapshot& snapshot);

}  // namespace nymix

#endif  // SRC_CORE_INSTALLED_OS_H_
