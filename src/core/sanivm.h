// SaniService: the dedicated, non-networked sanitation VM (§3.6/§4.3).
// On boot it mounts the computer's non-Nymix filesystems read-only; the
// user browses them, drops files into a per-nym transfer directory, the
// scrubbing workflow runs, and only then does the file appear in a VirtFS
// share visible to that nym's AnonVM — the *only* cross-nym file path in
// the system.
#ifndef SRC_CORE_SANIVM_H_
#define SRC_CORE_SANIVM_H_

#include "src/core/nym_manager.h"
#include "src/sanitize/scrubber.h"

namespace nymix {

class SaniService {
 public:
  explicit SaniService(NymManager& manager);

  // Boots the SaniVM; must complete before transfers.
  void Start(std::function<void(SimTime)> ready);
  bool ready() const { return sani_vm_ != nullptr && sani_vm_->state() == VmState::kRunning; }
  VirtualMachine* vm() { return sani_vm_; }

  // Mounts a host filesystem (installed OS partition, camera SD card)
  // read-only under /mnt/<label> inside the SaniVM.
  Status MountHostFilesystem(const std::string& label, std::shared_ptr<const MemFs> fs);
  std::vector<std::string> MountedFilesystems() const;

  // Browses a mounted filesystem.
  Result<std::vector<DirEntry>> ListHostDirectory(const std::string& label,
                                                  const std::string& path) const;
  Result<Blob> ReadHostFile(const std::string& label, const std::string& path) const;

  // Creates the per-nym transfer directory + VirtFS share (§3.6: "Nymix
  // creates a unique directory within the SaniVM for each nym").
  Status RegisterNym(Nym& nym);
  Status UnregisterNym(Nym& nym);

  struct TransferOutcome {
    RiskReport analysis;                // what was found before scrubbing
    std::vector<std::string> actions;   // transformations applied
    std::string guest_path;             // where the AnonVM sees the file
  };

  // The full workflow: analyze -> scrub at the given paranoia level ->
  // copy into the nym's share. Never moves un-scrubbed bytes.
  Result<TransferOutcome> TransferToNym(Nym& nym, const std::string& label,
                                        const std::string& host_path,
                                        const ScrubOptions& options);

  // --- Staged-directory workflow (§3.6: "The SaniVM detects when the
  // user moves files into this directory and launches the scrubbing
  // workflow") ----------------------------------------------------------
  // Copies a host file into the nym's pending directory inside the SaniVM.
  Status StageForNym(Nym& nym, const std::string& label, const std::string& host_path);
  // Files sitting in the nym's pending directory, not yet scrubbed.
  std::vector<std::string> PendingFiles(const Nym& nym) const;
  // Scrubs every pending file and moves the results into the nym's share;
  // the pending directory is emptied. Files that fail analysis/scrubbing
  // are left pending and reported via their Status.
  std::vector<Result<TransferOutcome>> ProcessPending(Nym& nym, const ScrubOptions& options);

  // Pure analysis (the risk list shown to the user before they choose).
  Result<RiskReport> AnalyzeHostFile(const std::string& label, const std::string& path) const;

  size_t transfers_completed() const { return transfers_completed_; }

 private:
  NymManager& manager_;
  VirtualMachine* sani_vm_ = nullptr;
  std::map<std::string, std::shared_ptr<const MemFs>> mounts_;
  std::map<std::string, std::shared_ptr<MemFs>> nym_shares_;  // nym name -> share
  Prng prng_;
  size_t transfers_completed_ = 0;
};

}  // namespace nymix

#endif  // SRC_CORE_SANIVM_H_
