// Whole-host and whole-fleet checkpoint/restore over the deterministic KV
// store — PR 3's CheckpointNym/RecoverNym lifted from one nym to every nym
// a host (or an entire ShardedFleet) is running.
//
// A host checkpoint captures, per live nym: its creation options, both
// RAM-backed writable disk layers (anonymizer state included — the
// checkpoint first runs CheckpointNym so guards and consensus are synced
// into the CommVM layer, exactly like tor rewriting its state file), and
// the save-sequence counter. Restore tears down whatever is running under
// each checkpointed name and boots a replacement from the captured state;
// boots execute in virtual time, so the caller drives the simulation to
// quiescence afterwards. Guard choice survives the round trip (§3.5's
// intersection-attack defence) because the anonymizer re-derives it from
// the restored state.
//
// Keying: "<host_key>/nym/<name>". Host keys are caller-chosen for single
// hosts and "host/<index>" for fleets, so a fleet checkpoint is just every
// host's checkpoint in one store.
#ifndef SRC_CORE_FLEET_CHECKPOINT_H_
#define SRC_CORE_FLEET_CHECKPOINT_H_

#include <string>

#include "src/core/fleet.h"
#include "src/core/nym_manager.h"
#include "src/store/kv_store.h"

namespace nymix {

// Checkpoints every live nym managed by `manager` into `store`. Existing
// entries under the same host key are replaced (a nym that died since the
// last checkpoint disappears from the store, matching the host's reality).
Status CheckpointHost(NymManager& manager, const std::string& host_key, KvStore& store);

// Restores every nym checkpointed under `host_key`. Each restore boots in
// virtual time; `restored_count` (optional) reports how many nyms were
// found. Restore callbacks abort the simulation on failure — a checkpoint
// that cannot boot is a bug, not a recoverable condition.
Status RestoreHost(NymManager& manager, const std::string& host_key, KvStore& store,
                   int* restored_count = nullptr);

// Fleet-wide variants: every host in creation order, keyed "host/<index>".
Status CheckpointFleet(ShardedFleet& fleet, KvStore& store);
Result<int> RestoreFleet(ShardedFleet& fleet, KvStore& store);

}  // namespace nymix

#endif  // SRC_CORE_FLEET_CHECKPOINT_H_
