#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>

namespace nymix {

void IntersectionObserver::RecordRound(const std::set<std::string>& online_users,
                                       bool pseudonym_posted) {
  rounds_.push_back(Round{online_users, pseudonym_posted});
  ever_seen_.insert(online_users.begin(), online_users.end());
}

std::set<std::string> IntersectionObserver::CandidateSet() const {
  std::set<std::string> candidates = ever_seen_;
  for (const Round& round : rounds_) {
    if (!round.posted) {
      continue;
    }
    std::set<std::string> narrowed;
    std::set_intersection(candidates.begin(), candidates.end(), round.online.begin(),
                          round.online.end(), std::inserter(narrowed, narrowed.begin()));
    candidates = std::move(narrowed);
  }
  return candidates;
}

size_t IntersectionObserver::posting_rounds() const {
  return static_cast<size_t>(
      std::count_if(rounds_.begin(), rounds_.end(), [](const Round& r) { return r.posted; }));
}

size_t BuddiesPolicy::ProjectedSetSize(const IntersectionObserver& observer,
                                       const std::set<std::string>& online_now) const {
  std::set<std::string> candidates = observer.CandidateSet();
  std::set<std::string> projected;
  std::set_intersection(candidates.begin(), candidates.end(), online_now.begin(),
                        online_now.end(), std::inserter(projected, projected.begin()));
  return projected.size();
}

FingerprintSurface FingerprintOf(const VirtualMachine& vm) {
  FingerprintSurface surface;
  surface.cpu_model = vm.CpuModelString();
  surface.resolution = vm.ScreenResolution();
  surface.mac = vm.GuestMac().ToString();
  surface.visible_cpus = vm.VisibleCpuCount();
  return surface;
}

bool IndistinguishableFingerprints(const VirtualMachine& a, const VirtualMachine& b) {
  return FingerprintOf(a) == FingerprintOf(b);
}

double FingerprintSurprisalBits(const std::vector<FingerprintSurface>& population,
                                const FingerprintSurface& target) {
  if (population.empty()) {
    return 0.0;
  }
  size_t matches = static_cast<size_t>(std::count(population.begin(), population.end(), target));
  if (matches == 0) {
    // Not in the population at all: maximally surprising.
    return std::log2(static_cast<double>(population.size() + 1));
  }
  double probability =
      static_cast<double>(matches) / static_cast<double>(population.size());
  return probability >= 1.0 ? 0.0 : -std::log2(probability);
}

std::vector<FingerprintSurface> SyntheticNativePopulation(size_t count, Prng& prng) {
  static const char* kCpus[] = {"Intel(R) Core(TM) i7-4770", "Intel(R) Core(TM) i5-3210M",
                                "AMD FX(tm)-8350", "Intel(R) Atom(TM) N2600",
                                "Intel(R) Core(TM) i3-2100"};
  static const char* kResolutions[] = {"1920x1080", "1366x768", "1280x800",
                                       "1440x900",  "2560x1440", "1024x768"};
  std::vector<FingerprintSurface> population;
  population.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    FingerprintSurface surface;
    surface.cpu_model = kCpus[prng.NextBelow(std::size(kCpus))];
    surface.resolution = kResolutions[prng.NextBelow(std::size(kResolutions))];
    MacAddress mac;
    for (auto& octet : mac.octets) {
      octet = static_cast<uint8_t>(prng.NextBelow(256));
    }
    surface.mac = mac.ToString();
    surface.visible_cpus = static_cast<uint32_t>(1 + prng.NextBelow(8));
    population.push_back(surface);
  }
  return population;
}

}  // namespace nymix
