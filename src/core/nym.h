// Nym: one pseudonym and its nymbox (§3.1). A nymbox is a pair of VMs —
// the AnonVM running the browser, and the CommVM running this nym's own
// anonymizer instance — joined by a private virtual wire. The CommVM
// enforces the paper's communication policy: AnonVM traffic reaches the
// Internet only through the anonymizer; raw guest packets aimed at the
// LAN, the host, or other nyms are silently dropped (§5.1: "all attempts
// failed with a no-response, as if the host did not exist").
#ifndef SRC_CORE_NYM_H_
#define SRC_CORE_NYM_H_

#include <memory>
#include <string>

#include "src/anon/anonymizer.h"
#include "src/anon/dns_proxy.h"
#include "src/hv/host.h"
#include "src/workload/browser.h"

namespace nymix {

// Usage models of §3.5.
enum class NymMode { kEphemeral, kPersistent, kPreConfigured };
std::string_view NymModeName(NymMode mode);

class Nym {
 public:
  // Constructed (wired, not yet booted) by NymManager.
  Nym(std::string name, NymMode mode, Simulation& sim);
  ~Nym();

  const std::string& name() const { return name_; }
  NymMode mode() const { return mode_; }

  VirtualMachine* anon_vm() { return anon_vm_; }
  VirtualMachine* comm_vm() { return comm_vm_; }
  const VirtualMachine* anon_vm() const { return anon_vm_; }
  const VirtualMachine* comm_vm() const { return comm_vm_; }
  Anonymizer* anonymizer() { return anonymizer_.get(); }
  // The CommVM's DNS path for this nym's anonymizer (§4.1).
  DnsProxy* dns() { return dns_.get(); }
  BrowserModel* browser() { return browser_.get(); }
  Link* wire() { return wire_; }
  Link* vm_uplink() { return vm_uplink_; }

  // Save/restore bookkeeping: the AEAD sequence number of the next save.
  uint32_t save_sequence() const { return save_sequence_; }
  void set_save_sequence(uint32_t sequence) { save_sequence_ = sequence; }

  // Raw AnonVM packets the CommVM refused to forward (leak attempts).
  uint64_t leak_packets_dropped() const { return leak_packets_dropped_; }
  // Unsolicited packets arriving at the AnonVM from anywhere but the wire.
  uint64_t anonvm_unsolicited_dropped() const { return anonvm_unsolicited_dropped_; }

  // Installs the nymbox communication policy on both VMs. Called by the
  // manager after VMs and links exist.
  void InstallPolicy();

  bool terminated() const { return terminated_; }

 private:
  friend class NymManager;

  std::string name_;
  NymMode mode_;
  Simulation& sim_;
  VirtualMachine* anon_vm_ = nullptr;  // owned by HostMachine
  VirtualMachine* comm_vm_ = nullptr;
  Link* wire_ = nullptr;
  Link* vm_uplink_ = nullptr;
  std::unique_ptr<Anonymizer> anonymizer_;
  std::unique_ptr<DnsProxy> dns_;
  std::unique_ptr<BrowserModel> browser_;
  uint32_t save_sequence_ = 0;
  uint64_t leak_packets_dropped_ = 0;
  uint64_t anonvm_unsolicited_dropped_ = 0;
  bool terminated_ = false;
};

}  // namespace nymix

#endif  // SRC_CORE_NYM_H_
