// ShardedFleet: a fleet of Nymix host clusters driven through the parallel
// executor — the "core accepts a shard plan" integration point.
//
// The workload is the scale_fleet benchmark's: N nyms over ceil(N/8) hosts,
// each host a cluster with its own test Tor deployment and destination
// site, every nym visiting its cluster's site with think time and one
// churn (terminate + replace) per slot. Hosts are assigned to shards
// round-robin by creation index (ShardForIndex), so the partition — and
// therefore every per-shard seed stream — depends only on (seed,
// plan.shards), never on the thread count.
//
// Thread confinement: all per-slot callbacks run on the owning shard's
// event loop, so every mutable field they touch (slot state, think Prng,
// visit/churn counters) is per-shard. The only cross-shard operations are
// the executor's epoch barrier and the post-run aggregations below.
//
// KSM: each host's daemon scans periodically while its shard has active
// slots; when a shard's last slot finishes, a shard-local event stops that
// shard's daemons (a periodic daemon would otherwise keep its loop from
// ever going idle). ReconcileKsm() then runs the deterministic cross-host
// reconcile (src/hv/ksm_fleet.h) over all hosts in creation order.
#ifndef SRC_CORE_FLEET_H_
#define SRC_CORE_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/nym_manager.h"
#include "src/hv/ksm_fleet.h"
#include "src/parallel/sharded_sim.h"
#include "src/workload/website.h"

namespace nymix {

// The distribution image every fleet host boots from — a copy of the same
// release stick. Exposed so warm-start paths (bench/scale_fleet) can
// acquire checkpointed images with the identical identity.
inline constexpr const char* kFleetImageName = "nymix";
inline constexpr uint64_t kFleetImageSeed = 42;
inline constexpr uint64_t kFleetImageSizeBytes = 64 * kMiB;

// How the fleet's clusters relate across shards.
//
// kIsolated is the historical workload: every cluster is self-contained,
// shards never exchange a packet, and the executor runs one run-to-idle
// epoch per shard. kCrossed adds the inter-host traffic the paper's
// deployment actually has — after every page visit the nym performs a
// cloud fetch (directory/consensus-style round) whose service lives on the
// NEXT shard, reached over a CrossShardChannel ring. Fetches depart only
// on promised send windows (SendSchedule; one request window and one reply
// window per cloud_window period), which is what lets the executor's
// adaptive horizon run each shard a full half-window of dense local work
// per epoch instead of trickling along at channel latency. Crossed fleets
// are also heterogeneous: each host draws a seeded visit multiplier in
// [1, cloud_weight_max], so shard load skews unless a BalancedPlacement
// (shard_plan.h) repacks hosts by observed weight.
//
// A crossed fleet on a 1-shard plan degrades to kIsolated (there is no
// second shard to host the cloud), so small plans remain runnable.
enum class FleetTopology {
  kIsolated,
  kCrossed,
};

struct FleetOptions {
  int nym_count = 8;
  int nyms_per_host = 8;  // §5.2: a 16 GB desktop comfortably fits 8 nymboxes
  FleetTopology topology = FleetTopology::kIsolated;
  // Crossed-topology shape: the window period shared by the request and
  // reply send schedules, the ring channel's wire parameters, and the
  // upper bound of the per-host visit multiplier.
  SimDuration cloud_window = Seconds(5);
  SimDuration cloud_latency = Millis(200);
  uint64_t cloud_bandwidth_bps = 50'000'000;
  int cloud_weight_max = 3;
  // Host -> shard assignment. Empty = round-robin by creation index (the
  // historical partition). A non-empty placement must have exactly one
  // entry per host; it becomes part of the experiment definition and its
  // label is stamped into the merged trace (sharded_sim.h).
  ShardPlacement placement;
  int visits_per_generation = 2;
  int generations = 2;  // one churn (terminate + replace) per slot
  // Reference-mode toggles (flow waterfill / KSM rescan), for wall-clock
  // comparison benches. Virtual-time results are identical either way.
  bool full_recompute = false;
  SimDuration ksm_interval = Seconds(2);
  // Virtual time at which each host snapshots its KSM content histogram
  // for the cross-host reconcile (shard-local event, so it is exact and
  // thread-count-invariant). Mid-run by default: reconciling at the end
  // would see only wiped memory, since every nym terminates.
  SimDuration ksm_snapshot_time = Seconds(30);
  // Per-cluster test Tor deployment; small so flow competition stays
  // host-local (the real contention is each host's uplink anyway).
  TorNetwork::Config tor = MakeClusterTorConfig();

  // Warm start: pre-built per-shard base images (restored from a
  // src/store/image_checkpoint). Used when the count matches the shard
  // plan; otherwise the fleet cold-builds one image per shard. Image
  // content is a pure function of (name, seed, size) either way, so the
  // run's event stream — and trace bytes — do not depend on which path
  // supplied the images.
  std::vector<std::shared_ptr<BaseImage>> images;

  static TorNetwork::Config MakeClusterTorConfig() {
    TorNetwork::Config config;
    config.relay_count = 6;
    config.guard_count = 2;
    config.exit_count = 2;
    return config;
  }
};

class ShardedFleet {
 public:
  // Builds every cluster up front (constructors only schedule shard-local
  // events). `sharded` must outlive the fleet; its plan fixes the host
  // partition.
  ShardedFleet(ShardedSimulation& sharded, const FleetOptions& options, uint64_t seed);
  ~ShardedFleet();

  // Spawns every slot's first nym and drives the executor to quiescence.
  void Run();

  // --- Scenario hooks (src/fuzz) ---------------------------------------
  // Schedules a VM crash + recovery on `host` at virtual time `at`: the
  // first slot on that host with a live nym is crashed where it stands and
  // rebooted through NymManager::RecoverNym. Shard-local (the event runs on
  // the owning shard's loop), so thread count still cannot change a byte.
  // Call before Run().
  void ScheduleVmCrash(int host, SimTime at);

  // Per-host internals for scenario fault schedules (uplink flaps, relay
  // crashes). Only shard-local events may touch them while running.
  HostMachine& host_machine(int host) { return *clusters_[static_cast<size_t>(host)]->host; }
  TorNetwork& tor(int host) { return *clusters_[static_cast<size_t>(host)]->tor; }

  // Post-run aggregates, summed over shards in shard-id order.
  uint64_t visits() const;
  uint64_t churns() const;
  // Crossed topology: completed cloud fetch rounds (one request + one reply
  // crossing shards each).
  uint64_t cloud_fetches() const;
  // Observed per-host activity (visits + cloud fetches + churns) — the
  // weight vector BalancedPlacement bin-packs on. Meaningful after Run();
  // hosts that did nothing report weight 1 so the pack stays total.
  std::vector<double> HostWeights() const;
  // Fault-path aggregates: failed visits that were retried, failed creates
  // that were retried, slots abandoned after the create-retry budget, and
  // VM crash/recovery cycles executed by ScheduleVmCrash.
  uint64_t visit_failures() const;
  uint64_t create_failures() const;
  uint64_t slots_abandoned() const;
  uint64_t vm_recoveries() const;
  uint64_t events_executed() const;
  uint64_t waterfills_full() const;
  uint64_t waterfills_component() const;
  uint64_t waterfill_skips() const;
  uint64_t ksm_memories_merged() const;
  uint64_t ksm_memories_skipped() const;
  uint64_t ksm_pages_sharing() const;

  // Deterministic cross-host KSM reconcile over the per-host histograms
  // snapshotted at ksm_snapshot_time, in host creation order.
  FleetKsmStats ReconcileKsm() const;

  int host_count() const { return static_cast<int>(clusters_.size()); }

  // Per-host access for checkpoint/restore (src/core/fleet_checkpoint).
  NymManager& manager(int host) { return *clusters_[static_cast<size_t>(host)]->manager; }
  int shard_of_host(int host) const { return clusters_[static_cast<size_t>(host)]->shard; }

 private:
  struct Cluster {
    int shard = 0;
    // Crossed topology: seeded per-host workload heterogeneity (visits per
    // generation scale by this), and the observed activity count feeding
    // HostWeights(). Both shard-local.
    int visit_multiplier = 1;
    uint64_t weight_events = 0;
    std::unique_ptr<HostMachine> host;
    std::unique_ptr<TorNetwork> tor;
    std::unique_ptr<NymManager> manager;
    std::unique_ptr<Website> site;
    // Captured at ksm_snapshot_time by a shard-local event.
    std::map<uint64_t, uint64_t> ksm_snapshot;
  };

  // One cross-shard cloud edge: shard s's nyms fetch from the gateway
  // hosted on shard (s+1) % K over `channel`. Sinks are owned here; the
  // channel belongs to the executor.
  struct CloudEdge {
    CrossShardChannel* channel = nullptr;
    std::unique_ptr<PacketSink> gateway;  // lives in the server shard
    std::unique_ptr<PacketSink> client;   // lives in the client shard
  };

  struct Slot {
    int cluster = 0;
    Nym* nym = nullptr;
    int visits_done = 0;
    int generation = 0;
    // Consecutive failed visits / waits for a recovering VM; resets on the
    // next successful visit. Exceeding the budget abandons the slot so a
    // pathological fault schedule still quiesces.
    int visit_retries = 0;
    int create_retries = 0;
    // Set by FinishSlot/AbandonSlot; late callbacks (a retry timer, a VM
    // recovery) check it and stand down instead of reviving the slot.
    bool finished = false;
    // Drive-chain generation. A VM crash severs the slot's in-flight visit
    // chain (the nym's deferred work evaporates at its lifetime guards, so
    // no failure callback ever comes back); the crash bumps the epoch and
    // the recovery callback starts the one replacement chain. Continuations
    // carry the epoch they belong to and stand down when stale, so a timer
    // surviving from the severed chain can never double-drive the slot.
    int epoch = 0;
  };

  // Everything a worker thread mutates while running one shard's epoch.
  struct ShardState {
    Prng think_prng;
    int total_slots = 0;
    int finished_slots = 0;
    uint64_t visits = 0;
    uint64_t churns = 0;
    uint64_t cloud_fetches = 0;
    uint64_t visit_failures = 0;
    uint64_t create_failures = 0;
    uint64_t slots_abandoned = 0;
    uint64_t vm_recoveries = 0;

    explicit ShardState(uint64_t seed) : think_prng(seed) {}
  };

  Cluster& ClusterOf(int slot) { return *clusters_[static_cast<size_t>(slots_[static_cast<size_t>(slot)].cluster)]; }
  ShardState& ShardOf(int slot) { return *shard_states_[static_cast<size_t>(ClusterOf(slot).shard)]; }

  void SpawnNym(int slot);
  void VisitNext(int slot, int epoch);
  // Post-visit step: crossed fleets interleave a windowed cloud fetch
  // before Advance; isolated fleets go straight to Advance.
  void NextAction(int slot, int epoch);
  void StartCloudFetch(int slot, int epoch);
  void SendCloudFetch(int slot, int epoch);
  void HandleCloudReply(const std::string& annotation);
  void Advance(int slot, int epoch);
  int VisitTarget(int slot);
  void FinishSlot(int slot);
  // Writes the slot off (retry budget spent, or recovery failed): tears
  // down any live nym best-effort and retires the slot so Run() quiesces.
  void AbandonSlot(int slot);
  SimDuration ThinkTime(ShardState& shard);

  ShardedSimulation& sharded_;
  FleetOptions options_;
  bool crossed_ = false;  // kCrossed effective (needs >= 2 shards)
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<ShardState>> shard_states_;
  std::vector<CloudEdge> cloud_edges_;  // index = client shard
};

}  // namespace nymix

#endif  // SRC_CORE_FLEET_H_
