#include "src/core/nym.h"

namespace nymix {

std::string_view NymModeName(NymMode mode) {
  switch (mode) {
    case NymMode::kEphemeral:
      return "ephemeral";
    case NymMode::kPersistent:
      return "persistent";
    case NymMode::kPreConfigured:
      return "pre-configured";
  }
  return "?";
}

Nym::Nym(std::string name, NymMode mode, Simulation& sim)
    : name_(std::move(name)), mode_(mode), sim_(sim) {}

Nym::~Nym() = default;

void Nym::InstallPolicy() {
  NYMIX_CHECK(anon_vm_ != nullptr && comm_vm_ != nullptr);
  NYMIX_CHECK(wire_ != nullptr && vm_uplink_ != nullptr);

  // CommVM: the policy core. Packets arriving on the wire are raw AnonVM
  // traffic — the CommVM never routes them anywhere; applications reach the
  // network exclusively through the anonymizer's own protocol (Fetch), so
  // a compromised AnonVM cannot address the LAN, the host, or other nyms.
  // Packets arriving on the vm uplink are anonymizer control replies.
  comm_vm_->SetPacketHandler([this](const Packet& packet, Link& link, bool from_a) {
    (void)from_a;
    if (&link == wire_) {
      ++leak_packets_dropped_;
      return;
    }
    if (&link == vm_uplink_ && anonymizer_ != nullptr) {
      anonymizer_->HandlePacket(packet);
    }
  });

  // AnonVM: only wire traffic is expected; anything else is counted and
  // dropped (defense in depth — there is no other NIC to receive on).
  anon_vm_->SetPacketHandler([this](const Packet& packet, Link& link, bool from_a) {
    (void)packet;
    (void)from_a;
    if (&link != wire_) {
      ++anonvm_unsolicited_dropped_;
    }
  });
}

}  // namespace nymix
