#include "src/core/sanivm.h"

namespace nymix {

SaniService::SaniService(NymManager& manager)
    : manager_(manager), prng_(manager.sim().prng().Fork("sanivm")) {}

void SaniService::Start(std::function<void(SimTime)> ready) {
  NYMIX_CHECK_MSG(sani_vm_ == nullptr, "SaniVM already started");
  auto vm = manager_.host().CreateVm(
      VmConfig::SaniVm("sani-vm"), manager_.base_image(),
      manager_.ConfigLayerFor(VmRole::kSaniVm, AnonymizerKind::kIncognito));
  NYMIX_CHECK_MSG(vm.ok(), vm.status().ToString().c_str());
  sani_vm_ = *vm;
  // Deliberately no NICs: the SaniVM is non-networked by construction.
  sani_vm_->Boot(std::move(ready));
}

Status SaniService::MountHostFilesystem(const std::string& label,
                                        std::shared_ptr<const MemFs> fs) {
  if (sani_vm_ == nullptr) {
    return FailedPreconditionError("SaniVM not started");
  }
  if (mounts_.count(label) > 0) {
    return AlreadyExistsError("mount exists: " + label);
  }
  mounts_[label] = std::move(fs);
  return OkStatus();
}

std::vector<std::string> SaniService::MountedFilesystems() const {
  std::vector<std::string> labels;
  labels.reserve(mounts_.size());
  for (const auto& [label, fs] : mounts_) {
    (void)fs;
    labels.push_back(label);
  }
  return labels;
}

Result<std::vector<DirEntry>> SaniService::ListHostDirectory(const std::string& label,
                                                             const std::string& path) const {
  auto it = mounts_.find(label);
  if (it == mounts_.end()) {
    return NotFoundError("no such mount: " + label);
  }
  return it->second->List(path);
}

Result<Blob> SaniService::ReadHostFile(const std::string& label,
                                       const std::string& path) const {
  auto it = mounts_.find(label);
  if (it == mounts_.end()) {
    return NotFoundError("no such mount: " + label);
  }
  return it->second->ReadFile(path);
}

Status SaniService::RegisterNym(Nym& nym) {
  if (sani_vm_ == nullptr) {
    return FailedPreconditionError("SaniVM not started");
  }
  if (nym_shares_.count(nym.name()) > 0) {
    return AlreadyExistsError("nym already registered: " + nym.name());
  }
  auto share = std::make_shared<MemFs>();
  // The share is VirtFS-mounted in both the SaniVM and the nym's AnonVM,
  // with the hypervisor as the intermediary (§4.3).
  NYMIX_RETURN_IF_ERROR(sani_vm_->AttachShare("transfer-" + nym.name(), share));
  Status attach = nym.anon_vm()->AttachShare("incoming", share);
  if (!attach.ok()) {
    NYMIX_CHECK(sani_vm_->DetachShare("transfer-" + nym.name()).ok());
    return attach;
  }
  nym_shares_[nym.name()] = std::move(share);
  return OkStatus();
}

Status SaniService::UnregisterNym(Nym& nym) {
  auto it = nym_shares_.find(nym.name());
  if (it == nym_shares_.end()) {
    return NotFoundError("nym not registered: " + nym.name());
  }
  NYMIX_CHECK(sani_vm_->DetachShare("transfer-" + nym.name()).ok());
  if (nym.anon_vm() != nullptr) {
    (void)nym.anon_vm()->DetachShare("incoming");
  }
  nym_shares_.erase(it);
  return OkStatus();
}

Status SaniService::StageForNym(Nym& nym, const std::string& label,
                                const std::string& host_path) {
  if (nym_shares_.count(nym.name()) == 0) {
    return FailedPreconditionError("nym has no transfer share: " + nym.name());
  }
  NYMIX_ASSIGN_OR_RETURN(Blob blob, ReadHostFile(label, host_path));
  std::string pending = "/transfer/" + nym.name() + "/pending/" + BasenameOf(host_path);
  return sani_vm_->disk().WriteFile(pending, std::move(blob));
}

std::vector<std::string> SaniService::PendingFiles(const Nym& nym) const {
  std::vector<std::string> out;
  auto entries = sani_vm_->disk().fs().List("/transfer/" + nym.name() + "/pending");
  if (!entries.ok()) {
    return out;
  }
  for (const auto& entry : *entries) {
    if (!entry.is_directory) {
      out.push_back(entry.name);
    }
  }
  return out;
}

std::vector<Result<SaniService::TransferOutcome>> SaniService::ProcessPending(
    Nym& nym, const ScrubOptions& options) {
  std::vector<Result<TransferOutcome>> outcomes;
  auto share_it = nym_shares_.find(nym.name());
  if (share_it == nym_shares_.end()) {
    outcomes.push_back(FailedPreconditionError("nym has no transfer share: " + nym.name()));
    return outcomes;
  }
  std::string pending_dir = "/transfer/" + nym.name() + "/pending";
  for (const std::string& name : PendingFiles(nym)) {
    std::string pending_path = pending_dir + "/" + name;
    auto blob = sani_vm_->disk().fs().ReadFile(pending_path);
    if (!blob.ok()) {
      outcomes.push_back(blob.status());
      continue;
    }
    if (blob->is_synthetic()) {
      outcomes.push_back(Result<TransferOutcome>(
          InvalidArgumentError("cannot scrub synthetic bulk content: " + name)));
      continue;
    }
    auto scrubbed = ScrubFile(blob->bytes(), options, prng_);
    if (!scrubbed.ok()) {
      outcomes.push_back(scrubbed.status());
      continue;  // stays pending for the user to inspect
    }
    TransferOutcome outcome;
    outcome.analysis = scrubbed->before;
    outcome.actions = scrubbed->actions;
    outcome.guest_path = "/" + name;
    Status write =
        share_it->second->WriteFile(outcome.guest_path, Blob::FromBytes(scrubbed->data));
    if (!write.ok()) {
      outcomes.push_back(write);
      continue;
    }
    NYMIX_CHECK(sani_vm_->disk().fs().Unlink(pending_path).ok());
    ++transfers_completed_;
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<RiskReport> SaniService::AnalyzeHostFile(const std::string& label,
                                                const std::string& path) const {
  NYMIX_ASSIGN_OR_RETURN(Blob blob, ReadHostFile(label, path));
  if (blob.is_synthetic()) {
    return InvalidArgumentError("cannot analyze synthetic bulk content");
  }
  return AnalyzeFile(blob.bytes());
}

Result<SaniService::TransferOutcome> SaniService::TransferToNym(Nym& nym,
                                                                const std::string& label,
                                                                const std::string& host_path,
                                                                const ScrubOptions& options) {
  auto share_it = nym_shares_.find(nym.name());
  if (share_it == nym_shares_.end()) {
    return FailedPreconditionError("nym has no transfer share: " + nym.name());
  }
  NYMIX_ASSIGN_OR_RETURN(Blob blob, ReadHostFile(label, host_path));
  if (blob.is_synthetic()) {
    return InvalidArgumentError("cannot scrub synthetic bulk content");
  }
  NYMIX_ASSIGN_OR_RETURN(ScrubResult scrubbed, ScrubFile(blob.bytes(), options, prng_));

  TransferOutcome outcome;
  outcome.analysis = scrubbed.before;
  outcome.actions = scrubbed.actions;
  // Within the share the file sits at its basename; the AnonVM sees the
  // share mounted at /incoming.
  outcome.guest_path = "/" + BasenameOf(host_path);
  NYMIX_RETURN_IF_ERROR(
      share_it->second->WriteFile(outcome.guest_path, Blob::FromBytes(scrubbed.data)));
  ++transfers_completed_;
  return outcome;
}

}  // namespace nymix
