// NymManager: Nymix's most crucial component (§3.1) — creates, boots,
// saves, restores, and destroys nymboxes; binds each pseudonym's client
// state, anonymizer state and credentials to its nym; and enforces the
// lifecycle rules that make nyms ephemeral by default.
//
// Figure 7's phases fall directly out of CreateNym/LoadNym: VM boot,
// anonymizer start, and (for quasi-persistent loads) the one-shot
// ephemeral nym that fetches the encrypted state from the cloud.
#ifndef SRC_CORE_NYM_MANAGER_H_
#define SRC_CORE_NYM_MANAGER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/anon/chain.h"
#include "src/anon/dissent.h"
#include "src/anon/incognito.h"
#include "src/anon/sweet.h"
#include "src/anon/tor.h"
#include "src/core/nym.h"
#include "src/storage/cloud.h"
#include "src/storage/local_store.h"

namespace nymix {

struct NymStartupReport {
  SimDuration ephemeral_nym = 0;     // cloud loads only: fetch + decrypt
  SimDuration boot_vm = 0;           // until both VMs run
  SimDuration start_anonymizer = 0;  // bootstrap (Tor: directory + circuit)

  SimDuration Total() const { return ephemeral_nym + boot_vm + start_anonymizer; }
};

struct SaveReceipt {
  uint32_t sequence = 0;
  uint64_t logical_size = 0;    // the Figure 6 data point
  uint64_t sealed_bytes = 0;
  double anonvm_fraction = 0.0;  // ~0.85 in §5.3
  SimDuration duration = 0;
};

class NymManager {
 public:
  struct Config {
    // §3.4 extension: verify base-image blocks against the Merkle root
    // before using the image for a new nym (full check, cached per image
    // revision).
    bool verify_base_image = true;
    // Archive pipeline throughput (serialize+compress+encrypt), bytes/s.
    uint64_t archive_processing_bps = 50 * kMiB;
  };

  NymManager(HostMachine& host, std::shared_ptr<BaseImage> image, TorNetwork* tor,
             DissentServers* dissent)
      : NymManager(host, std::move(image), tor, dissent, Config{}) {}
  NymManager(HostMachine& host, std::shared_ptr<BaseImage> image, TorNetwork* tor,
             DissentServers* dissent, Config config);
  ~NymManager();

  struct CreateOptions {
    AnonymizerKind anonymizer = AnonymizerKind::kTor;
    NymMode mode = NymMode::kEphemeral;
    // Deterministic guard selection (§3.5); usually DeriveGuardSeed(...).
    std::optional<uint64_t> guard_seed;
    // Chain composition (kChained): inner wrapped by outer.
    AnonymizerKind chain_inner = AnonymizerKind::kDissent;
    AnonymizerKind chain_outer = AnonymizerKind::kTor;
    // Leak plant (src/adversary): forwarded to TorClientConfig::exit_pin_seed
    // so every nym sharing the key reuses the same exit per destination —
    // the "reused circuit" isolation failure. Never set on clean paths.
    std::optional<uint64_t> circuit_reuse_key;
  };

  using CreateCallback = std::function<void(Result<Nym*>, NymStartupReport)>;

  // Boots a fresh nym from the pristine base state.
  void CreateNym(const std::string& name, const CreateOptions& options, CreateCallback done);

  // Tears a nym down: wipes VM memory, discards writable disks, removes
  // the VMs from the host. The pseudonym never existed (§3.4).
  Status TerminateNym(Nym* nym);

  // --- Fault injection and recovery ------------------------------------
  // Crashes both of the nym's VMs where they stand (no secure wipe — a
  // crash is precisely the case where nothing gets to clean up).
  void InjectCrash(Nym& nym);

  // Syncs the anonymizer's state (entry guards, cached consensus) into the
  // CommVM's writable layer, the way tor periodically rewrites its state
  // file. A later RecoverNym picks this up even though the crash itself
  // never got to save anything.
  Status CheckpointNym(Nym& nym);

  // Rebuilds a crashed (or live) nym from its own writable disk layers:
  // snapshots both layers and the saved anonymizer state, terminates the
  // wreck, then wires and boots a replacement under the same name and
  // options. Guard choice survives because the anonymizer re-derives it
  // from the restored state (§3.5's intersection-attack defence).
  void RecoverNym(Nym* nym, CreateCallback done);

  // Rebuilds a nym from externally captured state — the whole-host restore
  // path (src/core/fleet_checkpoint). Unlike RecoverNym it does not need
  // the wreck to still exist: any same-named nym is torn down first, then
  // a replacement is wired and booted with the given writable layers and
  // save sequence. Guard choice survives exactly as in RecoverNym, by the
  // anonymizer re-deriving it from the restored CommVM state.
  void RestoreNymFromState(const std::string& name, const CreateOptions& options,
                           std::unique_ptr<MemFs> anon_writable,
                           std::unique_ptr<MemFs> comm_writable, uint32_t next_sequence,
                           CreateCallback done);

  // Creation options recorded for a live nym, or null. Checkpointing reads
  // these so a restore can re-wire the nym exactly as it was created.
  const CreateOptions* FindOptions(const std::string& name) const;

  std::vector<Nym*> nyms() const;
  Nym* FindNym(const std::string& name) const;
  HostMachine& host() { return host_; }
  Simulation& sim() { return host_.sim(); }
  const std::shared_ptr<BaseImage>& base_image() const { return image_; }

  // --- Quasi-persistent nyms (§3.5) -----------------------------------
  // Pauses the nym, archives both writable layers (anonymizer state
  // included), resumes, and uploads through the nym's own anonymizer.
  void SaveNymToCloud(Nym& nym, CloudService& cloud, const std::string& account,
                      const std::string& account_password,
                      const std::string& archive_password,
                      std::function<void(Result<SaveReceipt>)> done);

  // Local variant ("either on different local disks or USB drives").
  void SaveNymToLocal(Nym& nym, LocalStore& store, const std::string& password,
                      std::function<void(Result<SaveReceipt>)> done);

  // Starts a one-shot ephemeral nym, downloads and decrypts the archive,
  // terminates the loader, then boots the restored nym.
  void LoadNymFromCloud(const std::string& name, CloudService& cloud,
                        const std::string& account, const std::string& account_password,
                        const std::string& archive_password, const CreateOptions& options,
                        CreateCallback done);

  void LoadNymFromLocal(const std::string& name, LocalStore& store,
                        const std::string& password, const CreateOptions& options,
                        CreateCallback done);

  // Registers a pseudonymous account at the cloud provider through the
  // nym's anonymizer (the §3.5 workflow's login step).
  void CreateCloudAccount(Nym& nym, CloudService& cloud, const std::string& account,
                          const std::string& password, std::function<void(Status)> done);

  // Configuration layer for a role (masks rc.local etc., §3.4/§4.2).
  std::shared_ptr<const MemFs> ConfigLayerFor(VmRole role, AnonymizerKind kind);

 private:
  struct RestoredState {
    std::unique_ptr<MemFs> anon_writable;
    std::unique_ptr<MemFs> comm_writable;
    uint32_t next_sequence = 0;
  };

  // Wires links, VMs, policy and anonymizer; no boot yet.
  Result<Nym*> WireNym(const std::string& name, const CreateOptions& options);
  void BootNym(Nym* nym, RestoredState* restored, SimDuration ephemeral_phase,
               CreateCallback done);
  std::unique_ptr<Anonymizer> MakeAnonymizer(const CreateOptions& options,
                                             const ClientAttachment& attachment);
  Result<NymArchive> ArchiveNym(Nym& nym, const std::string& password);
  void LoadCommon(const std::string& name, const std::string& password,
                  const CreateOptions& options, Result<NymArchive> archive,
                  SimTime load_started, Status auth, CreateCallback done);

  HostMachine& host_;
  std::shared_ptr<BaseImage> image_;
  TorNetwork* tor_;
  DissentServers* dissent_;
  Config config_;
  std::vector<std::unique_ptr<Nym>> nyms_;
  // Creation options per live nym, so RecoverNym can rebuild a crashed nym
  // exactly as it was wired (string-keyed: deterministic iteration).
  std::map<std::string, CreateOptions> options_by_name_;
  uint64_t next_nym_seed_ = 1;
  int64_t last_verified_mutation_ = -1;
};

}  // namespace nymix

#endif  // SRC_CORE_NYM_MANAGER_H_
