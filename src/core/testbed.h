// Testbed: the §5.2 evaluation deployment in one object — an i7/16 GB host
// behind a 10 Mbit / 80 ms RTT shaped uplink, a test Tor deployment,
// Dissent servers, the paper's eight websites, a cloud storage provider,
// the DeterLab kernel mirror, and a NymManager. Examples and every bench
// binary build on this.
#ifndef SRC_CORE_TESTBED_H_
#define SRC_CORE_TESTBED_H_

#include "src/core/installed_os.h"
#include "src/core/sanivm.h"
#include "src/core/validation.h"
#include "src/workload/downloader.h"
#include "src/workload/peacekeeper.h"

namespace nymix {

class Testbed {
 public:
  explicit Testbed(uint64_t seed = 1)
      : sim_(seed),
        host_(sim_, HostConfig{}),
        tor_(sim_),
        dissent_(sim_),
        image_(BaseImage::CreateDistribution("nymix", 42, 64 * kMiB)),
        manager_(host_, image_, &tor_, &dissent_),
        cloud_(sim_, "drop.example.com"),
        mirror_(sim_),
        sites_(sim_, PaperWebsiteProfiles()) {}

  Simulation& sim() { return sim_; }
  HostMachine& host() { return host_; }
  TorNetwork& tor() { return tor_; }
  DissentServers& dissent() { return dissent_; }
  const std::shared_ptr<BaseImage>& image() { return image_; }
  NymManager& manager() { return manager_; }
  CloudService& cloud() { return cloud_; }
  KernelMirror& mirror() { return mirror_; }
  WebsiteDirectory& sites() { return sites_; }

  // Blocking helpers (drive the event loop until the async op completes).
  Nym* CreateNymBlocking(const std::string& name, NymManager::CreateOptions options = {},
                         NymStartupReport* report = nullptr) {
    Nym* created = nullptr;
    bool done = false;
    manager_.CreateNym(name, options, [&](Result<Nym*> nym, NymStartupReport r) {
      NYMIX_CHECK_MSG(nym.ok(), nym.status().ToString().c_str());
      created = *nym;
      if (report != nullptr) {
        *report = r;
      }
      done = true;
    });
    sim_.RunUntil([&] { return done; });
    return created;
  }

  Result<SimTime> VisitBlocking(Nym* nym, Website& site) {
    Result<SimTime> result = InternalError("pending");
    bool done = false;
    nym->browser()->Visit(site, [&](Result<SimTime> r) {
      result = std::move(r);
      done = true;
    });
    sim_.RunUntil([&] { return done; });
    return result;
  }

  // Crash-recovery helper: snapshots disks, terminates the wreck, boots
  // the replacement under the same name/options.
  Result<Nym*> RecoverNymBlocking(Nym* nym, NymStartupReport* report = nullptr) {
    Result<Nym*> result = InternalError("pending");
    bool done = false;
    manager_.RecoverNym(nym, [&](Result<Nym*> recovered, NymStartupReport r) {
      result = std::move(recovered);
      if (report != nullptr) {
        *report = r;
      }
      done = true;
    });
    sim_.RunUntil([&] { return done; });
    return result;
  }

  Result<SaveReceipt> SaveBlocking(Nym* nym, const std::string& account,
                                   const std::string& account_password,
                                   const std::string& archive_password) {
    Result<SaveReceipt> result = InternalError("pending");
    bool done = false;
    manager_.SaveNymToCloud(*nym, cloud_, account, account_password, archive_password,
                            [&](Result<SaveReceipt> r) {
                              result = std::move(r);
                              done = true;
                            });
    sim_.RunUntil([&] { return done; });
    return result;
  }

  Result<Nym*> LoadBlocking(const std::string& name, const std::string& account,
                            const std::string& account_password,
                            const std::string& archive_password,
                            NymManager::CreateOptions options = {},
                            NymStartupReport* report = nullptr) {
    Result<Nym*> result = InternalError("pending");
    bool done = false;
    manager_.LoadNymFromCloud(name, cloud_, account, account_password, archive_password,
                              options, [&](Result<Nym*> nym, NymStartupReport r) {
                                result = std::move(nym);
                                if (report != nullptr) {
                                  *report = r;
                                }
                                done = true;
                              });
    sim_.RunUntil([&] { return done; });
    return result;
  }

 private:
  Simulation sim_;
  HostMachine host_;
  TorNetwork tor_;
  DissentServers dissent_;
  std::shared_ptr<BaseImage> image_;
  NymManager manager_;
  CloudService cloud_;
  KernelMirror mirror_;
  WebsiteDirectory sites_;
};

}  // namespace nymix

#endif  // SRC_CORE_TESTBED_H_
