// §5.1 validation harness: the leak checks the paper performed with
// Wireshark and hand-crafted probe packets, as reusable functions shared
// by the test suite and the bench/validation binary.
#ifndef SRC_CORE_VALIDATION_H_
#define SRC_CORE_VALIDATION_H_

#include "src/core/nym_manager.h"

namespace nymix {

struct LeakProbeResult {
  size_t probes_sent = 0;
  size_t responses_received = 0;  // MUST be zero for a sound nymbox
  uint64_t dropped_by_commvm = 0;
};

// Fires raw packets from `from`'s AnonVM at the local network, the host,
// the Internet, and `other`'s VMs, then reports whether anything answered
// ("as if the host did not exist", §5.1). `other` may be null.
LeakProbeResult ProbeAnonVmIsolation(Simulation& sim, HostMachine& host, Nym& from, Nym* other);

// Checks the uplink capture against the §5.1 expectation: nothing but
// DHCP and anonymizer traffic, and no guest/private source address.
struct CaptureAudit {
  bool only_dhcp_and_anonymizers = true;
  bool no_private_sources = true;
  std::map<std::string, size_t> histogram;

  bool Passed() const { return only_dhcp_and_anonymizers && no_private_sources; }
};
CaptureAudit AuditUplinkCapture(const PacketCapture& capture);

// A deliberately chatty LAN device: answers every probe it hears. Used as
// the vacuity check for the isolation tests — attached to a direct link it
// demonstrably responds, so "no responses from a nymbox" means the probes
// were dropped, not that nobody would have answered.
class EchoResponder : public PacketSink {
 public:
  void OnPacket(const Packet& packet, Link& link, bool from_a) override;

  size_t probes_heard() const { return probes_heard_; }

 private:
  size_t probes_heard_ = 0;
};

}  // namespace nymix

#endif  // SRC_CORE_VALIDATION_H_
