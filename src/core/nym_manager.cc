#include "src/core/nym_manager.h"

#include <algorithm>

namespace nymix {

namespace {

// Copies every file from one MemFs into another (restore path).
void CopyInto(const MemFs& source, MemFs& destination) {
  source.ForEachFile([&destination](const std::string& path, const Blob& blob) {
    NYMIX_CHECK(destination.WriteFile(path, blob).ok());
  });
}

}  // namespace

NymManager::NymManager(HostMachine& host, std::shared_ptr<BaseImage> image, TorNetwork* tor,
                       DissentServers* dissent, Config config)
    : host_(host), image_(std::move(image)), tor_(tor), dissent_(dissent), config_(config) {
  NYMIX_CHECK(image_ != nullptr);
}

NymManager::~NymManager() = default;

std::shared_ptr<const MemFs> NymManager::ConfigLayerFor(VmRole role, AnonymizerKind kind) {
  auto layer = std::make_shared<MemFs>();
  std::string rc;
  switch (role) {
    case VmRole::kAnonVm:
      rc = "#!/bin/sh\n/usr/bin/chromium --proxy=comm-vm\nexec window-manager\n";
      NYMIX_CHECK(layer->WriteFile("/etc/network/interfaces",
                                   Blob::FromString("auto eth0  # wire to CommVM only\n"))
                      .ok());
      break;
    case VmRole::kCommVm:
      rc = std::string("#!/bin/sh\nexec /usr/bin/") +
           (kind == AnonymizerKind::kTor          ? "tor"
            : kind == AnonymizerKind::kDissent    ? "dissent"
            : kind == AnonymizerKind::kSweet      ? "sweet"
            : kind == AnonymizerKind::kChained    ? "dissent-then-tor"
                                                  : "iptables-masquerade") +
           "\n";
      NYMIX_CHECK(layer->WriteFile("/etc/network/interfaces",
                                   Blob::FromString("auto eth0 eth1  # wire + NAT uplink\n"))
                      .ok());
      break;
    case VmRole::kSaniVm:
      rc = "#!/bin/sh\nexec /usr/bin/mat --watch /transfer\n";
      NYMIX_CHECK(layer->WriteFile("/etc/network/interfaces",
                                   Blob::FromString("# no network devices\n"))
                      .ok());
      break;
    case VmRole::kInstalledOs:
      rc = "# installed OS boots its own init\n";
      break;
  }
  NYMIX_CHECK(layer->WriteFile("/etc/rc.local", Blob::FromString(rc)).ok());
  return layer;
}

std::unique_ptr<Anonymizer> NymManager::MakeAnonymizer(const CreateOptions& options,
                                                       const ClientAttachment& attachment) {
  // Derives from the simulation's seeded stream so distinct experiment
  // seeds yield distinct circuits/cookies while a fixed seed reproduces
  // them exactly.
  uint64_t seed = host_.sim().prng().NextU64() ^ Mix64(next_nym_seed_ * 7919 + 13);
  switch (options.anonymizer) {
    case AnonymizerKind::kIncognito:
      return std::make_unique<IncognitoVpn>(attachment);
    case AnonymizerKind::kTor: {
      NYMIX_CHECK_MSG(tor_ != nullptr, "no Tor network deployed");
      TorClientConfig tor_config;
      tor_config.exit_pin_seed = options.circuit_reuse_key;
      auto client = std::make_unique<TorClient>(attachment, *tor_, seed, tor_config);
      if (options.guard_seed.has_value()) {
        client->SeedGuardSelection(*options.guard_seed);
      }
      return client;
    }
    case AnonymizerKind::kDissent:
      NYMIX_CHECK_MSG(dissent_ != nullptr, "no Dissent servers deployed");
      return std::make_unique<DissentClient>(attachment, *dissent_, seed);
    case AnonymizerKind::kSweet:
      return std::make_unique<SweetTunnel>(attachment, next_nym_seed_);
    case AnonymizerKind::kChained: {
      CreateOptions inner_options = options;
      inner_options.anonymizer = options.chain_inner;
      CreateOptions outer_options = options;
      outer_options.anonymizer = options.chain_outer;
      auto inner = MakeAnonymizer(inner_options, attachment);
      auto outer = MakeAnonymizer(outer_options, attachment);
      return std::make_unique<ChainedAnonymizer>(std::move(inner), std::move(outer));
    }
  }
  NYMIX_CHECK_MSG(false, "unknown anonymizer kind");
  return nullptr;
}

Result<Nym*> NymManager::WireNym(const std::string& name, const CreateOptions& options) {
  if (FindNym(name) != nullptr) {
    return AlreadyExistsError("nym exists: " + name);
  }
  // §3.4 extension: check every shared base-image block against the
  // well-known Merkle root before deriving yet another VM from it. The
  // result is cached until the on-disk image changes.
  if (config_.verify_base_image &&
      last_verified_mutation_ != static_cast<int64_t>(image_->mutation_count())) {
    if (!image_->VerifyAllBlocks()) {
      // Only on failure is the per-leaf scan worth its cost: find the
      // first tampered block so the error names it.
      for (uint64_t block = 0; block < image_->block_count(); ++block) {
        if (!image_->VerifyBlock(block)) {
          return FailedPreconditionError("base image block " + std::to_string(block) +
                                         " failed Merkle verification; refusing to start nym");
        }
      }
      return FailedPreconditionError(
          "base image failed Merkle verification; refusing to start nym");
    }
    last_verified_mutation_ = static_cast<int64_t>(image_->mutation_count());
  }

  auto nym = std::make_unique<Nym>(name, options.mode, host_.sim());
  Nym* raw = nym.get();

  // The private virtual wire: "a virtual wire connecting the two machines
  // or a host-only network" (§4.2).
  raw->wire_ = host_.sim().CreateLink(name + "-wire", Micros(50), 1'000'000'000ULL);
  raw->vm_uplink_ = host_.CreateVmUplink(name + "-uplink");

  auto anon_vm = host_.CreateVm(VmConfig::AnonVm(name + "-anon"), image_,
                                ConfigLayerFor(VmRole::kAnonVm, options.anonymizer));
  if (!anon_vm.ok()) {
    return anon_vm.status();
  }
  auto comm_vm = host_.CreateVm(VmConfig::CommVm(name + "-comm"), image_,
                                ConfigLayerFor(VmRole::kCommVm, options.anonymizer));
  if (!comm_vm.ok()) {
    NYMIX_CHECK(host_.DestroyVm(*anon_vm).ok());
    return comm_vm.status();
  }
  raw->anon_vm_ = *anon_vm;
  raw->comm_vm_ = *comm_vm;
  raw->anon_vm_->AttachNic(raw->wire_, /*side_a=*/true);
  raw->comm_vm_->AttachNic(raw->wire_, /*side_a=*/false);
  raw->comm_vm_->AttachNic(raw->vm_uplink_, /*side_a=*/true);
  raw->InstallPolicy();

  ClientAttachment attachment;
  attachment.sim = &host_.sim();
  attachment.vm_uplink = raw->vm_uplink_;
  attachment.client_links = {raw->wire_, raw->vm_uplink_, host_.uplink()};
  attachment.host_public_ip = host_.public_ip();
  ++next_nym_seed_;
  raw->anonymizer_ = MakeAnonymizer(options, attachment);
  raw->dns_ = std::make_unique<DnsProxy>(host_.sim(), raw->anonymizer_.get(),
                                         DnsProxy::TransportFor(options.anonymizer));

  nyms_.push_back(std::move(nym));
  options_by_name_[name] = options;
  return raw;
}

void NymManager::BootNym(Nym* nym, RestoredState* restored, SimDuration ephemeral_phase,
                         CreateCallback done) {
  if (restored != nullptr) {
    CopyInto(*restored->anon_writable, nym->anon_vm_->disk().fs().writable_mutable());
    CopyInto(*restored->comm_writable, nym->comm_vm_->disk().fs().writable_mutable());
    nym->save_sequence_ = restored->next_sequence;
    // Anonymizer state (entry guards, cached consensus) rides in the
    // CommVM's writable layer (§3.5).
    (void)nym->anonymizer_->RestoreState(nym->comm_vm_->disk().fs().writable());
  }

  SimTime t0 = host_.sim().now();
  bool is_load = restored != nullptr;
  if (TraceRecorder* tracer = host_.sim().loop().tracer(); tracer != nullptr &&
                                                           ephemeral_phase > 0) {
    tracer->AddComplete("core", "ephemeral_nym", nym->name(), t0 - ephemeral_phase,
                        ephemeral_phase);
  }
  auto report = std::make_shared<NymStartupReport>();
  report->ephemeral_nym = ephemeral_phase;
  auto remaining = std::make_shared<int>(2);
  auto after_boot = [this, nym, report, t0, is_load, ephemeral_phase, remaining,
                     done = std::move(done)](SimTime) {
    if (--*remaining > 0) {
      return;
    }
    report->boot_vm = host_.sim().now() - t0;
    SimTime anonymizer_start = host_.sim().now();
    if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
      tracer->AddComplete("core", "boot_vm", nym->name(), t0, report->boot_vm);
    }
    nym->anonymizer_->Start([this, nym, report, t0, is_load, ephemeral_phase, anonymizer_start,
                             done](Result<SimTime> ready) {
      if (!ready.ok()) {
        // Bootstrap failed for good (retries exhausted). The nym stays
        // wired so the caller can inspect or terminate it.
        if (MetricsRegistry* meters = host_.sim().loop().meters()) {
          meters->GetCounter("core.nym_start_failures")->Increment();
        }
        done(ready.status(), *report);
        return;
      }
      report->start_anonymizer = *ready - anonymizer_start;
      nym->browser_ = std::make_unique<BrowserModel>(
          host_.sim(), nym->anon_vm_, nym->anonymizer_.get(),
          host_.sim().prng().NextU64() ^ Mix64(next_nym_seed_ * 104729));
      nym->browser_->UseDnsProxy(nym->dns_.get());
      if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
        tracer->AddComplete("anon", "start_anonymizer", nym->name(), anonymizer_start,
                            report->start_anonymizer);
        SimTime started = t0 - ephemeral_phase;
        tracer->AddComplete("core", is_load ? "load_nym" : "create_nym", nym->name(), started,
                            host_.sim().now() - started);
      }
      if (MetricsRegistry* meters = host_.sim().loop().meters()) {
        meters->GetCounter(is_load ? "core.nyms_loaded" : "core.nyms_created")->Increment();
        meters->GetHistogram("core.nym_startup_us")
            ->Record(static_cast<double>(host_.sim().now() - (t0 - ephemeral_phase)));
      }
      done(nym, *report);
    });
  };
  nym->anon_vm_->Boot(after_boot);
  nym->comm_vm_->Boot(after_boot);
}

void NymManager::CreateNym(const std::string& name, const CreateOptions& options,
                           CreateCallback done) {
  auto wired = WireNym(name, options);
  if (!wired.ok()) {
    done(wired.status(), NymStartupReport{});
    return;
  }
  BootNym(*wired, nullptr, 0, std::move(done));
}

Status NymManager::TerminateNym(Nym* nym) {
  auto it = std::find_if(nyms_.begin(), nyms_.end(),
                         [nym](const auto& owned) { return owned.get() == nym; });
  if (it == nyms_.end()) {
    return NotFoundError("unknown nym");
  }
  // Secure teardown: wipe memory, discard RAM-backed disks, drop the VMs.
  if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
    tracer->AddInstant("core", "terminate_nym", nym->name(), host_.sim().now());
  }
  if (MetricsRegistry* meters = host_.sim().loop().meters()) {
    meters->GetCounter("core.nyms_terminated")->Increment();
  }
  NYMIX_CHECK(host_.DestroyVm(nym->anon_vm_).ok());
  NYMIX_CHECK(host_.DestroyVm(nym->comm_vm_).ok());
  nym->anon_vm_ = nullptr;
  nym->comm_vm_ = nullptr;
  nym->terminated_ = true;
  options_by_name_.erase(nym->name());
  nyms_.erase(it);
  return OkStatus();
}

void NymManager::InjectCrash(Nym& nym) {
  NYMIX_CHECK_MSG(nym.anon_vm_ != nullptr && nym.comm_vm_ != nullptr, "nym has no VMs");
  nym.anon_vm_->Crash();
  nym.comm_vm_->Crash();
  if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
    tracer->AddInstant("fault", "nym_crash", nym.name(), host_.sim().now());
  }
  if (MetricsRegistry* meters = host_.sim().loop().meters()) {
    meters->GetCounter("core.nym_crashes")->Increment();
  }
}

Status NymManager::CheckpointNym(Nym& nym) {
  if (nym.comm_vm_ == nullptr) {
    return FailedPreconditionError("nym has no CommVM");
  }
  NYMIX_RETURN_IF_ERROR(
      nym.anonymizer_->SaveState(nym.comm_vm_->disk().fs().writable_mutable()));
  if (MetricsRegistry* meters = host_.sim().loop().meters()) {
    meters->GetCounter("core.nym_checkpoints")->Increment();
  }
  return OkStatus();
}

void NymManager::RecoverNym(Nym* nym, CreateCallback done) {
  auto it = std::find_if(nyms_.begin(), nyms_.end(),
                         [nym](const auto& owned) { return owned.get() == nym; });
  if (it == nyms_.end()) {
    done(NotFoundError("unknown nym"), NymStartupReport{});
    return;
  }
  if (nym->anon_vm_ == nullptr || nym->comm_vm_ == nullptr) {
    done(FailedPreconditionError("nym has no VMs"), NymStartupReport{});
    return;
  }
  std::string name = nym->name();
  auto options_it = options_by_name_.find(name);
  NYMIX_CHECK_MSG(options_it != options_by_name_.end(), "nym without recorded options");
  CreateOptions options = options_it->second;

  // Snapshot the writable layers before teardown: RAM-backed disks are
  // what survives a guest crash (the host process is fine; only the guest
  // died). Anonymizer state rides in the CommVM layer iff CheckpointNym —
  // or an earlier save — put it there.
  RestoredState restored;
  restored.anon_writable = std::make_unique<MemFs>();
  restored.comm_writable = std::make_unique<MemFs>();
  CopyInto(nym->anon_vm_->disk().fs().writable(), *restored.anon_writable);
  CopyInto(nym->comm_vm_->disk().fs().writable(), *restored.comm_writable);
  restored.next_sequence = nym->save_sequence_;

  SimTime t0 = host_.sim().now();
  NYMIX_CHECK(TerminateNym(nym).ok());
  if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
    tracer->AddInstant("core", "recover_nym", name, t0);
  }
  if (MetricsRegistry* meters = host_.sim().loop().meters()) {
    meters->GetCounter("core.nym_recoveries")->Increment();
  }
  auto wired = WireNym(name, options);
  if (!wired.ok()) {
    done(wired.status(), NymStartupReport{});
    return;
  }
  BootNym(*wired, &restored, 0, std::move(done));
}

void NymManager::RestoreNymFromState(const std::string& name, const CreateOptions& options,
                                     std::unique_ptr<MemFs> anon_writable,
                                     std::unique_ptr<MemFs> comm_writable, uint32_t next_sequence,
                                     CreateCallback done) {
  if (Nym* existing = FindNym(name)) {
    Status torn_down = TerminateNym(existing);
    if (!torn_down.ok()) {
      done(torn_down, NymStartupReport{});
      return;
    }
  }
  RestoredState restored;
  restored.anon_writable = std::move(anon_writable);
  restored.comm_writable = std::move(comm_writable);
  restored.next_sequence = next_sequence;
  if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
    tracer->AddInstant("core", "restore_nym", name, host_.sim().now());
  }
  if (MetricsRegistry* meters = host_.sim().loop().meters()) {
    meters->GetCounter("core.nym_restores")->Increment();
  }
  auto wired = WireNym(name, options);
  if (!wired.ok()) {
    done(wired.status(), NymStartupReport{});
    return;
  }
  BootNym(*wired, &restored, 0, std::move(done));
}

const NymManager::CreateOptions* NymManager::FindOptions(const std::string& name) const {
  auto it = options_by_name_.find(name);
  return it == options_by_name_.end() ? nullptr : &it->second;
}

std::vector<Nym*> NymManager::nyms() const {
  std::vector<Nym*> out;
  out.reserve(nyms_.size());
  for (const auto& nym : nyms_) {
    out.push_back(nym.get());
  }
  return out;
}

Nym* NymManager::FindNym(const std::string& name) const {
  auto it = std::find_if(nyms_.begin(), nyms_.end(),
                         [&](const auto& nym) { return nym->name() == name; });
  return it == nyms_.end() ? nullptr : it->get();
}

Result<NymArchive> NymManager::ArchiveNym(Nym& nym, const std::string& password) {
  if (nym.anon_vm_ == nullptr || nym.comm_vm_ == nullptr) {
    return FailedPreconditionError("nym has no VMs");
  }
  // "the nym manager pauses the nym's AnonVM and CommVM, syncs their file
  // systems, compresses and encrypts ... resumes the VMs" (§3.5).
  bool was_running = nym.anon_vm_->state() == VmState::kRunning;
  if (was_running) {
    nym.anon_vm_->Pause();
    nym.comm_vm_->Pause();
  }
  NYMIX_RETURN_IF_ERROR(
      nym.anonymizer_->SaveState(nym.comm_vm_->disk().fs().writable_mutable()));
  auto archive = NymArchiver::Seal(nym.anon_vm_->disk().fs().writable(),
                                   nym.comm_vm_->disk().fs().writable(), nym.name(), password,
                                   nym.save_sequence_);
  if (was_running) {
    nym.anon_vm_->Resume();
    nym.comm_vm_->Resume();
  }
  return archive;
}

void NymManager::CreateCloudAccount(Nym& nym, CloudService& cloud, const std::string& account,
                                    const std::string& password,
                                    std::function<void(Status)> done) {
  nym.anonymizer_->Fetch(cloud.domain(), 4 * kKiB, 128 * kKiB,
                         [&cloud, account, password, this,
                          done = std::move(done)](Result<FetchReceipt> receipt) {
                           if (!receipt.ok()) {
                             done(receipt.status());
                             return;
                           }
                           cloud.LogAccess(host_.sim().now(), receipt->observed_source,
                                           "signup " + account);
                           done(cloud.CreateAccount(account, password));
                         });
}

void NymManager::SaveNymToCloud(Nym& nym, CloudService& cloud, const std::string& account,
                                const std::string& account_password,
                                const std::string& archive_password,
                                std::function<void(Result<SaveReceipt>)> done) {
  SimTime t0 = host_.sim().now();
  auto archive = ArchiveNym(nym, archive_password);
  if (!archive.ok()) {
    done(archive.status());
    return;
  }
  SimDuration processing = SecondsF(static_cast<double>(archive->logical_size) /
                                    static_cast<double>(config_.archive_processing_bps));
  auto shared = std::make_shared<NymArchive>(std::move(*archive));
  host_.sim().loop().ScheduleAfter(processing, [this, &nym, &cloud, account, account_password,
                                                archive_password, shared, t0,
                                                done = std::move(done)]() mutable {
    // Upload rides the nym's own anonymizer: the provider sees an exit
    // relay, never the user.
    nym.anonymizer_->Fetch(
        cloud.domain(), shared->logical_size, 16 * kKiB,
        [this, &nym, &cloud, account, account_password, archive_password, shared, t0,
         done = std::move(done)](Result<FetchReceipt> receipt) {
          if (!receipt.ok()) {
            done(receipt.status());
            return;
          }
          Status auth = cloud.Authenticate(account, account_password);
          if (!auth.ok()) {
            done(auth);
            return;
          }
          StoredObject object;
          object.data = shared->sealed;
          object.logical_size = shared->logical_size;
          object.sequence = shared->sequence;
          object.uploaded_at = host_.sim().now();
          // The provider indexes by the blind name: its object listing and
          // access log must never contain the pseudonym (the deniability
          // contract in src/storage/cloud.h).
          const std::string blind = BlindObjectName(nym.name(), archive_password);
          Status put = cloud.Put(account, blind, std::move(object));
          if (!put.ok()) {
            done(put);
            return;
          }
          cloud.LogAccess(host_.sim().now(), receipt->observed_source, "put " + blind);
          SaveReceipt save;
          save.sequence = shared->sequence;
          save.logical_size = shared->logical_size;
          save.sealed_bytes = shared->sealed.size();
          save.anonvm_fraction = NymArchiver::AnonVmFraction(
              nym.anon_vm_->disk().fs().writable(), nym.comm_vm_->disk().fs().writable());
          save.duration = host_.sim().now() - t0;
          if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
            tracer->AddComplete("core", "save_nym", nym.name(), t0, save.duration);
          }
          nym.save_sequence_ = shared->sequence + 1;
          done(save);
        });
  });
}

void NymManager::SaveNymToLocal(Nym& nym, LocalStore& store, const std::string& password,
                                std::function<void(Result<SaveReceipt>)> done) {
  SimTime t0 = host_.sim().now();
  auto archive = ArchiveNym(nym, password);
  if (!archive.ok()) {
    done(archive.status());
    return;
  }
  SimDuration processing = SecondsF(static_cast<double>(archive->logical_size) /
                                    static_cast<double>(config_.archive_processing_bps));
  auto shared = std::make_shared<NymArchive>(std::move(*archive));
  host_.sim().loop().ScheduleAfter(processing, [this, &nym, &store, shared, t0,
                                                done = std::move(done)] {
    Status put = store.Put(nym.name(), *shared);
    if (!put.ok()) {
      done(put);
      return;
    }
    SaveReceipt save;
    save.sequence = shared->sequence;
    save.logical_size = shared->logical_size;
    save.sealed_bytes = shared->sealed.size();
    save.anonvm_fraction = NymArchiver::AnonVmFraction(nym.anon_vm_->disk().fs().writable(),
                                                       nym.comm_vm_->disk().fs().writable());
    save.duration = host_.sim().now() - t0;
    if (TraceRecorder* tracer = host_.sim().loop().tracer()) {
      tracer->AddComplete("core", "save_nym", nym.name(), t0, save.duration);
    }
    nym.save_sequence_ = shared->sequence + 1;
    done(save);
  });
}

void NymManager::LoadCommon(const std::string& name, const std::string& password,
                            const CreateOptions& options, Result<NymArchive> archive,
                            SimTime load_started, Status auth, CreateCallback done) {
  if (!auth.ok()) {
    done(auth, NymStartupReport{});
    return;
  }
  if (!archive.ok()) {
    done(archive.status(), NymStartupReport{});
    return;
  }
  auto contents = NymArchiver::Open(archive->sealed, name, password, archive->sequence);
  if (!contents.ok()) {
    done(contents.status(), NymStartupReport{});
    return;
  }
  auto wired = WireNym(name, options);
  if (!wired.ok()) {
    done(wired.status(), NymStartupReport{});
    return;
  }
  RestoredState restored;
  restored.anon_writable = std::move(contents->anonvm_writable);
  restored.comm_writable = std::move(contents->commvm_writable);
  restored.next_sequence = archive->sequence + 1;
  SimDuration ephemeral_phase = host_.sim().now() - load_started;
  BootNym(*wired, &restored, ephemeral_phase, std::move(done));
}

void NymManager::LoadNymFromCloud(const std::string& name, CloudService& cloud,
                                  const std::string& account,
                                  const std::string& account_password,
                                  const std::string& archive_password,
                                  const CreateOptions& options, CreateCallback done) {
  SimTime t0 = host_.sim().now();
  // Phase 1: the one-shot ephemeral nym that fetches the encrypted state
  // (§3.5 workflow). It uses the same anonymizer kind — and, if a guard
  // seed is supplied, the same entry guard as the nym itself, closing the
  // paper's noted intersection-attack gap.
  CreateOptions loader_options = options;
  loader_options.mode = NymMode::kEphemeral;
  CreateNym(name + "-loader", loader_options,
            [this, name, &cloud, account, account_password, archive_password, options, t0,
             done = std::move(done)](Result<Nym*> loader, NymStartupReport) mutable {
              if (!loader.ok()) {
                done(loader.status(), NymStartupReport{});
                return;
              }
              Nym* loader_nym = *loader;
              Status auth = cloud.Authenticate(account, account_password);
              // Same blind name the save path wrote: the provider's view of
              // the download, like the upload, is pseudonym-free.
              auto stored = cloud.Get(account, BlindObjectName(name, archive_password));
              if (!auth.ok() || !stored.ok()) {
                Status failure = !auth.ok() ? auth : stored.status();
                NYMIX_CHECK(TerminateNym(loader_nym).ok());
                done(failure, NymStartupReport{});
                return;
              }
              uint64_t download_size = stored->logical_size;
              loader_nym->anonymizer_->Fetch(
                  cloud.domain(), 8 * kKiB, download_size,
                  [this, name, archive_password, options, t0, &cloud,
                   stored = *stored, loader_nym,
                   done = std::move(done)](Result<FetchReceipt> receipt) mutable {
                    if (!receipt.ok()) {
                      NYMIX_CHECK(TerminateNym(loader_nym).ok());
                      done(receipt.status(), NymStartupReport{});
                      return;
                    }
                    cloud.LogAccess(host_.sim().now(), receipt->observed_source,
                                    "get " + BlindObjectName(name, archive_password));
                    SimDuration decrypt =
                        SecondsF(static_cast<double>(stored.logical_size) /
                                 static_cast<double>(config_.archive_processing_bps));
                    host_.sim().loop().ScheduleAfter(
                        decrypt, [this, name, archive_password, options, t0, stored, loader_nym,
                                  done = std::move(done)]() mutable {
                          NYMIX_CHECK(TerminateNym(loader_nym).ok());
                          NymArchive archive;
                          archive.sealed = stored.data;
                          archive.logical_size = stored.logical_size;
                          archive.sequence = stored.sequence;
                          LoadCommon(name, archive_password, options, archive, t0, OkStatus(),
                                     std::move(done));
                        });
                  });
            });
}

void NymManager::LoadNymFromLocal(const std::string& name, LocalStore& store,
                                  const std::string& password, const CreateOptions& options,
                                  CreateCallback done) {
  SimTime t0 = host_.sim().now();
  auto archive = store.Get(name);
  if (!archive.ok()) {
    done(archive.status(), NymStartupReport{});
    return;
  }
  SimDuration decrypt = SecondsF(static_cast<double>(archive->logical_size) /
                                 static_cast<double>(config_.archive_processing_bps));
  auto shared = std::make_shared<NymArchive>(std::move(*archive));
  host_.sim().loop().ScheduleAfter(decrypt, [this, name, password, options, shared, t0,
                                             done = std::move(done)]() mutable {
    LoadCommon(name, password, options, *shared, t0, OkStatus(), std::move(done));
  });
}

}  // namespace nymix
