#include "src/net/address.h"

#include <cstdio>

namespace nymix {

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

MacAddress MacAddress::StandardGuest() {
  // QEMU's default OUI 52:54:00 with a fixed NIC id so every guest looks
  // alike to fingerprinters.
  return MacAddress{{0x52, 0x54, 0x00, 0x12, 0x34, 0x56}};
}

MacAddress MacAddress::Broadcast() {
  return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

bool Ipv4Address::IsPrivate() const {
  uint8_t a = (value >> 24) & 0xff;
  uint8_t b = (value >> 16) & 0xff;
  if (a == 10) {
    return true;
  }
  if (a == 172 && b >= 16 && b < 32) {
    return true;
  }
  if (a == 192 && b == 168) {
    return true;
  }
  return false;
}

Result<Ipv4Address> ParseIpv4(std::string_view text) {
  unsigned a, b, c, d;
  char extra;
  std::string copy(text);
  if (std::sscanf(copy.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 || a > 255 ||
      b > 255 || c > 255 || d > 255) {
    return InvalidArgumentError("bad IPv4 address: " + copy);
  }
  return Ipv4Address(static_cast<uint8_t>(a), static_cast<uint8_t>(b), static_cast<uint8_t>(c),
                     static_cast<uint8_t>(d));
}

std::string Endpoint::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

}  // namespace nymix
