#include "src/net/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nymix {

Route Route::Through(std::vector<Link*> links) {
  Route route;
  route.links = std::move(links);
  for (const Link* link : route.links) {
    route.one_way_latency += link->latency();
  }
  return route;
}

void FlowScheduler::RefreshMeters() {
  if (meters_epoch_ == loop_.observability_epoch()) {
    return;
  }
  meters_epoch_ = loop_.observability_epoch();
  recomputes_counter_ = nullptr;
  skipped_counter_ = nullptr;
  flows_started_counter_ = nullptr;
  wire_bytes_counter_ = nullptr;
  flows_completed_counter_ = nullptr;
  flow_duration_histogram_ = nullptr;
  if (MetricsRegistry* meters = loop_.meters()) {
    recomputes_counter_ = meters->GetCounter("net.fair_share_recomputes");
    skipped_counter_ = meters->GetCounter("net.fair_share_skipped");
    flows_started_counter_ = meters->GetCounter("net.flows_started");
    wire_bytes_counter_ = meters->GetCounter("net.flow_wire_bytes");
    flows_completed_counter_ = meters->GetCounter("net.flows_completed");
    flow_duration_histogram_ = meters->GetHistogram("net.flow_duration_us");
  }
}

FlowId FlowScheduler::StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                                std::function<void(SimTime)> done) {
  // Legacy callers predate the failure model: deliver completions, swallow
  // failures (their flows cannot fail unless a fault profile is installed
  // on their links anyway).
  return StartFlow(route, bytes, overhead_factor, FlowOptions{},
                   [done = std::move(done)](Result<SimTime> finished) {
                     if (done && finished.ok()) {
                       done(*finished);
                     }
                   });
}

FlowId FlowScheduler::StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                                const FlowOptions& options,
                                std::function<void(Result<SimTime>)> done) {
  NYMIX_CHECK(overhead_factor >= 1.0);
  Settle();
  RefreshMeters();
  FlowId id = next_id_++;
  Flow flow;
  for (Link* link : route.links) {
    // Flows fair-share inside one shard's scheduler; a cross-shard half-link
    // has no local receiving side, so routing a flow over it would silently
    // model half a wire. Cross-shard traffic goes packet-by-packet through
    // CrossShardChannel (src/parallel) instead.
    NYMIX_CHECK(!link->remote());
  }
  flow.links = route.links;
  flow.remaining_bytes = static_cast<double>(bytes) * overhead_factor;
  flow.wire_bytes_total = flow.remaining_bytes;
  flow.options = options;
  flow.done = std::move(done);
  flow.started = false;
  flow.created_at = loop_.now();

  // Seeded loss-abort roll: a flow crossing lossy links may be doomed from
  // the start (loss defeating retransmission partway through). The Prng is
  // only consumed when the route actually has loss, so fault-free runs draw
  // nothing here.
  if (options.fail_on_loss && loss_prng_.has_value()) {
    double survive = 1.0;
    for (const Link* link : route.links) {
      const double p_abort =
          std::min(1.0, link->loss_probability() * options.loss_abort_multiplier);
      survive *= 1.0 - p_abort;
    }
    const double p_fail = 1.0 - survive;
    if (p_fail > 0.0 && loss_prng_->NextDouble() < p_fail) {
      flow.doomed = true;
    }
  }

  if (flows_started_counter_ != nullptr) {
    flows_started_counter_->Increment();
    wire_bytes_counter_->Increment(static_cast<uint64_t>(flow.remaining_bytes));
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncBegin("net", "flow", id, loop_.now());
  }
  flows_.emplace(id, std::move(flow));

  // Connection setup + request takes one round trip; then the flow joins
  // the fair-share competition (or dies, if the loss roll doomed it).
  loop_.ScheduleAfter(2 * route.one_way_latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) {
      return;  // cancelled during setup
    }
    if (it->second.doomed) {
      FailFlow(id, UnavailableError("flow aborted: packet loss on route"),
               "net.flows_aborted_loss");
      Reschedule();
      return;
    }
    Settle();
    it->second.started = true;
    AddFlowMembership(id, it->second);
    Reschedule();
  });
  Reschedule();
  return id;
}

bool FlowScheduler::CancelFlow(FlowId id) {
  Settle();
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return false;
  }
  if (it->second.has_stall_event) {
    loop_.Cancel(it->second.stall_event);
  }
  auto node = flows_.extract(it);
  if (node.mapped().started) {
    RemoveFlowMembership(id, node.mapped());
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_cancelled")->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncEnd("net", "flow", id, loop_.now());
  }
  NotifyFlowTaps(id, node.mapped(), /*completed=*/false);
  if (node.mapped().done) {
    node.mapped().done(CancelledError("flow cancelled"));
  }
  Reschedule();
  return true;
}

uint64_t FlowScheduler::FlowRateBps(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return 0;
  }
  return static_cast<uint64_t>(it->second.rate_bytes_per_us * 8e6);
}

void FlowScheduler::NotifyFlowTaps(FlowId id, const Flow& flow, bool completed) {
  FlowMetadata meta;
  meta.flow_id = id;
  meta.created_at = flow.created_at;
  meta.ended_at = loop_.now();
  meta.wire_bytes = static_cast<uint64_t>(flow.wire_bytes_total);
  meta.completed = completed;
  // Dedupe in id order: a route crossing the same link twice is one
  // observation, and ordered iteration keeps tap callback order a function
  // of creation order only.
  std::set<Link*, LinkIdLess> unique(flow.links.begin(), flow.links.end());
  for (Link* link : unique) {
    if (LinkTap* tap = link->tap()) {
      tap->OnFlowEnded(*link, meta);
    }
  }
}

void FlowScheduler::FailFlow(FlowId id, Status status, const char* counter) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  if (it->second.has_stall_event) {
    loop_.Cancel(it->second.stall_event);
  }
  auto node = flows_.extract(it);
  if (node.mapped().started) {
    RemoveFlowMembership(id, node.mapped());
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_failed")->Increment();
    meters->GetCounter(counter)->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncEnd("net", "flow", id, loop_.now());
    tracer->AddInstant("fault", std::string("flow_failed:") + StatusCodeName(status.code()).data(),
                       "faults", loop_.now());
  }
  NotifyFlowTaps(id, node.mapped(), /*completed=*/false);
  if (node.mapped().done) {
    node.mapped().done(std::move(status));
  }
}

void FlowScheduler::AddFlowMembership(FlowId id, const Flow& flow) {
  if (flow.links.empty()) {
    // Empty-route flows are rated at the global first-round min share — a
    // value no component-restricted pass can see — so force a full pass.
    ++started_empty_route_flows_;
    global_dirty_ = true;
    return;
  }
  for (Link* link : flow.links) {
    LinkState& state = link_states_[link];
    state.flow_ids.insert(std::upper_bound(state.flow_ids.begin(), state.flow_ids.end(), id), id);
    dirty_links_.insert(link);
  }
}

void FlowScheduler::RemoveFlowMembership(FlowId id, const Flow& flow) {
  if (flow.links.empty()) {
    // Removal changes nobody else's rate (empty routes consume no capacity),
    // so no recompute is forced.
    --started_empty_route_flows_;
    return;
  }
  for (Link* link : flow.links) {
    auto it = link_states_.find(link);
    NYMIX_CHECK_MSG(it != link_states_.end(), "flow removed from untracked link");
    std::vector<FlowId>& ids = it->second.flow_ids;
    auto pos = std::lower_bound(ids.begin(), ids.end(), id);
    NYMIX_CHECK_MSG(pos != ids.end() && *pos == id, "flow missing from link membership");
    ids.erase(pos);
    dirty_links_.insert(link);
    if (ids.empty()) {
      link_states_.erase(it);
    }
  }
}

void FlowScheduler::Settle() {
  SimTime now = loop_.now();
  if (now == last_settle_) {
    return;
  }
  RefreshMeters();
  double elapsed_us = static_cast<double>(now - last_settle_);
  last_settle_ = now;

  std::vector<FlowId> finished;
  for (auto& [id, flow] : flows_) {
    if (!flow.started) {
      continue;
    }
    flow.remaining_bytes -= flow.rate_bytes_per_us * elapsed_us;
    if (flow.remaining_bytes <= 1e-6) {
      flow.remaining_bytes = 0;
      finished.push_back(id);
    }
  }
  for (FlowId id : finished) {
    auto node = flows_.extract(id);
    if (node.mapped().started) {
      RemoveFlowMembership(id, node.mapped());
    }
    if (node.mapped().has_stall_event) {
      loop_.Cancel(node.mapped().stall_event);
    }
    if (flows_completed_counter_ != nullptr) {
      flows_completed_counter_->Increment();
      flow_duration_histogram_->Record(static_cast<double>(now - node.mapped().created_at));
    }
    if (TraceRecorder* tracer = loop_.tracer()) {
      tracer->AddAsyncEnd("net", "flow", id, now);
    }
    NotifyFlowTaps(id, node.mapped(), /*completed=*/true);
    if (node.mapped().done) {
      node.mapped().done(now);
    }
  }
}

void FlowScheduler::Waterfill(const std::vector<FlowId>& flow_ids) {
  // Max-min fair allocation by progressive filling over exactly the links
  // the given flows cross. Keyed by creation order (LinkIdLess), not
  // pointer: the min-share scan iterates these maps, and address-ordered
  // iteration would make float rounding — and therefore reported
  // bandwidths — vary run to run.
  std::map<Link*, double, LinkIdLess> capacity;    // bytes/us remaining per link
  std::map<Link*, int, LinkIdLess> unfixed_count;  // unfixed flows per link
  std::vector<Flow*> unfixed;
  unfixed.reserve(flow_ids.size());
  for (FlowId id : flow_ids) {
    Flow& flow = flows_.at(id);
    flow.rate_bytes_per_us = 0;
    unfixed.push_back(&flow);
    for (Link* link : flow.links) {
      // A downed link contributes zero capacity: flows crossing it rate at
      // 0 and (with a stall_timeout) eventually fail instead of hanging.
      capacity.emplace(link,
                       link->is_down() ? 0.0 : static_cast<double>(link->bandwidth_bps()) / 8e6);
      ++unfixed_count[link];
    }
  }

  while (!unfixed.empty()) {
    // Find the most contended link's per-flow share.
    double min_share = std::numeric_limits<double>::infinity();
    for (const auto& [link, count] : unfixed_count) {
      if (count > 0) {
        min_share = std::min(min_share, capacity[link] / count);
      }
    }
    if (!std::isfinite(min_share)) {
      // Flows with empty routes (loopback): unconstrained, finish "instantly"
      // at a very high nominal rate.
      for (Flow* flow : unfixed) {
        flow->rate_bytes_per_us = 1e9;
      }
      break;
    }
    // Fix every flow bottlenecked at that share. A bottlenecked flow is
    // fixed at its OWN tightest link's share rather than at min_share:
    // min_share can come from an unrelated connected component whose
    // arithmetic history differs in the last bits, and rounding that noise
    // into the rate would make a component-restricted waterfill disagree
    // with a global one by one ulp. The flow's own share is computed purely
    // from links it crosses, so it is bit-identical either way; it is
    // always >= min_share (min_share minimizes over a superset of links),
    // so the epsilon window and the progress guarantee are unchanged.
    std::vector<Flow*> still_unfixed;
    for (Flow* flow : unfixed) {
      double own_share = std::numeric_limits<double>::infinity();
      for (Link* link : flow->links) {
        own_share = std::min(own_share, capacity[link] / unfixed_count[link]);
      }
      if (flow->links.empty()) {
        // Empty route mixed into a constrained set: matched to the round
        // minimum. Live empty-route flows force a full waterfill in both
        // modes (see Reschedule), so this coupling is mode-invariant.
        flow->rate_bytes_per_us = min_share;
      } else if (own_share <= min_share + 1e-12) {
        flow->rate_bytes_per_us = own_share;
        for (Link* link : flow->links) {
          capacity[link] -= own_share;
          --unfixed_count[link];
        }
      } else {
        still_unfixed.push_back(flow);
      }
    }
    NYMIX_CHECK_MSG(still_unfixed.size() < unfixed.size(), "waterfilling did not progress");
    unfixed = std::move(still_unfixed);
  }
}

void FlowScheduler::UpdateStallWatches(const std::vector<FlowId>& flow_ids) {
  // Stall bookkeeping: a started flow rated 0 with a stall deadline either
  // arms its deadline or, if rates recovered, disarms it. Scanning only the
  // just-recomputed flows (ascending id, like a full scan would visit them)
  // is exact: a flow whose rate was not recomputed cannot transition.
  const SimTime now = loop_.now();
  for (FlowId id : flow_ids) {
    Flow& flow = flows_.at(id);
    if (!flow.started || flow.options.stall_timeout == 0) {
      continue;
    }
    const bool rate_zero = flow.rate_bytes_per_us <= 0 && flow.remaining_bytes > 0;
    if (rate_zero && !flow.stalled) {
      flow.stalled = true;
      flow.stalled_since = now;
      const FlowId flow_id = id;
      flow.stall_event = loop_.ScheduleAfter(flow.options.stall_timeout, [this, flow_id] {
        auto it = flows_.find(flow_id);
        if (it == flows_.end() || !it->second.stalled) {
          return;
        }
        it->second.has_stall_event = false;
        // Nothing rescheduled since the stall began; if the route flapped
        // back up in the meantime, rejoin the competition instead of dying.
        bool route_up = true;
        for (const Link* link : it->second.links) {
          if (link->is_down()) {
            route_up = false;
            break;
          }
        }
        Settle();
        if (route_up) {
          it->second.stalled = false;
          Reschedule();
          return;
        }
        FailFlow(flow_id, UnavailableError("flow stalled: route down"), "net.flows_stalled");
        Reschedule();
      });
      flow.has_stall_event = true;
      if (MetricsRegistry* meters = loop_.meters()) {
        meters->GetCounter("net.flow_stall_watches")->Increment();
      }
    } else if (!rate_zero && flow.stalled) {
      flow.stalled = false;
      if (flow.has_stall_event) {
        loop_.Cancel(flow.stall_event);
        flow.has_stall_event = false;
      }
    }
  }
}

void FlowScheduler::Reschedule() {
  if (has_pending_event_) {
    loop_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  RefreshMeters();

  // Dirty-driven dispatch. Only the rate computation varies by mode; the
  // completion-event scan below is shared, which is what keeps full and
  // incremental runs byte-identical in their traces.
  const bool dirty = global_dirty_ || !dirty_links_.empty();
  if (full_recompute_ || global_dirty_ || (dirty && started_empty_route_flows_ > 0)) {
    std::vector<FlowId> started;
    started.reserve(flows_.size());
    for (const auto& [id, flow] : flows_) {
      if (flow.started) {
        started.push_back(id);
      }
    }
    Waterfill(started);
    UpdateStallWatches(started);
    ++waterfills_full_;
    if (recomputes_counter_ != nullptr) {
      recomputes_counter_->Increment();
    }
    dirty_links_.clear();
    global_dirty_ = false;
  } else if (!dirty) {
    // Nothing changed since the last waterfill: every rate is still exact.
    ++waterfill_skips_;
    if (skipped_counter_ != nullptr) {
      skipped_counter_->Increment();
    }
  } else {
    // Re-waterfill only the connected component(s) touching a dirty link.
    // Closure: any flow on a dirty link, any link of such a flow, and so on.
    // Links outside the closure saw no membership or capacity change and
    // share no flow with one that did, so their flows' max-min rates are
    // unchanged by definition of the waterfill.
    std::set<Link*, LinkIdLess> comp_links;
    std::set<FlowId> comp_flows;
    std::vector<Link*> frontier;
    for (Link* link : dirty_links_) {
      // A dirty link with no started flows (flap on an idle link, or the
      // last flow just left) constrains nobody — skip it.
      if (link_states_.count(link) != 0 && comp_links.insert(link).second) {
        frontier.push_back(link);
      }
    }
    while (!frontier.empty()) {
      Link* link = frontier.back();
      frontier.pop_back();
      for (FlowId id : link_states_.at(link).flow_ids) {
        if (!comp_flows.insert(id).second) {
          continue;
        }
        for (Link* next : flows_.at(id).links) {
          if (comp_links.insert(next).second) {
            frontier.push_back(next);
          }
        }
      }
    }
    std::vector<FlowId> ids(comp_flows.begin(), comp_flows.end());
    Waterfill(ids);
    UpdateStallWatches(ids);
    ++waterfills_component_;
    if (recomputes_counter_ != nullptr) {
      recomputes_counter_->Increment();
    }
    dirty_links_.clear();
  }

  // Schedule the earliest completion. Runs identically in every mode and on
  // the skip path: the scan is over all flows, and the cancel/reschedule of
  // the pending event above/below keeps the event table in lockstep with a
  // full-recompute run (EventLoop's pending_events trace counter sees the
  // same sizes).
  double min_eta_us = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    (void)id;
    if (flow.started && flow.rate_bytes_per_us > 0) {
      min_eta_us = std::min(min_eta_us, flow.remaining_bytes / flow.rate_bytes_per_us);
    }
  }
  if (std::isfinite(min_eta_us)) {
    SimDuration delay = static_cast<SimDuration>(min_eta_us) + 1;
    pending_event_ = loop_.ScheduleAfter(delay, [this] {
      has_pending_event_ = false;
      Settle();
      Reschedule();
    });
    has_pending_event_ = true;
  }
}

}  // namespace nymix
