#include "src/net/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nymix {

Route Route::Through(std::vector<Link*> links) {
  Route route;
  route.links = std::move(links);
  for (const Link* link : route.links) {
    route.one_way_latency += link->latency();
  }
  return route;
}

FlowId FlowScheduler::StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                                std::function<void(SimTime)> done) {
  NYMIX_CHECK(overhead_factor >= 1.0);
  Settle();
  FlowId id = next_id_++;
  Flow flow;
  flow.links = route.links;
  flow.remaining_bytes = static_cast<double>(bytes) * overhead_factor;
  flow.done = std::move(done);
  flow.started = false;
  flow.created_at = loop_.now();
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_started")->Increment();
    meters->GetCounter("net.flow_wire_bytes")
        ->Increment(static_cast<uint64_t>(flow.remaining_bytes));
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncBegin("net", "flow", id, loop_.now());
  }
  flows_.emplace(id, std::move(flow));

  // Connection setup + request takes one round trip; then the flow joins
  // the fair-share competition.
  loop_.ScheduleAfter(2 * route.one_way_latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) {
      return;  // cancelled during setup
    }
    Settle();
    it->second.started = true;
    Reschedule();
  });
  Reschedule();
  return id;
}

bool FlowScheduler::CancelFlow(FlowId id) {
  Settle();
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return false;
  }
  flows_.erase(it);
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_cancelled")->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncEnd("net", "flow", id, loop_.now());
  }
  Reschedule();
  return true;
}

uint64_t FlowScheduler::FlowRateBps(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return 0;
  }
  return static_cast<uint64_t>(it->second.rate_bytes_per_us * 8e6);
}

void FlowScheduler::Settle() {
  SimTime now = loop_.now();
  if (now == last_settle_) {
    return;
  }
  double elapsed_us = static_cast<double>(now - last_settle_);
  last_settle_ = now;

  std::vector<FlowId> finished;
  for (auto& [id, flow] : flows_) {
    if (!flow.started) {
      continue;
    }
    flow.remaining_bytes -= flow.rate_bytes_per_us * elapsed_us;
    if (flow.remaining_bytes <= 1e-6) {
      flow.remaining_bytes = 0;
      finished.push_back(id);
    }
  }
  for (FlowId id : finished) {
    auto node = flows_.extract(id);
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("net.flows_completed")->Increment();
      meters->GetHistogram("net.flow_duration_us")
          ->Record(static_cast<double>(now - node.mapped().created_at));
    }
    if (TraceRecorder* tracer = loop_.tracer()) {
      tracer->AddAsyncEnd("net", "flow", id, now);
    }
    if (node.mapped().done) {
      node.mapped().done(now);
    }
  }
}

void FlowScheduler::Reschedule() {
  if (has_pending_event_) {
    loop_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.fair_share_recomputes")->Increment();
  }

  // Max-min fair allocation by progressive filling over links. Keyed by
  // creation order (LinkIdLess), not pointer: the min-share scan iterates
  // these maps, and address-ordered iteration would make float rounding —
  // and therefore reported bandwidths — vary run to run.
  std::map<Link*, double, LinkIdLess> capacity;    // bytes/us remaining per link
  std::map<Link*, int, LinkIdLess> unfixed_count;  // unfixed flows per link
  std::vector<Flow*> unfixed;
  for (auto& [id, flow] : flows_) {
    (void)id;
    flow.rate_bytes_per_us = 0;
    if (!flow.started) {
      continue;
    }
    unfixed.push_back(&flow);
    for (Link* link : flow.links) {
      capacity.emplace(link, static_cast<double>(link->bandwidth_bps()) / 8e6);
      ++unfixed_count[link];
    }
  }

  while (!unfixed.empty()) {
    // Find the most contended link's per-flow share.
    double min_share = std::numeric_limits<double>::infinity();
    for (const auto& [link, count] : unfixed_count) {
      if (count > 0) {
        min_share = std::min(min_share, capacity[link] / count);
      }
    }
    if (!std::isfinite(min_share)) {
      // Flows with empty routes (loopback): unconstrained, finish "instantly"
      // at a very high nominal rate.
      for (Flow* flow : unfixed) {
        flow->rate_bytes_per_us = 1e9;
      }
      break;
    }
    // Fix every flow bottlenecked at that share.
    std::vector<Flow*> still_unfixed;
    for (Flow* flow : unfixed) {
      bool bottlenecked = flow->links.empty();
      for (Link* link : flow->links) {
        if (capacity[link] / unfixed_count[link] <= min_share + 1e-12) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        flow->rate_bytes_per_us = min_share;
        for (Link* link : flow->links) {
          capacity[link] -= min_share;
          --unfixed_count[link];
        }
      } else {
        still_unfixed.push_back(flow);
      }
    }
    NYMIX_CHECK_MSG(still_unfixed.size() < unfixed.size(), "waterfilling did not progress");
    unfixed = std::move(still_unfixed);
  }

  // Schedule the earliest completion.
  double min_eta_us = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    (void)id;
    if (flow.started && flow.rate_bytes_per_us > 0) {
      min_eta_us = std::min(min_eta_us, flow.remaining_bytes / flow.rate_bytes_per_us);
    }
  }
  if (std::isfinite(min_eta_us)) {
    SimDuration delay = static_cast<SimDuration>(min_eta_us) + 1;
    pending_event_ = loop_.ScheduleAfter(delay, [this] {
      has_pending_event_ = false;
      Settle();
      Reschedule();
    });
    has_pending_event_ = true;
  }
}

}  // namespace nymix
