#include "src/net/flow.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace nymix {

Route Route::Through(std::vector<Link*> links) {
  Route route;
  route.links = std::move(links);
  for (const Link* link : route.links) {
    route.one_way_latency += link->latency();
  }
  return route;
}

FlowId FlowScheduler::StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                                std::function<void(SimTime)> done) {
  // Legacy callers predate the failure model: deliver completions, swallow
  // failures (their flows cannot fail unless a fault profile is installed
  // on their links anyway).
  return StartFlow(route, bytes, overhead_factor, FlowOptions{},
                   [done = std::move(done)](Result<SimTime> finished) {
                     if (done && finished.ok()) {
                       done(*finished);
                     }
                   });
}

FlowId FlowScheduler::StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                                const FlowOptions& options,
                                std::function<void(Result<SimTime>)> done) {
  NYMIX_CHECK(overhead_factor >= 1.0);
  Settle();
  FlowId id = next_id_++;
  Flow flow;
  flow.links = route.links;
  flow.remaining_bytes = static_cast<double>(bytes) * overhead_factor;
  flow.options = options;
  flow.done = std::move(done);
  flow.started = false;
  flow.created_at = loop_.now();

  // Seeded loss-abort roll: a flow crossing lossy links may be doomed from
  // the start (loss defeating retransmission partway through). The Prng is
  // only consumed when the route actually has loss, so fault-free runs draw
  // nothing here.
  if (options.fail_on_loss && loss_prng_.has_value()) {
    double survive = 1.0;
    for (const Link* link : route.links) {
      const double p_abort =
          std::min(1.0, link->loss_probability() * options.loss_abort_multiplier);
      survive *= 1.0 - p_abort;
    }
    const double p_fail = 1.0 - survive;
    if (p_fail > 0.0 && loss_prng_->NextDouble() < p_fail) {
      flow.doomed = true;
    }
  }

  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_started")->Increment();
    meters->GetCounter("net.flow_wire_bytes")
        ->Increment(static_cast<uint64_t>(flow.remaining_bytes));
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncBegin("net", "flow", id, loop_.now());
  }
  flows_.emplace(id, std::move(flow));

  // Connection setup + request takes one round trip; then the flow joins
  // the fair-share competition (or dies, if the loss roll doomed it).
  loop_.ScheduleAfter(2 * route.one_way_latency, [this, id] {
    auto it = flows_.find(id);
    if (it == flows_.end()) {
      return;  // cancelled during setup
    }
    if (it->second.doomed) {
      FailFlow(id, UnavailableError("flow aborted: packet loss on route"),
               "net.flows_aborted_loss");
      Reschedule();
      return;
    }
    Settle();
    it->second.started = true;
    Reschedule();
  });
  Reschedule();
  return id;
}

bool FlowScheduler::CancelFlow(FlowId id) {
  Settle();
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return false;
  }
  if (it->second.has_stall_event) {
    loop_.Cancel(it->second.stall_event);
  }
  auto node = flows_.extract(it);
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_cancelled")->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncEnd("net", "flow", id, loop_.now());
  }
  if (node.mapped().done) {
    node.mapped().done(CancelledError("flow cancelled"));
  }
  Reschedule();
  return true;
}

uint64_t FlowScheduler::FlowRateBps(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return 0;
  }
  return static_cast<uint64_t>(it->second.rate_bytes_per_us * 8e6);
}

void FlowScheduler::FailFlow(FlowId id, Status status, const char* counter) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  if (it->second.has_stall_event) {
    loop_.Cancel(it->second.stall_event);
  }
  auto node = flows_.extract(it);
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.flows_failed")->Increment();
    meters->GetCounter(counter)->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddAsyncEnd("net", "flow", id, loop_.now());
    tracer->AddInstant("fault", std::string("flow_failed:") + StatusCodeName(status.code()).data(),
                       "faults", loop_.now());
  }
  if (node.mapped().done) {
    node.mapped().done(std::move(status));
  }
}

void FlowScheduler::Settle() {
  SimTime now = loop_.now();
  if (now == last_settle_) {
    return;
  }
  double elapsed_us = static_cast<double>(now - last_settle_);
  last_settle_ = now;

  std::vector<FlowId> finished;
  for (auto& [id, flow] : flows_) {
    if (!flow.started) {
      continue;
    }
    flow.remaining_bytes -= flow.rate_bytes_per_us * elapsed_us;
    if (flow.remaining_bytes <= 1e-6) {
      flow.remaining_bytes = 0;
      finished.push_back(id);
    }
  }
  for (FlowId id : finished) {
    auto node = flows_.extract(id);
    if (node.mapped().has_stall_event) {
      loop_.Cancel(node.mapped().stall_event);
    }
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("net.flows_completed")->Increment();
      meters->GetHistogram("net.flow_duration_us")
          ->Record(static_cast<double>(now - node.mapped().created_at));
    }
    if (TraceRecorder* tracer = loop_.tracer()) {
      tracer->AddAsyncEnd("net", "flow", id, now);
    }
    if (node.mapped().done) {
      node.mapped().done(now);
    }
  }
}

void FlowScheduler::Reschedule() {
  if (has_pending_event_) {
    loop_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.fair_share_recomputes")->Increment();
  }

  // Max-min fair allocation by progressive filling over links. Keyed by
  // creation order (LinkIdLess), not pointer: the min-share scan iterates
  // these maps, and address-ordered iteration would make float rounding —
  // and therefore reported bandwidths — vary run to run.
  std::map<Link*, double, LinkIdLess> capacity;    // bytes/us remaining per link
  std::map<Link*, int, LinkIdLess> unfixed_count;  // unfixed flows per link
  std::vector<Flow*> unfixed;
  for (auto& [id, flow] : flows_) {
    (void)id;
    flow.rate_bytes_per_us = 0;
    if (!flow.started) {
      continue;
    }
    unfixed.push_back(&flow);
    for (Link* link : flow.links) {
      // A downed link contributes zero capacity: flows crossing it rate at
      // 0 and (with a stall_timeout) eventually fail instead of hanging.
      capacity.emplace(link,
                       link->is_down() ? 0.0 : static_cast<double>(link->bandwidth_bps()) / 8e6);
      ++unfixed_count[link];
    }
  }

  while (!unfixed.empty()) {
    // Find the most contended link's per-flow share.
    double min_share = std::numeric_limits<double>::infinity();
    for (const auto& [link, count] : unfixed_count) {
      if (count > 0) {
        min_share = std::min(min_share, capacity[link] / count);
      }
    }
    if (!std::isfinite(min_share)) {
      // Flows with empty routes (loopback): unconstrained, finish "instantly"
      // at a very high nominal rate.
      for (Flow* flow : unfixed) {
        flow->rate_bytes_per_us = 1e9;
      }
      break;
    }
    // Fix every flow bottlenecked at that share.
    std::vector<Flow*> still_unfixed;
    for (Flow* flow : unfixed) {
      bool bottlenecked = flow->links.empty();
      for (Link* link : flow->links) {
        if (capacity[link] / unfixed_count[link] <= min_share + 1e-12) {
          bottlenecked = true;
          break;
        }
      }
      if (bottlenecked) {
        flow->rate_bytes_per_us = min_share;
        for (Link* link : flow->links) {
          capacity[link] -= min_share;
          --unfixed_count[link];
        }
      } else {
        still_unfixed.push_back(flow);
      }
    }
    NYMIX_CHECK_MSG(still_unfixed.size() < unfixed.size(), "waterfilling did not progress");
    unfixed = std::move(still_unfixed);
  }

  // Stall bookkeeping: a started flow rated 0 with a stall deadline either
  // arms its deadline or, if rates recovered, disarms it.
  const SimTime now = loop_.now();
  for (auto& [id, flow] : flows_) {
    if (!flow.started || flow.options.stall_timeout == 0) {
      continue;
    }
    const bool rate_zero = flow.rate_bytes_per_us <= 0 && flow.remaining_bytes > 0;
    if (rate_zero && !flow.stalled) {
      flow.stalled = true;
      flow.stalled_since = now;
      const FlowId flow_id = id;
      flow.stall_event = loop_.ScheduleAfter(flow.options.stall_timeout, [this, flow_id] {
        auto it = flows_.find(flow_id);
        if (it == flows_.end() || !it->second.stalled) {
          return;
        }
        it->second.has_stall_event = false;
        // Nothing rescheduled since the stall began; if the route flapped
        // back up in the meantime, rejoin the competition instead of dying.
        bool route_up = true;
        for (const Link* link : it->second.links) {
          if (link->is_down()) {
            route_up = false;
            break;
          }
        }
        Settle();
        if (route_up) {
          it->second.stalled = false;
          Reschedule();
          return;
        }
        FailFlow(flow_id, UnavailableError("flow stalled: route down"), "net.flows_stalled");
        Reschedule();
      });
      flow.has_stall_event = true;
      if (MetricsRegistry* meters = loop_.meters()) {
        meters->GetCounter("net.flow_stall_watches")->Increment();
      }
    } else if (!rate_zero && flow.stalled) {
      flow.stalled = false;
      if (flow.has_stall_event) {
        loop_.Cancel(flow.stall_event);
        flow.has_stall_event = false;
      }
    }
  }

  // Schedule the earliest completion.
  double min_eta_us = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    (void)id;
    if (flow.started && flow.rate_bytes_per_us > 0) {
      min_eta_us = std::min(min_eta_us, flow.remaining_bytes / flow.rate_bytes_per_us);
    }
  }
  if (std::isfinite(min_eta_us)) {
    SimDuration delay = static_cast<SimDuration>(min_eta_us) + 1;
    pending_event_ = loop_.ScheduleAfter(delay, [this] {
      has_pending_event_ = false;
      Settle();
      Reschedule();
    });
    has_pending_event_ = true;
  }
}

}  // namespace nymix
