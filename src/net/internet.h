// Internet: the simulation's wide-area network. Remote hosts (websites,
// cloud storage front-ends, Tor relays, Dissent servers, the DeterLab
// download server) register here by name and public IP; clients reach them
// through uplink links attached to the Internet node. A tiny DNS maps names
// to addresses, and packet replies are routed back down the uplink the
// request arrived on.
#ifndef SRC_NET_INTERNET_H_
#define SRC_NET_INTERNET_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/net/link.h"

namespace nymix {

class Internet;

class InternetHost {
 public:
  virtual ~InternetHost() = default;

  // Handles a datagram addressed to this host; `reply` routes a response
  // back toward the sender.
  virtual void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) = 0;
};

class Internet : public PacketSink {
 public:
  explicit Internet(EventLoop& loop) : loop_(loop) {}

  // Attaches a client-side uplink; the Internet is side B.
  void AttachUplink(Link* uplink);

  // Sequentially allocated public addresses (203.0.113.0/24 then onward).
  Ipv4Address AllocatePublicIp();

  // Registers a host under `name` at a fresh public IP; returns the IP.
  // `access_link` (optional) is the server's own last-mile link; flows to
  // the host traverse it in addition to the client-side links.
  Ipv4Address RegisterHost(const std::string& name, InternetHost* host,
                           Link* access_link = nullptr);
  void UnregisterHost(const std::string& name);

  // Server-side link for flow routes (nullptr if unconstrained).
  Link* AccessLink(Ipv4Address ip) const;

  // DNS lookup (the CommVM's DNS path, §4.1).
  Result<Ipv4Address> Resolve(const std::string& name) const;

  InternetHost* FindHost(Ipv4Address ip) const;

  // Marks a registered host down/up without unregistering it (relay crash /
  // restart). Packets to a down host vanish exactly like packets to an
  // unknown address — the §5.1 "as if the host did not exist" behavior.
  void SetHostUp(Ipv4Address ip, bool up);
  bool HostUp(Ipv4Address ip) const { return down_hosts_.find(ip) == down_hosts_.end(); }

  // Server-to-server datagram (relay-to-relay circuit extension, backend
  // replication...): delivered after both hosts' access latencies; the
  // destination's reply is routed back to `reply_to_sender`.
  void SendBetweenHosts(Ipv4Address from_ip, Packet packet,
                        std::function<void(Packet)> reply_to_sender);

  void OnPacket(const Packet& packet, Link& link, bool from_a) override;

  uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  EventLoop& loop_;
  std::map<std::string, Ipv4Address> dns_;
  std::map<Ipv4Address, InternetHost*> hosts_;
  std::map<Ipv4Address, Link*> access_links_;
  std::set<Ipv4Address> down_hosts_;
  uint32_t next_ip_ = 0;
  uint64_t dropped_no_route_ = 0;
};

}  // namespace nymix

#endif  // SRC_NET_INTERNET_H_
