// PacketCapture: the simulation's Wireshark. §5.1 validates Nymix by
// capturing at the host uplink and checking that an idle client emits only
// DHCP and anonymizer traffic, and that AnonVMs emit nothing directly.
#ifndef SRC_NET_CAPTURE_H_
#define SRC_NET_CAPTURE_H_

#include <map>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/util/sim_clock.h"

namespace nymix {

struct CapturedPacket {
  SimTime time = 0;
  Packet packet;
};

class PacketCapture {
 public:
  void Record(SimTime time, const Packet& packet);

  const std::vector<CapturedPacket>& packets() const { return packets_; }
  size_t size() const { return packets_.size(); }
  void Clear() { packets_.clear(); }

  // Count of packets whose annotation matches exactly.
  size_t CountAnnotation(std::string_view annotation) const;

  // Distinct annotations seen with their counts (the §5.1 audit table).
  std::map<std::string, size_t> AnnotationHistogram() const;

  // True if every captured packet's annotation is in `allowed`.
  bool OnlyContains(const std::vector<std::string>& allowed) const;

  // Packets from / to a given IP.
  std::vector<CapturedPacket> FromIp(Ipv4Address ip) const;

 private:
  std::vector<CapturedPacket> packets_;
};

}  // namespace nymix

#endif  // SRC_NET_CAPTURE_H_
