// Flow-level bulk transfers with max-min fair bandwidth sharing.
//
// Packet-level simulation of a 77 MB kernel download would be pointless
// detail; instead a Flow claims capacity on every Link along its Route and
// the scheduler waterfills rates across competing flows, recomputing
// whenever a flow starts or finishes. This reproduces Figure 5's behaviour:
// N nyms share the 10 Mbit bottleneck almost exactly N-ways, and the Tor
// cell overhead appears as a per-flow byte inflation factor.
//
// Model notes (documented substitutions): transfers begin after one route
// RTT (connection + request); TCP slow-start and congestion dynamics are
// abstracted away, which is faithful to the paper's rate-limited DeterLab
// setup where flows are long and the bottleneck is a hard shaper.
#ifndef SRC_NET_FLOW_H_
#define SRC_NET_FLOW_H_

#include <functional>
#include <map>
#include <vector>

#include "src/net/link.h"
#include "src/util/event_loop.h"

namespace nymix {

struct Route {
  std::vector<Link*> links;
  // One-way propagation for the whole path; the flow starts after 2x this
  // (connection setup + request).
  SimDuration one_way_latency = 0;

  static Route Through(std::vector<Link*> links);
};

using FlowId = uint64_t;

class FlowScheduler {
 public:
  explicit FlowScheduler(EventLoop& loop) : loop_(loop) {}

  // Transfers `bytes * overhead_factor` wire bytes along `route`; calls
  // `done` with the completion time. `overhead_factor` >= 1 models protocol
  // framing (Tor cells ~1.12, Dissent DC-net much higher).
  FlowId StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                   std::function<void(SimTime)> done);

  // Cancels an in-progress flow (nym terminated mid-download). False if the
  // flow already completed.
  bool CancelFlow(FlowId id);

  size_t active_flows() const { return flows_.size(); }

  // Current fair-share rate of a flow in bits/s (0 if unknown/not started).
  uint64_t FlowRateBps(FlowId id) const;

 private:
  struct Flow {
    std::vector<Link*> links;
    double remaining_bytes = 0;
    double rate_bytes_per_us = 0;
    bool started = false;  // becomes true after the setup RTT
    SimTime created_at = 0;
    std::function<void(SimTime)> done;
  };

  // Advances all running flows to now, completing any that finished.
  void Settle();
  // Recomputes max-min fair rates and schedules the next completion event.
  void Reschedule();

  EventLoop& loop_;
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  SimTime last_settle_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
};

}  // namespace nymix

#endif  // SRC_NET_FLOW_H_
