// Flow-level bulk transfers with max-min fair bandwidth sharing.
//
// Packet-level simulation of a 77 MB kernel download would be pointless
// detail; instead a Flow claims capacity on every Link along its Route and
// the scheduler waterfills rates across competing flows, recomputing
// whenever a flow starts or finishes. This reproduces Figure 5's behaviour:
// N nyms share the 10 Mbit bottleneck almost exactly N-ways, and the Tor
// cell overhead appears as a per-flow byte inflation factor.
//
// Model notes (documented substitutions): transfers begin after one route
// RTT (connection + request); TCP slow-start and congestion dynamics are
// abstracted away, which is faithful to the paper's rate-limited DeterLab
// setup where flows are long and the bottleneck is a hard shaper.
//
// Failure model: a flow crossing lossy links (LinkFaultProfile) may abort
// with a Status instead of completing — the seeded roll happens at start so
// the event count stays flow-level — and a flow whose route goes down stalls
// at rate 0 and fails after FlowOptions::stall_timeout rather than hanging
// the event loop forever.
#ifndef SRC_NET_FLOW_H_
#define SRC_NET_FLOW_H_

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/net/link.h"
#include "src/util/event_loop.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {

struct Route {
  std::vector<Link*> links;
  // One-way propagation for the whole path; the flow starts after 2x this
  // (connection setup + request).
  SimDuration one_way_latency = 0;

  static Route Through(std::vector<Link*> links);
};

using FlowId = uint64_t;

// Failure-detection knobs for a flow. Defaults preserve the failure-free
// pre-fault behavior: no stall deadline, and loss aborts only fire on
// routes whose links actually carry a fault profile.
struct FlowOptions {
  // Fail with kUnavailable if the flow spends this long at rate 0 while
  // started (all paths down). 0 = never (legacy behavior: hang).
  SimDuration stall_timeout = 0;
  // Whether lossy links may abort this flow.
  bool fail_on_loss = true;
  // A flow is modeled as aborting when loss defeats retransmission; the
  // per-link abort chance is min(1, loss_probability * this multiplier),
  // independent across route links. 4.0 makes transfers robust below ~10%
  // loss and mostly doomed above ~25%, matching TCP-over-Tor intuition.
  double loss_abort_multiplier = 4.0;
};

class FlowScheduler {
 public:
  explicit FlowScheduler(EventLoop& loop) : loop_(loop) {}

  // Seeds the loss-abort stream (FaultInjector::SeedFor("net.flows")).
  // Without a seed, loss aborts are disabled and flows always run to
  // completion as before.
  void SeedFaults(uint64_t seed) { loss_prng_.emplace(seed); }

  // Transfers `bytes * overhead_factor` wire bytes along `route`; calls
  // `done` with the completion time. `overhead_factor` >= 1 models protocol
  // framing (Tor cells ~1.12, Dissent DC-net much higher). Legacy form:
  // failures (loss abort, cancellation) are swallowed — `done` simply never
  // fires — so callers that care about faults must use the Status form.
  FlowId StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                   std::function<void(SimTime)> done);

  // Status form: `done` fires exactly once — with the completion time on
  // success, or kUnavailable (loss abort, stall) / kCancelled (CancelFlow).
  FlowId StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                   const FlowOptions& options, std::function<void(Result<SimTime>)> done);

  // Cancels an in-progress flow (nym terminated mid-download). False if the
  // flow already completed. A Status-form flow's callback fires kCancelled.
  bool CancelFlow(FlowId id);

  size_t active_flows() const { return flows_.size(); }

  // Current fair-share rate of a flow in bits/s (0 if unknown/not started).
  uint64_t FlowRateBps(FlowId id) const;

 private:
  struct Flow {
    std::vector<Link*> links;
    double remaining_bytes = 0;
    double rate_bytes_per_us = 0;
    bool started = false;  // becomes true after the setup RTT
    SimTime created_at = 0;
    FlowOptions options;
    // Loss abort decided at start (seeded): the flow dies when setup ends.
    bool doomed = false;
    // Stall tracking: set while the flow is started but rated 0.
    bool stalled = false;
    SimTime stalled_since = 0;
    uint64_t stall_event = 0;
    bool has_stall_event = false;
    std::function<void(Result<SimTime>)> done;
  };

  // Advances all running flows to now, completing any that finished.
  void Settle();
  // Recomputes max-min fair rates and schedules the next completion event.
  void Reschedule();
  // Removes the flow and fires its callback with a failure Status.
  void FailFlow(FlowId id, Status status, const char* counter);

  EventLoop& loop_;
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  SimTime last_settle_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
  std::optional<Prng> loss_prng_;
};

}  // namespace nymix

#endif  // SRC_NET_FLOW_H_
