// Flow-level bulk transfers with max-min fair bandwidth sharing.
//
// Packet-level simulation of a 77 MB kernel download would be pointless
// detail; instead a Flow claims capacity on every Link along its Route and
// the scheduler waterfills rates across competing flows, recomputing
// whenever a flow starts or finishes. This reproduces Figure 5's behaviour:
// N nyms share the 10 Mbit bottleneck almost exactly N-ways, and the Tor
// cell overhead appears as a per-flow byte inflation factor.
//
// Rescheduling is dirty-driven (docs/performance.md): the scheduler keeps
// per-link membership (which started flows cross each link) and a set of
// links whose membership or capacity changed since the last waterfill. A
// Reschedule with nothing dirty skips the waterfill outright; otherwise it
// re-waterfills only the connected component(s) reachable from the dirty
// links. Components cannot affect each other's max-min rates, so the
// restricted waterfill assigns the same rates the global one would — the
// one cross-component coupling is flows with empty routes (rated at the
// global first-round min share), so any dirt while one is live forces a
// full pass. set_full_recompute(true) restores the pre-incremental
// recompute-the-world behavior as the reference for equivalence tests and
// wall-clock benchmarks; both modes produce byte-identical traces because
// the completion-event scan and scheduling below are shared.
//
// Model notes (documented substitutions): transfers begin after one route
// RTT (connection + request); TCP slow-start and congestion dynamics are
// abstracted away, which is faithful to the paper's rate-limited DeterLab
// setup where flows are long and the bottleneck is a hard shaper.
//
// Failure model: a flow crossing lossy links (LinkFaultProfile) may abort
// with a Status instead of completing — the seeded roll happens at start so
// the event count stays flow-level — and a flow whose route goes down stalls
// at rate 0 and fails after FlowOptions::stall_timeout rather than hanging
// the event loop forever.
#ifndef SRC_NET_FLOW_H_
#define SRC_NET_FLOW_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/net/link.h"
#include "src/util/event_loop.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {

struct Route {
  std::vector<Link*> links;
  // One-way propagation for the whole path; the flow starts after 2x this
  // (connection setup + request).
  SimDuration one_way_latency = 0;

  static Route Through(std::vector<Link*> links);
};

using FlowId = uint64_t;

// Failure-detection knobs for a flow. Defaults preserve the failure-free
// pre-fault behavior: no stall deadline, and loss aborts only fire on
// routes whose links actually carry a fault profile.
struct FlowOptions {
  // Fail with kUnavailable if the flow spends this long at rate 0 while
  // started (all paths down). 0 = never (legacy behavior: hang).
  SimDuration stall_timeout = 0;
  // Whether lossy links may abort this flow.
  bool fail_on_loss = true;
  // A flow is modeled as aborting when loss defeats retransmission; the
  // per-link abort chance is min(1, loss_probability * this multiplier),
  // independent across route links. 4.0 makes transfers robust below ~10%
  // loss and mostly doomed above ~25%, matching TCP-over-Tor intuition.
  double loss_abort_multiplier = 4.0;
};

class FlowScheduler {
 public:
  explicit FlowScheduler(EventLoop& loop) : loop_(loop) {}

  // Seeds the loss-abort stream (FaultInjector::SeedFor("net.flows")).
  // Without a seed, loss aborts are disabled and flows always run to
  // completion as before.
  void SeedFaults(uint64_t seed) { loss_prng_.emplace(seed); }

  // Transfers `bytes * overhead_factor` wire bytes along `route`; calls
  // `done` with the completion time. `overhead_factor` >= 1 models protocol
  // framing (Tor cells ~1.12, Dissent DC-net much higher). Legacy form:
  // failures (loss abort, cancellation) are swallowed — `done` simply never
  // fires — so callers that care about faults must use the Status form.
  FlowId StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                   std::function<void(SimTime)> done);

  // Status form: `done` fires exactly once — with the completion time on
  // success, or kUnavailable (loss abort, stall) / kCancelled (CancelFlow).
  FlowId StartFlow(const Route& route, uint64_t bytes, double overhead_factor,
                   const FlowOptions& options, std::function<void(Result<SimTime>)> done);

  // Cancels an in-progress flow (nym terminated mid-download). False if the
  // flow already completed. A Status-form flow's callback fires kCancelled.
  bool CancelFlow(FlowId id);

  size_t active_flows() const { return flows_.size(); }

  // Current fair-share rate of a flow in bits/s (0 if unknown/not started).
  uint64_t FlowRateBps(FlowId id) const;

  // Marks `link` dirty (capacity changed: SetDown flap). Rates only move at
  // the next Reschedule, exactly as before the incremental scheduler. Wired
  // from Link::SetDown via Link::set_flow_scheduler.
  void NoteLinkStateChanged(Link* link) { dirty_links_.insert(link); }

  // Reference implementation hook: waterfill every flow over every link on
  // every Reschedule (the pre-incremental behavior). Benches use it for
  // wall-clock comparison; equivalence tests assert identical rates and
  // byte-identical traces against it.
  void set_full_recompute(bool full) { full_recompute_ = full; }
  bool full_recompute() const { return full_recompute_; }

  // Waterfill-effort introspection (always counted, metrics attached or
  // not): how many Reschedules ran the full waterfill, a component-restricted
  // one, or skipped the computation entirely.
  uint64_t waterfills_full() const { return waterfills_full_; }
  uint64_t waterfills_component() const { return waterfills_component_; }
  uint64_t waterfill_skips() const { return waterfill_skips_; }

 private:
  struct Flow {
    std::vector<Link*> links;
    double remaining_bytes = 0;
    double wire_bytes_total = 0;  // initial remaining_bytes, for tap reports
    double rate_bytes_per_us = 0;
    bool started = false;  // becomes true after the setup RTT
    SimTime created_at = 0;
    FlowOptions options;
    // Loss abort decided at start (seeded): the flow dies when setup ends.
    bool doomed = false;
    // Stall tracking: set while the flow is started but rated 0.
    bool stalled = false;
    SimTime stalled_since = 0;
    uint64_t stall_event = 0;
    bool has_stall_event = false;
    std::function<void(Result<SimTime>)> done;
  };

  // Which started flows cross a link. flow_ids is kept sorted and may hold
  // duplicates (a route may cross the same link twice — each crossing claims
  // a capacity share, matching the waterfill's multiplicity accounting).
  struct LinkState {
    std::vector<FlowId> flow_ids;
  };

  // Advances all running flows to now, completing any that finished.
  void Settle();
  // Reports a finished flow (completed or not) to the taps of every unique
  // link on its route (src/net/tap.h). Deduplicated and ordered by link id,
  // so observation order is reproducible.
  void NotifyFlowTaps(FlowId id, const Flow& flow, bool completed);
  // Refreshes rates (full / component / skip as dirtiness requires) and
  // schedules the next completion event.
  void Reschedule();
  // Removes the flow and fires its callback with a failure Status.
  void FailFlow(FlowId id, Status status, const char* counter);

  // Membership bookkeeping: called when a flow becomes started / when a
  // started flow is removed. Marks the flow's links dirty.
  void AddFlowMembership(FlowId id, const Flow& flow);
  void RemoveFlowMembership(FlowId id, const Flow& flow);

  // Waterfills `flow_ids` (ascending) over exactly the links they cross.
  // Pass every started flow for the reference full pass; pass one dirty
  // closure for the restricted pass.
  void Waterfill(const std::vector<FlowId>& flow_ids);
  // Stall-deadline arm/disarm for `flow_ids` (ascending). Only flows whose
  // rate was just recomputed can transition, so restricting the scan keeps
  // the scheduled-event sequence identical to a full scan.
  void UpdateStallWatches(const std::vector<FlowId>& flow_ids);
  void RefreshMeters();

  EventLoop& loop_;
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  SimTime last_settle_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
  std::optional<Prng> loss_prng_;

  // --- Incremental fair-share state --------------------------------------
  bool full_recompute_ = false;
  // Keyed by creation order (LinkIdLess), never address: iteration reaches
  // the waterfill's float rounding and must be reproducible run to run.
  std::map<Link*, LinkState, LinkIdLess> link_states_;
  std::set<Link*, LinkIdLess> dirty_links_;
  // Set when an empty-route flow starts: its rate is the global first-round
  // min share, the one value a component-restricted pass cannot see.
  bool global_dirty_ = false;
  int started_empty_route_flows_ = 0;

  uint64_t waterfills_full_ = 0;
  uint64_t waterfills_component_ = 0;
  uint64_t waterfill_skips_ = 0;

  // Cached instruments, refreshed when the loop's observability epoch
  // moves (see EventLoop::observability_epoch()).
  uint64_t meters_epoch_ = 0;
  Counter* recomputes_counter_ = nullptr;
  Counter* skipped_counter_ = nullptr;
  Counter* flows_started_counter_ = nullptr;
  Counter* wire_bytes_counter_ = nullptr;
  Counter* flows_completed_counter_ = nullptr;
  Histogram* flow_duration_histogram_ = nullptr;
};

}  // namespace nymix

#endif  // SRC_NET_FLOW_H_
