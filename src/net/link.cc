#include "src/net/link.h"

namespace nymix {

namespace {
// Process-wide creation counter. The sim is single-threaded (enforced by
// nymlint's sim-thread rule), and only the *relative* order of ids matters,
// so a plain static is deterministic.
uint64_t next_link_id = 1;
}  // namespace

Link::Link(EventLoop& loop, std::string name, SimDuration latency, uint64_t bandwidth_bps)
    : loop_(loop),
      id_(next_link_id++),
      name_(std::move(name)),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps) {
  NYMIX_CHECK(bandwidth_bps_ > 0);
}

void Link::Send(Packet packet, bool from_a) {
  if (capture_ != nullptr) {
    capture_->Record(loop_.now(), packet);
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.link.packets_sent")->Increment();
    meters->GetCounter("net.link.bytes_sent")->Increment(packet.WireSize());
  }
  SimDuration serialization =
      static_cast<SimDuration>(packet.WireSize() * 8 * 1'000'000 / bandwidth_bps_);
  SimDuration delay = latency_ + serialization;
  loop_.ScheduleAfter(delay, [this, packet = std::move(packet), from_a]() mutable {
    PacketSink* sink = from_a ? b_ : a_;
    if (sink == nullptr) {
      ++dropped_;
      return;
    }
    ++delivered_;
    sink->OnPacket(packet, *this, from_a);
  });
}

}  // namespace nymix
