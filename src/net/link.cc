#include "src/net/link.h"

#include "src/net/flow.h"

namespace nymix {

std::string_view LinkDropReasonName(LinkDropReason reason) {
  switch (reason) {
    case LinkDropReason::kNoSink:
      return "no_sink";
    case LinkDropReason::kFault:
      return "fault";
    case LinkDropReason::kDown:
      return "down";
    case LinkDropReason::kQueueOverflow:
      return "queue_overflow";
  }
  return "unknown";
}

Link::Link(EventLoop& loop, std::string name, SimDuration latency, uint64_t bandwidth_bps)
    : loop_(loop),
      // Per-loop, not process-wide: parallel shards create links
      // concurrently, and a shard's ids must depend only on its own event
      // order (LinkIdLess feeds fair-share iteration).
      id_(loop.AllocateObjectId()),
      name_(std::move(name)),
      latency_(latency),
      bandwidth_bps_(bandwidth_bps) {
  NYMIX_CHECK(bandwidth_bps_ > 0);
}

void Link::SetFaultProfile(const LinkFaultProfile& profile, uint64_t seed) {
  fault_profile_ = profile;
  fault_prng_.emplace(seed);
}

void Link::SetDown(bool down) {
  if (down == down_) {
    return;
  }
  down_ = down;
  if (scheduler_ != nullptr) {
    // Dirty only — rates move at the scheduler's next Reschedule, matching
    // the pre-incremental behavior where a flap was observed lazily.
    scheduler_->NoteLinkStateChanged(this);
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter(down ? "net.link.down_events" : "net.link.up_events")->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddInstant("fault", (down ? "link_down:" : "link_up:") + name_, "faults",
                       loop_.now());
  }
}

uint64_t Link::packets_dropped() const {
  uint64_t total = 0;
  for (uint64_t count : dropped_by_reason_) {
    total += count;
  }
  return total;
}

void Link::Drop(LinkDropReason reason) {
  ++dropped_by_reason_[static_cast<size_t>(reason)];
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter(std::string("net.link.dropped.") + std::string(LinkDropReasonName(reason)))
        ->Increment();
  }
}

void Link::Send(Packet packet, bool from_a) {
  if (capture_ != nullptr) {
    capture_->Record(loop_.now(), packet);
  }
  if (tap_ != nullptr) {
    PacketMetadata meta;
    meta.time = loop_.now();
    meta.wire_bytes = packet.WireSize();
    meta.src_ip = packet.src_ip;
    meta.dst_ip = packet.dst_ip;
    meta.src_port = packet.src_port;
    meta.dst_port = packet.dst_port;
    meta.protocol = packet.protocol;
    meta.from_a = from_a;
    tap_->OnPacket(*this, meta);
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("net.link.packets_sent")->Increment();
    meters->GetCounter("net.link.bytes_sent")->Increment(packet.WireSize());
  }
  if (down_) {
    Drop(LinkDropReason::kDown);
    return;
  }
  if (fault_profile_.max_in_flight > 0 && in_flight_ >= fault_profile_.max_in_flight) {
    Drop(LinkDropReason::kQueueOverflow);
    return;
  }
  // Fault draws only happen on links with a profile installed, so
  // fault-free simulations consume zero Prng state here.
  bool lost = false;
  SimDuration spike = 0;
  if (fault_prng_.has_value()) {
    if (fault_profile_.loss_probability > 0.0 &&
        fault_prng_->NextDouble() < fault_profile_.loss_probability) {
      lost = true;
    } else if (fault_profile_.spike_probability > 0.0 &&
               fault_prng_->NextDouble() < fault_profile_.spike_probability) {
      spike = fault_profile_.spike_latency;
    }
  }
  if (lost) {
    Drop(LinkDropReason::kFault);
    return;
  }
  SimDuration serialization =
      static_cast<SimDuration>(packet.WireSize() * 8 * 1'000'000 / bandwidth_bps_);
  SimDuration delay = latency_ + serialization + spike;
  if (remote_forward_) {
    // Cross-shard half-link: the full local pipeline above (capture, meters,
    // drop reasons, fault draws, delay computation) has run; delivery is the
    // executor's job, at deliver_at in the peer shard. Only the local side
    // (A) ever sends on a half-link, and max_in_flight is not modeled across
    // shards (in_flight_ stays 0, so the overflow check never trips).
    NYMIX_CHECK(from_a);
    // A promised send window is load-bearing for the executor's adaptive
    // horizon: a send outside the window would let a delivery land inside
    // an epoch another shard already executed past.
    NYMIX_CHECK_MSG(remote_schedule_.period <= 0 ||
                        loop_.now() == NextSendWindow(remote_schedule_, loop_.now()),
                    "cross-shard send outside its promised send window");
    remote_forward_(std::move(packet), loop_.now() + delay);
    return;
  }
  ++in_flight_;
  loop_.ScheduleAfter(delay, [this, packet = std::move(packet), from_a]() mutable {
    --in_flight_;
    PacketSink* sink = from_a ? b_ : a_;
    if (sink == nullptr) {
      Drop(LinkDropReason::kNoSink);
      return;
    }
    ++delivered_;
    sink->OnPacket(packet, *this, from_a);
  });
}

void Link::DeliverFromRemote(const Packet& packet) {
  PacketSink* sink = a_;
  if (sink == nullptr) {
    Drop(LinkDropReason::kNoSink);
    return;
  }
  ++delivered_;
  sink->OnPacket(packet, *this, /*from_a=*/false);
}

}  // namespace nymix
