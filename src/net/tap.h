// LinkTap: the adversary's vantage point. A passive observer clamped onto
// a Link sees exactly what a wire tap at an entry or exit relay would see —
// timing, size, endpoint addresses, protocol — and nothing else. The
// metadata structs below are the *entire* observation surface: they carry no
// payload bytes and no annotation string by construction, so an attack
// analyzer written against them is physically incapable of cheating by
// reading content (tests/adversary_test.cc pins this with a negative test).
//
// Contrast with PacketCapture (capture.h), the §5.1 debugging Wireshark:
// captures retain the whole Packet, payload included, because they model the
// *defender* auditing their own machine. Taps model the network adversary
// of the paper's threat model (§2), who owns the wire but not the endpoint.
//
// Determinism: taps are notified synchronously from Link::Send and from the
// FlowScheduler's flow-end paths, in virtual time, on the shard that owns
// the link. Observation order is therefore a pure function of (seed, shard
// plan) and byte-identical at every thread count, like everything else.
#ifndef SRC_NET_TAP_H_
#define SRC_NET_TAP_H_

#include <cstdint>

#include "src/net/address.h"
#include "src/net/packet.h"
#include "src/util/sim_clock.h"

namespace nymix {

class Link;

// What a tap sees of one packet on the wire. Sizes are wire sizes
// (headers + payload length); the payload itself never crosses this
// boundary.
struct PacketMetadata {
  SimTime time = 0;
  uint64_t wire_bytes = 0;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  Port src_port = 0;
  Port dst_port = 0;
  IpProtocol protocol = IpProtocol::kUdp;
  bool from_a = true;  // direction on the tapped link
};

// What a tap sees of one bulk flow that crossed its link: start/end timing
// and total wire bytes — the inputs to flow-correlation and intersection
// attacks. `flow_id` is the simulator's internal id, usable as a stable
// observation key; a real attacker would key on (time, size) tuples, which
// the analyzers in src/adversary restrict themselves to.
struct FlowMetadata {
  uint64_t flow_id = 0;
  SimTime created_at = 0;
  SimTime ended_at = 0;
  uint64_t wire_bytes = 0;
  bool completed = false;  // false: failed or cancelled mid-transfer
};

// Passive observer interface. Implementations must not mutate simulation
// state from these hooks (nymlint's determinism rules apply: no wall clock,
// no unordered iteration feeding outputs).
class LinkTap {
 public:
  virtual ~LinkTap() = default;
  virtual void OnPacket(const Link& link, const PacketMetadata& meta) = 0;
  virtual void OnFlowEnded(const Link& link, const FlowMetadata& meta) = 0;
};

}  // namespace nymix

#endif  // SRC_NET_TAP_H_
