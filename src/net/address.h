// Network addressing for the virtual network substrate: Ethernet MACs,
// IPv4 addresses, transport endpoints. Nymix deliberately gives every
// AnonVM/CommVM pair the *same* MAC and IP (§4.2 fingerprint reduction);
// these types make that explicit and testable.
#ifndef SRC_NET_ADDRESS_H_
#define SRC_NET_ADDRESS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace nymix {

struct MacAddress {
  std::array<uint8_t, 6> octets = {};

  std::string ToString() const;
  bool operator==(const MacAddress&) const = default;

  // The fixed QEMU-style MAC every AnonVM advertises (homogeneity).
  static MacAddress StandardGuest();
  static MacAddress Broadcast();
};

struct Ipv4Address {
  uint32_t value = 0;  // host byte order

  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(uint32_t v) : value(v) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) | d) {}

  std::string ToString() const;
  bool operator==(const Ipv4Address&) const = default;
  auto operator<=>(const Ipv4Address&) const = default;

  bool IsPrivate() const;
};

Result<Ipv4Address> ParseIpv4(std::string_view text);

using Port = uint16_t;

struct Endpoint {
  Ipv4Address ip;
  Port port = 0;

  std::string ToString() const;
  bool operator==(const Endpoint&) const = default;
  auto operator<=>(const Endpoint&) const = default;
};

// Well-known addresses of the simulated topology.
inline constexpr Ipv4Address kGuestAnonVmIp(10, 0, 2, 15);   // every AnonVM
inline constexpr Ipv4Address kGuestCommVmIp(10, 0, 2, 2);    // every CommVM (wire side)
inline constexpr Ipv4Address kHostLanIp(192, 168, 1, 100);
inline constexpr Ipv4Address kLanRouterIp(192, 168, 1, 1);

}  // namespace nymix

#endif  // SRC_NET_ADDRESS_H_
