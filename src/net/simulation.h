// Simulation: the root object owning virtual time, the flow scheduler, the
// Internet, link storage and the experiment's PRNG stream. Every higher
// layer (hypervisor, anonymizers, Nym Manager) hangs off one Simulation so
// an entire Figure run is a single deterministic event-driven execution.
#ifndef SRC_NET_SIMULATION_H_
#define SRC_NET_SIMULATION_H_

#include <memory>
#include <vector>

#include "src/net/flow.h"
#include "src/net/internet.h"
#include "src/util/fault.h"
#include "src/util/prng.h"

namespace nymix {

class Simulation {
 public:
  explicit Simulation(uint64_t seed);

  EventLoop& loop() { return loop_; }
  SimTime now() const { return loop_.now(); }
  FlowScheduler& flows() { return flows_; }
  Internet& internet() { return internet_; }
  Prng& prng() { return prng_; }
  FaultInjector& faults() { return faults_; }

  // Creates and owns a link.
  Link* CreateLink(std::string name, SimDuration latency, uint64_t bandwidth_bps);

  // Drives the loop until `done` holds; CHECKs that it was reached (a stuck
  // experiment is a bug, not a timeout).
  void RunUntil(const std::function<bool()>& done);
  void RunFor(SimDuration duration) { loop_.RunUntil(loop_.now() + duration); }

 private:
  EventLoop loop_;
  FlowScheduler flows_;
  Internet internet_;
  Prng prng_;
  FaultInjector faults_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace nymix

#endif  // SRC_NET_SIMULATION_H_
