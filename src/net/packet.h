// Datagram-level packets. Bulk data moves as flows (src/net/flow.h); packets
// carry control traffic (DHCP, DNS, probes, anonymizer cells) and are the
// unit observed by the §5.1 leak-validation capture.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <string>

#include "src/net/address.h"
#include "src/util/bytes.h"

namespace nymix {

enum class IpProtocol { kUdp, kTcp, kIcmp, kArp };

std::string_view IpProtocolName(IpProtocol protocol);

struct Packet {
  MacAddress src_mac;
  MacAddress dst_mac;
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  Port src_port = 0;
  Port dst_port = 0;
  IpProtocol protocol = IpProtocol::kUdp;
  Bytes payload;
  // Human-readable tag used by the capture ("DHCP", "TorCell", "Probe"...).
  std::string annotation;

  uint64_t WireSize() const { return 14 + 20 + 8 + payload.size(); }

  // One-line rendering as a Wireshark-style capture row.
  std::string Summary() const;
};

}  // namespace nymix

#endif  // SRC_NET_PACKET_H_
