// NatGateway: masquerading NAT between one or more inside links and one
// outside link. Three instances matter in Nymix: KVM's user-mode NAT giving
// each CommVM its Internet connection (§4.2), the host router carrying all
// CommVM traffic onto the physical uplink, and the incognito anonymizer
// which is "just" an IPTables masquerade (§4.1). A NAT rewrites outbound
// sources to its public address — the capture test asserting that no guest
// IP ever appears on the uplink rides on this — and drops unsolicited
// inbound packets.
#ifndef SRC_NET_NAT_H_
#define SRC_NET_NAT_H_

#include <map>
#include <set>
#include <tuple>

#include "src/net/link.h"

namespace nymix {

class NatGateway : public PacketSink {
 public:
  // The gateway attaches itself as side A of the outside link; inside links
  // are added with AttachInside (gateway is their side B).
  NatGateway(std::string name, Link* outside, Ipv4Address public_ip);

  void AttachInside(Link* inside);

  void OnPacket(const Packet& packet, Link& link, bool from_a) override;

  Ipv4Address public_ip() const { return public_ip_; }
  uint64_t translated_out() const { return translated_out_; }
  uint64_t translated_in() const { return translated_in_; }
  uint64_t dropped_unsolicited() const { return dropped_unsolicited_; }
  size_t mapping_count() const { return by_outside_port_.size(); }

 private:
  struct Mapping {
    Link* inside_link = nullptr;
    Ipv4Address inside_ip;
    Port inside_port = 0;
  };

  std::string name_;
  Link* outside_;
  Ipv4Address public_ip_;
  Port next_port_ = 32768;
  // Keyed by Link::id(), not Link*: pointer keys would order (and allocate
  // NAT ports, via next_port_) by heap address instead of creation order.
  std::map<std::tuple<uint64_t, Ipv4Address, Port>, Port> by_inside_;
  std::map<Port, Mapping> by_outside_port_;
  std::set<uint64_t> inside_link_ids_;
  uint64_t translated_out_ = 0;
  uint64_t translated_in_ = 0;
  uint64_t dropped_unsolicited_ = 0;
};

}  // namespace nymix

#endif  // SRC_NET_NAT_H_
