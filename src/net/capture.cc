#include "src/net/capture.h"

#include <algorithm>

namespace nymix {

void PacketCapture::Record(SimTime time, const Packet& packet) {
  packets_.push_back(CapturedPacket{time, packet});
}

size_t PacketCapture::CountAnnotation(std::string_view annotation) const {
  return static_cast<size_t>(
      std::count_if(packets_.begin(), packets_.end(), [&](const CapturedPacket& captured) {
        return captured.packet.annotation == annotation;
      }));
}

std::map<std::string, size_t> PacketCapture::AnnotationHistogram() const {
  std::map<std::string, size_t> histogram;
  for (const auto& captured : packets_) {
    ++histogram[captured.packet.annotation];
  }
  return histogram;
}

bool PacketCapture::OnlyContains(const std::vector<std::string>& allowed) const {
  return std::all_of(packets_.begin(), packets_.end(), [&](const CapturedPacket& captured) {
    return std::find(allowed.begin(), allowed.end(), captured.packet.annotation) != allowed.end();
  });
}

std::vector<CapturedPacket> PacketCapture::FromIp(Ipv4Address ip) const {
  std::vector<CapturedPacket> out;
  for (const auto& captured : packets_) {
    if (captured.packet.src_ip == ip) {
      out.push_back(captured);
    }
  }
  return out;
}

}  // namespace nymix
