#include "src/net/nat.h"

namespace nymix {

NatGateway::NatGateway(std::string name, Link* outside, Ipv4Address public_ip)
    : name_(std::move(name)), outside_(outside), public_ip_(public_ip) {
  NYMIX_CHECK(outside_ != nullptr);
  outside_->AttachA(this);
}

void NatGateway::AttachInside(Link* inside) {
  NYMIX_CHECK(inside != nullptr);
  inside->AttachB(this);
  inside_link_ids_.insert(inside->id());
}

void NatGateway::OnPacket(const Packet& packet, Link& link, bool from_a) {
  (void)from_a;
  if (&link == outside_) {
    // Inbound: only packets matching an existing mapping pass.
    if (packet.dst_ip != public_ip_) {
      ++dropped_unsolicited_;
      return;
    }
    auto it = by_outside_port_.find(packet.dst_port);
    if (it == by_outside_port_.end()) {
      ++dropped_unsolicited_;
      return;
    }
    Packet translated = packet;
    translated.dst_ip = it->second.inside_ip;
    translated.dst_port = it->second.inside_port;
    ++translated_in_;
    it->second.inside_link->SendFromB(std::move(translated));
    return;
  }

  NYMIX_CHECK_MSG(inside_link_ids_.count(link.id()) > 0, "NAT received packet on unknown link");
  // Outbound: allocate (or reuse) a port mapping and masquerade.
  auto key = std::make_tuple(link.id(), packet.src_ip, packet.src_port);
  auto it = by_inside_.find(key);
  if (it == by_inside_.end()) {
    Port outside_port = next_port_++;
    it = by_inside_.emplace(key, outside_port).first;
    by_outside_port_[outside_port] = Mapping{&link, packet.src_ip, packet.src_port};
  }
  Packet translated = packet;
  translated.src_ip = public_ip_;
  translated.src_port = it->second;
  ++translated_out_;
  outside_->SendFromA(std::move(translated));
}

}  // namespace nymix
