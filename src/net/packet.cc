#include "src/net/packet.h"

namespace nymix {

std::string_view IpProtocolName(IpProtocol protocol) {
  switch (protocol) {
    case IpProtocol::kUdp:
      return "UDP";
    case IpProtocol::kTcp:
      return "TCP";
    case IpProtocol::kIcmp:
      return "ICMP";
    case IpProtocol::kArp:
      return "ARP";
  }
  return "?";
}

std::string Packet::Summary() const {
  std::string out;
  out += src_ip.ToString() + ":" + std::to_string(src_port);
  out += " -> ";
  out += dst_ip.ToString() + ":" + std::to_string(dst_port);
  out += " ";
  out += IpProtocolName(protocol);
  out += " len=" + std::to_string(WireSize());
  if (!annotation.empty()) {
    out += " [" + annotation + "]";
  }
  return out;
}

}  // namespace nymix
