// Link: a point-to-point virtual wire between two packet sinks, with
// propagation latency and serialization bandwidth. The AnonVM<->CommVM
// "virtual wire" (§4.2), the CommVM's NAT uplink, the host's 10 Mbit
// DeterLab-style uplink, and inter-relay links are all Links. A Link with a
// missing sink silently drops — that is the mechanism behind the §5.1
// observation that probes to nonexistent neighbors "fail with no-response,
// as if the host did not exist."
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <array>
#include <functional>
#include <optional>
#include <string>

#include "src/net/capture.h"
#include "src/net/packet.h"
#include "src/net/tap.h"
#include "src/util/event_loop.h"
#include "src/util/prng.h"

namespace nymix {

class FlowScheduler;
class Link;

// Why a packet was dropped instead of delivered. kNoSink is the benign
// baseline (the §5.1 "as if the host did not exist" mechanism); the rest
// are injected or induced faults.
enum class LinkDropReason {
  kNoSink = 0,        // no sink attached on the receiving side
  kFault = 1,         // seeded random loss (LinkFaultProfile::loss_probability)
  kDown = 2,          // link administratively/fault down (SetDown)
  kQueueOverflow = 3, // more packets in flight than max_in_flight allows
};
inline constexpr size_t kNumLinkDropReasons = 4;

std::string_view LinkDropReasonName(LinkDropReason reason);

// Seeded fault behavior of a Link. All randomness flows from the seed
// passed to SetFaultProfile, so identically-seeded runs drop and spike the
// same packets at the same virtual times.
struct LinkFaultProfile {
  // Chance each packet is dropped in transit.
  double loss_probability = 0.0;
  // Chance each surviving packet suffers an extra latency spike.
  double spike_probability = 0.0;
  SimDuration spike_latency = 0;
  // Queue bound: packets beyond this many concurrently in flight are
  // dropped (0 = unbounded).
  uint64_t max_in_flight = 0;
};

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  // `link` is the wire the packet arrived on; `from_a` tells which side sent.
  virtual void OnPacket(const Packet& packet, Link& link, bool from_a) = 0;
};

// A send-window promise for a cross-shard half-link: every send departs at
// exactly t = phase + k * period (k >= 0). period 0 means unconstrained —
// sends may happen at any virtual time, which is the default. The promise
// is application lookahead: the parallel executor can advance a
// destination shard's horizon to the *next window* plus the wire latency
// instead of tracking the source shard's next local event, which is what
// collapses epoch counts for round-based traffic (directory fetch rounds,
// DC-net rounds). Enforced with a CHECK at send time, so a workload cannot
// quietly break the horizon proof.
struct SendSchedule {
  SimDuration period = 0;
  SimTime phase = 0;
};

// First window time >= t (identity when the schedule is unconstrained).
inline SimTime NextSendWindow(const SendSchedule& schedule, SimTime t) {
  if (schedule.period <= 0) {
    return t;
  }
  if (t <= schedule.phase) {
    return schedule.phase;
  }
  SimTime k = (t - schedule.phase + schedule.period - 1) / schedule.period;
  return schedule.phase + k * schedule.period;
}

class Link {
 public:
  Link(EventLoop& loop, std::string name, SimDuration latency, uint64_t bandwidth_bps);

  // Creation-order sequence number, drawn from the owning loop's per-loop
  // fountain (EventLoop::AllocateObjectId) so parallel shards allocate
  // without racing. Containers keyed on Link* must order by this
  // (LinkIdLess below), never by address: link creation order within a
  // shard is deterministic, heap addresses are not, and iteration order
  // reaches simulation outputs (fair-share rounding, NIC scan order).
  uint64_t id() const { return id_; }

  const std::string& name() const { return name_; }
  SimDuration latency() const { return latency_; }
  uint64_t bandwidth_bps() const { return bandwidth_bps_; }

  void AttachA(PacketSink* sink) { a_ = sink; }
  void AttachB(PacketSink* sink) { b_ = sink; }
  PacketSink* side_a() const { return a_; }
  PacketSink* side_b() const { return b_; }

  // Taps observe both directions (the §5.1 Wireshark position).
  void AttachCapture(PacketCapture* capture) { capture_ = capture; }

  // Adversary tap (src/net/tap.h): metadata-only, single slot. Sees every
  // packet put on the wire (before drop/fault resolution — a wire tap sits
  // upstream of the receiver) and every bulk flow that ends having crossed
  // this link. Unlike AttachCapture it never retains payloads.
  void AttachTap(LinkTap* tap) { tap_ = tap; }
  LinkTap* tap() const { return tap_; }

  // Schedules delivery to the opposite side after latency + serialization.
  void SendFromA(Packet packet) { Send(std::move(packet), /*from_a=*/true); }
  void SendFromB(Packet packet) { Send(std::move(packet), /*from_a=*/false); }

  // Installs (or clears, with a default profile) seeded fault behavior.
  // The seed should come from FaultInjector::SeedFor so one experiment seed
  // governs every link's loss stream.
  void SetFaultProfile(const LinkFaultProfile& profile, uint64_t seed);
  const LinkFaultProfile& fault_profile() const { return fault_profile_; }
  double loss_probability() const { return fault_profile_.loss_probability; }

  // A down link drops everything (flap it from a FaultInjector schedule).
  void SetDown(bool down);
  bool is_down() const { return down_; }

  // --- Cross-shard endpoints (src/parallel) -----------------------------
  // A cross-shard wire is modeled as two half-links, one per shard, bridged
  // by a mailbox: on each half-link the local endpoint is side A and side B
  // is remote. With a forward installed, SendFromA runs the normal local
  // pipeline (capture, drop reasons, fault draws, latency + serialization
  // into `deliver_at`) but hands (packet, deliver_at) to the forward
  // instead of scheduling local delivery; the peer half-link's
  // DeliverFromRemote is the inbound end, invoked by the executor at
  // exactly `deliver_at` in the destination shard. Cross-shard causality is
  // safe because deliver_at >= send time + latency >= the executor's
  // lookahead horizon (ShardedSimulation computes its lookahead as the
  // minimum latency over all cross-shard half-links).
  void set_remote_forward(std::function<void(Packet, SimTime deliver_at)> forward) {
    remote_forward_ = std::move(forward);
  }
  bool remote() const { return static_cast<bool>(remote_forward_); }
  // Promises that every outbound send on this half-link departs on a
  // window of `schedule` (CHECKed in Send). Meaningful only on remote
  // half-links; CrossShardChannel::PromiseSendWindows installs it.
  void set_remote_send_schedule(SendSchedule schedule) { remote_schedule_ = schedule; }
  const SendSchedule& remote_send_schedule() const { return remote_schedule_; }
  // Delivers an inbound cross-shard packet to the local side-A sink (drops
  // with kNoSink when nothing is attached, like any other link).
  void DeliverFromRemote(const Packet& packet);

  // Wired by Simulation::CreateLink so SetDown can mark this link dirty in
  // the flow scheduler's incremental fair-share state. Rates still only
  // move at the next Reschedule — flapping a link does not itself trigger
  // a recompute, exactly as before the incremental scheduler existed.
  void set_flow_scheduler(FlowScheduler* scheduler) { scheduler_ = scheduler; }

  uint64_t packets_delivered() const { return delivered_; }
  // Total drops across all reasons (back-compat with pre-fault callers).
  uint64_t packets_dropped() const;
  uint64_t packets_dropped(LinkDropReason reason) const {
    return dropped_by_reason_[static_cast<size_t>(reason)];
  }

 private:
  void Send(Packet packet, bool from_a);
  void Drop(LinkDropReason reason);

  EventLoop& loop_;
  uint64_t id_;
  std::string name_;
  SimDuration latency_;
  uint64_t bandwidth_bps_;
  PacketSink* a_ = nullptr;
  PacketSink* b_ = nullptr;
  PacketCapture* capture_ = nullptr;
  LinkTap* tap_ = nullptr;
  uint64_t delivered_ = 0;
  std::array<uint64_t, kNumLinkDropReasons> dropped_by_reason_{};
  LinkFaultProfile fault_profile_;
  std::optional<Prng> fault_prng_;
  FlowScheduler* scheduler_ = nullptr;
  bool down_ = false;
  uint64_t in_flight_ = 0;
  std::function<void(Packet, SimTime)> remote_forward_;
  SendSchedule remote_schedule_;
};

// Comparator for Link*-keyed ordered containers: creation order, which is
// reproducible run to run, instead of allocation address, which is not.
struct LinkIdLess {
  bool operator()(const Link* a, const Link* b) const { return a->id() < b->id(); }
};

}  // namespace nymix

#endif  // SRC_NET_LINK_H_
