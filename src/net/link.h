// Link: a point-to-point virtual wire between two packet sinks, with
// propagation latency and serialization bandwidth. The AnonVM<->CommVM
// "virtual wire" (§4.2), the CommVM's NAT uplink, the host's 10 Mbit
// DeterLab-style uplink, and inter-relay links are all Links. A Link with a
// missing sink silently drops — that is the mechanism behind the §5.1
// observation that probes to nonexistent neighbors "fail with no-response,
// as if the host did not exist."
#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <string>

#include "src/net/capture.h"
#include "src/net/packet.h"
#include "src/util/event_loop.h"

namespace nymix {

class Link;

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  // `link` is the wire the packet arrived on; `from_a` tells which side sent.
  virtual void OnPacket(const Packet& packet, Link& link, bool from_a) = 0;
};

class Link {
 public:
  Link(EventLoop& loop, std::string name, SimDuration latency, uint64_t bandwidth_bps);

  // Creation-order sequence number. Containers keyed on Link* must order by
  // this (LinkIdLess below), never by address: link creation order is
  // deterministic, heap addresses are not, and iteration order reaches
  // simulation outputs (fair-share rounding, NIC scan order).
  uint64_t id() const { return id_; }

  const std::string& name() const { return name_; }
  SimDuration latency() const { return latency_; }
  uint64_t bandwidth_bps() const { return bandwidth_bps_; }

  void AttachA(PacketSink* sink) { a_ = sink; }
  void AttachB(PacketSink* sink) { b_ = sink; }
  PacketSink* side_a() const { return a_; }
  PacketSink* side_b() const { return b_; }

  // Taps observe both directions (the §5.1 Wireshark position).
  void AttachCapture(PacketCapture* capture) { capture_ = capture; }

  // Schedules delivery to the opposite side after latency + serialization.
  void SendFromA(Packet packet) { Send(std::move(packet), /*from_a=*/true); }
  void SendFromB(Packet packet) { Send(std::move(packet), /*from_a=*/false); }

  uint64_t packets_delivered() const { return delivered_; }
  uint64_t packets_dropped() const { return dropped_; }

 private:
  void Send(Packet packet, bool from_a);

  EventLoop& loop_;
  uint64_t id_;
  std::string name_;
  SimDuration latency_;
  uint64_t bandwidth_bps_;
  PacketSink* a_ = nullptr;
  PacketSink* b_ = nullptr;
  PacketCapture* capture_ = nullptr;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
};

// Comparator for Link*-keyed ordered containers: creation order, which is
// reproducible run to run, instead of allocation address, which is not.
struct LinkIdLess {
  bool operator()(const Link* a, const Link* b) const { return a->id() < b->id(); }
};

}  // namespace nymix

#endif  // SRC_NET_LINK_H_
