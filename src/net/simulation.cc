#include "src/net/simulation.h"

namespace nymix {

Simulation::Simulation(uint64_t seed)
    : flows_(loop_),
      internet_(loop_),
      prng_(seed),
      // The fault seed is derived, not `seed` itself, so fault streams stay
      // decorrelated from the experiment's main Prng stream.
      faults_(loop_, Mix64(seed ^ Fnv1a64("nymix.faults"))) {
  flows_.SeedFaults(faults_.SeedFor("net.flows"));
}

Link* Simulation::CreateLink(std::string name, SimDuration latency, uint64_t bandwidth_bps) {
  links_.push_back(std::make_unique<Link>(loop_, std::move(name), latency, bandwidth_bps));
  links_.back()->set_flow_scheduler(&flows_);
  return links_.back().get();
}

void Simulation::RunUntil(const std::function<bool()>& done) {
  bool reached = loop_.RunUntilCondition(done);
  NYMIX_CHECK_MSG(reached, "simulation went idle before the condition held");
}

}  // namespace nymix
