#include "src/net/internet.h"

namespace nymix {

void Internet::AttachUplink(Link* uplink) {
  NYMIX_CHECK(uplink != nullptr);
  uplink->AttachB(this);
}

Ipv4Address Internet::AllocatePublicIp() {
  // TEST-NET-3 and beyond; plenty for any experiment.
  uint32_t base = Ipv4Address(203, 0, 113, 1).value;
  return Ipv4Address(base + next_ip_++);
}

Ipv4Address Internet::RegisterHost(const std::string& name, InternetHost* host,
                                   Link* access_link) {
  NYMIX_CHECK(host != nullptr);
  Ipv4Address ip = AllocatePublicIp();
  dns_[name] = ip;
  hosts_[ip] = host;
  if (access_link != nullptr) {
    access_links_[ip] = access_link;
    access_link->AttachB(this);
  }
  return ip;
}

void Internet::UnregisterHost(const std::string& name) {
  auto it = dns_.find(name);
  if (it == dns_.end()) {
    return;
  }
  hosts_.erase(it->second);
  access_links_.erase(it->second);
  dns_.erase(it);
}

Link* Internet::AccessLink(Ipv4Address ip) const {
  auto it = access_links_.find(ip);
  return it == access_links_.end() ? nullptr : it->second;
}

Result<Ipv4Address> Internet::Resolve(const std::string& name) const {
  auto it = dns_.find(name);
  if (it == dns_.end()) {
    return NotFoundError("NXDOMAIN: " + name);
  }
  return it->second;
}

InternetHost* Internet::FindHost(Ipv4Address ip) const {
  if (down_hosts_.find(ip) != down_hosts_.end()) {
    return nullptr;
  }
  auto it = hosts_.find(ip);
  return it == hosts_.end() ? nullptr : it->second;
}

void Internet::SetHostUp(Ipv4Address ip, bool up) {
  if (up) {
    down_hosts_.erase(ip);
  } else {
    down_hosts_.insert(ip);
  }
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter(up ? "net.host_up_events" : "net.host_down_events")->Increment();
  }
  if (TraceRecorder* tracer = loop_.tracer()) {
    tracer->AddInstant("fault", (up ? "host_up:" : "host_down:") + ip.ToString(), "faults",
                       loop_.now());
  }
}

void Internet::SendBetweenHosts(Ipv4Address from_ip, Packet packet,
                                std::function<void(Packet)> reply_to_sender) {
  InternetHost* destination = FindHost(packet.dst_ip);
  if (destination == nullptr) {
    ++dropped_no_route_;
    return;
  }
  auto latency_of = [this](Ipv4Address ip) {
    Link* access = AccessLink(ip);
    return access != nullptr ? access->latency() : Millis(10);
  };
  SimDuration forward_latency = latency_of(from_ip) + latency_of(packet.dst_ip);
  packet.src_ip = from_ip;
  loop_.ScheduleAfter(
      forward_latency,
      [this, destination, packet = std::move(packet), forward_latency,
       reply_to_sender = std::move(reply_to_sender)]() mutable {
        destination->OnDatagram(
            packet, [this, forward_latency, reply_to_sender](Packet response) {
              loop_.ScheduleAfter(forward_latency, [reply_to_sender,
                                                    response = std::move(response)]() mutable {
                reply_to_sender(std::move(response));
              });
            });
      });
}

void Internet::OnPacket(const Packet& packet, Link& link, bool from_a) {
  (void)from_a;
  InternetHost* host = FindHost(packet.dst_ip);
  if (host == nullptr) {
    ++dropped_no_route_;
    return;
  }
  Link* reply_link = &link;
  host->OnDatagram(packet, [reply_link](Packet reply) { reply_link->SendFromB(std::move(reply)); });
}

}  // namespace nymix
