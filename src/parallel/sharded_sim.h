// ShardedSimulation: a conservative (lookahead-synchronized) parallel
// executor over K independent Simulation shards.
//
// Determinism contract — the reason this subsystem exists:
//
//   For a fixed (seed, ShardPlan::shards, experiment definition), the
//   merged trace JSON and metrics dump are byte-identical for EVERY thread
//   count, including threads=1. Thread count is execution mechanics, not
//   experiment definition.
//
// How the contract is kept:
//   * Shard seeds derive from (experiment seed, shard id) only.
//   * Within an epoch, shards touch disjoint state, so worker assignment
//     cannot matter; the epoch barrier is the only synchronization.
//   * Cross-shard packets are buffered in per-direction channel outboxes
//     (single-writer: the source shard) and scheduled at the barrier by the
//     coordinator in (deliver_at, src shard, channel id, seq) order.
//   * Per-shard Observability is merged in shard-id order
//     (TraceRecorder::MergeShardTraces, MetricsRegistry::MergeFrom).
//   * threads=1 runs the SAME sharded structure inline in shard order — the
//     serial reference that tests/parallel_equivalence_test.cc compares
//     against.
//
// Epoch algorithm (classic conservative PDES with static lookahead): let
// t_min be the earliest pending event across all shards, and lookahead the
// minimum latency over all cross-shard channels. Every shard may safely run
// to horizon = t_min + lookahead - 1, because any cross-shard send at time
// t >= t_min arrives no earlier than t + lookahead > horizon. With no
// channels the shards are fully independent and run to idle in one epoch.
#ifndef SRC_PARALLEL_SHARDED_SIM_H_
#define SRC_PARALLEL_SHARDED_SIM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/simulation.h"
#include "src/obs/observability.h"
#include "src/parallel/channel.h"
#include "src/parallel/shard_plan.h"
#include "src/util/thread_pool.h"

namespace nymix {

class ShardedSimulation {
 public:
  ShardedSimulation(uint64_t seed, ShardPlan plan);

  int shard_count() const { return plan_.shards; }
  int thread_count() const { return pool_.thread_count(); }
  Simulation& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  Observability& shard_obs(int i) { return *shard_obs_[static_cast<size_t>(i)]; }

  // Enables tracing + metrics on every shard (and the merged sink).
  // record_wall_time=false is what byte-identity comparisons need: all
  // virtual-time content is reproducible, the simulator's own wall clock
  // never is.
  void EnableObservability(bool record_wall_time);

  // Creates a cross-shard wire (owned by this executor; see channel.h).
  // Must be called before Run — channels define the lookahead.
  CrossShardChannel* CreateChannel(std::string name, int shard_a, int shard_b,
                                   SimDuration latency, uint64_t bandwidth_bps);

  // Runs epochs until every shard is idle and no cross-shard deliveries are
  // pending. Callable repeatedly (schedule more work between calls).
  void RunUntilIdle();

  // Folds per-shard traces and metrics into merged() in shard-id order.
  // Call once, after the run; the merged trace interleaves shard events by
  // virtual time with "s<i>/" track prefixes.
  void MergeObservability();
  Observability& merged() { return merged_obs_; }

  // Executor introspection (for benches and tests).
  uint64_t epochs() const { return epochs_; }
  uint64_t cross_deliveries() const { return cross_deliveries_; }
  SimDuration lookahead() const { return lookahead_; }

 private:
  void DispatchDeliveries();

  ShardPlan plan_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Observability>> shard_obs_;
  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<std::unique_ptr<CrossShardChannel>> channels_;
  Observability merged_obs_;
  SimDuration lookahead_ = 0;  // min channel latency; 0 = no channels yet
  uint64_t epochs_ = 0;
  uint64_t cross_deliveries_ = 0;
  bool merged_done_ = false;
};

}  // namespace nymix

#endif  // SRC_PARALLEL_SHARDED_SIM_H_
