// ShardedSimulation: a conservative (lookahead-synchronized) parallel
// executor over K independent Simulation shards.
//
// Determinism contract — the reason this subsystem exists:
//
//   For a fixed (seed, ShardPlan::shards, experiment definition), the
//   merged trace JSON and metrics dump are byte-identical for EVERY thread
//   count, including threads=1. Thread count is execution mechanics, not
//   experiment definition.
//
// How the contract is kept:
//   * Shard seeds derive from (experiment seed, shard id) only.
//   * Within an epoch, shards touch disjoint state, so worker assignment
//     cannot matter; the epoch barrier is the only synchronization.
//   * Cross-shard packets are buffered in per-direction channel outboxes
//     (single-writer: the source shard) and handed to per-destination
//     inbox mailboxes at the barrier by the coordinator in (deliver_at,
//     src shard, channel id, seq) order. Each destination shard drains its
//     mailbox from one "pump" event per delivery instant — scheduling
//     decisions are functions of that sorted order only, never of which
//     worker thread ran which shard.
//   * Per-shard Observability is merged in shard-id order
//     (TraceRecorder::MergeShardTraces, MetricsRegistry::MergeFrom).
//   * Executor self-metrics (barrier wait wall time, shard skew, mailbox
//     depth — the parallel.* family) live in a SEPARATE registry
//     (executor_metrics()) that is never folded into merged(): wall-clock
//     content there would break cross-thread byte-identity.
//   * threads=1 runs the SAME sharded structure inline in shard order — the
//     serial reference that tests/parallel_equivalence_test.cc compares
//     against.
//
// Epoch algorithm (conservative PDES with per-edge adaptive horizons):
// first compute each shard's execution floor — the earliest virtual
// instant it could still execute any event:
//
//     floor(i) = t_next(i), lowered to a fixpoint by
//     floor(dst) = min(floor(dst),
//                      NextSendWindow(schedule, floor(src)) + latency)
//
// over every directed channel edge. The transitive part matters: an idle
// shard (no pending event) can still be woken by a delivery, and once
// awake can originate traffic of its own — without the fixpoint its
// neighbors would run unboundedly past that traffic (the classic
// conservative-PDES wake-up deadlock; a hostless cloud-server shard in a
// crossed fleet hits it on the very first epoch). Latency > 0 everywhere
// makes the relaxation converge in <= shards passes. Then the earliest
// future delivery dst can still receive is bounded below by
//
//     eot(src -> dst) = NextSendWindow(schedule, floor(src)) + latency
//
// where the send window is the direction's promised SendSchedule (identity
// when unconstrained). Each shard runs to
//
//     horizon(dst) = min over incoming edges of eot(src -> dst) - 1,
//
// or all the way to idle when no incoming edge constrains it. Shards whose
// next event lies beyond their horizon are skipped entirely — the executor
// dispatches only runnable shards to the pool. Progress: the shard holding
// the globally earliest event t_min has floor == t_min (no fixpoint value
// can drop below the global minimum), so its horizon >= t_min +
// min_latency - 1 >= t_min and every epoch executes at least one event.
// Causality: a send executed at t <= horizon(src's own run) departs on a
// window >= floor(src) and delivers at t + latency > horizon(dst) by
// construction, so no delivery ever lands in an epoch its destination
// already executed. Horizons are computed from virtual-time state only, so
// epoch structure — and therefore every output byte — is identical at
// every thread count. With no channels the shards are fully independent
// and run to idle in one epoch.
#ifndef SRC_PARALLEL_SHARDED_SIM_H_
#define SRC_PARALLEL_SHARDED_SIM_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/net/simulation.h"
#include "src/obs/observability.h"
#include "src/parallel/channel.h"
#include "src/parallel/shard_plan.h"
#include "src/util/thread_pool.h"

namespace nymix {

class ShardedSimulation {
 public:
  ShardedSimulation(uint64_t seed, ShardPlan plan);

  int shard_count() const { return plan_.shards; }
  int thread_count() const { return pool_.thread_count(); }
  Simulation& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  Observability& shard_obs(int i) { return *shard_obs_[static_cast<size_t>(i)]; }

  // Enables tracing + metrics on every shard (and the merged sink).
  // record_wall_time=false is what byte-identity comparisons need: all
  // virtual-time content is reproducible, the simulator's own wall clock
  // never is.
  void EnableObservability(bool record_wall_time);

  // Creates a cross-shard wire (owned by this executor; see channel.h).
  // Must be called before Run — channels define the lookahead.
  CrossShardChannel* CreateChannel(std::string name, int shard_a, int shard_b,
                                   SimDuration latency, uint64_t bandwidth_bps);

  // Runs epochs until every shard is idle and no cross-shard deliveries are
  // pending. Callable repeatedly (schedule more work between calls).
  void RunUntilIdle();

  // Folds per-shard traces and metrics into merged() in shard-id order.
  // Call once, after the run; the merged trace interleaves shard events by
  // virtual time with "s<i>/" track prefixes. When a placement label is
  // set, it is stamped into the merged trace first (an instant at t=0 on
  // the "executor" track) so identity is visibly a function of the plan.
  void MergeObservability();
  Observability& merged() { return merged_obs_; }

  // Names the host -> shard placement this run was built under
  // (ShardPlacement::Label()). Call before MergeObservability. Default
  // (empty) stamps nothing, preserving byte-compat with pre-placement
  // traces.
  void set_placement_label(std::string label) { placement_label_ = std::move(label); }

  // Executor introspection (for benches and tests).
  uint64_t epochs() const { return epochs_; }
  uint64_t cross_deliveries() const { return cross_deliveries_; }
  SimDuration lookahead() const { return lookahead_; }

  // The parallel.* self-metric family: barrier wait (wall ms lost between
  // the first and last shard finishing an epoch), shard skew (spread of
  // events executed per epoch), outbox/mailbox depth per barrier, pump
  // event counts. Kept out of merged() by design — see the header comment.
  const MetricsRegistry& executor_metrics() const { return exec_obs_.metrics; }
  // Scalar views of the three headline histograms, for bench emission.
  double barrier_wait_ms_mean() const;
  double shard_skew_events_mean() const;
  double outbox_depth_max() const;

 private:
  // One directed channel endpoint: deliveries flow src -> dst.
  struct Edge {
    int src = 0;
    int dst = 0;
    CrossShardChannel* channel = nullptr;
    bool a_to_b = true;
  };

  // Per-destination mailbox: deliveries sorted by (deliver_at, src shard,
  // channel id, seq), drained head-first by pump events on the owning
  // shard's loop. The coordinator appends/merges at barriers only; the
  // owning shard consumes during its epoch only — never both at once.
  struct Inbox {
    std::vector<CrossShardChannel::PendingDelivery> queue;
    size_t head = 0;
    std::optional<uint64_t> pump_event;  // outstanding pump, if any
    SimTime pump_at = 0;
  };

  void DispatchDeliveries();
  void PumpInbox(int dst);

  ShardPlan plan_;
  ThreadPool pool_;
  std::vector<std::unique_ptr<Observability>> shard_obs_;
  std::vector<std::unique_ptr<Simulation>> shards_;
  std::vector<std::unique_ptr<CrossShardChannel>> channels_;
  std::vector<Edge> edges_;
  std::vector<Inbox> inboxes_;
  Observability merged_obs_;
  Observability exec_obs_;
  std::string placement_label_;
  SimDuration lookahead_ = 0;  // min channel latency; 0 = no channels yet
  uint64_t epochs_ = 0;
  uint64_t cross_deliveries_ = 0;
  bool merged_done_ = false;

  // Reused epoch scratch (pooled across barriers: steady state performs no
  // allocation in the coordinator loop).
  std::vector<std::optional<SimTime>> t_next_;
  std::vector<SimTime> exec_floor_;
  std::vector<SimTime> horizon_;
  std::vector<size_t> active_;
  std::vector<CrossShardChannel::PendingDelivery> pending_;
  std::vector<size_t> fresh_deliveries_;  // per dst shard, this barrier
  std::vector<double> shard_wall_ms_;
  std::vector<uint64_t> shard_events_base_;

  // Cached parallel.* instruments (exec_obs_ owns them).
  Histogram* barrier_wait_ms_ = nullptr;
  Histogram* shard_skew_events_ = nullptr;
  Histogram* outbox_depth_ = nullptr;
  Histogram* active_shards_ = nullptr;
  Counter* pump_events_ = nullptr;
  Counter* deliveries_pumped_ = nullptr;
};

}  // namespace nymix

#endif  // SRC_PARALLEL_SHARDED_SIM_H_
