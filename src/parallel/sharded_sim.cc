#include "src/parallel/sharded_sim.h"

#include <algorithm>
#include <optional>
#include <tuple>
#include <utility>

#include "src/util/check.h"

namespace nymix {

ShardedSimulation::ShardedSimulation(uint64_t seed, ShardPlan plan)
    : plan_(plan), pool_(plan.threads) {
  NYMIX_CHECK(plan_.shards >= 1);
  shard_obs_.reserve(static_cast<size_t>(plan_.shards));
  shards_.reserve(static_cast<size_t>(plan_.shards));
  for (int i = 0; i < plan_.shards; ++i) {
    // Shard seeds depend on (experiment seed, shard id) only — never on the
    // thread count — so the plan fully determines every shard's randomness.
    uint64_t shard_seed =
        Mix64(seed ^ Fnv1a64("nymix.shard") ^ static_cast<uint64_t>(i));
    shard_obs_.push_back(std::make_unique<Observability>());
    shards_.push_back(std::make_unique<Simulation>(shard_seed));
    shards_.back()->loop().set_observability(shard_obs_.back().get());
  }
}

void ShardedSimulation::EnableObservability(bool record_wall_time) {
  for (int i = 0; i < plan_.shards; ++i) {
    Observability& obs = *shard_obs_[static_cast<size_t>(i)];
    obs.EnableAll();
    obs.trace.set_record_wall_time(record_wall_time);
    obs.metrics.set_record_wall_time(record_wall_time);
    // Re-attach so the loop re-resolves its cached instrument pointers now
    // that the registry is enabled.
    shards_[static_cast<size_t>(i)]->loop().set_observability(&obs);
  }
  merged_obs_.EnableAll();
  merged_obs_.trace.set_record_wall_time(record_wall_time);
  merged_obs_.metrics.set_record_wall_time(record_wall_time);
}

CrossShardChannel* ShardedSimulation::CreateChannel(std::string name, int shard_a, int shard_b,
                                                    SimDuration latency,
                                                    uint64_t bandwidth_bps) {
  NYMIX_CHECK(shard_a >= 0 && shard_a < plan_.shards);
  NYMIX_CHECK(shard_b >= 0 && shard_b < plan_.shards);
  auto channel = std::make_unique<CrossShardChannel>(
      static_cast<uint64_t>(channels_.size()), std::move(name), shard_a, shard_b,
      shard(shard_a), shard(shard_b), latency, bandwidth_bps);
  if (lookahead_ == 0 || latency < lookahead_) {
    lookahead_ = latency;
  }
  channels_.push_back(std::move(channel));
  return channels_.back().get();
}

void ShardedSimulation::RunUntilIdle() {
  size_t n = shards_.size();
  if (channels_.empty()) {
    // No cross-shard edges: the shards are fully independent simulations.
    // One "epoch" of run-to-idle each; worker assignment is irrelevant
    // because no state is shared.
    pool_.RunIndexed(n, [&](size_t i) { shards_[i]->loop().RunUntilIdle(); });
    ++epochs_;
    return;
  }
  for (;;) {
    // Outboxes are always empty here (drained at every barrier), so global
    // quiescence is exactly "no shard has a pending event".
    std::optional<SimTime> t_min;
    for (auto& s : shards_) {
      std::optional<SimTime> t = s->loop().NextEventTime();
      if (t.has_value() && (!t_min.has_value() || *t < *t_min)) {
        t_min = *t;
      }
    }
    if (!t_min.has_value()) {
      return;
    }
    // Strict horizon: a send at time t >= t_min delivers at
    // t + lookahead >= t_min + lookahead = horizon + 1, so nothing executed
    // this epoch can demand delivery inside it.
    SimTime horizon = *t_min + lookahead_ - 1;
    pool_.RunIndexed(n, [&](size_t i) { shards_[i]->loop().RunUntil(horizon); });
    ++epochs_;
    DispatchDeliveries();
  }
}

void ShardedSimulation::DispatchDeliveries() {
  std::vector<CrossShardChannel::PendingDelivery> pending;
  for (auto& channel : channels_) {
    channel->DrainInto(pending);
  }
  if (pending.empty()) {
    return;
  }
  // The total order that makes cross-shard traffic thread-count-invariant:
  // virtual delivery time, then source shard, then channel creation order,
  // then per-direction send sequence. Every component is deterministic.
  std::sort(pending.begin(), pending.end(),
            [](const CrossShardChannel::PendingDelivery& a,
               const CrossShardChannel::PendingDelivery& b) {
              return std::tie(a.deliver_at, a.src_shard, a.channel_id, a.seq) <
                     std::tie(b.deliver_at, b.src_shard, b.channel_id, b.seq);
            });
  for (CrossShardChannel::PendingDelivery& delivery : pending) {
    Link* link = delivery.dst_link;
    shards_[static_cast<size_t>(delivery.dst_shard)]->loop().ScheduleAt(
        delivery.deliver_at,
        [link, packet = std::move(delivery.packet)]() { link->DeliverFromRemote(packet); });
  }
  cross_deliveries_ += pending.size();
}

void ShardedSimulation::MergeObservability() {
  NYMIX_CHECK(!merged_done_);
  merged_done_ = true;
  std::vector<const TraceRecorder*> parts;
  parts.reserve(shard_obs_.size());
  for (auto& obs : shard_obs_) {
    parts.push_back(&obs->trace);
  }
  merged_obs_.trace.MergeShardTraces(parts);
  for (auto& obs : shard_obs_) {
    merged_obs_.metrics.MergeFrom(obs->metrics);
  }
}

}  // namespace nymix
