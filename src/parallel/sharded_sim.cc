#include "src/parallel/sharded_sim.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstddef>
#include <limits>
#include <tuple>
#include <utility>

#include "src/util/check.h"

namespace nymix {
namespace {

constexpr SimTime kNoHorizon = std::numeric_limits<SimTime>::max();

bool DeliveryOrder(const CrossShardChannel::PendingDelivery& a,
                   const CrossShardChannel::PendingDelivery& b) {
  // The total order that makes cross-shard traffic thread-count-invariant:
  // virtual delivery time, then source shard, then channel creation order,
  // then per-direction send sequence. Every component is deterministic.
  return std::tie(a.deliver_at, a.src_shard, a.channel_id, a.seq) <
         std::tie(b.deliver_at, b.src_shard, b.channel_id, b.seq);
}

}  // namespace

ShardedSimulation::ShardedSimulation(uint64_t seed, ShardPlan plan)
    : plan_(plan), pool_(plan.threads) {
  NYMIX_CHECK(plan_.shards >= 1);
  size_t n = static_cast<size_t>(plan_.shards);
  shard_obs_.reserve(n);
  shards_.reserve(n);
  for (int i = 0; i < plan_.shards; ++i) {
    // Shard seeds depend on (experiment seed, shard id) only — never on the
    // thread count — so the plan fully determines every shard's randomness.
    uint64_t shard_seed =
        Mix64(seed ^ Fnv1a64("nymix.shard") ^ static_cast<uint64_t>(i));
    shard_obs_.push_back(std::make_unique<Observability>());
    shards_.push_back(std::make_unique<Simulation>(shard_seed));
    shards_.back()->loop().set_observability(shard_obs_.back().get());
  }
  inboxes_.resize(n);
  t_next_.resize(n);
  exec_floor_.resize(n);
  horizon_.resize(n);
  fresh_deliveries_.resize(n);
  shard_wall_ms_.resize(n);
  shard_events_base_.resize(n);
  // Executor self-metrics are always on: they are cheap (a handful of
  // histogram records per epoch, on the coordinator) and never reach the
  // identity-hashed merged() stream.
  exec_obs_.metrics.set_enabled(true);
  barrier_wait_ms_ = exec_obs_.metrics.GetHistogram("parallel.barrier_wait_ms");
  shard_skew_events_ = exec_obs_.metrics.GetHistogram("parallel.shard_skew_events");
  outbox_depth_ = exec_obs_.metrics.GetHistogram("parallel.outbox_depth");
  active_shards_ = exec_obs_.metrics.GetHistogram("parallel.active_shards");
  pump_events_ = exec_obs_.metrics.GetCounter("parallel.pump_events");
  deliveries_pumped_ = exec_obs_.metrics.GetCounter("parallel.deliveries_pumped");
}

void ShardedSimulation::EnableObservability(bool record_wall_time) {
  for (int i = 0; i < plan_.shards; ++i) {
    Observability& obs = *shard_obs_[static_cast<size_t>(i)];
    obs.EnableAll();
    obs.trace.set_record_wall_time(record_wall_time);
    obs.metrics.set_record_wall_time(record_wall_time);
    // Re-attach so the loop re-resolves its cached instrument pointers now
    // that the registry is enabled.
    shards_[static_cast<size_t>(i)]->loop().set_observability(&obs);
  }
  merged_obs_.EnableAll();
  merged_obs_.trace.set_record_wall_time(record_wall_time);
  merged_obs_.metrics.set_record_wall_time(record_wall_time);
}

CrossShardChannel* ShardedSimulation::CreateChannel(std::string name, int shard_a, int shard_b,
                                                    SimDuration latency,
                                                    uint64_t bandwidth_bps) {
  NYMIX_CHECK(shard_a >= 0 && shard_a < plan_.shards);
  NYMIX_CHECK(shard_b >= 0 && shard_b < plan_.shards);
  auto channel = std::make_unique<CrossShardChannel>(
      static_cast<uint64_t>(channels_.size()), std::move(name), shard_a, shard_b,
      shard(shard_a), shard(shard_b), latency, bandwidth_bps);
  if (lookahead_ == 0 || latency < lookahead_) {
    lookahead_ = latency;
  }
  edges_.push_back(Edge{shard_a, shard_b, channel.get(), /*a_to_b=*/true});
  edges_.push_back(Edge{shard_b, shard_a, channel.get(), /*a_to_b=*/false});
  channels_.push_back(std::move(channel));
  return channels_.back().get();
}

void ShardedSimulation::RunUntilIdle() {
  size_t n = shards_.size();
  if (channels_.empty()) {
    // No cross-shard edges: the shards are fully independent simulations.
    // One "epoch" of run-to-idle each; worker assignment is irrelevant
    // because no state is shared.
    pool_.RunIndexed(n, [&](size_t i) { shards_[i]->loop().RunUntilIdle(); });
    ++epochs_;
    return;
  }
  for (;;) {
    // Inboxes always drain into loop events at the barrier that filled
    // them and outboxes are drained at every barrier, so global quiescence
    // is exactly "no shard has a pending event".
    bool any_pending = false;
    for (size_t i = 0; i < n; ++i) {
      t_next_[i] = shards_[i]->loop().NextEventTime();
      any_pending = any_pending || t_next_[i].has_value();
    }
    if (!any_pending) {
      return;
    }
    // Execution floor: the earliest virtual instant each shard could still
    // execute ANY event. Starts at the shard's own next pending event and
    // is lowered transitively by wake-up chains — an idle shard can still
    // be woken by a delivery, and once awake can send on its own outgoing
    // edges (a send from src departs no earlier than the next promised
    // window at or after src's floor and arrives a wire latency later).
    // The fixpoint is a shortest-path relaxation over the edge graph;
    // latency > 0 on every channel means each relaxation moves a floor
    // strictly above its source's, so it converges in <= shards passes.
    // Without the transitive part an idle-but-wakeable shard would
    // contribute no bound and its neighbors would run unboundedly past
    // traffic the idle shard is about to originate (the classic
    // conservative-PDES wake-up deadlock).
    for (size_t i = 0; i < n; ++i) {
      exec_floor_[i] = t_next_[i].has_value() ? *t_next_[i] : kNoHorizon;
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (const Edge& edge : edges_) {
        SimTime src_floor = exec_floor_[static_cast<size_t>(edge.src)];
        if (src_floor == kNoHorizon) {
          continue;
        }
        const SendSchedule& schedule = edge.a_to_b ? edge.channel->schedule_a_to_b()
                                                   : edge.channel->schedule_b_to_a();
        SimTime arrival = NextSendWindow(schedule, src_floor) + edge.channel->latency();
        if (arrival < exec_floor_[static_cast<size_t>(edge.dst)]) {
          exec_floor_[static_cast<size_t>(edge.dst)] = arrival;
          changed = true;
        }
      }
    }
    // Per-shard adaptive horizon: the earliest future arrival the shard
    // could still receive, minus one. A source whose floor is unbounded
    // (idle and unreachable) contributes no bound; a promised send window
    // lets the bound jump past the gap to the next window. No bound at all
    // means the shard may run all the way to idle in this epoch — that is
    // the "batch multiple logical epochs" case.
    for (size_t i = 0; i < n; ++i) {
      horizon_[i] = kNoHorizon;
    }
    for (const Edge& edge : edges_) {
      SimTime src_floor = exec_floor_[static_cast<size_t>(edge.src)];
      if (src_floor == kNoHorizon) {
        continue;
      }
      const SendSchedule& schedule = edge.a_to_b ? edge.channel->schedule_a_to_b()
                                                 : edge.channel->schedule_b_to_a();
      SimTime bound = NextSendWindow(schedule, src_floor) + edge.channel->latency() - 1;
      SimTime& horizon = horizon_[static_cast<size_t>(edge.dst)];
      horizon = std::min(horizon, bound);
    }
    // Active-shard-only dispatch: a shard whose next event lies beyond its
    // horizon has nothing runnable this epoch; skipping it entirely keeps
    // the pool's batches dense. (Its clock lags, which is harmless — event
    // timestamps, not clock reads, define the trace, and barrier-injected
    // deliveries are scheduled at absolute times.)
    active_.clear();
    for (size_t i = 0; i < n; ++i) {
      if (t_next_[i].has_value() && *t_next_[i] <= horizon_[i]) {
        active_.push_back(i);
        shard_events_base_[i] = shards_[i]->loop().events_executed();
      }
    }
    // The shard holding the global t_min always satisfies
    // horizon >= t_min + min_latency - 1 >= t_min, so progress is certain.
    NYMIX_CHECK(!active_.empty());
    // Operator escape hatch for diagnosing stuck or slow epoch structure
    // (stderr only; never touches simulation state or outputs).
    // nymlint:allow(determinism-env): read-only diagnostics toggle, never feeds simulation state
    static const bool debug_epochs = std::getenv("NYMIX_DEBUG_EPOCHS") != nullptr;
    if (debug_epochs && epochs_ % 1000 == 0) {
      std::fprintf(stderr, "epoch=%llu active=%zu xdeliv=%llu",
                   static_cast<unsigned long long>(epochs_), active_.size(),
                   static_cast<unsigned long long>(cross_deliveries_));
      for (size_t i = 0; i < n; ++i) {
        std::fprintf(stderr, " s%zu[t_next=%lld hor=%lld now=%lld]", i,
                     t_next_[i].has_value() ? static_cast<long long>(*t_next_[i]) : -1,
                     horizon_[i] == kNoHorizon ? -1 : static_cast<long long>(horizon_[i]),
                     static_cast<long long>(shards_[i]->loop().now()));
      }
      std::fprintf(stderr, "\n");
    }
    pool_.RunIndexed(active_.size(), [&](size_t k) {
      size_t i = active_[k];
      // nymlint:allow(determinism-wallclock): executor self-profiling (parallel.barrier_wait_ms); never feeds virtual time
      auto t0 = std::chrono::steady_clock::now();
      if (horizon_[i] == kNoHorizon) {
        shards_[i]->loop().RunUntilIdle();
      } else {
        shards_[i]->loop().RunUntil(horizon_[i]);
      }
      // nymlint:allow(determinism-wallclock): executor self-profiling (parallel.barrier_wait_ms); never feeds virtual time
      auto t1 = std::chrono::steady_clock::now();
      shard_wall_ms_[i] = std::chrono::duration<double, std::milli>(t1 - t0).count();
    });
    ++epochs_;
    // Epoch skew diagnostics: how unbalanced was this epoch, in events (a
    // placement-quality signal) and wall ms (the barrier wait — time the
    // fastest shard spent blocked on the slowest)?
    uint64_t events_min = std::numeric_limits<uint64_t>::max();
    uint64_t events_max = 0;
    double wall_min = std::numeric_limits<double>::max();
    double wall_max = 0;
    for (size_t i : active_) {
      uint64_t delta = shards_[i]->loop().events_executed() - shard_events_base_[i];
      events_min = std::min(events_min, delta);
      events_max = std::max(events_max, delta);
      wall_min = std::min(wall_min, shard_wall_ms_[i]);
      wall_max = std::max(wall_max, shard_wall_ms_[i]);
    }
    active_shards_->Record(static_cast<double>(active_.size()));
    shard_skew_events_->Record(static_cast<double>(events_max - events_min));
    barrier_wait_ms_->Record(active_.size() > 1 ? wall_max - wall_min : 0.0);
    DispatchDeliveries();
  }
}

void ShardedSimulation::DispatchDeliveries() {
  pending_.clear();
  for (auto& channel : channels_) {
    channel->DrainInto(pending_);
  }
  outbox_depth_->Record(static_cast<double>(pending_.size()));
  if (pending_.empty()) {
    return;
  }
  std::sort(pending_.begin(), pending_.end(), DeliveryOrder);
  cross_deliveries_ += pending_.size();
  // Partition the sorted batch into per-destination mailboxes. Everything
  // below is a function of the sorted content only, so pump scheduling —
  // and with it every delivery's position in its shard's event order — is
  // identical at every thread count.
  std::fill(fresh_deliveries_.begin(), fresh_deliveries_.end(), size_t{0});
  for (CrossShardChannel::PendingDelivery& delivery : pending_) {
    size_t dst = static_cast<size_t>(delivery.dst_shard);
    inboxes_[dst].queue.push_back(std::move(delivery));
    ++fresh_deliveries_[dst];
  }
  for (size_t dst = 0; dst < inboxes_.size(); ++dst) {
    if (fresh_deliveries_[dst] == 0) {
      continue;
    }
    Inbox& inbox = inboxes_[dst];
    // Compact the consumed prefix (delivered in earlier epochs) before
    // merging, so the mailbox never grows beyond its high-water mark.
    if (inbox.head > 0) {
      inbox.queue.erase(inbox.queue.begin(),
                        inbox.queue.begin() + static_cast<ptrdiff_t>(inbox.head));
      inbox.head = 0;
    }
    // Leftover (future) deliveries from earlier barriers and this barrier's
    // batch are each sorted; merge preserves the global delivery order.
    auto middle = inbox.queue.end() - static_cast<ptrdiff_t>(fresh_deliveries_[dst]);
    std::inplace_merge(inbox.queue.begin(), middle, inbox.queue.end(), DeliveryOrder);
    SimTime front = inbox.queue.front().deliver_at;
    // One pump event per destination per barrier (instead of one scheduled
    // closure per delivery): keep the earliest outstanding pump only.
    if (inbox.pump_event.has_value() && front < inbox.pump_at) {
      shards_[dst]->loop().Cancel(*inbox.pump_event);
      inbox.pump_event.reset();
    }
    if (!inbox.pump_event.has_value()) {
      int dst_shard = static_cast<int>(dst);
      inbox.pump_at = front;
      inbox.pump_event = shards_[dst]->loop().ScheduleAt(
          front, [this, dst_shard] { PumpInbox(dst_shard); });
      pump_events_->Increment();
    }
  }
}

void ShardedSimulation::PumpInbox(int dst) {
  Inbox& inbox = inboxes_[static_cast<size_t>(dst)];
  EventLoop& loop = shards_[static_cast<size_t>(dst)]->loop();
  inbox.pump_event.reset();
  const SimTime now = loop.now();
  while (inbox.head < inbox.queue.size() && inbox.queue[inbox.head].deliver_at <= now) {
    CrossShardChannel::PendingDelivery& delivery = inbox.queue[inbox.head];
    ++inbox.head;
    deliveries_pumped_->Increment();
    delivery.dst_link->DeliverFromRemote(delivery.packet);
    // Release the payload now; the record slot itself is reclaimed in bulk
    // at the next barrier compaction.
    delivery.packet = Packet{};
  }
  if (inbox.head < inbox.queue.size()) {
    int dst_shard = dst;
    inbox.pump_at = inbox.queue[inbox.head].deliver_at;
    inbox.pump_event =
        loop.ScheduleAt(inbox.pump_at, [this, dst_shard] { PumpInbox(dst_shard); });
    pump_events_->Increment();
  } else {
    inbox.queue.clear();
    inbox.head = 0;
  }
}

void ShardedSimulation::MergeObservability() {
  NYMIX_CHECK(!merged_done_);
  merged_done_ = true;
  if (!placement_label_.empty()) {
    // The plan header: identity is a pure function of (seed, shards,
    // placement), so the merged trace names the placement it ran under.
    // Thread-count-invariant by construction (the label is part of the
    // experiment definition).
    merged_obs_.trace.AddInstant("parallel", "shard_plan:" + placement_label_, "executor", 0);
  }
  std::vector<const TraceRecorder*> parts;
  parts.reserve(shard_obs_.size());
  for (auto& obs : shard_obs_) {
    parts.push_back(&obs->trace);
  }
  merged_obs_.trace.MergeShardTraces(parts);
  for (auto& obs : shard_obs_) {
    merged_obs_.metrics.MergeFrom(obs->metrics);
  }
}

double ShardedSimulation::barrier_wait_ms_mean() const {
  return barrier_wait_ms_->mean();
}

double ShardedSimulation::shard_skew_events_mean() const {
  return shard_skew_events_->mean();
}

double ShardedSimulation::outbox_depth_max() const {
  return outbox_depth_->max();
}

}  // namespace nymix
