// CrossShardChannel: a point-to-point wire whose endpoints live in two
// different simulation shards.
//
// The wire is modeled as two half-links, one created in each shard's
// Simulation. On each half-link the local endpoint is side A; side B is the
// remote shard. A send runs the normal Link pipeline in the source shard
// (capture, drop accounting, seeded fault draws, latency + serialization
// into a delivery time) and then lands in this channel's per-direction
// outbox instead of the local event loop. At the next epoch barrier the
// executor drains every channel's outbox, sorts the deliveries by
// (deliver_at, source shard, channel id, per-direction sequence) and
// schedules each into the destination shard's loop — a total order that
// depends only on virtual time and creation order, never on which worker
// thread ran which shard. That sort key is the heart of the byte-identity
// contract.
//
// Causality: every delivery satisfies deliver_at >= send time + latency,
// and the executor's epoch horizon is (earliest pending event) + (minimum
// channel latency) - 1, so a delivery can never land inside the epoch that
// produced it. Channel latency must therefore be > 0.
//
// Not modeled across shards: flow fair-sharing (FlowScheduler CHECKs that
// routes stay shard-local) and max_in_flight queue bounds. Loss and spike
// faults work per direction — draws happen on the sending half-link.
#ifndef SRC_PARALLEL_CHANNEL_H_
#define SRC_PARALLEL_CHANNEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/link.h"
#include "src/net/packet.h"

namespace nymix {

class Simulation;

class CrossShardChannel {
 public:
  // One cross-shard packet awaiting scheduling into its destination shard.
  // Ordering fields first; the executor sorts a flat vector of these.
  struct PendingDelivery {
    SimTime deliver_at = 0;
    int src_shard = 0;
    uint64_t channel_id = 0;
    uint64_t seq = 0;  // per channel direction, assigned at send
    int dst_shard = 0;
    Link* dst_link = nullptr;  // half-link whose side A receives
    Packet packet;
  };

  // Created via ShardedSimulation::CreateChannel, which owns the channel and
  // assigns `id` in creation order.
  CrossShardChannel(uint64_t id, std::string name, int shard_a, int shard_b,
                    Simulation& sim_a, Simulation& sim_b, SimDuration latency,
                    uint64_t bandwidth_bps);

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  SimDuration latency() const { return latency_; }
  int shard_a() const { return shard_a_; }
  int shard_b() const { return shard_b_; }

  // The half-link endpoints. Attach the local sink with AttachA and send
  // with SendFromA, exactly like a local Link.
  Link* a_end() { return link_a_; }
  Link* b_end() { return link_b_; }

  // Installs the same fault profile on both directions, with per-direction
  // seeds derived from `seed` (draws happen on the sending half-link).
  void SetFaultProfile(const LinkFaultProfile& profile, uint64_t seed);

  // Promises per-direction send windows (see SendSchedule in src/net/link.h):
  // every send in a direction departs exactly at t = phase + k * period.
  // The executor's adaptive horizon then jumps a destination shard past the
  // gap to the next window + latency instead of trailing the source shard's
  // next local event — the difference between hundreds of epochs and a
  // handful for round-based cross-shard traffic. A default (period 0)
  // schedule keeps the direction unconstrained. Enforced by a CHECK at
  // send, so the promise cannot drift from the workload.
  void PromiseSendWindows(SendSchedule a_to_b, SendSchedule b_to_a);
  const SendSchedule& schedule_a_to_b() const { return link_a_->remote_send_schedule(); }
  const SendSchedule& schedule_b_to_a() const { return link_b_->remote_send_schedule(); }

  // Pre-sizes both direction outboxes (a mailbox capacity hint from the
  // workload, so steady-state sends never reallocate mid-epoch).
  void ReserveOutboxes(size_t per_direction);

  // Buffered-but-undelivered sends (sampled by the executor at barriers
  // for the parallel.outbox_depth histogram).
  size_t outbox_depth() const { return outbox_to_b_.size() + outbox_to_a_.size(); }

  // Takes both directions down/up (a fault-injection hook; each half drops
  // with LinkDropReason::kDown while down).
  void SetDown(bool down);

  uint64_t packets_forwarded() const { return seq_to_b_ + seq_to_a_; }

  // Epoch barrier: moves all buffered deliveries into `out` (a->b first,
  // then b->a) and clears the outboxes. Called from the coordinator thread
  // only; outboxes are single-writer because each direction is filled only
  // by its source shard's epoch execution.
  void DrainInto(std::vector<PendingDelivery>& out);

 private:
  struct Buffered {
    SimTime deliver_at;
    uint64_t seq;
    Packet packet;
  };

  uint64_t id_;
  std::string name_;
  int shard_a_;
  int shard_b_;
  SimDuration latency_;
  Link* link_a_;  // lives in shard_a_'s Simulation
  Link* link_b_;  // lives in shard_b_'s Simulation
  uint64_t seq_to_b_ = 0;
  uint64_t seq_to_a_ = 0;
  std::vector<Buffered> outbox_to_b_;
  std::vector<Buffered> outbox_to_a_;
};

}  // namespace nymix

#endif  // SRC_PARALLEL_CHANNEL_H_
