// ShardPlan: how a sharded simulation is split and driven.
//
// `shards` is part of the experiment definition: it fixes the partition of
// hosts/VMs into independent event loops and thereby the per-shard seed
// streams. `threads` is pure execution mechanics: any thread count run
// against the same plan produces byte-identical merged traces and metrics
// (src/parallel/sharded_sim.h states the full contract). Comparing results
// across *shard counts* is NOT expected to be identical — changing the
// partition changes per-shard seeds and link creation order, just like
// changing a topology.
#ifndef SRC_PARALLEL_SHARD_PLAN_H_
#define SRC_PARALLEL_SHARD_PLAN_H_

#include <cstddef>

namespace nymix {

struct ShardPlan {
  // Number of independent simulation shards (>= 1).
  int shards = 1;
  // Worker threads driving the shards (>= 1). 1 runs every shard inline on
  // the caller, in shard-id order — the serial reference execution.
  int threads = 1;
};

// Canonical host -> shard assignment: round-robin by creation index, so the
// partition depends only on the experiment definition.
inline int ShardForIndex(size_t index, int shards) {
  return static_cast<int>(index % static_cast<size_t>(shards));
}

}  // namespace nymix

#endif  // SRC_PARALLEL_SHARD_PLAN_H_
