// ShardPlan: how a sharded simulation is split and driven.
//
// `shards` is part of the experiment definition: it fixes the partition of
// hosts/VMs into independent event loops and thereby the per-shard seed
// streams. `threads` is pure execution mechanics: any thread count run
// against the same plan produces byte-identical merged traces and metrics
// (src/parallel/sharded_sim.h states the full contract). Comparing results
// across *shard counts* is NOT expected to be identical — changing the
// partition changes per-shard seeds and link creation order, just like
// changing a topology.
//
// A ShardPlacement refines the partition: instead of blind round-robin, a
// workload can bin-pack hosts onto shards by observed per-host event
// weight (BalancedPlacement below). The placement is part of the
// experiment definition exactly like `shards` is — identity is a pure
// function of (seed, shards, placement) — so executors serialize the
// placement label into the merged trace (ShardedSimulation::
// set_placement_label) and anything that changes the assignment changes
// the trace visibly, never silently.
#ifndef SRC_PARALLEL_SHARD_PLAN_H_
#define SRC_PARALLEL_SHARD_PLAN_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/prng.h"

namespace nymix {

struct ShardPlan {
  // Number of independent simulation shards (>= 1).
  int shards = 1;
  // Worker threads driving the shards (>= 1). 1 runs every shard inline on
  // the caller, in shard-id order — the serial reference execution.
  int threads = 1;
};

// Canonical host -> shard assignment: round-robin by creation index, so the
// partition depends only on the experiment definition.
inline int ShardForIndex(size_t index, int shards) {
  return static_cast<int>(index % static_cast<size_t>(shards));
}

// An explicit host -> shard table. Empty means "round-robin by index" (the
// historical default, byte-compatible with every pre-placement trace).
struct ShardPlacement {
  std::vector<int> shard_of_host;

  bool empty() const { return shard_of_host.empty(); }

  int shard_for(size_t index, int shards) const {
    if (index < shard_of_host.size()) {
      return shard_of_host[index];
    }
    return ShardForIndex(index, shards);
  }

  // Compact serialization for the trace header: "rr" for the round-robin
  // default, else the assignment CSV. Part of the identity story: the
  // merged trace names the partition it was produced under.
  std::string Label() const {
    if (empty()) {
      return "rr";
    }
    std::string label;
    label.reserve(shard_of_host.size() * 2);
    for (size_t i = 0; i < shard_of_host.size(); ++i) {
      if (i > 0) {
        label.push_back(',');
      }
      label += std::to_string(shard_of_host[i]);
    }
    return label;
  }
};

// Deterministic shard load balancer: seeded greedy bin-pack over observed
// per-host event weights (from a calibration run or a prior run's stats).
// Hosts are taken heaviest-first — ties broken by a seeded draw, then by
// index, so equal-weight fleets still spread by (seed, index) only — and
// each host lands on the currently lightest shard (ties to the lowest
// shard id). A pure function of (weights, shards, seed): the same inputs
// yield the same placement on every machine and thread count, which is
// what lets the placement join the experiment definition.
inline ShardPlacement BalancedPlacement(const std::vector<double>& host_weights, int shards,
                                        uint64_t seed) {
  ShardPlacement placement;
  if (shards <= 1 || host_weights.empty()) {
    return placement;  // round-robin default; nothing to balance
  }
  struct Entry {
    double weight;
    uint64_t tie;
    size_t index;
  };
  std::vector<Entry> order;
  order.reserve(host_weights.size());
  for (size_t i = 0; i < host_weights.size(); ++i) {
    order.push_back(Entry{host_weights[i],
                          Mix64(seed ^ Fnv1a64("nymix.placement") ^ static_cast<uint64_t>(i)), i});
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.weight != b.weight) {
      return a.weight > b.weight;
    }
    if (a.tie != b.tie) {
      return a.tie < b.tie;
    }
    return a.index < b.index;
  });
  std::vector<double> load(static_cast<size_t>(shards), 0.0);
  placement.shard_of_host.assign(host_weights.size(), 0);
  for (const Entry& entry : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[lightest]) {
        lightest = s;
      }
    }
    placement.shard_of_host[entry.index] = static_cast<int>(lightest);
    load[lightest] += entry.weight;
  }
  return placement;
}

}  // namespace nymix

#endif  // SRC_PARALLEL_SHARD_PLAN_H_
