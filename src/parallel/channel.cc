#include "src/parallel/channel.h"

#include "src/net/simulation.h"
#include "src/util/check.h"

namespace nymix {

CrossShardChannel::CrossShardChannel(uint64_t id, std::string name, int shard_a, int shard_b,
                                     Simulation& sim_a, Simulation& sim_b, SimDuration latency,
                                     uint64_t bandwidth_bps)
    : id_(id),
      name_(std::move(name)),
      shard_a_(shard_a),
      shard_b_(shard_b),
      latency_(latency) {
  // Zero latency would make the executor's lookahead horizon degenerate: a
  // send could demand delivery inside the epoch that produced it.
  NYMIX_CHECK(latency_ > 0);
  NYMIX_CHECK(shard_a_ != shard_b_);
  link_a_ = sim_a.CreateLink(name_ + "/a", latency_, bandwidth_bps);
  link_b_ = sim_b.CreateLink(name_ + "/b", latency_, bandwidth_bps);
  link_a_->set_remote_forward([this](Packet packet, SimTime deliver_at) {
    outbox_to_b_.push_back(Buffered{deliver_at, seq_to_b_++, std::move(packet)});
  });
  link_b_->set_remote_forward([this](Packet packet, SimTime deliver_at) {
    outbox_to_a_.push_back(Buffered{deliver_at, seq_to_a_++, std::move(packet)});
  });
}

void CrossShardChannel::PromiseSendWindows(SendSchedule a_to_b, SendSchedule b_to_a) {
  NYMIX_CHECK(a_to_b.period >= 0 && b_to_a.period >= 0);
  NYMIX_CHECK(a_to_b.phase >= 0 && b_to_a.phase >= 0);
  link_a_->set_remote_send_schedule(a_to_b);
  link_b_->set_remote_send_schedule(b_to_a);
}

void CrossShardChannel::ReserveOutboxes(size_t per_direction) {
  outbox_to_b_.reserve(per_direction);
  outbox_to_a_.reserve(per_direction);
}

void CrossShardChannel::SetFaultProfile(const LinkFaultProfile& profile, uint64_t seed) {
  link_a_->SetFaultProfile(profile, Mix64(seed ^ Fnv1a64("channel.a_to_b")));
  link_b_->SetFaultProfile(profile, Mix64(seed ^ Fnv1a64("channel.b_to_a")));
}

void CrossShardChannel::SetDown(bool down) {
  link_a_->SetDown(down);
  link_b_->SetDown(down);
}

void CrossShardChannel::DrainInto(std::vector<PendingDelivery>& out) {
  for (Buffered& buffered : outbox_to_b_) {
    out.push_back(PendingDelivery{buffered.deliver_at, shard_a_, id_, buffered.seq, shard_b_,
                                  link_b_, std::move(buffered.packet)});
  }
  outbox_to_b_.clear();
  for (Buffered& buffered : outbox_to_a_) {
    out.push_back(PendingDelivery{buffered.deliver_at, shard_b_, id_, buffered.seq, shard_a_,
                                  link_a_, std::move(buffered.packet)});
  }
  outbox_to_a_.clear();
}

}  // namespace nymix
