#include "src/compress/nymzip.h"

#include <algorithm>
#include <cstring>

namespace nymix {

namespace {

constexpr uint8_t kMagic[3] = {'N', 'Z', '1'};
constexpr size_t kWindowSize = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 65535;
constexpr size_t kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
constexpr int kMaxChainSteps = 32;

// Token opcodes.
constexpr uint8_t kOpLiterals = 0x00;  // u16 count, raw bytes
constexpr uint8_t kOpMatch = 0x01;     // u16 length, u16 distance

uint32_t HashAt(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(Bytes& out, ByteSpan input, size_t start, size_t end) {
  while (start < end) {
    size_t run = std::min<size_t>(end - start, 65535);
    out.push_back(kOpLiterals);
    AppendU16(out, static_cast<uint16_t>(run));
    out.insert(out.end(), input.begin() + start, input.begin() + start + run);
    start += run;
  }
}

}  // namespace

Bytes NymzipCompress(ByteSpan input) {
  Bytes out;
  out.reserve(input.size() / 2 + 32);
  out.insert(out.end(), kMagic, kMagic + 3);
  AppendU64(out, input.size());

  if (input.size() < kMinMatch) {
    EmitLiterals(out, input, 0, input.size());
    return out;
  }

  // head[h] = most recent position with hash h; prev[pos % window] = chain.
  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(kWindowSize, -1);

  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= input.size()) {
    uint32_t hash = HashAt(input.data() + pos);
    int64_t candidate = head[hash];
    size_t best_length = 0;
    size_t best_distance = 0;
    int steps = 0;
    while (candidate >= 0 && steps++ < kMaxChainSteps &&
           pos - static_cast<size_t>(candidate) <= kWindowSize - 1) {
      size_t distance = pos - static_cast<size_t>(candidate);
      size_t limit = std::min(kMaxMatch, input.size() - pos);
      size_t length = 0;
      const uint8_t* a = input.data() + candidate;
      const uint8_t* b = input.data() + pos;
      while (length < limit && a[length] == b[length]) {
        ++length;
      }
      if (length > best_length) {
        best_length = length;
        best_distance = distance;
        if (length >= 128) {
          break;  // good enough; deeper chain search rarely pays
        }
      }
      candidate = prev[candidate % kWindowSize];
    }

    if (best_length >= kMinMatch) {
      EmitLiterals(out, input, literal_start, pos);
      out.push_back(kOpMatch);
      AppendU16(out, static_cast<uint16_t>(best_length));
      AppendU16(out, static_cast<uint16_t>(best_distance));
      // Index every position covered by the match so later data can refer
      // into it.
      size_t match_end = pos + best_length;
      while (pos < match_end && pos + kMinMatch <= input.size()) {
        uint32_t h = HashAt(input.data() + pos);
        prev[pos % kWindowSize] = head[h];
        head[h] = static_cast<int64_t>(pos);
        ++pos;
      }
      pos = match_end;
      literal_start = pos;
    } else {
      prev[pos % kWindowSize] = head[hash];
      head[hash] = static_cast<int64_t>(pos);
      ++pos;
    }
  }
  EmitLiterals(out, input, literal_start, input.size());
  return out;
}

Result<uint64_t> NymzipUncompressedSize(ByteSpan frame) {
  if (frame.size() < 11 || std::memcmp(frame.data(), kMagic, 3) != 0) {
    return DataLossError("not a nymzip frame");
  }
  size_t offset = 3;
  return ReadU64(frame, offset);
}

Result<Bytes> NymzipDecompress(ByteSpan frame) {
  NYMIX_ASSIGN_OR_RETURN(uint64_t raw_size, NymzipUncompressedSize(frame));
  size_t offset = 11;
  Bytes out;
  out.reserve(static_cast<size_t>(raw_size));
  while (offset < frame.size()) {
    uint8_t op = frame[offset++];
    if (op == kOpLiterals) {
      NYMIX_ASSIGN_OR_RETURN(uint16_t count, ReadU16(frame, offset));
      if (offset + count > frame.size()) {
        return DataLossError("literal run past end of frame");
      }
      out.insert(out.end(), frame.begin() + offset, frame.begin() + offset + count);
      offset += count;
    } else if (op == kOpMatch) {
      NYMIX_ASSIGN_OR_RETURN(uint16_t length, ReadU16(frame, offset));
      NYMIX_ASSIGN_OR_RETURN(uint16_t distance, ReadU16(frame, offset));
      if (distance == 0 || distance > out.size()) {
        return DataLossError("match distance out of range");
      }
      // Byte-by-byte copy: matches may overlap their own output (RLE-style).
      size_t from = out.size() - distance;
      for (size_t i = 0; i < length; ++i) {
        out.push_back(out[from + i]);
      }
    } else {
      return DataLossError("unknown nymzip opcode");
    }
  }
  if (out.size() != raw_size) {
    return DataLossError("nymzip frame size mismatch");
  }
  return out;
}

}  // namespace nymix
