// nymzip: a from-scratch LZ77-style compressor with a 64 KiB window and a
// hash-chain matcher. The Nym Manager compresses writable disk images with
// it before encryption (§3.5 workflow: "compresses and encrypts their
// temporary file system disk images"), so Figure 6's archive sizes reflect a
// real redundancy-removing pass.
#ifndef SRC_COMPRESS_NYMZIP_H_
#define SRC_COMPRESS_NYMZIP_H_

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// Self-delimiting: the frame records the uncompressed size.
Bytes NymzipCompress(ByteSpan input);

// Fails with DATA_LOSS on a corrupt or truncated frame.
Result<Bytes> NymzipDecompress(ByteSpan frame);

// Uncompressed size recorded in a frame header, without decompressing.
Result<uint64_t> NymzipUncompressedSize(ByteSpan frame);

}  // namespace nymix

#endif  // SRC_COMPRESS_NYMZIP_H_
