// Virtual time. All Nymix latencies (VM boot phases, circuit handshakes,
// flow completions) are expressed against one SimClock owned by the
// simulation's EventLoop, so experiments are deterministic and run in
// milliseconds of wall time while reporting realistic virtual durations.
#ifndef SRC_UTIL_SIM_CLOCK_H_
#define SRC_UTIL_SIM_CLOCK_H_

#include <cstdint>

namespace nymix {

// Durations and timestamps are microseconds of virtual time.
using SimDuration = int64_t;
using SimTime = int64_t;

constexpr SimDuration Micros(int64_t n) { return n; }
constexpr SimDuration Millis(int64_t n) { return n * 1000; }
constexpr SimDuration Seconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * 1e6); }

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e3; }

class SimClock {
 public:
  SimTime now() const { return now_; }

  // Only the EventLoop advances time; components never move it backwards.
  void AdvanceTo(SimTime t) {
    if (t > now_) {
      now_ = t;
    }
  }

 private:
  SimTime now_ = 0;
};

}  // namespace nymix

#endif  // SRC_UTIL_SIM_CLOCK_H_
