// Byte-buffer helpers shared across the Nymix libraries.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace nymix {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

// Size units. Disk/RAM sizes in the paper are given in binary megabytes.
inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Lowercase hex rendering of a byte buffer.
std::string HexEncode(ByteSpan data);

// Parses lowercase/uppercase hex; fails on odd length or non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

// UTF-8/ASCII string <-> bytes conversions.
Bytes BytesFromString(std::string_view text);
std::string StringFromBytes(ByteSpan data);

// Appends fixed-width little-endian integers; used by serialization code.
void AppendU16(Bytes& out, uint16_t value);
void AppendU32(Bytes& out, uint32_t value);
void AppendU64(Bytes& out, uint64_t value);

// Reads fixed-width little-endian integers at an offset, advancing it.
// Fails (DATA_LOSS) when the buffer is too short.
Result<uint16_t> ReadU16(ByteSpan data, size_t& offset);
Result<uint32_t> ReadU32(ByteSpan data, size_t& offset);
Result<uint64_t> ReadU64(ByteSpan data, size_t& offset);

// Appends a length-prefixed (u32) byte string / reads one back.
void AppendLengthPrefixed(Bytes& out, ByteSpan data);
Result<Bytes> ReadLengthPrefixed(ByteSpan data, size_t& offset);

// Constant-time comparison for MAC verification.
bool ConstantTimeEquals(ByteSpan a, ByteSpan b);

// "12.3 MB"-style rendering used by benches and examples.
std::string FormatSize(uint64_t bytes);

}  // namespace nymix

#endif  // SRC_UTIL_BYTES_H_
