// ThreadPool: the one place in the stack that owns real OS threads. The
// parallel shard executor (src/parallel) runs per-shard EventLoops on this
// pool; everything else in the simulator stays single-threaded and is kept
// that way by nymlint's thread-confinement rule (only src/parallel and
// src/util may touch raw threading primitives).
//
// The pool runs *index batches*: RunIndexed(n, fn) executes fn(0..n-1),
// each index exactly once, and returns when every call finished. Which
// worker runs which index is scheduling noise — callers must make fn(i)
// touch only state owned by index i, so results cannot depend on the
// assignment. With thread_count() <= 1 the pool owns no threads at all and
// RunIndexed runs inline on the caller, in index order: the serial
// reference execution that the determinism tests compare threaded runs
// against.
#ifndef SRC_UTIL_THREAD_POOL_H_
#define SRC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nymix {

class ThreadPool {
 public:
  // `threads` <= 1 creates a no-thread pool that runs batches inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Runs fn(i) for every i in [0, n), blocking until all calls returned.
  // Indexes are claimed from a shared cursor, so long and short tasks
  // balance across workers. Not reentrant: one batch at a time.
  void RunIndexed(size_t n, const std::function<void(size_t)>& fn);

  // Worker threads owned by the pool (0 for the inline pool). The inline
  // pool reports a count of 1: one lane of execution, the caller's.
  int thread_count() const { return workers_.empty() ? 1 : static_cast<int>(workers_.size()); }

  // std::thread::hardware_concurrency with a floor of 1. Exposed here so
  // benches can report machine parallelism without touching <thread>
  // themselves (which the lint rules ban outside this directory).
  static int HardwareThreads();

 private:
  void WorkerMain();
  // Claims and runs indexes of batch `generation` until it is exhausted or
  // superseded.
  void DrainBatch(uint64_t generation);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a batch
  std::condition_variable done_cv_;   // RunIndexed waits here for completion
  const std::function<void(size_t)>* batch_fn_ = nullptr;  // non-null while a batch runs
  size_t batch_size_ = 0;
  size_t next_index_ = 0;    // next unclaimed index
  size_t completed_ = 0;     // finished calls in the current batch
  uint64_t batch_generation_ = 0;  // bumped per batch so workers wake exactly once each
  bool stopping_ = false;
};

}  // namespace nymix

#endif  // SRC_UTIL_THREAD_POOL_H_
