// Minimal leveled logger. Quiet by default (warnings and errors only) so
// tests and benches stay readable; examples raise the level to narrate.
#ifndef SRC_UTIL_LOGGING_H_
#define SRC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace nymix {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink used by the NYMIX_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace nymix

#define NYMIX_LOG(level) ::nymix::LogLine(::nymix::LogLevel::level, __FILE__, __LINE__)

#endif  // SRC_UTIL_LOGGING_H_
