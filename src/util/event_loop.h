// Discrete-event simulation loop: a priority queue of timestamped callbacks
// over a SimClock. This is the heartbeat of every substrate model (network
// flows, VM boot phases, KSM scans, anonymizer handshakes).
#ifndef SRC_UTIL_EVENT_LOOP_H_
#define SRC_UTIL_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/util/sim_clock.h"

namespace nymix {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  SimClock& clock() { return clock_; }
  SimTime now() const { return clock_.now(); }

  // Schedules `fn` to run `delay` after the current virtual time.
  // Events at equal times run in scheduling (FIFO) order.
  uint64_t ScheduleAfter(SimDuration delay, Callback fn);

  // Schedules `fn` at an absolute virtual time (clamped to now).
  uint64_t ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event; returns false if it already ran or is unknown.
  bool Cancel(uint64_t event_id);

  // Runs events until none remain. Returns the number of events executed.
  size_t RunUntilIdle();

  // Runs events with timestamps <= deadline, then advances the clock to the
  // deadline. Returns the number of events executed.
  size_t RunUntil(SimTime deadline);

  // Runs until `done` returns true or no events remain; returns whether the
  // predicate was satisfied.
  bool RunUntilCondition(const std::function<bool()>& done);

  size_t pending_events() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    uint64_t id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  // Pops and executes the earliest pending event; false if none.
  bool RunOne();

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  std::vector<uint64_t> cancelled_;  // ids cancelled but still in the heap
  std::unordered_map<uint64_t, Callback> callbacks_;
  uint64_t next_id_ = 1;
  uint64_t next_sequence_ = 1;
};

}  // namespace nymix

#endif  // SRC_UTIL_EVENT_LOOP_H_
