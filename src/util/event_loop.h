// Discrete-event simulation loop: a priority queue of timestamped callbacks
// over a SimClock. This is the heartbeat of every substrate model (network
// flows, VM boot phases, KSM scans, anonymizer handshakes).
//
// The loop is also the stack's observability anchor: attach an
// Observability (src/obs) and every instrumented layer that holds an
// EventLoop reference reports through tracer()/meters(). Unattached (the
// default), every instrumentation site reduces to a null-pointer check.
#ifndef SRC_UTIL_EVENT_LOOP_H_
#define SRC_UTIL_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "src/obs/observability.h"
#include "src/util/sim_clock.h"

namespace nymix {

class EventLoop {
 public:
  using Callback = std::function<void()>;

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  SimTime now() const { return clock_.now(); }

  // Schedules `fn` to run `delay` after the current virtual time.
  // Events at equal times run in scheduling (FIFO) order.
  uint64_t ScheduleAfter(SimDuration delay, Callback fn);

  // Schedules `fn` at an absolute virtual time (clamped to now).
  uint64_t ScheduleAt(SimTime when, Callback fn);

  // Cancels a pending event; returns false if it already ran, was already
  // cancelled, or is unknown. Safe to call any number of times.
  bool Cancel(uint64_t event_id);

  // Runs events until none remain. Returns the number of events executed.
  size_t RunUntilIdle();

  // Runs events with timestamps <= deadline, then advances the clock to the
  // deadline. Returns the number of events executed.
  size_t RunUntil(SimTime deadline);

  // Runs until `done` returns true or no events remain; returns whether the
  // predicate was satisfied.
  bool RunUntilCondition(const std::function<bool()>& done);

  // Virtual time of the earliest live pending event, or nullopt when idle.
  // Prunes cancelled tombstones from the heap top to find it, hence
  // non-const. The parallel shard executor (src/parallel) uses this to
  // compute conservative epoch horizons.
  std::optional<SimTime> NextEventTime();

  // Deterministic per-loop id fountain for objects created while the
  // simulation runs (links, guest memories). Per-loop rather than
  // process-wide so parallel shards can allocate concurrently without
  // racing, and so a shard's ids depend only on its own event order —
  // these ids key ordered containers (LinkIdLess, KSM's per-memory state)
  // whose iteration order reaches simulation outputs.
  uint64_t AllocateObjectId() { return next_object_id_++; }

  // Live (scheduled, not cancelled, not yet run) events. Robust against
  // cancelled entries that still sit in the heap awaiting their lazy pop:
  // the count is taken from the callback table, which cancellation updates
  // eagerly.
  size_t pending_events() const { return callbacks_.size(); }

  // Lifetime total of events executed, counted whether or not metrics are
  // attached — benches derive events/sec from this without paying for a
  // registry.
  uint64_t events_executed() const { return executed_count_; }

  // --- Observability ----------------------------------------------------
  // The loop does not own the Observability; benches/tests attach one for
  // the runs they want instrumented. Metrics recorded here: events
  // executed, queue depth at dispatch, and per-event wall time (the
  // simulator profiling itself).
  void set_observability(Observability* obs);
  Observability* observability() const { return obs_; }
  // Bumped on every set_observability call. Layers that cache instrument
  // pointers (FlowScheduler, KsmDaemon) compare this against the epoch they
  // cached under, so the hot path pays an integer compare instead of a
  // registry map lookup, yet never holds pointers across an attach/detach.
  uint64_t observability_epoch() const { return obs_epoch_; }
  TraceRecorder* tracer() const {
    return obs_ != nullptr && obs_->trace.enabled() ? &obs_->trace : nullptr;
  }
  MetricsRegistry* meters() const {
    return obs_ != nullptr && obs_->metrics.enabled() ? &obs_->metrics : nullptr;
  }

 private:
  struct Event {
    SimTime when;
    uint64_t sequence;
    uint64_t id;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.sequence > b.sequence;
    }
  };

  // Pops and executes the earliest pending event; false if none.
  bool RunOne();
  // Drops cancelled entries from the top of the heap so heap_.top() (when
  // the heap is non-empty) is a live event.
  void PruneCancelledTop();
  // Returns a callback-table node to the recycling pool (releasing its
  // closure immediately) instead of freeing it.
  void RecycleNode(std::map<uint64_t, Callback>::node_type node);

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
  // Ordered map, not a hash table: nothing may iterate callbacks_ today,
  // but the determinism contract (docs/static-analysis.md) bans unordered
  // containers from the sim core outright so a future walk cannot leak
  // hash/allocation order into outputs. Lookups are O(log n) on ids that
  // are dense and small; the heap dominates scheduling cost regardless.
  std::map<uint64_t, Callback> callbacks_;
  // Allocation diet for the schedule→run→erase cycle: spent callback-table
  // nodes are parked here (closure released, key stale) and reused by the
  // next ScheduleAt, so steady-state event traffic performs zero node
  // allocations. Bounded so a one-off scheduling burst cannot pin memory.
  std::vector<std::map<uint64_t, Callback>::node_type> node_pool_;
  static constexpr size_t kMaxPooledNodes = 256;
  uint64_t next_id_ = 1;
  uint64_t next_sequence_ = 1;
  uint64_t next_object_id_ = 1;

  Observability* obs_ = nullptr;
  uint64_t obs_epoch_ = 1;
  // Cached instruments (non-null only while metrics are enabled) so the
  // per-event cost is a pointer check + increment, not a map lookup.
  Counter* events_executed_ = nullptr;
  Histogram* event_wall_ns_ = nullptr;
  Histogram* queue_depth_ = nullptr;
  // Schedule fast-path stats: node reuses vs fresh allocations.
  Counter* node_reuses_ = nullptr;
  Counter* node_allocs_ = nullptr;
  uint64_t executed_count_ = 0;
};

}  // namespace nymix

#endif  // SRC_UTIL_EVENT_LOOP_H_
