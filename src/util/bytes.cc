#include "src/util/bytes.h"

#include <cstdio>

namespace nymix {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(ByteSpan data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgumentError("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgumentError("hex string has non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes BytesFromString(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string StringFromBytes(ByteSpan data) {
  return std::string(data.begin(), data.end());
}

void AppendU16(Bytes& out, uint16_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
}

void AppendU32(Bytes& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void AppendU64(Bytes& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

Result<uint16_t> ReadU16(ByteSpan data, size_t& offset) {
  if (offset + 2 > data.size()) {
    return DataLossError("buffer too short for u16");
  }
  uint16_t value = static_cast<uint16_t>(data[offset] | (data[offset + 1] << 8));
  offset += 2;
  return value;
}

Result<uint32_t> ReadU32(ByteSpan data, size_t& offset) {
  if (offset + 4 > data.size()) {
    return DataLossError("buffer too short for u32");
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(data[offset + i]) << (8 * i);
  }
  offset += 4;
  return value;
}

Result<uint64_t> ReadU64(ByteSpan data, size_t& offset) {
  if (offset + 8 > data.size()) {
    return DataLossError("buffer too short for u64");
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(data[offset + i]) << (8 * i);
  }
  offset += 8;
  return value;
}

void AppendLengthPrefixed(Bytes& out, ByteSpan data) {
  AppendU32(out, static_cast<uint32_t>(data.size()));
  out.insert(out.end(), data.begin(), data.end());
}

Result<Bytes> ReadLengthPrefixed(ByteSpan data, size_t& offset) {
  NYMIX_ASSIGN_OR_RETURN(uint32_t length, ReadU32(data, offset));
  if (offset + length > data.size()) {
    return DataLossError("buffer too short for length-prefixed field");
  }
  Bytes out(data.begin() + offset, data.begin() + offset + length);
  offset += length;
  return out;
}

bool ConstantTimeEquals(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

std::string FormatSize(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace nymix
