// Blob: file content that is either real bytes (scrubbers parse them) or
// synthetic (size + seed) for bulk data like browser-cache entries, so an
// eight-nym experiment does not materialize gigabytes of buffers. Synthetic
// blobs still hash and "compress" deterministically from their seed.
#ifndef SRC_UTIL_BLOB_H_
#define SRC_UTIL_BLOB_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace nymix {

class Blob {
 public:
  Blob() = default;

  static Blob FromBytes(Bytes data);
  static Blob FromString(std::string_view text);

  // Synthetic content of `size` bytes determined by `seed`. `entropy` in
  // [0,1] models how compressible the content is (0 = all zeros, 1 = random);
  // it only affects CompressedSizeEstimate.
  static Blob Synthetic(uint64_t size, uint64_t seed, double entropy = 0.8);

  uint64_t size() const { return size_; }
  bool is_synthetic() const { return synthetic_; }
  double entropy() const { return entropy_; }
  // Generation seed; meaningful only for synthetic blobs (zero otherwise).
  uint64_t seed() const { return seed_; }

  // 64-bit content identity: equal blobs hash equal; synthetic blobs hash
  // from (size, seed) without materializing.
  uint64_t ContentHash() const;

  // Real bytes. For synthetic blobs this materializes patterned content
  // (deterministic in the seed) — callers should avoid it for bulk data.
  Bytes Materialize() const;

  // Size the nymzip compressor would produce, without running it for
  // synthetic content.
  uint64_t CompressedSizeEstimate() const;

  // Direct access for real blobs; CHECKs on synthetic ones.
  const Bytes& bytes() const;

  bool operator==(const Blob& other) const { return ContentHash() == other.ContentHash(); }

 private:
  bool synthetic_ = false;
  uint64_t size_ = 0;
  uint64_t seed_ = 0;
  double entropy_ = 0.8;
  Bytes data_;
};

}  // namespace nymix

#endif  // SRC_UTIL_BLOB_H_
