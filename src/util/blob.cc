#include "src/util/blob.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/prng.h"

namespace nymix {

Blob Blob::FromBytes(Bytes data) {
  Blob blob;
  blob.synthetic_ = false;
  blob.size_ = data.size();
  blob.data_ = std::move(data);
  return blob;
}

Blob Blob::FromString(std::string_view text) { return FromBytes(BytesFromString(text)); }

Blob Blob::Synthetic(uint64_t size, uint64_t seed, double entropy) {
  NYMIX_CHECK(entropy >= 0.0 && entropy <= 1.0);
  Blob blob;
  blob.synthetic_ = true;
  blob.size_ = size;
  blob.seed_ = seed;
  blob.entropy_ = entropy;
  return blob;
}

uint64_t Blob::ContentHash() const {
  if (synthetic_) {
    return Mix64(size_ ^ Mix64(seed_));
  }
  return Fnv1a64(data_);
}

Bytes Blob::Materialize() const {
  if (!synthetic_) {
    return data_;
  }
  Prng prng(seed_);
  return prng.NextBytes(static_cast<size_t>(size_));
}

uint64_t Blob::CompressedSizeEstimate() const {
  // Random content is incompressible; structured content shrinks toward a
  // small floor. The linear model matches what nymzip achieves on the
  // patterned buffers tests feed it (see compress tests).
  double ratio = 0.05 + 0.95 * entropy_;
  if (!synthetic_) {
    // Real bytes: approximate entropy by distinct-byte density over a
    // bounded prefix so the estimate stays O(1) for huge buffers.
    size_t window = std::min<size_t>(data_.size(), 4096);
    bool seen[256] = {false};
    size_t distinct = 0;
    for (size_t i = 0; i < window; ++i) {
      if (!seen[data_[i]]) {
        seen[data_[i]] = true;
        ++distinct;
      }
    }
    double density = window == 0 ? 0.0 : static_cast<double>(distinct) / 256.0;
    ratio = 0.05 + 0.95 * std::min(1.0, density * 1.5);
  }
  return static_cast<uint64_t>(static_cast<double>(size_) * ratio);
}

const Bytes& Blob::bytes() const {
  NYMIX_CHECK_MSG(!synthetic_, "bytes() on a synthetic blob; use Materialize()");
  return data_;
}

}  // namespace nymix
