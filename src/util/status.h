// Status and Result<T>: explicit error propagation without exceptions.
//
// A Status is either OK or carries an error code plus a human-readable
// message. Result<T> is a Status together with a value present iff the
// status is OK. These are the return types of every fallible operation in
// the Nymix libraries (Core Guidelines E.2: use a designed error-handling
// strategy; we pick value-based errors for a systems library).
#ifndef SRC_UTIL_STATUS_H_
#define SRC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "src/util/check.h"

namespace nymix {

enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kDataLoss,
  kUnauthenticated,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

// Human-readable name for a status code ("NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// [[nodiscard]] on the class makes every Status-returning call site either
// handle the error or discard it loudly; nymlint's error-ignored-status
// rule enforces the same contract at lint time.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Full "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status OkStatus();
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status PermissionDeniedError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status UnauthenticatedError(std::string message);
Status InternalError(std::string message);
Status CancelledError(std::string message);
Status DeadlineExceededError(std::string message);

// Result<T> holds a T on success or an error Status. Dereferencing a
// non-OK result is a programmer error and aborts.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(runtime/explicit)
    NYMIX_CHECK_MSG(!status_.ok(), "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    NYMIX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  const T& value() const {
    NYMIX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors out of the current function.
#define NYMIX_RETURN_IF_ERROR(expr)           \
  do {                                        \
    ::nymix::Status nymix_status__ = (expr);  \
    if (!nymix_status__.ok()) {               \
      return nymix_status__;                  \
    }                                         \
  } while (0)

// Evaluate a Result-returning expression; bind the value or propagate.
#define NYMIX_CONCAT_INNER_(a, b) a##b
#define NYMIX_CONCAT_(a, b) NYMIX_CONCAT_INNER_(a, b)
#define NYMIX_ASSIGN_OR_RETURN(lhs, expr) \
  NYMIX_ASSIGN_OR_RETURN_IMPL_(NYMIX_CONCAT_(nymix_result__, __LINE__), lhs, expr)
#define NYMIX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(*tmp)

}  // namespace nymix

#endif  // SRC_UTIL_STATUS_H_
