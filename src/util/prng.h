// Deterministic pseudo-random number generator (xoshiro256**) used across
// the simulation. All randomness in Nymix flows from explicitly seeded Prng
// instances so that every experiment is reproducible bit-for-bit.
#ifndef SRC_UTIL_PRNG_H_
#define SRC_UTIL_PRNG_H_

#include <cstdint>
#include <string_view>

#include "src/util/bytes.h"

namespace nymix {

// SplitMix64 step; also used standalone for cheap content-id hashing.
uint64_t SplitMix64(uint64_t& state);

// Stateless 64-bit mix of a single value.
uint64_t Mix64(uint64_t value);

// 64-bit FNV-1a hash of a byte string; used for content ids, not security.
uint64_t Fnv1a64(ByteSpan data);
uint64_t Fnv1a64(std::string_view text);

class Prng {
 public:
  explicit Prng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextU64();

  // Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive; lo must be <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Gaussian sample (Box-Muller) with the given mean / stddev.
  double NextGaussian(double mean, double stddev);

  // Fills a buffer with pseudo-random bytes.
  Bytes NextBytes(size_t count);

  // Derives an independent child generator from this one plus a label, so
  // components can each own a stream without perturbing one another.
  Prng Fork(std::string_view label);

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace nymix

#endif  // SRC_UTIL_PRNG_H_
