#include "src/util/thread_pool.h"

#include <algorithm>

#include "src/util/check.h"

namespace nymix {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 1) {
    return;  // inline pool: RunIndexed executes on the caller
  }
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::HardwareThreads() {
  unsigned count = std::thread::hardware_concurrency();
  return count == 0 ? 1 : static_cast<int>(count);
}

void ThreadPool::RunIndexed(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers_.empty()) {
    // Serial reference path: index order, caller's thread, no locking.
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    NYMIX_CHECK_MSG(batch_fn_ == nullptr, "ThreadPool::RunIndexed is not reentrant");
    batch_fn_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    completed_ = 0;
    ++batch_generation_;
  }
  work_cv_.notify_all();
  // The caller participates: on a machine with fewer cores than workers
  // this costs nothing, and on n==1 batches it avoids a pointless handoff.
  DrainBatch(batch_generation_);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return completed_ == batch_size_; });
  batch_fn_ = nullptr;
}

void ThreadPool::DrainBatch(uint64_t generation) {
  for (;;) {
    size_t index;
    const std::function<void(size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The generation check keeps a laggard worker from claiming indexes
      // of a batch installed after the one it woke for: once a claim
      // succeeds, RunIndexed cannot return (it waits for the claimed
      // index's completion), so `fn` stays valid for the call below.
      if (batch_generation_ != generation || next_index_ >= batch_size_) {
        return;
      }
      index = next_index_++;
      fn = batch_fn_;
    }
    (*fn)(index);
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++completed_;
      if (completed_ == batch_size_) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::WorkerMain() {
  uint64_t seen_generation = 0;
  for (;;) {
    uint64_t generation;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (batch_fn_ != nullptr && batch_generation_ != seen_generation &&
                             next_index_ < batch_size_);
      });
      if (stopping_) {
        return;
      }
      generation = batch_generation_;
      seen_generation = generation;
    }
    DrainBatch(generation);
  }
}

}  // namespace nymix
