// Invariant checking. NYMIX_CHECK aborts on violated invariants in all build
// modes; it is for programmer errors, never for expected runtime failures
// (those use Status/Result in src/util/status.h).
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define NYMIX_CHECK(cond)                                                                   \
  do {                                                                                      \
    if (!(cond)) {                                                                          \
      std::fprintf(stderr, "NYMIX_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                         \
    }                                                                                       \
  } while (0)

#define NYMIX_CHECK_MSG(cond, msg)                                                        \
  do {                                                                                    \
    if (!(cond)) {                                                                        \
      std::fprintf(stderr, "NYMIX_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__,  \
                   #cond, msg);                                                           \
      std::abort();                                                                       \
    }                                                                                     \
  } while (0)

#endif  // SRC_UTIL_CHECK_H_
