#include "src/util/event_loop.h"

#include <algorithm>

#include "src/util/check.h"

namespace nymix {

uint64_t EventLoop::ScheduleAfter(SimDuration delay, Callback fn) {
  NYMIX_CHECK(delay >= 0);
  return ScheduleAt(clock_.now() + delay, std::move(fn));
}

uint64_t EventLoop::ScheduleAt(SimTime when, Callback fn) {
  if (when < clock_.now()) {
    when = clock_.now();
  }
  uint64_t id = next_id_++;
  heap_.push(Event{when, next_sequence_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventLoop::Cancel(uint64_t event_id) {
  auto it = callbacks_.find(event_id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.push_back(event_id);
  return true;
}

bool EventLoop::RunOne() {
  while (!heap_.empty()) {
    Event event = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(event.id);
    if (it == callbacks_.end()) {
      // Cancelled event still sitting in the heap; drop its tombstone.
      auto tomb = std::find(cancelled_.begin(), cancelled_.end(), event.id);
      if (tomb != cancelled_.end()) {
        cancelled_.erase(tomb);
      }
      continue;
    }
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    clock_.AdvanceTo(event.when);
    fn();
    return true;
  }
  return false;
}

size_t EventLoop::RunUntilIdle() {
  size_t count = 0;
  while (RunOne()) {
    ++count;
  }
  return count;
}

size_t EventLoop::RunUntil(SimTime deadline) {
  size_t count = 0;
  while (!heap_.empty() && heap_.top().when <= deadline) {
    if (RunOne()) {
      ++count;
    }
  }
  clock_.AdvanceTo(deadline);
  return count;
}

bool EventLoop::RunUntilCondition(const std::function<bool()>& done) {
  while (!done()) {
    if (!RunOne()) {
      return done();
    }
  }
  return true;
}

}  // namespace nymix
