#include "src/util/event_loop.h"

#include <chrono>

#include "src/util/check.h"

namespace nymix {

uint64_t EventLoop::ScheduleAfter(SimDuration delay, Callback fn) {
  NYMIX_CHECK(delay >= 0);
  return ScheduleAt(clock_.now() + delay, std::move(fn));
}

uint64_t EventLoop::ScheduleAt(SimTime when, Callback fn) {
  if (when < clock_.now()) {
    when = clock_.now();
  }
  uint64_t id = next_id_++;
  heap_.push(Event{when, next_sequence_++, id});
  if (!node_pool_.empty()) {
    auto node = std::move(node_pool_.back());
    node_pool_.pop_back();
    node.key() = id;
    node.mapped() = std::move(fn);
    callbacks_.insert(std::move(node));
    if (node_reuses_ != nullptr) {
      node_reuses_->Increment();
    }
  } else {
    callbacks_.emplace(id, std::move(fn));
    if (node_allocs_ != nullptr) {
      node_allocs_->Increment();
    }
  }
  return id;
}

void EventLoop::RecycleNode(std::map<uint64_t, Callback>::node_type node) {
  if (node_pool_.size() >= kMaxPooledNodes) {
    return;  // node freed here; the pool stays bounded
  }
  node.mapped() = nullptr;  // drop the closure now, not at eventual reuse
  node_pool_.push_back(std::move(node));
}

bool EventLoop::Cancel(uint64_t event_id) {
  // The heap entry stays behind as a tombstone and is dropped lazily when
  // it reaches the top; only the callback table is authoritative.
  auto it = callbacks_.find(event_id);
  if (it == callbacks_.end()) {
    return false;
  }
  RecycleNode(callbacks_.extract(it));
  return true;
}

void EventLoop::PruneCancelledTop() {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

std::optional<SimTime> EventLoop::NextEventTime() {
  PruneCancelledTop();
  if (heap_.empty()) {
    return std::nullopt;
  }
  return heap_.top().when;
}

bool EventLoop::RunOne() {
  PruneCancelledTop();
  if (heap_.empty()) {
    return false;
  }
  Event event = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(event.id);
  NYMIX_CHECK(it != callbacks_.end());
  Callback fn = std::move(it->second);
  RecycleNode(callbacks_.extract(it));
  clock_.AdvanceTo(event.when);
  ++executed_count_;
  if (events_executed_ != nullptr) {
    events_executed_->Increment();
    queue_depth_->Record(static_cast<double>(callbacks_.size()));
    // Wall time below is the simulator profiling its own execution cost.
    // It feeds a metrics histogram only; virtual time moves solely through
    // clock_.AdvanceTo above, so determinism of results is unaffected. The
    // record_wall_time gate exists for byte-identity tests, which need the
    // registry dump free of wall-clock values.
    if (obs_->metrics.record_wall_time()) {
      // nymlint:allow(determinism-wallclock): self-profiling metric, never feeds virtual time
      auto wall_start = std::chrono::steady_clock::now();
      fn();
      // nymlint:allow(determinism-wallclock): self-profiling metric, never feeds virtual time
      auto wall_end = std::chrono::steady_clock::now();
      event_wall_ns_->Record(
          std::chrono::duration<double, std::nano>(wall_end - wall_start).count());
    } else {
      fn();
    }
  } else {
    fn();
  }
  if (TraceRecorder* tracer = this->tracer(); tracer != nullptr && executed_count_ % 64 == 0) {
    tracer->AddCounter("core", "pending_events", clock_.now(),
                       static_cast<double>(callbacks_.size()));
  }
  return true;
}

size_t EventLoop::RunUntilIdle() {
  size_t count = 0;
  while (RunOne()) {
    ++count;
  }
  return count;
}

size_t EventLoop::RunUntil(SimTime deadline) {
  size_t count = 0;
  for (;;) {
    // Prune first: a cancelled entry at the top must not let RunOne reach
    // past the deadline to the next live event.
    PruneCancelledTop();
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    if (RunOne()) {
      ++count;
    }
  }
  clock_.AdvanceTo(deadline);
  return count;
}

bool EventLoop::RunUntilCondition(const std::function<bool()>& done) {
  while (!done()) {
    if (!RunOne()) {
      return done();
    }
  }
  return true;
}

void EventLoop::set_observability(Observability* obs) {
  obs_ = obs;
  ++obs_epoch_;
  events_executed_ = nullptr;
  event_wall_ns_ = nullptr;
  queue_depth_ = nullptr;
  node_reuses_ = nullptr;
  node_allocs_ = nullptr;
  if (obs_ != nullptr && obs_->metrics.enabled()) {
    events_executed_ = obs_->metrics.GetCounter("core.event_loop.events_executed");
    event_wall_ns_ = obs_->metrics.GetHistogram("core.event_loop.event_wall_ns");
    queue_depth_ = obs_->metrics.GetHistogram("core.event_loop.queue_depth");
    node_reuses_ = obs_->metrics.GetCounter("core.event_loop.callback_node_reuses");
    node_allocs_ = obs_->metrics.GetCounter("core.event_loop.callback_node_allocs");
  }
}

}  // namespace nymix
