// Deterministic fault injection and failure recovery primitives.
//
// The paper's safety story rests on Nymix degrading gracefully — probes to
// dead hosts "fail with no-response" (§5.1), entry guards persist across
// crashes and restores (§3.5) — so faults are first-class citizens of the
// simulation: seeded, replayable, and observable. This header holds the
// shared toolkit:
//
//   - FaultInjector: a registry of named probabilistic fault points plus a
//     schedule of one-shot fault events, all driven by Prng streams derived
//     from one seed. The same seed yields the same crash at the same
//     virtual microsecond (tests/determinism_test.cc enforces it).
//   - BackoffPolicy / Backoff: retry budget + exponential-backoff math,
//     returning a Status when attempts are exhausted.
//   - RetryWithBackoff: generic async retry runner over the event loop.
//   - OnceCallback<T>: exactly-once completion guard; a completion that is
//     dropped without firing fires a kCancelled Status instead of silently
//     vanishing. Every Anonymizer::Start/Fetch path goes through this.
#ifndef SRC_UTIL_FAULT_H_
#define SRC_UTIL_FAULT_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "src/util/event_loop.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {

// ---------------------------------------------------------------- injector

// Configuration of one named probabilistic fault point.
struct FaultPointConfig {
  // Chance that a Roll() on this point injects a fault.
  double probability = 0.0;
  // Stop injecting after this many triggers (the fault "heals").
  uint64_t max_triggers = std::numeric_limits<uint64_t>::max();
  // Virtual-time window in which the point is live.
  SimTime active_from = 0;
  SimTime active_until = std::numeric_limits<SimTime>::max();
};

// Seeded registry of fault points and scheduled fault events. One injector
// hangs off each Simulation; components and experiments register points
// under stable names ("net.uplink.loss", "anon.tor.relay_crash", ...).
// Every fault decision draws from a per-point Prng stream derived from the
// injector's seed and the point's name, so streams are independent of both
// registration order and of one another.
class FaultInjector {
 public:
  FaultInjector(EventLoop& loop, uint64_t seed) : loop_(loop), seed_(seed) {}

  // Registers or reconfigures a fault point. The point's Prng stream is
  // (re-)derived from the injector seed and the name.
  void Configure(const std::string& point, FaultPointConfig config);

  // Convenience: register a plain always-active probability.
  void ConfigureProbability(const std::string& point, double probability);

  // Draws from the point's stream; true if a fault should be injected now.
  // Unregistered points never fire (the zero-cost disabled path is a map
  // lookup miss). Triggers are counted and emitted as obs metrics.
  bool Roll(const std::string& point);

  // Schedules a one-shot fault action at an absolute virtual time ("crash
  // relay 3 at t=5s"). Purely a labeled, traced wrapper over the event
  // loop, so fault timelines live beside probabilistic points.
  uint64_t At(SimTime when, const std::string& label, std::function<void()> fire);

  // Stable per-component seed, independent of call order. Components that
  // own their own fault randomness (Link loss, FlowScheduler aborts) derive
  // it from here so one experiment seed governs every fault stream.
  uint64_t SeedFor(std::string_view component) const {
    return Mix64(seed_ ^ Fnv1a64(component));
  }

  uint64_t rolls(const std::string& point) const;
  uint64_t triggers(const std::string& point) const;
  uint64_t total_triggers() const { return total_triggers_; }
  bool any_configured() const { return !points_.empty(); }

 private:
  struct Point {
    FaultPointConfig config;
    Prng prng;
    uint64_t rolls = 0;
    uint64_t triggers = 0;
  };

  EventLoop& loop_;
  uint64_t seed_;
  std::map<std::string, Point> points_;
  uint64_t total_triggers_ = 0;
};

// ----------------------------------------------------------------- backoff

// Retry budget with exponential backoff. `max_attempts` counts every try
// including the first; `jitter` spreads delays by a +/- fraction drawn from
// the seeded stream (deterministic, but decorrelates retry herds).
struct BackoffPolicy {
  SimDuration initial_delay = Millis(500);
  double multiplier = 2.0;
  SimDuration max_delay = Seconds(30);
  int max_attempts = 4;
  double jitter = 0.0;
};

class Backoff {
 public:
  Backoff(BackoffPolicy policy, uint64_t seed) : policy_(policy), prng_(seed) {}

  // Consumes one attempt; returns the virtual-time delay to wait before the
  // next try, or kResourceExhausted once the budget is spent. The first
  // failure waits `initial_delay`; each subsequent failure multiplies, up
  // to `max_delay`.
  Result<SimDuration> NextDelay();

  // Failed attempts consumed so far.
  int attempts() const { return attempts_; }
  bool exhausted() const { return attempts_ >= policy_.max_attempts - 1; }

  // Canonical exhaustion status: kResourceExhausted carrying both the
  // attempt budget and the last underlying error, so a shrunk fuzz repro
  // (or a log line) shows the root cause instead of just "exhausted".
  // `what` names the abandoned operation ("circuit build abandoned", ...).
  Status Exhausted(std::string_view what, const Status& last_error) const;

  // Fresh budget (e.g. a new circuit-build request reuses the object).
  void Reset() { attempts_ = 0; }

 private:
  BackoffPolicy policy_;
  Prng prng_;
  int attempts_ = 0;
};

// ------------------------------------------------------------ OnceCallback

// Exactly-once completion guard. Wraps a callback taking a Status-bearing
// value (Status itself, or Result<V>) so that:
//   - firing twice is a programmer error (NYMIX_CHECK);
//   - dropping every copy without firing delivers a kCancelled Status to
//     the callback instead of silently losing the completion.
// Copies share one fire state, so the guard can ride through std::function
// captures. A default-constructed or null-wrapped guard is inert.
template <typename T>
class OnceCallback {
 public:
  OnceCallback() = default;
  explicit OnceCallback(std::function<void(T)> fn)
      : OnceCallback(std::move(fn),
                     Status(StatusCode::kCancelled, "completion dropped without firing")) {}
  OnceCallback(std::function<void(T)> fn, Status dropped) {
    if (fn) {
      state_ = std::make_shared<State>();
      state_->fn = std::move(fn);
      state_->dropped = std::move(dropped);
    }
  }

  void operator()(T value) {
    if (state_ == nullptr) {
      return;  // inert (caller passed a null callback)
    }
    NYMIX_CHECK_MSG(!state_->fired, "completion fired twice");
    state_->fired = true;
    auto fn = std::move(state_->fn);
    state_->fn = nullptr;
    fn(std::move(value));
  }

  // True while armed: holds a callback that has not fired yet.
  explicit operator bool() const { return state_ != nullptr && !state_->fired; }
  bool fired() const { return state_ != nullptr && state_->fired; }

  // Consciously drop the pending completion (owner teardown). After this
  // neither the drop-status nor a late fire runs the callback.
  void Dismiss() {
    if (state_ != nullptr) {
      state_->fired = true;
      state_->fn = nullptr;
    }
  }

 private:
  struct State {
    std::function<void(T)> fn;
    Status dropped = OkStatus();
    bool fired = false;
    ~State() {
      if (!fired && fn) {
        auto f = std::move(fn);
        fn = nullptr;
        f(T(std::move(dropped)));
      }
    }
  };

  std::shared_ptr<State> state_;
};

// ------------------------------------------------------------------- retry

// Runs `attempt` until it reports success or `policy` is exhausted.
// `attempt` receives a finish callback it must eventually invoke exactly
// once with the attempt's Status; on failure the runner waits the next
// backoff delay in virtual time and tries again. `done` fires exactly once:
// OkStatus() on success, or — on exhaustion — Backoff::Exhausted's
// kResourceExhausted carrying the attempt budget and the last attempt's
// underlying error. `label` names the operation in metrics
// ("retry.<label>.attempts" / ".retries" / ".exhausted") and traces.
void RetryWithBackoff(EventLoop& loop, const BackoffPolicy& policy, uint64_t seed,
                      std::string label,
                      std::function<void(std::function<void(Status)>)> attempt,
                      std::function<void(Status)> done);

}  // namespace nymix

#endif  // SRC_UTIL_FAULT_H_
