#include "src/util/fault.h"

namespace nymix {

void FaultInjector::Configure(const std::string& point, FaultPointConfig config) {
  Point p{config, Prng(Mix64(seed_ ^ Fnv1a64(point)))};
  auto it = points_.find(point);
  if (it == points_.end()) {
    points_.emplace(point, std::move(p));
  } else {
    // Reconfiguring keeps the counters but restarts the stream, so the
    // post-reconfigure draws depend only on (seed, name, new config).
    p.rolls = it->second.rolls;
    p.triggers = it->second.triggers;
    it->second = std::move(p);
  }
}

void FaultInjector::ConfigureProbability(const std::string& point, double probability) {
  FaultPointConfig config;
  config.probability = probability;
  Configure(point, config);
}

bool FaultInjector::Roll(const std::string& point) {
  auto it = points_.find(point);
  if (it == points_.end()) {
    return false;
  }
  Point& p = it->second;
  ++p.rolls;
  if (auto* m = loop_.meters()) {
    m->GetCounter("fault.rolls")->Increment();
  }
  const SimTime now = loop_.now();
  if (now < p.config.active_from || now > p.config.active_until ||
      p.triggers >= p.config.max_triggers || p.config.probability <= 0.0) {
    return false;
  }
  // Draw even when probability >= 1 so the stream's position depends only
  // on the number of rolls, not on the configured probability.
  const bool inject = p.prng.NextDouble() < p.config.probability;
  if (!inject) {
    return false;
  }
  ++p.triggers;
  ++total_triggers_;
  if (auto* m = loop_.meters()) {
    m->GetCounter("fault.injected")->Increment();
    m->GetCounter("fault.injected." + point)->Increment();
  }
  if (auto* t = loop_.tracer()) {
    t->AddInstant("fault", "inject:" + point, "faults", now);
  }
  return true;
}

uint64_t FaultInjector::At(SimTime when, const std::string& label, std::function<void()> fire) {
  return loop_.ScheduleAt(when, [this, label, fire = std::move(fire)] {
    ++total_triggers_;
    if (auto* m = loop_.meters()) {
      m->GetCounter("fault.injected")->Increment();
      m->GetCounter("fault.injected." + label)->Increment();
    }
    if (auto* t = loop_.tracer()) {
      t->AddInstant("fault", "inject:" + label, "faults", loop_.now());
    }
    fire();
  });
}

uint64_t FaultInjector::rolls(const std::string& point) const {
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.rolls;
}

uint64_t FaultInjector::triggers(const std::string& point) const {
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

Result<SimDuration> Backoff::NextDelay() {
  if (attempts_ + 1 >= policy_.max_attempts) {
    return ResourceExhaustedError("retry budget exhausted after " +
                                  std::to_string(policy_.max_attempts) + " attempts");
  }
  double delay = static_cast<double>(policy_.initial_delay);
  for (int i = 0; i < attempts_; ++i) {
    delay *= policy_.multiplier;
    if (delay >= static_cast<double>(policy_.max_delay)) {
      break;
    }
  }
  if (delay > static_cast<double>(policy_.max_delay)) {
    delay = static_cast<double>(policy_.max_delay);
  }
  if (policy_.jitter > 0.0) {
    // Uniform in [1 - jitter, 1 + jitter], drawn from this backoff's own
    // seeded stream.
    const double factor = 1.0 + policy_.jitter * (2.0 * prng_.NextDouble() - 1.0);
    delay *= factor;
  }
  ++attempts_;
  return static_cast<SimDuration>(delay);
}

Status Backoff::Exhausted(std::string_view what, const Status& last_error) const {
  std::string message(what);
  message += " after " + std::to_string(policy_.max_attempts) + " attempts; last error: ";
  message += StatusCodeName(last_error.code());
  if (!last_error.message().empty()) {
    message += ": ";
    message += last_error.message();
  }
  return ResourceExhaustedError(std::move(message));
}

namespace {

// Heap-held driver for one RetryWithBackoff run; keeps itself alive through
// the shared_ptr captured in the callbacks it hands out.
struct RetryRun : std::enable_shared_from_this<RetryRun> {
  RetryRun(EventLoop& loop, const BackoffPolicy& policy, uint64_t seed, std::string label,
           std::function<void(std::function<void(Status)>)> attempt,
           std::function<void(Status)> done)
      : loop(loop),
        backoff(policy, seed),
        label(std::move(label)),
        attempt(std::move(attempt)),
        done(std::move(done), CancelledError("retry attempt dropped its completion")) {}

  void Start() {
    if (auto* m = loop.meters()) {
      m->GetCounter("retry." + label + ".attempts")->Increment();
      m->GetCounter("retry.attempts")->Increment();
    }
    auto self = shared_from_this();
    attempt(OnceCallback<Status>([self](Status status) { self->OnAttemptDone(status); },
                                 CancelledError("retry attempt dropped its completion")));
  }

  void OnAttemptDone(Status status) {
    if (status.ok()) {
      done(OkStatus());
      return;
    }
    Result<SimDuration> delay = backoff.NextDelay();
    if (!delay.ok()) {
      if (auto* m = loop.meters()) {
        m->GetCounter("retry." + label + ".exhausted")->Increment();
        m->GetCounter("retry.exhausted")->Increment();
      }
      if (auto* t = loop.tracer()) {
        t->AddInstant("retry", "exhausted:" + label, "faults", loop.now());
      }
      done(backoff.Exhausted("retry budget for '" + label + "' exhausted", status));
      return;
    }
    if (auto* m = loop.meters()) {
      m->GetCounter("retry." + label + ".retries")->Increment();
      m->GetCounter("retry.retries")->Increment();
    }
    if (auto* t = loop.tracer()) {
      t->AddInstant("retry", "retry:" + label, "faults", loop.now());
    }
    auto self = shared_from_this();
    loop.ScheduleAfter(*delay, [self] { self->Start(); });
  }

  EventLoop& loop;
  Backoff backoff;
  std::string label;
  std::function<void(std::function<void(Status)>)> attempt;
  OnceCallback<Status> done;
};

}  // namespace

void RetryWithBackoff(EventLoop& loop, const BackoffPolicy& policy, uint64_t seed,
                      std::string label,
                      std::function<void(std::function<void(Status)>)> attempt,
                      std::function<void(Status)> done) {
  auto run = std::make_shared<RetryRun>(loop, policy, seed, std::move(label), std::move(attempt),
                                        std::move(done));
  run->Start();
}

}  // namespace nymix
