#include "src/util/prng.h"

#include <cmath>

#include "src/util/check.h"

namespace nymix {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

uint64_t Fnv1a64(ByteSpan data) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

uint64_t Fnv1a64(std::string_view text) {
  return Fnv1a64(ByteSpan(reinterpret_cast<const uint8_t*>(text.data()), text.size()));
}

namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Prng::Prng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Prng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Prng::NextBelow(uint64_t bound) {
  NYMIX_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t value = NextU64();
  while (value >= limit) {
    value = NextU64();
  }
  return value % bound;
}

uint64_t Prng::NextInRange(uint64_t lo, uint64_t hi) {
  NYMIX_CHECK(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Prng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Prng::NextGaussian(double mean, double stddev) {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 1e-12) {
    u1 = NextDouble();
  }
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_gaussian_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Bytes Prng::NextBytes(size_t count) {
  Bytes out;
  out.reserve(count);
  while (out.size() < count) {
    uint64_t word = NextU64();
    for (int i = 0; i < 8 && out.size() < count; ++i) {
      out.push_back(static_cast<uint8_t>(word >> (8 * i)));
    }
  }
  return out;
}

Prng Prng::Fork(std::string_view label) {
  return Prng(NextU64() ^ Fnv1a64(label));
}

}  // namespace nymix
