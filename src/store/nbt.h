// NBT ("nymix binary trace"): compact binary encoding of a TraceRecorder
// event stream and/or a MetricsRegistry, layered on the CRC-checked record
// log. The codec stores the recorder's *exact* internal state — doubles as
// IEEE-754 bit patterns, virtual timestamps as fixed-width integers — so a
// decoded document re-exported through the ordinary JSON writers is
// byte-identical to the JSON the original run would have emitted. That is
// the contract tools/nbt2json relies on: goldens, SHA-256 cross-checks and
// bench_diff keep working against the JSON view while the wire stays ~3x
// smaller and needs no float formatting on the hot path.
//
// Record types (see docs/persistence.md for the framing underneath):
//   kNbtTrackTable — the track-name -> tid map, one record, written first
//   kNbtEvent      — one trace event per record (prefix-recoverable)
//   kNbtMetrics    — the whole metrics registry in one record
#ifndef SRC_STORE_NBT_H_
#define SRC_STORE_NBT_H_

#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/record_log.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

inline constexpr uint32_t kNbtTrackTable = 0x10;
inline constexpr uint32_t kNbtEvent = 0x11;
inline constexpr uint32_t kNbtMetrics = 0x20;

// Encodes whichever of `trace` / `metrics` is non-null (trace first).
Bytes EncodeNbt(const TraceRecorder* trace, const MetricsRegistry* metrics);

// A decoded NBT document. The recorder/registry are fully restored: their
// JSON exports match the original run's byte for byte.
struct NbtDocument {
  bool has_trace = false;
  TraceRecorder trace;
  bool has_metrics = false;
  MetricsRegistry metrics;
};

// Strict decode: any truncation, corruption or malformed record fails.
Result<NbtDocument> DecodeNbt(ByteSpan data);

// Tolerant decode: recovers the longest valid prefix. A torn or corrupted
// tail costs the damaged record and everything after it, never the intact
// events before it.
struct NbtRecovered {
  NbtDocument doc;
  size_t valid_bytes = 0;
  size_t lost_bytes = 0;
  bool clean = false;
  size_t events_recovered = 0;
};
Result<NbtRecovered> RecoverNbt(ByteSpan data);

// JSON view of a decoded document: the Chrome trace JSON (when a trace is
// present) followed by the metrics JSON (when metrics are present) —
// exactly what the equivalent --trace-format=json run writes, byte for
// byte, with nothing appended.
std::string NbtToJson(const NbtDocument& doc);

}  // namespace nymix

#endif  // SRC_STORE_NBT_H_
