#include "src/store/image_checkpoint.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/crypto/merkle.h"
#include "src/crypto/sha256.h"

namespace nymix {

namespace {

void AppendDigest(Bytes& out, const Sha256Digest& digest) {
  out.insert(out.end(), digest.begin(), digest.end());
}

Result<Sha256Digest> ReadDigest(ByteSpan data, size_t& offset) {
  if (data.size() - offset < kSha256DigestSize) {
    return DataLossError("image checkpoint: short digest");
  }
  Sha256Digest digest;
  std::copy(data.begin() + static_cast<ptrdiff_t>(offset),
            data.begin() + static_cast<ptrdiff_t>(offset + kSha256DigestSize), digest.begin());
  offset += kSha256DigestSize;
  return digest;
}

}  // namespace

std::string ImageCheckpointKey(const std::string& name, uint64_t seed, uint64_t size_bytes) {
  return "image/" + name + "/" + std::to_string(seed) + "/" + std::to_string(size_bytes);
}

Bytes EncodeImageCheckpoint(const BaseImage& image) {
  Bytes payload;
  AppendLengthPrefixed(payload, BytesFromString(image.name()));
  AppendU64(payload, image.seed());
  AppendU64(payload, image.size_bytes());
  AppendU32(payload, static_cast<uint32_t>(image.block_digests().size()));
  for (const Sha256Digest& digest : image.block_digests()) {
    AppendDigest(payload, digest);
  }
  const auto& levels = image.merkle().levels();
  AppendU32(payload, static_cast<uint32_t>(levels.size()));
  for (const auto& level : levels) {
    AppendU32(payload, static_cast<uint32_t>(level.size()));
    for (const Sha256Digest& node : level) {
      AppendDigest(payload, node);
    }
  }
  return payload;
}

Result<std::shared_ptr<BaseImage>> DecodeImageCheckpoint(ByteSpan payload) {
  size_t offset = 0;
  NYMIX_ASSIGN_OR_RETURN(Bytes name_bytes, ReadLengthPrefixed(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(uint64_t seed, ReadU64(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(uint64_t size_bytes, ReadU64(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(uint32_t n_digests, ReadU32(payload, offset));
  if (static_cast<uint64_t>(n_digests) * kSha256DigestSize > payload.size() - offset) {
    return DataLossError("image checkpoint: digest table exceeds payload");
  }
  std::vector<Sha256Digest> digests;
  digests.reserve(n_digests);
  for (uint32_t i = 0; i < n_digests; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Sha256Digest digest, ReadDigest(payload, offset));
    digests.push_back(digest);
  }
  NYMIX_ASSIGN_OR_RETURN(uint32_t n_levels, ReadU32(payload, offset));
  std::vector<std::vector<Sha256Digest>> levels;
  levels.reserve(n_levels);
  for (uint32_t l = 0; l < n_levels; ++l) {
    NYMIX_ASSIGN_OR_RETURN(uint32_t n_nodes, ReadU32(payload, offset));
    if (static_cast<uint64_t>(n_nodes) * kSha256DigestSize > payload.size() - offset) {
      return DataLossError("image checkpoint: merkle level exceeds payload");
    }
    std::vector<Sha256Digest> level;
    level.reserve(n_nodes);
    for (uint32_t i = 0; i < n_nodes; ++i) {
      NYMIX_ASSIGN_OR_RETURN(Sha256Digest node, ReadDigest(payload, offset));
      level.push_back(node);
    }
    levels.push_back(std::move(level));
  }
  if (offset != payload.size()) {
    return DataLossError("image checkpoint: trailing bytes");
  }
  NYMIX_ASSIGN_OR_RETURN(MerkleTree merkle, MerkleTree::FromLevels(std::move(levels)));
  return BaseImage::CreateDistributionFromCheckpoint(StringFromBytes(name_bytes), seed, size_bytes,
                                                     std::move(digests), std::move(merkle));
}

Result<std::shared_ptr<BaseImage>> AcquireDistributionImage(KvStore& store,
                                                            const std::string& name, uint64_t seed,
                                                            uint64_t size_bytes,
                                                            bool* cold_built) {
  const std::string key = ImageCheckpointKey(name, seed, size_bytes);
  if (store.Contains(key)) {
    Result<ByteSpan> payload = store.Get(key);
    NYMIX_RETURN_IF_ERROR(payload.status());
    Result<std::shared_ptr<BaseImage>> restored = DecodeImageCheckpoint(*payload);
    if (restored.ok()) {
      if (cold_built != nullptr) {
        *cold_built = false;
      }
      return restored;
    }
    // A stale or malformed checkpoint falls through to a cold build that
    // overwrites it — warm start must never be able to wedge a bench.
  }
  std::shared_ptr<BaseImage> image = BaseImage::CreateDistribution(name, seed, size_bytes);
  store.Put(key, EncodeImageCheckpoint(*image));
  if (cold_built != nullptr) {
    *cold_built = true;
  }
  return image;
}

}  // namespace nymix
