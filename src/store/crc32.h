// CRC-32C (Castagnoli) over byte spans — the integrity check on every
// record the persistent store writes. Table-driven, reflected polynomial
// 0x1EDC6F41; pure function of the input bytes, so checksums are identical
// across machines and runs (the store's determinism contract extends to
// its framing).
#ifndef SRC_STORE_CRC32_H_
#define SRC_STORE_CRC32_H_

#include <cstdint>

#include "src/util/bytes.h"

namespace nymix {

// One-shot CRC-32C of `data`.
uint32_t Crc32c(ByteSpan data);

// Incremental form: seed with kCrc32cInit, fold spans in order, finalize.
// Crc32c(a ++ b) == Crc32cFinish(Crc32cUpdate(Crc32cUpdate(kCrc32cInit, a), b)).
inline constexpr uint32_t kCrc32cInit = 0xFFFFFFFFu;
uint32_t Crc32cUpdate(uint32_t state, ByteSpan data);
inline constexpr uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

}  // namespace nymix

#endif  // SRC_STORE_CRC32_H_
