#include "src/store/record_log.h"

#include <cstring>

#include "src/store/crc32.h"

namespace nymix {

namespace {

void AppendHeader(Bytes& buf) {
  buf.insert(buf.end(), kRecordLogMagic, kRecordLogMagic + sizeof(kRecordLogMagic));
  AppendU32(buf, kRecordLogVersion);
}

constexpr size_t kHeaderSize = sizeof(kRecordLogMagic) + 4;

// Raw little-endian u32 read; callers have already bounds-checked. The
// Result-returning ReadU32 in src/util would force error plumbing into a
// scanner whose whole job is to classify damage itself.
uint32_t RawU32(ByteSpan data, size_t offset) {
  return static_cast<uint32_t>(data[offset]) | (static_cast<uint32_t>(data[offset + 1]) << 8) |
         (static_cast<uint32_t>(data[offset + 2]) << 16) |
         (static_cast<uint32_t>(data[offset + 3]) << 24);
}

}  // namespace

RecordLogWriter::RecordLogWriter() { AppendHeader(buf_); }

RecordLogWriter::RecordLogWriter(Bytes existing) : buf_(std::move(existing)) {
  if (buf_.empty()) AppendHeader(buf_);
}

void RecordLogWriter::Append(uint32_t type, ByteSpan payload) {
  AppendU32(buf_, static_cast<uint32_t>(payload.size()));
  const size_t type_at = buf_.size();
  AppendU32(buf_, type);
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  uint32_t crc = Crc32cUpdate(kCrc32cInit, ByteSpan(buf_).subspan(type_at, 4));
  crc = Crc32cFinish(Crc32cUpdate(crc, payload));
  AppendU32(buf_, crc);
}

ScanResult ScanRecordLog(ByteSpan data) {
  ScanResult out;
  // A zero-length buffer is a log that was never written (an interrupted
  // first write, a freshly created file): clean-empty, not foreign bytes.
  // The first fuzzer-found decoder repro was exactly this case classified
  // as kBadHeader, which made crash recovery refuse an empty store file.
  if (data.empty()) {
    out.tail = LogTail::kClean;
    return out;
  }
  if (data.size() < kHeaderSize) {
    // Shorter than a full header: a torn header write if the bytes agree
    // with the header prefix, foreign content otherwise. Reconstruct the
    // expected header prefix (magic then LE version) for the comparison.
    uint8_t expected[kHeaderSize];
    std::memcpy(expected, kRecordLogMagic, sizeof(kRecordLogMagic));
    for (size_t i = 0; i < 4; ++i) {
      expected[sizeof(kRecordLogMagic) + i] =
          static_cast<uint8_t>((kRecordLogVersion >> (8 * i)) & 0xff);
    }
    out.tail = std::memcmp(data.data(), expected, data.size()) == 0 ? LogTail::kTruncated
                                                                    : LogTail::kBadHeader;
    return out;
  }
  if (std::memcmp(data.data(), kRecordLogMagic, sizeof(kRecordLogMagic)) != 0 ||
      RawU32(data, sizeof(kRecordLogMagic)) != kRecordLogVersion) {
    out.tail = LogTail::kBadHeader;
    return out;
  }
  size_t offset = kHeaderSize;
  out.valid_bytes = offset;
  while (offset < data.size()) {
    // A record needs at least length + type + crc fields.
    if (data.size() - offset < 12) {
      out.tail = LogTail::kTruncated;
      return out;
    }
    const uint32_t payload_len = RawU32(data, offset);
    if (payload_len > kMaxRecordPayload) {
      out.tail = LogTail::kCorrupt;
      return out;
    }
    if (data.size() - offset - 12 < payload_len) {
      out.tail = LogTail::kTruncated;
      return out;
    }
    const size_t type_at = offset + 4;
    const ByteSpan payload = data.subspan(offset + 8, payload_len);
    const uint32_t stored_crc = RawU32(data, offset + 8 + payload_len);
    uint32_t crc = Crc32cUpdate(kCrc32cInit, data.subspan(type_at, 4));
    crc = Crc32cFinish(Crc32cUpdate(crc, payload));
    if (crc != stored_crc) {
      out.tail = LogTail::kCorrupt;
      return out;
    }
    out.records.push_back(Record{RawU32(data, type_at), payload});
    offset += 12 + payload_len;
    out.valid_bytes = offset;
  }
  out.tail = LogTail::kClean;
  return out;
}

Result<std::vector<Record>> ReadRecordLog(ByteSpan data) {
  ScanResult scan = ScanRecordLog(data);
  switch (scan.tail) {
    case LogTail::kClean:
      return std::move(scan.records);
    case LogTail::kBadHeader:
      return InvalidArgumentError("record log: bad magic or version");
    case LogTail::kTruncated:
      return DataLossError("record log: truncated record at byte " +
                           std::to_string(scan.valid_bytes));
    case LogTail::kCorrupt:
      return DataLossError("record log: CRC mismatch at byte " +
                           std::to_string(scan.valid_bytes));
  }
  return InternalError("record log: unreachable tail state");
}

}  // namespace nymix
