#include "src/store/nbt.h"

#include <bit>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace nymix {

namespace {

void AppendDouble(Bytes& out, double value) { AppendU64(out, std::bit_cast<uint64_t>(value)); }

Result<double> ReadDouble(ByteSpan data, size_t& offset) {
  NYMIX_ASSIGN_OR_RETURN(uint64_t bits, ReadU64(data, offset));
  return std::bit_cast<double>(bits);
}

Bytes EncodeTrackTable(const TraceRecorder& trace) {
  Bytes payload;
  AppendU32(payload, static_cast<uint32_t>(trace.track_tids().size()));
  for (const auto& [track, tid] : trace.track_tids()) {
    AppendLengthPrefixed(payload, BytesFromString(track));
    AppendU32(payload, tid);
  }
  return payload;
}

Bytes EncodeEvent(const TraceRecorder::Event& event) {
  Bytes payload;
  payload.push_back(static_cast<uint8_t>(event.phase));
  AppendLengthPrefixed(payload, BytesFromString(event.category));
  AppendLengthPrefixed(payload, BytesFromString(event.name));
  AppendU32(payload, event.tid);
  AppendU64(payload, event.async_id);
  AppendU64(payload, static_cast<uint64_t>(event.ts));
  AppendU64(payload, static_cast<uint64_t>(event.dur));
  AppendDouble(payload, event.wall_us);
  AppendDouble(payload, event.value);
  return payload;
}

Bytes EncodeMetrics(const MetricsRegistry& metrics) {
  Bytes payload;
  AppendU32(payload, static_cast<uint32_t>(metrics.counters().size()));
  for (const auto& [name, counter] : metrics.counters()) {
    AppendLengthPrefixed(payload, BytesFromString(name));
    AppendU64(payload, counter.value());
  }
  AppendU32(payload, static_cast<uint32_t>(metrics.gauges().size()));
  for (const auto& [name, gauge] : metrics.gauges()) {
    AppendLengthPrefixed(payload, BytesFromString(name));
    AppendDouble(payload, gauge.value());
  }
  AppendU32(payload, static_cast<uint32_t>(metrics.histograms().size()));
  for (const auto& [name, histogram] : metrics.histograms()) {
    AppendLengthPrefixed(payload, BytesFromString(name));
    AppendU64(payload, histogram.count());
    AppendDouble(payload, histogram.sum());
    AppendDouble(payload, histogram.min());
    AppendDouble(payload, histogram.max());
    AppendU32(payload, static_cast<uint32_t>(histogram.buckets().size()));
    for (const auto& [index, count] : histogram.buckets()) {
      AppendU32(payload, static_cast<uint32_t>(index));
      AppendU64(payload, count);
    }
  }
  return payload;
}

Status DecodeTrackTable(ByteSpan payload, std::map<std::string, uint32_t>& out) {
  size_t offset = 0;
  NYMIX_ASSIGN_OR_RETURN(uint32_t count, ReadU32(payload, offset));
  for (uint32_t i = 0; i < count; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes track, ReadLengthPrefixed(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(uint32_t tid, ReadU32(payload, offset));
    out[StringFromBytes(track)] = tid;
  }
  if (offset != payload.size()) {
    return DataLossError("nbt: trailing bytes in track table");
  }
  return OkStatus();
}

Status DecodeEvent(ByteSpan payload, TraceRecorder::Event& out) {
  if (payload.empty()) {
    return DataLossError("nbt: empty event record");
  }
  size_t offset = 0;
  out.phase = static_cast<char>(payload[offset++]);
  NYMIX_ASSIGN_OR_RETURN(Bytes category, ReadLengthPrefixed(payload, offset));
  out.category = TraceRecorder::InternCategory(StringFromBytes(category));
  NYMIX_ASSIGN_OR_RETURN(Bytes name, ReadLengthPrefixed(payload, offset));
  out.name = StringFromBytes(name);
  NYMIX_ASSIGN_OR_RETURN(out.tid, ReadU32(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(out.async_id, ReadU64(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(uint64_t ts, ReadU64(payload, offset));
  out.ts = static_cast<SimTime>(ts);
  NYMIX_ASSIGN_OR_RETURN(uint64_t dur, ReadU64(payload, offset));
  out.dur = static_cast<SimDuration>(dur);
  NYMIX_ASSIGN_OR_RETURN(out.wall_us, ReadDouble(payload, offset));
  NYMIX_ASSIGN_OR_RETURN(out.value, ReadDouble(payload, offset));
  if (offset != payload.size()) {
    return DataLossError("nbt: trailing bytes in event record");
  }
  return OkStatus();
}

Status DecodeMetrics(ByteSpan payload, MetricsRegistry& out) {
  size_t offset = 0;
  NYMIX_ASSIGN_OR_RETURN(uint32_t n_counters, ReadU32(payload, offset));
  for (uint32_t i = 0; i < n_counters; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes name, ReadLengthPrefixed(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(uint64_t value, ReadU64(payload, offset));
    out.GetCounter(StringFromBytes(name))->Increment(value);
  }
  NYMIX_ASSIGN_OR_RETURN(uint32_t n_gauges, ReadU32(payload, offset));
  for (uint32_t i = 0; i < n_gauges; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes name, ReadLengthPrefixed(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(double value, ReadDouble(payload, offset));
    out.GetGauge(StringFromBytes(name))->Set(value);
  }
  NYMIX_ASSIGN_OR_RETURN(uint32_t n_histograms, ReadU32(payload, offset));
  for (uint32_t i = 0; i < n_histograms; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes name, ReadLengthPrefixed(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(uint64_t count, ReadU64(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(double sum, ReadDouble(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(double min, ReadDouble(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(double max, ReadDouble(payload, offset));
    NYMIX_ASSIGN_OR_RETURN(uint32_t n_buckets, ReadU32(payload, offset));
    std::map<int32_t, uint64_t> buckets;
    for (uint32_t b = 0; b < n_buckets; ++b) {
      NYMIX_ASSIGN_OR_RETURN(uint32_t index, ReadU32(payload, offset));
      NYMIX_ASSIGN_OR_RETURN(uint64_t bucket_count, ReadU64(payload, offset));
      buckets[static_cast<int32_t>(index)] = bucket_count;
    }
    out.GetHistogram(StringFromBytes(name))
        ->RestoreState(std::move(buckets), count, sum, min, max);
  }
  if (offset != payload.size()) {
    return DataLossError("nbt: trailing bytes in metrics record");
  }
  return OkStatus();
}

// Replays one decoded record into the document under construction.
// `events`/`tracks` accumulate trace state; the recorder is assembled once
// at the end so RestoreForDecode recomputes derived counters exactly once.
Status ReplayNbtRecord(const Record& record, NbtDocument& doc,
                       std::vector<TraceRecorder::Event>& events,
                       std::map<std::string, uint32_t>& tracks) {
  switch (record.type) {
    case kNbtTrackTable:
      doc.has_trace = true;
      return DecodeTrackTable(record.payload, tracks);
    case kNbtEvent: {
      TraceRecorder::Event event;
      NYMIX_RETURN_IF_ERROR(DecodeEvent(record.payload, event));
      doc.has_trace = true;
      events.push_back(std::move(event));
      return OkStatus();
    }
    case kNbtMetrics:
      doc.has_metrics = true;
      doc.metrics.set_enabled(true);
      return DecodeMetrics(record.payload, doc.metrics);
    default:
      return InvalidArgumentError("nbt: unknown record type " + std::to_string(record.type));
  }
}

}  // namespace

Bytes EncodeNbt(const TraceRecorder* trace, const MetricsRegistry* metrics) {
  RecordLogWriter log;
  if (trace != nullptr) {
    log.Append(kNbtTrackTable, EncodeTrackTable(*trace));
    for (const TraceRecorder::Event& event : trace->events()) {
      log.Append(kNbtEvent, EncodeEvent(event));
    }
  }
  if (metrics != nullptr) {
    log.Append(kNbtMetrics, EncodeMetrics(*metrics));
  }
  return log.TakeBytes();
}

Result<NbtDocument> DecodeNbt(ByteSpan data) {
  NYMIX_ASSIGN_OR_RETURN(std::vector<Record> records, ReadRecordLog(data));
  NbtDocument doc;
  std::vector<TraceRecorder::Event> events;
  std::map<std::string, uint32_t> tracks;
  for (const Record& record : records) {
    NYMIX_RETURN_IF_ERROR(ReplayNbtRecord(record, doc, events, tracks));
  }
  if (doc.has_trace) {
    doc.trace.RestoreForDecode(std::move(events), std::move(tracks));
  }
  return doc;
}

Result<NbtRecovered> RecoverNbt(ByteSpan data) {
  ScanResult scan = ScanRecordLog(data);
  if (scan.tail == LogTail::kBadHeader) {
    return InvalidArgumentError("nbt: not a record log (bad header)");
  }
  NbtRecovered out;
  std::vector<TraceRecorder::Event> events;
  std::map<std::string, uint32_t> tracks;
  size_t replayed_bytes = sizeof(kRecordLogMagic) + 4;  // header
  bool damaged = !scan.clean();
  for (const Record& record : scan.records) {
    Status replayed = ReplayNbtRecord(record, out.doc, events, tracks);
    if (!replayed.ok()) {
      scan.valid_bytes = replayed_bytes;
      damaged = true;
      break;
    }
    replayed_bytes += 12 + record.payload.size();
  }
  if (out.doc.has_trace) {
    out.doc.trace.RestoreForDecode(std::move(events), std::move(tracks));
    out.events_recovered = out.doc.trace.event_count();
  }
  out.valid_bytes = scan.valid_bytes;
  out.lost_bytes = data.size() - scan.valid_bytes;
  out.clean = !damaged;
  return out;
}

std::string NbtToJson(const NbtDocument& doc) {
  std::ostringstream out;
  if (doc.has_trace) {
    doc.trace.WriteChromeJson(out);
  }
  if (doc.has_metrics) {
    doc.metrics.WriteJson(out);
  }
  return out.str();
}

}  // namespace nymix
