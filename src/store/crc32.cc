#include "src/store/crc32.h"

#include <array>

namespace nymix {

namespace {

// Reflected CRC-32C table, generated once at first use from the reversed
// polynomial 0x82F63B78 (bit-reverse of 0x1EDC6F41).
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  return kTable;
}

}  // namespace

uint32_t Crc32cUpdate(uint32_t state, ByteSpan data) {
  const std::array<uint32_t, 256>& table = Crc32cTable();
  for (uint8_t byte : data) {
    state = (state >> 8) ^ table[(state ^ byte) & 0xFFu];
  }
  return state;
}

uint32_t Crc32c(ByteSpan data) { return Crc32cFinish(Crc32cUpdate(kCrc32cInit, data)); }

}  // namespace nymix
