// Single-writer, log-structured key/value store over the record log.
//
// The design follows the pattern production deterministic nodes use for
// their persistence layer: every mutation appends a Put or Delete record;
// the in-memory index (a sorted std::map, so iteration order is stable) is
// rebuilt by replaying the log on open. There is exactly one writer per
// store instance and no background threads — all ordering comes from the
// caller, so a store's byte image is a pure function of the operation
// sequence applied to it.
//
// Recovery contract: Open() is strict (any damage is an error); Recover()
// replays the longest valid prefix and reports how much of the tail was
// lost, which is what crash-recovery paths want.
#ifndef SRC_STORE_KV_STORE_H_
#define SRC_STORE_KV_STORE_H_

#include <map>
#include <string>
#include <string_view>

#include "src/store/record_log.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

struct KvRecoverResult;

class KvStore {
 public:
  // Record types within the log.
  static constexpr uint32_t kRecordPut = 1;
  static constexpr uint32_t kRecordDelete = 2;

  // Empty store (fresh log with only the header).
  KvStore();

  // Strict open: fails unless `data` is a clean log of Put/Delete records.
  static Result<KvStore> Open(ByteSpan data);

  // Tolerant open: replays the longest valid prefix, never fails on
  // truncation/corruption (only on a missing/foreign header).
  static Result<KvRecoverResult> Recover(ByteSpan data);

  // Convenience wrappers around file_io.
  static Result<KvStore> Load(const std::string& path);
  Status Save(const std::string& path) const;

  void Put(std::string_view key, ByteSpan value);
  void PutString(std::string_view key, std::string_view value);
  void Delete(std::string_view key);

  bool Contains(std::string_view key) const;
  Result<ByteSpan> Get(std::string_view key) const;
  Result<std::string> GetString(std::string_view key) const;

  size_t size() const { return entries_.size(); }
  const std::map<std::string, Bytes, std::less<>>& entries() const { return entries_; }

  // Serialized log image, including any superseded records.
  const Bytes& log() const { return log_.bytes(); }

  // Rewrites the log with exactly one Put per live key (sorted order),
  // dropping overwritten and deleted history. Byte-deterministic.
  void Compact();

 private:
  Status Replay(const Record& record);

  RecordLogWriter log_;
  std::map<std::string, Bytes, std::less<>> entries_;
};

struct KvRecoverResult {
  KvStore store;
  size_t valid_bytes = 0;  // intact prefix replayed into `store`
  size_t lost_bytes = 0;   // bytes past the damage, discarded
  bool clean = false;      // true when nothing was lost
};

}  // namespace nymix

#endif  // SRC_STORE_KV_STORE_H_
