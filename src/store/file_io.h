// The one sanctioned home for raw file I/O in src/. Everything persistent
// in nymix serializes to deterministic byte buffers first and only then
// touches the filesystem through these two calls; nymlint's store-raw-io
// rule bans fstream/fopen elsewhere so no subsystem can grow its own ad-hoc
// (and wall-clock-tainted) persistence path.
#ifndef SRC_STORE_FILE_IO_H_
#define SRC_STORE_FILE_IO_H_

#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// Reads the whole file at `path` into memory.
Result<Bytes> ReadFileBytes(const std::string& path);

// Writes `data` to `path`, replacing any existing content.
Status WriteFileBytes(const std::string& path, ByteSpan data);

}  // namespace nymix

#endif  // SRC_STORE_FILE_IO_H_
