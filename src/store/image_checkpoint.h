// Checkpoint/restore for BaseImage construction artifacts — the expensive,
// immutable part of standing up a fleet. Cold-building a 64 MiB
// distribution image hashes every 4 KiB block and builds a Merkle tree
// over 16K leaves; the checkpoint stores exactly those artifacts (block
// digest table + full tree levels) in the KV store, keyed by the image's
// identity (name, seed, size), so a warm start rebuilds only images whose
// identity changed — O(changed), not O(fleet).
//
// Only construction-time state is checkpointed. The image contents are a
// pure function of (name, seed, size), so a restored image is bit-equal to
// a cold-built one and a warm-started fleet replays the exact same event
// stream — byte-identical traces, which the warm-start CI smoke asserts.
#ifndef SRC_STORE_IMAGE_CHECKPOINT_H_
#define SRC_STORE_IMAGE_CHECKPOINT_H_

#include <memory>
#include <string>

#include "src/store/kv_store.h"
#include "src/unionfs/disk_image.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// "image/<name>/<seed>/<size_bytes>" — the KV key an image checkpoints to.
std::string ImageCheckpointKey(const std::string& name, uint64_t seed, uint64_t size_bytes);

Bytes EncodeImageCheckpoint(const BaseImage& image);
Result<std::shared_ptr<BaseImage>> DecodeImageCheckpoint(ByteSpan payload);

// Find-or-build: returns the (name, seed, size) image from `store` when a
// valid checkpoint exists, otherwise cold-builds it and writes the
// checkpoint back. `cold_built`, when non-null, reports which path ran.
Result<std::shared_ptr<BaseImage>> AcquireDistributionImage(KvStore& store,
                                                            const std::string& name, uint64_t seed,
                                                            uint64_t size_bytes,
                                                            bool* cold_built = nullptr);

}  // namespace nymix

#endif  // SRC_STORE_IMAGE_CHECKPOINT_H_
