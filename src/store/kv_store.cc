#include "src/store/kv_store.h"

#include <utility>

#include "src/store/file_io.h"

namespace nymix {

namespace {

Bytes EncodePut(std::string_view key, ByteSpan value) {
  Bytes payload;
  AppendLengthPrefixed(payload, BytesFromString(key));
  AppendLengthPrefixed(payload, value);
  return payload;
}

Bytes EncodeDelete(std::string_view key) {
  Bytes payload;
  AppendLengthPrefixed(payload, BytesFromString(key));
  return payload;
}

}  // namespace

KvStore::KvStore() = default;

Status KvStore::Replay(const Record& record) {
  size_t offset = 0;
  switch (record.type) {
    case kRecordPut: {
      NYMIX_ASSIGN_OR_RETURN(Bytes key, ReadLengthPrefixed(record.payload, offset));
      NYMIX_ASSIGN_OR_RETURN(Bytes value, ReadLengthPrefixed(record.payload, offset));
      if (offset != record.payload.size()) {
        return DataLossError("kv store: trailing bytes in Put record");
      }
      entries_[StringFromBytes(key)] = std::move(value);
      return OkStatus();
    }
    case kRecordDelete: {
      NYMIX_ASSIGN_OR_RETURN(Bytes key, ReadLengthPrefixed(record.payload, offset));
      if (offset != record.payload.size()) {
        return DataLossError("kv store: trailing bytes in Delete record");
      }
      entries_.erase(StringFromBytes(key));
      return OkStatus();
    }
    default:
      return InvalidArgumentError("kv store: unknown record type " +
                                  std::to_string(record.type));
  }
}

Result<KvStore> KvStore::Open(ByteSpan data) {
  NYMIX_ASSIGN_OR_RETURN(std::vector<Record> records, ReadRecordLog(data));
  KvStore store;
  for (const Record& record : records) {
    NYMIX_RETURN_IF_ERROR(store.Replay(record));
  }
  store.log_ = RecordLogWriter(Bytes(data.begin(), data.end()));
  return store;
}

Result<KvRecoverResult> KvStore::Recover(ByteSpan data) {
  ScanResult scan = ScanRecordLog(data);
  if (scan.tail == LogTail::kBadHeader) {
    return InvalidArgumentError("kv store: not a record log (bad header)");
  }
  KvRecoverResult out;
  size_t replayed_bytes = sizeof(kRecordLogMagic) + 4;  // header
  for (const Record& record : scan.records) {
    // A record that passed its CRC but fails to decode marks the end of
    // the trustworthy prefix; everything from it onward is discarded.
    Status replayed = out.store.Replay(record);
    if (!replayed.ok()) {
      scan.valid_bytes = replayed_bytes;
      scan.tail = LogTail::kCorrupt;
      break;
    }
    replayed_bytes += 12 + record.payload.size();
  }
  out.valid_bytes = scan.valid_bytes;
  out.lost_bytes = data.size() - scan.valid_bytes;
  out.clean = scan.tail == LogTail::kClean;
  out.store.log_ =
      RecordLogWriter(Bytes(data.begin(), data.begin() + static_cast<ptrdiff_t>(scan.valid_bytes)));
  return out;
}

Result<KvStore> KvStore::Load(const std::string& path) {
  NYMIX_ASSIGN_OR_RETURN(Bytes data, ReadFileBytes(path));
  return Open(data);
}

Status KvStore::Save(const std::string& path) const { return WriteFileBytes(path, log()); }

void KvStore::Put(std::string_view key, ByteSpan value) {
  log_.Append(kRecordPut, EncodePut(key, value));
  entries_[std::string(key)] = Bytes(value.begin(), value.end());
}

void KvStore::PutString(std::string_view key, std::string_view value) {
  Put(key, BytesFromString(value));
}

void KvStore::Delete(std::string_view key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  log_.Append(kRecordDelete, EncodeDelete(key));
  entries_.erase(it);
}

bool KvStore::Contains(std::string_view key) const { return entries_.find(key) != entries_.end(); }

Result<ByteSpan> KvStore::Get(std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("kv store: no such key: " + std::string(key));
  }
  return ByteSpan(it->second);
}

Result<std::string> KvStore::GetString(std::string_view key) const {
  NYMIX_ASSIGN_OR_RETURN(ByteSpan value, Get(key));
  return StringFromBytes(value);
}

void KvStore::Compact() {
  RecordLogWriter fresh;
  for (const auto& [key, value] : entries_) {
    fresh.Append(kRecordPut, EncodePut(key, value));
  }
  log_ = std::move(fresh);
}

}  // namespace nymix
