#include "src/store/file_io.h"

#include <fstream>
#include <ios>

namespace nymix {

Result<Bytes> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("cannot open for read: " + path);
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return InternalError("cannot size file: " + path);
  }
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<size_t>(size));
  if (size > 0 && !in.read(reinterpret_cast<char*>(data.data()), size)) {
    return DataLossError("short read: " + path);
  }
  return data;
}

Status WriteFileBytes(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return PermissionDeniedError("cannot open for write: " + path);
  }
  if (!data.empty()) {
    out.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  }
  out.flush();
  if (!out) {
    return DataLossError("short write: " + path);
  }
  return OkStatus();
}

}  // namespace nymix
