// Append-only, CRC-checked record log — the framing layer every persistent
// artifact in nymix sits on (KV store, NBT traces, checkpoints).
//
// Layout (all integers little-endian, fixed width; see docs/persistence.md):
//
//   file   := header record*
//   header := magic[8] ("NYMLOG\x00\x01") u32 version
//   record := u32 payload_len  u32 type  payload[payload_len]  u32 crc
//
// The CRC is CRC-32C over the type field's 4 encoded bytes followed by the
// payload, so a record whose length field was corrupted into another
// record's body still fails the check. Readers recover the longest valid
// prefix: scanning stops at the first malformed record and reports how many
// bytes were good, so a torn final write loses at most that one record.
//
// Encoding is a pure function of the logical content — no wall-clock, no
// pointers, no padding from uninitialized memory — which keeps byte-level
// determinism (the simulator's core contract) intact through persistence.
#ifndef SRC_STORE_RECORD_LOG_H_
#define SRC_STORE_RECORD_LOG_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

inline constexpr uint8_t kRecordLogMagic[8] = {'N', 'Y', 'M', 'L', 'O', 'G', 0x00, 0x01};
inline constexpr uint32_t kRecordLogVersion = 1;

// Upper bound on a single record's payload; a length field above this is
// treated as corruption rather than an attempt to allocate petabytes.
inline constexpr uint32_t kMaxRecordPayload = 1u << 30;

// A decoded record. `payload` views into the scanned buffer.
struct Record {
  uint32_t type = 0;
  ByteSpan payload;
};

// Why a scan stopped. A zero-length buffer is kClean with zero records
// ("clean-empty": a log that was never written — a freshly created or
// torn-at-birth file — carries no records and no evidence of foreign
// content). A buffer shorter than the header that agrees with the header
// prefix is kTruncated (a torn header write); kBadHeader is reserved for
// bytes that demonstrably are not a nymix log.
enum class LogTail {
  kClean,      // buffer ended exactly at a record boundary (or was empty)
  kTruncated,  // ran out of bytes mid-record or mid-header (torn write)
  kCorrupt,    // CRC mismatch or nonsensical length field
  kBadHeader,  // magic/version check failed; no records scanned
};

struct ScanResult {
  std::vector<Record> records;
  size_t valid_bytes = 0;  // prefix length covering header + intact records
  LogTail tail = LogTail::kClean;

  bool clean() const { return tail == LogTail::kClean; }
};

class RecordLogWriter {
 public:
  // Starts a fresh log: writes the header into an empty buffer.
  RecordLogWriter();

  // Resumes appending to an existing valid prefix (as reported by Scan).
  explicit RecordLogWriter(Bytes existing);

  void Append(uint32_t type, ByteSpan payload);

  const Bytes& bytes() const { return buf_; }
  Bytes TakeBytes() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Scans `data`, validating the header and every record's CRC. Never fails
// outright: corruption is reported through `tail`/`valid_bytes` and the
// records decoded before the damage are returned.
ScanResult ScanRecordLog(ByteSpan data);

// Strict variant: error unless the whole buffer is one clean log.
Result<std::vector<Record>> ReadRecordLog(ByteSpan data);

}  // namespace nymix

#endif  // SRC_STORE_RECORD_LOG_H_
