#include "src/unionfs/path.h"

namespace nymix {

Result<std::vector<std::string>> SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return InvalidArgumentError("path must be absolute: '" + std::string(path) + "'");
  }
  std::vector<std::string> components;
  size_t i = 1;
  while (i < path.size()) {
    size_t next = path.find('/', i);
    if (next == std::string_view::npos) {
      next = path.size();
    }
    std::string_view component = path.substr(i, next - i);
    if (component.empty()) {
      return InvalidArgumentError("path has empty component: '" + std::string(path) + "'");
    }
    if (component == "." || component == "..") {
      return InvalidArgumentError("path may not contain '.' or '..'");
    }
    components.emplace_back(component);
    i = next + 1;
  }
  return components;
}

std::string JoinPath(const std::vector<std::string>& components) {
  if (components.empty()) {
    return "/";
  }
  std::string out;
  for (const auto& component : components) {
    out += '/';
    out += component;
  }
  return out;
}

std::string ParentPath(std::string_view path) {
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos || slash == 0) {
    return "/";
  }
  return std::string(path.substr(0, slash));
}

std::string BasenameOf(std::string_view path) {
  size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) {
    return std::string(path);
  }
  return std::string(path.substr(slash + 1));
}

}  // namespace nymix
