#include "src/unionfs/mem_fs.h"

#include <algorithm>

namespace nymix {

std::unique_ptr<MemFs> MemFs::Clone() const {
  auto copy = std::make_unique<MemFs>();
  CloneInto(root_, copy->root_);
  copy->total_bytes_ = total_bytes_;
  copy->file_count_ = file_count_;
  return copy;
}

void MemFs::CloneInto(const Node& from, Node& to) {
  to.is_directory = from.is_directory;
  to.content = from.content;
  for (const auto& [name, child] : from.children) {
    auto cloned = std::make_unique<Node>();
    CloneInto(*child, *cloned);
    to.children.emplace(name, std::move(cloned));
  }
}

const MemFs::Node* MemFs::Find(const std::vector<std::string>& components) const {
  const Node* node = &root_;
  for (const auto& component : components) {
    if (!node->is_directory) {
      return nullptr;
    }
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

MemFs::Node* MemFs::Find(const std::vector<std::string>& components) {
  return const_cast<Node*>(static_cast<const MemFs*>(this)->Find(components));
}

Result<MemFs::Node*> MemFs::FindParent(const std::vector<std::string>& components, bool create) {
  NYMIX_CHECK(!components.empty());
  Node* node = &root_;
  for (size_t i = 0; i + 1 < components.size(); ++i) {
    if (!node->is_directory) {
      return FailedPreconditionError("path component is a file: " + components[i]);
    }
    auto it = node->children.find(components[i]);
    if (it == node->children.end()) {
      if (!create) {
        return NotFoundError("missing directory: " + components[i]);
      }
      auto dir = std::make_unique<Node>();
      dir->is_directory = true;
      it = node->children.emplace(components[i], std::move(dir)).first;
    }
    node = it->second.get();
  }
  if (!node->is_directory) {
    return FailedPreconditionError("parent is a file");
  }
  return node;
}

Status MemFs::Mkdir(std::string_view path, bool recursive) {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return OkStatus();  // "/" always exists
  }
  NYMIX_ASSIGN_OR_RETURN(Node * parent, FindParent(components, recursive));
  const std::string& name = components.back();
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    if (it->second->is_directory) {
      return recursive ? OkStatus() : AlreadyExistsError("directory exists: " + std::string(path));
    }
    return AlreadyExistsError("file exists at: " + std::string(path));
  }
  auto dir = std::make_unique<Node>();
  dir->is_directory = true;
  parent->children.emplace(name, std::move(dir));
  return OkStatus();
}

Status MemFs::WriteFile(std::string_view path, Blob content) {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgumentError("cannot write to '/'");
  }
  NYMIX_ASSIGN_OR_RETURN(Node * parent, FindParent(components, /*create=*/true));
  const std::string& name = components.back();
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    if (it->second->is_directory) {
      return FailedPreconditionError("directory exists at: " + std::string(path));
    }
    total_bytes_ -= it->second->content.size();
    total_bytes_ += content.size();
    it->second->content = std::move(content);
    return OkStatus();
  }
  auto file = std::make_unique<Node>();
  file->is_directory = false;
  total_bytes_ += content.size();
  ++file_count_;
  file->content = std::move(content);
  parent->children.emplace(name, std::move(file));
  return OkStatus();
}

Result<Blob> MemFs::ReadFile(std::string_view path) const {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  const Node* node = Find(components);
  if (node == nullptr) {
    return NotFoundError("no such file: " + std::string(path));
  }
  if (node->is_directory) {
    return FailedPreconditionError("is a directory: " + std::string(path));
  }
  return node->content;
}

Status MemFs::Unlink(std::string_view path) {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgumentError("cannot unlink '/'");
  }
  NYMIX_ASSIGN_OR_RETURN(Node * parent, FindParent(components, /*create=*/false));
  auto it = parent->children.find(components.back());
  if (it == parent->children.end() || it->second->is_directory) {
    return NotFoundError("no such file: " + std::string(path));
  }
  total_bytes_ -= it->second->content.size();
  --file_count_;
  parent->children.erase(it);
  return OkStatus();
}

Status MemFs::Remove(std::string_view path, bool recursive) {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  if (components.empty()) {
    return InvalidArgumentError("cannot remove '/'");
  }
  NYMIX_ASSIGN_OR_RETURN(Node * parent, FindParent(components, /*create=*/false));
  auto it = parent->children.find(components.back());
  if (it == parent->children.end()) {
    return NotFoundError("no such path: " + std::string(path));
  }
  Node* node = it->second.get();
  if (node->is_directory && !node->children.empty() && !recursive) {
    return FailedPreconditionError("directory not empty: " + std::string(path));
  }
  size_t removed_files = 0;
  uint64_t removed_bytes = SubtreeBytes(*node, removed_files);
  total_bytes_ -= removed_bytes;
  file_count_ -= removed_files;
  parent->children.erase(it);
  return OkStatus();
}

Status MemFs::Rename(std::string_view from, std::string_view to) {
  NYMIX_ASSIGN_OR_RETURN(auto from_components, SplitPath(from));
  NYMIX_ASSIGN_OR_RETURN(auto to_components, SplitPath(to));
  if (from_components.empty() || to_components.empty()) {
    return InvalidArgumentError("cannot rename '/'");
  }
  NYMIX_ASSIGN_OR_RETURN(Node * from_parent, FindParent(from_components, /*create=*/false));
  auto it = from_parent->children.find(from_components.back());
  if (it == from_parent->children.end()) {
    return NotFoundError("no such path: " + std::string(from));
  }
  if (Exists(to)) {
    return AlreadyExistsError("destination exists: " + std::string(to));
  }
  std::unique_ptr<Node> node = std::move(it->second);
  from_parent->children.erase(it);
  NYMIX_ASSIGN_OR_RETURN(Node * to_parent, FindParent(to_components, /*create=*/true));
  to_parent->children.emplace(to_components.back(), std::move(node));
  return OkStatus();
}

bool MemFs::Exists(std::string_view path) const {
  auto components = SplitPath(path);
  if (!components.ok()) {
    return false;
  }
  return Find(*components) != nullptr;
}

bool MemFs::IsDirectory(std::string_view path) const {
  auto components = SplitPath(path);
  if (!components.ok()) {
    return false;
  }
  const Node* node = Find(*components);
  return node != nullptr && node->is_directory;
}

Result<uint64_t> MemFs::FileSize(std::string_view path) const {
  NYMIX_ASSIGN_OR_RETURN(Blob blob, ReadFile(path));
  return blob.size();
}

Result<std::vector<DirEntry>> MemFs::List(std::string_view path) const {
  NYMIX_ASSIGN_OR_RETURN(auto components, SplitPath(path));
  const Node* node = Find(components);
  if (node == nullptr) {
    return NotFoundError("no such directory: " + std::string(path));
  }
  if (!node->is_directory) {
    return FailedPreconditionError("not a directory: " + std::string(path));
  }
  std::vector<DirEntry> entries;
  entries.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    entries.push_back(DirEntry{name, child->is_directory,
                               child->is_directory ? 0 : child->content.size()});
  }
  return entries;
}

void MemFs::ForEachFile(
    const std::function<void(const std::string&, const Blob&)>& visit) const {
  std::function<void(const Node&, const std::string&)> walk = [&](const Node& node,
                                                                  const std::string& prefix) {
    for (const auto& [name, child] : node.children) {
      std::string child_path = prefix + "/" + name;
      if (child->is_directory) {
        walk(*child, child_path);
      } else {
        visit(child_path, child->content);
      }
    }
  };
  walk(root_, "");
}

void MemFs::WipeAll() {
  root_.children.clear();
  total_bytes_ = 0;
  file_count_ = 0;
}

uint64_t MemFs::SubtreeBytes(const Node& node, size_t& files) {
  if (!node.is_directory) {
    ++files;
    return node.content.size();
  }
  uint64_t total = 0;
  for (const auto& [name, child] : node.children) {
    (void)name;
    total += SubtreeBytes(*child, files);
  }
  return total;
}

}  // namespace nymix
