// Filesystem (de)serialization used when archiving a nym's writable layers
// (§3.5). Synthetic blobs serialize as metadata, so archiving an 80 MB
// browser cache does not materialize 80 MB; logical sizes are preserved and
// reported separately (see storage/nym_archive.h).
#ifndef SRC_UNIONFS_SERIALIZE_H_
#define SRC_UNIONFS_SERIALIZE_H_

#include "src/unionfs/mem_fs.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// Serializes every file (path + blob). Empty directories are not preserved,
// like a tar of regular files.
Bytes SerializeMemFs(const MemFs& fs);

Result<std::unique_ptr<MemFs>> DeserializeMemFs(ByteSpan data);

// Logical payload size of the filesystem after nymzip would have run:
// real bytes compress for real; synthetic blobs contribute their estimate.
uint64_t EstimateCompressedPayload(const MemFs& fs);

}  // namespace nymix

#endif  // SRC_UNIONFS_SERIALIZE_H_
