// MemFs: an in-memory filesystem tree whose file contents are Blobs. One
// MemFs backs each union-fs layer: the read-only base image, the per-role
// configuration layer, and the RAM-resident writable layer whose size is
// what Figure 6 measures.
#ifndef SRC_UNIONFS_MEM_FS_H_
#define SRC_UNIONFS_MEM_FS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/unionfs/path.h"
#include "src/util/blob.h"
#include "src/util/status.h"

namespace nymix {

struct DirEntry {
  std::string name;
  bool is_directory = false;
  uint64_t size = 0;  // zero for directories
};

class MemFs {
 public:
  MemFs() = default;

  // Deep copy (used to fork the base image state into a new VM layer stack).
  std::unique_ptr<MemFs> Clone() const;

  // Creates a directory; with `recursive`, creates missing ancestors.
  Status Mkdir(std::string_view path, bool recursive = false);

  // Creates or replaces a file, creating ancestors as needed.
  Status WriteFile(std::string_view path, Blob content);

  Result<Blob> ReadFile(std::string_view path) const;

  // Removes a file (NOT_FOUND if absent or a directory).
  Status Unlink(std::string_view path);

  // Removes a file or directory; non-empty directories need `recursive`.
  Status Remove(std::string_view path, bool recursive = false);

  Status Rename(std::string_view from, std::string_view to);

  bool Exists(std::string_view path) const;
  bool IsDirectory(std::string_view path) const;
  Result<uint64_t> FileSize(std::string_view path) const;

  Result<std::vector<DirEntry>> List(std::string_view path) const;

  // Sum of all file sizes (logical bytes, including synthetic blobs).
  uint64_t TotalBytes() const { return total_bytes_; }
  size_t FileCount() const { return file_count_; }

  // Visits every file as (absolute path, blob), depth-first, sorted names.
  void ForEachFile(const std::function<void(const std::string&, const Blob&)>& visit) const;

  // Secure wipe: drops every node. Models zeroing the RAM-backed layer when
  // a nym terminates (§3.4 "amnesia").
  void WipeAll();

 private:
  struct Node {
    bool is_directory = false;
    Blob content;                                           // files only
    std::map<std::string, std::unique_ptr<Node>> children;  // directories only
  };

  static Node MakeDirectoryNode() {
    Node node;
    node.is_directory = true;
    return node;
  }

  // Walks to the node for `components`; nullptr if missing.
  const Node* Find(const std::vector<std::string>& components) const;
  Node* Find(const std::vector<std::string>& components);

  // Walks to the parent directory, optionally creating missing directories.
  Result<Node*> FindParent(const std::vector<std::string>& components, bool create);

  static void CloneInto(const Node& from, Node& to);
  static uint64_t SubtreeBytes(const Node& node, size_t& files);

  Node root_ = MakeDirectoryNode();
  uint64_t total_bytes_ = 0;
  size_t file_count_ = 0;
};

}  // namespace nymix

#endif  // SRC_UNIONFS_MEM_FS_H_
