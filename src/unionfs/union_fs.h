// UnionFs: OverlayFS-style stacking (§3.4/§4.2). Each VM sees three layers:
//   base image (read-only, shared with the host and all other VMs)
//   configuration layer (read-only, differentiates AnonVM/CommVM/SaniVM)
//   writable layer (RAM-backed tmpfs; discarded or archived at shutdown)
// Reads resolve top-down; writes copy-on-write into the writable layer;
// deletions of lower-layer files leave whiteout markers.
#ifndef SRC_UNIONFS_UNION_FS_H_
#define SRC_UNIONFS_UNION_FS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/unionfs/mem_fs.h"

namespace nymix {

class UnionFs {
 public:
  // `lower` is ordered bottom-to-top; `writable` is the tmpfs layer. Lower
  // layers are shared (never written through); the writable layer is owned
  // by the caller and mutated only through this union.
  UnionFs(std::vector<std::shared_ptr<const MemFs>> lower, std::shared_ptr<MemFs> writable);

  Result<Blob> ReadFile(std::string_view path) const;
  Status WriteFile(std::string_view path, Blob content);
  Status Unlink(std::string_view path);
  Status Mkdir(std::string_view path, bool recursive = false);
  bool Exists(std::string_view path) const;

  // Merged directory listing with whiteouts applied; entries sorted by name.
  Result<std::vector<DirEntry>> List(std::string_view path) const;

  // True if the path currently resolves to a whiteout (deleted lower file).
  bool IsWhiteout(std::string_view path) const;

  // The writable layer is what gets archived/persisted (§3.5) and measured
  // (Fig. 6).
  const MemFs& writable() const { return *writable_; }
  MemFs& writable_mutable() { return *writable_; }
  uint64_t WritableBytes() const { return writable_->TotalBytes(); }

  // Discards all writable state (whiteouts included): nym amnesia.
  void DiscardWritable() { writable_->WipeAll(); }

  // Whiteout marker name for a deleted entry, OverlayFS-style.
  static std::string WhiteoutName(std::string_view name);

 private:
  bool ExistsInLower(std::string_view path) const;

  std::vector<std::shared_ptr<const MemFs>> lower_;
  std::shared_ptr<MemFs> writable_;
};

}  // namespace nymix

#endif  // SRC_UNIONFS_UNION_FS_H_
