#include "src/unionfs/serialize.h"

#include "src/compress/nymzip.h"

namespace nymix {

namespace {

constexpr uint8_t kMagic[4] = {'N', 'F', 'S', '1'};
constexpr uint8_t kKindReal = 0;
constexpr uint8_t kKindSynthetic = 1;

}  // namespace

Bytes SerializeMemFs(const MemFs& fs) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);
  AppendU32(out, static_cast<uint32_t>(fs.FileCount()));
  fs.ForEachFile([&out](const std::string& path, const Blob& blob) {
    AppendLengthPrefixed(out, BytesFromString(path));
    if (blob.is_synthetic()) {
      out.push_back(kKindSynthetic);
      AppendU64(out, blob.size());
      AppendU64(out, blob.seed());
      AppendU32(out, static_cast<uint32_t>(blob.entropy() * 1e6));
    } else {
      out.push_back(kKindReal);
      AppendLengthPrefixed(out, blob.bytes());
    }
  });
  return out;
}

Result<std::unique_ptr<MemFs>> DeserializeMemFs(ByteSpan data) {
  if (data.size() < 8 || !std::equal(kMagic, kMagic + 4, data.begin())) {
    return DataLossError("not a serialized filesystem");
  }
  size_t offset = 4;
  NYMIX_ASSIGN_OR_RETURN(uint32_t count, ReadU32(data, offset));
  auto fs = std::make_unique<MemFs>();
  for (uint32_t i = 0; i < count; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes path_bytes, ReadLengthPrefixed(data, offset));
    std::string path = StringFromBytes(path_bytes);
    if (offset >= data.size()) {
      return DataLossError("truncated filesystem entry");
    }
    uint8_t kind = data[offset++];
    if (kind == kKindReal) {
      NYMIX_ASSIGN_OR_RETURN(Bytes content, ReadLengthPrefixed(data, offset));
      NYMIX_RETURN_IF_ERROR(fs->WriteFile(path, Blob::FromBytes(std::move(content))));
    } else if (kind == kKindSynthetic) {
      NYMIX_ASSIGN_OR_RETURN(uint64_t size, ReadU64(data, offset));
      NYMIX_ASSIGN_OR_RETURN(uint64_t seed, ReadU64(data, offset));
      NYMIX_ASSIGN_OR_RETURN(uint32_t entropy_micro, ReadU32(data, offset));
      NYMIX_RETURN_IF_ERROR(fs->WriteFile(
          path, Blob::Synthetic(size, seed, static_cast<double>(entropy_micro) / 1e6)));
    } else {
      return DataLossError("unknown filesystem entry kind");
    }
  }
  return fs;
}

uint64_t EstimateCompressedPayload(const MemFs& fs) {
  uint64_t total = 0;
  fs.ForEachFile([&total](const std::string& path, const Blob& blob) {
    total += 64;  // per-entry header (path, framing)
    total += path.size();
    if (blob.is_synthetic()) {
      total += blob.CompressedSizeEstimate();
    } else {
      total += NymzipCompress(blob.bytes()).size();
    }
  });
  return total;
}

}  // namespace nymix
