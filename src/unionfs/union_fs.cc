#include "src/unionfs/union_fs.h"

#include <algorithm>
#include <map>

namespace nymix {

UnionFs::UnionFs(std::vector<std::shared_ptr<const MemFs>> lower,
                 std::shared_ptr<MemFs> writable)
    : lower_(std::move(lower)), writable_(std::move(writable)) {
  NYMIX_CHECK(writable_ != nullptr);
}

std::string UnionFs::WhiteoutName(std::string_view name) {
  return ".wh." + std::string(name);
}

bool UnionFs::IsWhiteout(std::string_view path) const {
  std::string marker = ParentPath(path);
  if (marker != "/") {
    marker += "/";
  }
  marker += WhiteoutName(BasenameOf(path));
  return writable_->Exists(marker);
}

bool UnionFs::ExistsInLower(std::string_view path) const {
  for (auto it = lower_.rbegin(); it != lower_.rend(); ++it) {
    if ((*it)->Exists(path)) {
      return true;
    }
  }
  return false;
}

Result<Blob> UnionFs::ReadFile(std::string_view path) const {
  if (IsWhiteout(path)) {
    return NotFoundError("deleted (whiteout): " + std::string(path));
  }
  if (writable_->Exists(path)) {
    return writable_->ReadFile(path);
  }
  for (auto it = lower_.rbegin(); it != lower_.rend(); ++it) {
    if ((*it)->Exists(path)) {
      return (*it)->ReadFile(path);
    }
  }
  return NotFoundError("no such file: " + std::string(path));
}

Status UnionFs::WriteFile(std::string_view path, Blob content) {
  // Writing resurrects a whiteout-deleted name.
  std::string marker = ParentPath(path);
  if (marker != "/") {
    marker += "/";
  }
  marker += WhiteoutName(BasenameOf(path));
  if (writable_->Exists(marker)) {
    NYMIX_RETURN_IF_ERROR(writable_->Unlink(marker));
  }
  return writable_->WriteFile(path, std::move(content));
}

Status UnionFs::Unlink(std::string_view path) {
  bool in_writable = writable_->Exists(path) && !writable_->IsDirectory(path);
  bool in_lower = !IsWhiteout(path) && ExistsInLower(path);
  if (!in_writable && !in_lower) {
    return NotFoundError("no such file: " + std::string(path));
  }
  if (in_writable) {
    NYMIX_RETURN_IF_ERROR(writable_->Unlink(path));
  }
  if (in_lower) {
    std::string marker = ParentPath(path);
    if (marker != "/") {
      marker += "/";
    }
    marker += WhiteoutName(BasenameOf(path));
    NYMIX_RETURN_IF_ERROR(writable_->WriteFile(marker, Blob::FromBytes({})));
  }
  return OkStatus();
}

Status UnionFs::Mkdir(std::string_view path, bool recursive) {
  if (Exists(path)) {
    return recursive ? OkStatus() : AlreadyExistsError("exists: " + std::string(path));
  }
  return writable_->Mkdir(path, recursive);
}

bool UnionFs::Exists(std::string_view path) const {
  if (IsWhiteout(path)) {
    return false;
  }
  if (writable_->Exists(path)) {
    return true;
  }
  return ExistsInLower(path);
}

Result<std::vector<DirEntry>> UnionFs::List(std::string_view path) const {
  std::map<std::string, DirEntry> merged;
  bool any_layer_has_dir = false;

  auto merge_layer = [&](const MemFs& layer) {
    if (!layer.IsDirectory(path)) {
      return;
    }
    any_layer_has_dir = true;
    auto entries = layer.List(path);
    if (!entries.ok()) {
      return;
    }
    for (auto& entry : *entries) {
      merged[entry.name] = entry;  // upper layers overwrite lower entries
    }
  };

  for (const auto& layer : lower_) {
    merge_layer(*layer);
  }
  merge_layer(*writable_);

  if (!any_layer_has_dir) {
    return NotFoundError("no such directory: " + std::string(path));
  }

  // Apply whiteouts and strip the markers themselves.
  std::vector<DirEntry> out;
  out.reserve(merged.size());
  for (const auto& [name, entry] : merged) {
    if (name.rfind(".wh.", 0) == 0) {
      continue;
    }
    if (merged.count(WhiteoutName(name)) > 0) {
      continue;
    }
    out.push_back(entry);
  }
  return out;
}

}  // namespace nymix
