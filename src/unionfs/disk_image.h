// BaseImage: the read-only OS partition on the Nymix USB stick, shared as
// the bottom union-fs layer by the host and every AnonVM/CommVM (§3.4).
// It exposes a block-level view (content ids + Merkle tree) so the
// hypervisor can verify blocks against a well-known root before handing
// them to a VM, and so KSM can dedup identically-backed guest pages.
//
// VmDisk: a capacity-limited union stack (base + config + writable) given
// to one VM; all writes land in RAM.
#ifndef SRC_UNIONFS_DISK_IMAGE_H_
#define SRC_UNIONFS_DISK_IMAGE_H_

#include <memory>
#include <string>

#include "src/crypto/merkle.h"
#include "src/unionfs/union_fs.h"
#include "src/util/prng.h"

namespace nymix {

inline constexpr uint64_t kDiskBlockSize = 4096;

class BaseImage {
 public:
  // Builds a synthetic distribution image: `size_bytes` of blocks whose
  // contents derive from `seed`, plus a populated root filesystem
  // (/etc, /usr, browser and anonymizer binaries) used by the union stacks.
  static std::shared_ptr<BaseImage> CreateDistribution(std::string name, uint64_t seed,
                                                       uint64_t size_bytes);

  // Warm-start path: rebuilds an image from checkpointed block digests and
  // Merkle levels (src/store/image_checkpoint), skipping the per-block
  // hashing and tree build that dominate CreateDistribution. The cheap
  // synthetic filesystem is repopulated from (name, seed) as usual, so the
  // result is indistinguishable from a cold-built image. Fails when the
  // digest count does not match `size_bytes` or the leaf hashes do not
  // correspond to the digests (spot-checked).
  static Result<std::shared_ptr<BaseImage>> CreateDistributionFromCheckpoint(
      std::string name, uint64_t seed, uint64_t size_bytes,
      std::vector<Sha256Digest> block_digests, MerkleTree merkle);

  const std::string& name() const { return name_; }
  uint64_t seed() const { return seed_; }
  uint64_t size_bytes() const { return size_bytes_; }
  uint64_t block_count() const { return size_bytes_ / kDiskBlockSize; }

  // Current on-disk block digest table (checkpoint source).
  const std::vector<Sha256Digest>& block_digests() const { return block_digests_; }

  // Shared read-only filesystem view of the image.
  std::shared_ptr<const MemFs> fs() const { return fs_; }

  // 64-bit content identity of a block; identical across VMs using this
  // image, which is what makes KSM effective.
  uint64_t BlockContentId(uint64_t block_index) const;

  // Block digest as read "from disk" — reflects tampering.
  Sha256Digest ReadBlockDigest(uint64_t block_index) const;

  const MerkleTree& merkle() const { return merkle_; }
  const Sha256Digest& merkle_root() const { return merkle_.root(); }

  // Verifies a block read against the well-known root (§3.4 mechanism).
  bool VerifyBlock(uint64_t block_index) const;

  // Verifies every block at once by rebuilding the tree bottom-up and
  // comparing the recomputed root against the published one. Equivalent to
  // VerifyBlock over all blocks but ~8x cheaper (one tree rebuild instead
  // of a log-depth proof per leaf), and memoized by mutation_count so
  // repeated full-image checks between tampers are free. Used by the
  // hypervisor's pre-boot whole-image check.
  bool VerifyAllBlocks() const;

  // Simulates another OS modifying the partition while the USB stick was
  // plugged in elsewhere: the stored block changes, the published root
  // does not.
  void TamperBlock(uint64_t block_index, uint64_t new_seed);

  // Bumped on every TamperBlock; verification layers use it to cache a
  // full-image check.
  uint64_t mutation_count() const { return mutation_count_; }

 private:
  BaseImage() = default;

  std::string name_;
  uint64_t seed_ = 0;
  uint64_t size_bytes_ = 0;
  std::shared_ptr<MemFs> fs_;
  std::vector<Sha256Digest> block_digests_;  // current on-disk state
  MerkleTree merkle_;                        // built at distribution time
  uint64_t mutation_count_ = 0;
  // VerifyAllBlocks memo: last mutation epoch checked and its verdict.
  mutable int64_t verified_mutation_ = -1;
  mutable bool verified_ok_ = false;
};

class VmDisk {
 public:
  // `config` may be null (no configuration layer).
  VmDisk(std::shared_ptr<const BaseImage> base, std::shared_ptr<const MemFs> config,
         uint64_t writable_capacity);

  UnionFs& fs() { return *union_fs_; }
  const UnionFs& fs() const { return *union_fs_; }

  // Capacity-enforcing write into the RAM-backed layer.
  Status WriteFile(std::string_view path, Blob content);

  uint64_t writable_capacity() const { return writable_capacity_; }
  uint64_t writable_used() const { return union_fs_->WritableBytes(); }

  const std::shared_ptr<const BaseImage>& base() const { return base_; }

  void DiscardWritable() { union_fs_->DiscardWritable(); }

 private:
  std::shared_ptr<const BaseImage> base_;
  uint64_t writable_capacity_;
  std::shared_ptr<MemFs> writable_;
  std::unique_ptr<UnionFs> union_fs_;
};

}  // namespace nymix

#endif  // SRC_UNIONFS_DISK_IMAGE_H_
