// Absolute-path handling for the in-memory filesystems. Paths are
// normalized component vectors; "/" is the empty vector.
#ifndef SRC_UNIONFS_PATH_H_
#define SRC_UNIONFS_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace nymix {

// Splits "/etc/rc.local" into {"etc", "rc.local"}; rejects empty components,
// ".", "..", and relative paths.
Result<std::vector<std::string>> SplitPath(std::string_view path);

// Joins components back into an absolute path string.
std::string JoinPath(const std::vector<std::string>& components);

// Parent directory of a path string ("/a/b" -> "/a", "/a" -> "/").
std::string ParentPath(std::string_view path);

// Final component ("/a/b" -> "b"); empty for "/".
std::string BasenameOf(std::string_view path);

}  // namespace nymix

#endif  // SRC_UNIONFS_PATH_H_
