#include "src/unionfs/disk_image.h"

namespace nymix {

namespace {

// Stable per-block digest material: 16 bytes of (seed, index).
Sha256Digest BlockDigestFor(uint64_t seed, uint64_t block_index) {
  Bytes material;
  AppendU64(material, seed);
  AppendU64(material, block_index);
  return Sha256::Hash(material);
}

void PopulateDistributionFs(MemFs& fs, const std::string& name, uint64_t seed) {
  Prng prng(seed);
  NYMIX_CHECK(fs.Mkdir("/etc", true).ok());
  NYMIX_CHECK(fs.Mkdir("/usr/bin", true).ok());
  NYMIX_CHECK(fs.Mkdir("/usr/share/" + name, true).ok());
  NYMIX_CHECK(fs.Mkdir("/var/lib", true).ok());
  NYMIX_CHECK(fs.Mkdir("/home/user", true).ok());

  NYMIX_CHECK(fs.WriteFile("/etc/hostname", Blob::FromString(name)).ok());
  NYMIX_CHECK(fs.WriteFile("/etc/os-release",
                           Blob::FromString("NAME=" + name + "\nVERSION=14.04\n"))
                  .ok());
  // Default rc.local and network config; configuration layers mask these
  // per-role (§3.4: "network configuration files, the local startup script").
  NYMIX_CHECK(fs.WriteFile("/etc/rc.local", Blob::FromString("#!/bin/sh\nexit 0\n")).ok());
  NYMIX_CHECK(fs.WriteFile("/etc/network/interfaces",
                           Blob::FromString("auto lo\niface lo inet loopback\n"))
                  .ok());
  NYMIX_CHECK(
      fs.WriteFile("/etc/xdg/autostart/session.desktop", Blob::FromString("Exec=none\n")).ok());

  // Application binaries as sized synthetic blobs; each VM role runs a
  // subset of these from the shared base image.
  NYMIX_CHECK(
      fs.WriteFile("/usr/bin/chromium", Blob::Synthetic(90 * kMiB, prng.NextU64(), 0.6)).ok());
  NYMIX_CHECK(fs.WriteFile("/usr/bin/tor", Blob::Synthetic(6 * kMiB, prng.NextU64(), 0.6)).ok());
  NYMIX_CHECK(
      fs.WriteFile("/usr/bin/dissent", Blob::Synthetic(14 * kMiB, prng.NextU64(), 0.6)).ok());
  NYMIX_CHECK(fs.WriteFile("/usr/bin/mat", Blob::Synthetic(3 * kMiB, prng.NextU64(), 0.6)).ok());
  NYMIX_CHECK(
      fs.WriteFile("/usr/bin/nym-manager", Blob::Synthetic(2 * kMiB, prng.NextU64(), 0.6)).ok());
}

}  // namespace

std::shared_ptr<BaseImage> BaseImage::CreateDistribution(std::string name, uint64_t seed,
                                                         uint64_t size_bytes) {
  NYMIX_CHECK(size_bytes % kDiskBlockSize == 0);
  auto image = std::shared_ptr<BaseImage>(new BaseImage());
  image->name_ = std::move(name);
  image->seed_ = seed;
  image->size_bytes_ = size_bytes;
  image->fs_ = std::make_shared<MemFs>();
  PopulateDistributionFs(*image->fs_, image->name_, seed);

  uint64_t blocks = image->block_count();
  image->block_digests_.reserve(blocks);
  for (uint64_t i = 0; i < blocks; ++i) {
    image->block_digests_.push_back(BlockDigestFor(seed, i));
  }
  image->merkle_ = MerkleTree::Build(image->block_digests_);
  return image;
}

Result<std::shared_ptr<BaseImage>> BaseImage::CreateDistributionFromCheckpoint(
    std::string name, uint64_t seed, uint64_t size_bytes, std::vector<Sha256Digest> block_digests,
    MerkleTree merkle) {
  if (size_bytes % kDiskBlockSize != 0) {
    return InvalidArgumentError("image checkpoint: size not block-aligned");
  }
  if (block_digests.size() != size_bytes / kDiskBlockSize) {
    return InvalidArgumentError("image checkpoint: digest count does not match image size");
  }
  if (merkle.leaf_count() != block_digests.size()) {
    return InvalidArgumentError("image checkpoint: merkle leaf count does not match digests");
  }
  // Spot check first/last leaves against the tree so a checkpoint whose
  // digests and tree drifted apart fails loudly instead of verifying.
  if (!block_digests.empty()) {
    const auto& leaves = merkle.levels().front();
    if (leaves.front() != MerkleTree::HashLeaf(block_digests.front()) ||
        leaves.back() != MerkleTree::HashLeaf(block_digests.back())) {
      return InvalidArgumentError("image checkpoint: leaf hashes do not match block digests");
    }
  }
  auto image = std::shared_ptr<BaseImage>(new BaseImage());
  image->name_ = std::move(name);
  image->seed_ = seed;
  image->size_bytes_ = size_bytes;
  image->fs_ = std::make_shared<MemFs>();
  PopulateDistributionFs(*image->fs_, image->name_, seed);
  image->block_digests_ = std::move(block_digests);
  image->merkle_ = std::move(merkle);
  return image;
}

uint64_t BaseImage::BlockContentId(uint64_t block_index) const {
  NYMIX_CHECK(block_index < block_digests_.size());
  return DigestPrefix64(block_digests_[block_index]);
}

Sha256Digest BaseImage::ReadBlockDigest(uint64_t block_index) const {
  NYMIX_CHECK(block_index < block_digests_.size());
  return block_digests_[block_index];
}

bool BaseImage::VerifyBlock(uint64_t block_index) const {
  auto proof = merkle_.ProveLeaf(block_index);
  if (!proof.ok()) {
    return false;
  }
  return MerkleTree::VerifyProof(merkle_.root(), ReadBlockDigest(block_index), *proof);
}

bool BaseImage::VerifyAllBlocks() const {
  if (verified_mutation_ == static_cast<int64_t>(mutation_count_)) {
    return verified_ok_;
  }
  // One bottom-up rebuild covers every leaf: the recomputed root matches
  // the published root iff every stored block digest is untampered.
  verified_ok_ = MerkleTree::Build(block_digests_).root() == merkle_.root();
  verified_mutation_ = static_cast<int64_t>(mutation_count_);
  return verified_ok_;
}

void BaseImage::TamperBlock(uint64_t block_index, uint64_t new_seed) {
  NYMIX_CHECK(block_index < block_digests_.size());
  block_digests_[block_index] = BlockDigestFor(new_seed ^ 0xdeadbeefULL, block_index);
  ++mutation_count_;
}

VmDisk::VmDisk(std::shared_ptr<const BaseImage> base, std::shared_ptr<const MemFs> config,
               uint64_t writable_capacity)
    : base_(std::move(base)),
      writable_capacity_(writable_capacity),
      writable_(std::make_shared<MemFs>()) {
  NYMIX_CHECK(base_ != nullptr);
  std::vector<std::shared_ptr<const MemFs>> lower;
  lower.push_back(base_->fs());
  if (config != nullptr) {
    lower.push_back(std::move(config));
  }
  union_fs_ = std::make_unique<UnionFs>(std::move(lower), writable_);
}

Status VmDisk::WriteFile(std::string_view path, Blob content) {
  uint64_t existing = 0;
  if (writable_->Exists(path) && !writable_->IsDirectory(path)) {
    auto size = writable_->FileSize(path);
    if (size.ok()) {
      existing = *size;
    }
  }
  uint64_t projected = writable_->TotalBytes() - existing + content.size();
  if (projected > writable_capacity_) {
    return ResourceExhaustedError("writable layer full: " + std::string(path));
  }
  return union_fs_->WriteFile(path, std::move(content));
}

}  // namespace nymix
