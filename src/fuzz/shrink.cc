#include "src/fuzz/shrink.h"

#include <algorithm>
#include <cstdlib>

namespace nymix {
namespace {

uint64_t Magnitude(int64_t v) {
  return v < 0 ? static_cast<uint64_t>(-(v + 1)) + 1 : static_cast<uint64_t>(v);
}

// One shrink attempt bundle: tracks the current best and the execution cap.
struct ShrinkState {
  Scenario best;
  RunReport best_report;
  uint64_t best_weight = 0;
  const RunnerOptions* options = nullptr;
  std::string oracle;  // the failure we must preserve
  int tried = 0;
  int accepted = 0;
  int max_candidates = 0;

  bool Exhausted() const { return tried >= max_candidates; }

  // Runs `candidate`; adopts it when it fails the SAME oracle at strictly
  // lower weight. Returns true on adoption.
  bool Try(const Scenario& candidate) {
    if (Exhausted()) {
      return false;
    }
    uint64_t weight = ScenarioWeight(candidate);
    if (weight >= best_weight) {
      return false;  // not an improvement; don't burn an execution on it
    }
    ++tried;
    RunReport report = RunScenario(candidate, *options);
    if (report.ok || report.oracle != oracle) {
      return false;
    }
    best = candidate;
    best_report = report;
    best_weight = weight;
    ++accepted;
    return true;
  }
};

// --- passes ---------------------------------------------------------------
// Each pass returns true if it improved the best scenario at least once.
// Passes run in a fixed order inside a fixed-point loop; within a pass,
// candidates are proposed in a fixed order and restart on improvement —
// that (plus strict weight decrease) is what makes shrinking deterministic
// and monotonic.

// ddmin-style chunk deletion: halves first, then quarters, down to single
// steps. Deleting a chunk of a failing scenario very often still fails —
// this pass does nearly all the work.
bool PassDeleteSteps(ShrinkState& state) {
  bool improved = false;
  size_t chunk = state.best.steps.size();
  while (chunk >= 1 && !state.Exhausted()) {
    bool deleted_any = false;
    for (size_t start = 0; start < state.best.steps.size() && !state.Exhausted();) {
      Scenario candidate = state.best;
      size_t take = std::min(chunk, candidate.steps.size() - start);
      candidate.steps.erase(
          candidate.steps.begin() + static_cast<ptrdiff_t>(start),
          candidate.steps.begin() + static_cast<ptrdiff_t>(start + take));
      if (state.Try(candidate)) {
        improved = deleted_any = true;
        // Don't advance: the step now at `start` is new.
      } else {
        start += chunk;
      }
    }
    if (!deleted_any) {
      chunk /= 2;
    }
  }
  return improved;
}

// Payload trimming: halve, then cut the tail by quarters, then drop single
// trailing bytes. Decoder repros shrink from kilobytes to a handful of
// header bytes here.
bool PassTrimPayloads(ShrinkState& state) {
  bool improved = false;
  for (size_t i = 0; i < state.best.steps.size() && !state.Exhausted(); ++i) {
    bool shrunk = true;
    while (shrunk && !state.Exhausted()) {
      shrunk = false;
      size_t size = state.best.steps[i].payload.size();
      if (size == 0) {
        break;
      }
      for (size_t keep : {size / 2, size - std::max<size_t>(size / 4, 1), size - 1}) {
        if (keep >= size) {
          continue;
        }
        Scenario candidate = state.best;
        candidate.steps[i].payload.resize(keep);
        if (state.Try(candidate)) {
          shrunk = improved = true;
          break;
        }
      }
    }
  }
  return improved;
}

// Topology minimization: walk every knob toward its floor.
bool PassShrinkTopology(ShrinkState& state) {
  bool improved = false;
  auto try_set = [&](auto setter) {
    Scenario candidate = state.best;
    setter(candidate.topology);
    if (state.Try(candidate)) {
      improved = true;
      return true;
    }
    return false;
  };
  bool moved = true;
  while (moved && !state.Exhausted()) {
    moved = false;
    ScenarioTopology t = state.best.topology;
    if (t.shards > 1) {
      moved |= try_set([&](ScenarioTopology& c) { c.shards = std::max(1, t.shards / 2); });
    }
    if (t.threads > 2) {  // 2 keeps trace-identity comparisons meaningful
      moved |= try_set([&](ScenarioTopology& c) { c.threads = std::max(2, t.threads / 2); });
    }
    if (t.nym_count > 1) {
      moved |= try_set([&](ScenarioTopology& c) { c.nym_count = std::max(1, t.nym_count / 2); });
    }
    if (t.nyms_per_host > 1) {
      moved |= try_set([&](ScenarioTopology& c) {
        c.nyms_per_host = std::max(1, t.nyms_per_host / 2);
      });
    }
    if (t.visits > 1) {
      moved |= try_set([&](ScenarioTopology& c) { c.visits = std::max(1, t.visits / 2); });
    }
    if (t.generations > 1) {
      moved |= try_set([&](ScenarioTopology& c) {
        c.generations = std::max(1, t.generations / 2);
      });
    }
    if (t.check_mode_identity) {
      moved |= try_set([&](ScenarioTopology& c) { c.check_mode_identity = false; });
    }
    if (t.checkpoint_roundtrip) {
      moved |= try_set([&](ScenarioTopology& c) { c.checkpoint_roundtrip = false; });
    }
  }
  return improved;
}

// Argument simplification: zero first, then halve toward zero. Small args
// make the wrapped/clamped values — and thus the repro — easier to read.
bool PassShrinkArgs(ShrinkState& state) {
  bool improved = false;
  for (size_t i = 0; i < state.best.steps.size() && !state.Exhausted(); ++i) {
    for (int field = 0; field < 4 && !state.Exhausted(); ++field) {
      auto get = [field](const ScenarioStep& s) -> int64_t {
        return field == 0 ? s.a : field == 1 ? s.b : field == 2 ? s.c : s.d;
      };
      auto set = [field](ScenarioStep& s, int64_t v) {
        (field == 0 ? s.a : field == 1 ? s.b : field == 2 ? s.c : s.d) = v;
      };
      bool moved = true;
      while (moved && !state.Exhausted()) {
        moved = false;
        int64_t current = get(state.best.steps[i]);
        if (current == 0) {
          break;
        }
        for (int64_t next : {int64_t{0}, current / 2}) {
          if (Magnitude(next) >= Magnitude(current)) {
            continue;
          }
          Scenario candidate = state.best;
          set(candidate.steps[i], next);
          if (state.Try(candidate)) {
            moved = improved = true;
            break;
          }
        }
      }
    }
  }
  return improved;
}

}  // namespace

uint64_t ScenarioWeight(const Scenario& scenario) {
  uint64_t weight = static_cast<uint64_t>(scenario.steps.size()) * 1'000'000;
  for (const ScenarioStep& step : scenario.steps) {
    weight += static_cast<uint64_t>(step.payload.size()) * 16;
    // Argument term is log-scaled and bounded so it can never outweigh a
    // payload byte, let alone a step.
    for (int64_t arg : {step.a, step.b, step.c, step.d}) {
      uint64_t magnitude = Magnitude(arg);
      while (magnitude > 0) {
        ++weight;
        magnitude /= 2;
      }
    }
  }
  const ScenarioTopology& t = scenario.topology;
  weight += static_cast<uint64_t>(t.shards + t.threads + t.nym_count + t.nyms_per_host +
                                  t.visits + t.generations) *
            64;
  weight += t.check_mode_identity ? 64 : 0;
  weight += t.checkpoint_roundtrip ? 64 : 0;
  return weight;
}

ShrinkResult ShrinkScenario(const Scenario& scenario, const RunReport& report,
                            const RunnerOptions& options, int max_candidates) {
  ShrinkState state;
  state.best = scenario;
  state.best_report = report;
  state.best_weight = ScenarioWeight(scenario);
  state.options = &options;
  state.oracle = report.oracle;
  state.max_candidates = max_candidates;

  // Fixed-point over the fixed pass order; every accepted candidate
  // strictly lowers the weight, so this loop terminates.
  bool improved = true;
  while (improved && !state.Exhausted()) {
    improved = false;
    improved |= PassDeleteSteps(state);
    improved |= PassTrimPayloads(state);
    improved |= PassShrinkTopology(state);
    improved |= PassShrinkArgs(state);
  }

  ShrinkResult result;
  result.scenario = std::move(state.best);
  result.report = std::move(state.best_report);
  result.candidates_tried = state.tried;
  result.candidates_accepted = state.accepted;
  return result;
}

}  // namespace nymix
