#include "src/fuzz/entropy.h"

#include <algorithm>

// nymlint:allow(determinism-rand): AmbientSeed is the tree's one sanctioned ambient-entropy read; the drawn seed is printed and recorded so the run replays
#include <random>

namespace nymix {

void EntropySource::MutateBytes(Bytes& data) {
  if (data.empty()) {
    data = RandomBytes(1 + Pick(32));
    return;
  }
  // 1–4 independent mutations; most leave the buffer one edit away from a
  // valid encoding, which is where framing and length-check bugs hide.
  const int edits = 1 + static_cast<int>(Pick(4));
  for (int e = 0; e < edits; ++e) {
    switch (Pick(5)) {
      case 0: {  // flip one bit
        size_t at = Pick(data.size());
        data[at] ^= static_cast<uint8_t>(1u << Pick(8));
        break;
      }
      case 1: {  // overwrite one byte with an interesting value
        static constexpr uint8_t kEdges[] = {0x00, 0x01, 0x7f, 0x80, 0xfe, 0xff};
        data[Pick(data.size())] = kEdges[Pick(sizeof(kEdges))];
        break;
      }
      case 2: {  // truncate (torn write)
        data.resize(Pick(data.size()));
        if (data.empty()) {
          return;
        }
        break;
      }
      case 3: {  // splice a run of random bytes over the tail
        size_t at = Pick(data.size());
        Bytes noise = RandomBytes(1 + Pick(8));
        for (size_t i = 0; i < noise.size() && at + i < data.size(); ++i) {
          data[at + i] = noise[i];
        }
        break;
      }
      case 4: {  // duplicate a chunk onto the end (bounded growth)
        if (data.size() < 2 * kMiB) {
          size_t at = Pick(data.size());
          size_t len = 1 + Pick(std::min<size_t>(data.size() - at, 16));
          data.insert(data.end(), data.begin() + static_cast<ptrdiff_t>(at),
                      data.begin() + static_cast<ptrdiff_t>(at + len));
        }
        break;
      }
    }
  }
}

uint64_t AmbientSeed() {
  // nymlint:allow(determinism-rand): the one sanctioned ambient read — seeds chosen here are printed by nymfuzz and recorded in .nymfuzz repros
  std::random_device device;
  uint64_t high = device();
  uint64_t low = device();
  return Mix64((high << 32) ^ low ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace nymix
