// Scenario AST: what the fuzzer generates, the runner executes, the
// shrinker minimizes, and .nymfuzz files serialize.
//
// Design constraints (docs/fuzzing.md spells out the contract):
//   - A scenario is plain data: a family, a seed, a topology block, and a
//     flat list of steps. No pointers, no closures — so structural passes
//     (delete a step, halve a count) are trivial and always meaningful.
//   - The runner is CLOSED under these edits: any step list, any argument
//     values, any payload bytes must execute without crashing the harness
//     itself (arguments are clamped/wrapped, dangling references become
//     no-ops). The shrinker depends on this: every candidate it proposes
//     is runnable by construction.
//   - Serialization is line-based text, not binary: shrunk repros get
//     reviewed by humans and checked into tests/fuzz_corpus/, so they must
//     diff cleanly in git.
#ifndef SRC_FUZZ_SCENARIO_H_
#define SRC_FUZZ_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// One scenario family = one harness in src/fuzz/runner.cc.
enum class ScenarioFamily {
  kNet,       // cross-shard channel storms under the parallel executor
  kHost,      // single-host nym lifecycle: visits, crashes, checkpoints
  kFleet,     // ShardedFleet churn with fault schedules
  kDecoder,   // malformed bytes against NYMLOG/KvStore/NBT/scenario decoders
  kParallel,  // windowed-schedule channel storms: adaptive-horizon executor
  kAdversary, // passive-observer leak quantification over planted fleets
};

std::string_view ScenarioFamilyName(ScenarioFamily family);
Result<ScenarioFamily> ParseScenarioFamily(std::string_view name);

enum class StepKind {
  // --- net family -----------------------------------------------------
  kNetChannel,       // a=shard_a, b=shard_b offset, c=latency_ms, d=bandwidth_kbps
  kNetFaultProfile,  // a=channel index, b=loss permille, c=spike permille
  kNetFlow,          // a=shard, b=bytes, c=flow count
  kNetLinkFlap,      // a=shard, b=down_at_ms, c=duration_ms
  // --- host family (sequential ops) -----------------------------------
  kHostVisit,         // a=nym index, b=site index
  kHostCrashRecover,  // a=nym index
  kHostCheckpoint,    // a=nym index
  kHostRelayCrash,    // a=relay index, b=restart_after_ms
  kHostUplinkFlap,    // a=duration_ms
  kHostUnionWrite,    // a=nym index, b=path id, c=content seed, d=size bytes
  kHostUnionUnlink,   // a=nym index, b=path id
  kHostScrub,         // a=paranoia level, payload=file bytes
  // --- fleet family (virtual-time fault schedule) ----------------------
  kFleetVmCrash,     // a=host, b=at_ms
  kFleetUplinkFlap,  // a=host, b=down_at_ms, c=duration_ms
  kFleetRelayCrash,  // a=host, b=relay, c=at_ms, d=restart_after_ms
  // --- decoder family (pure byte-level) --------------------------------
  kDecodeRecordLog,  // payload=log bytes
  kDecodeKv,         // payload=kv log bytes
  kDecodeNbt,        // payload=nbt bytes
  kDecodeScenario,   // payload=.nymfuzz text (the parser fuzzes itself)
  kScrubBytes,       // a=paranoia level, payload=file bytes
  // --- parallel family (windowed cross-shard storms) --------------------
  kParChannel,  // a=shard_a, b=shard_b offset, c=latency_ms, d=window_ms (0=free)
  kParBurst,    // a=channel index, b=side (even=A, odd=B), c=at_ms, d=count
  kParEcho,     // a=channel index (both ends echo on promised windows)
  // --- adversary family (observer model leak quantification) ------------
  kAdvPlant,     // a=leak plant (0=none, 1=cookie jar, 2=circuit, 3=scrub)
  kAdvWorkload,  // a=workload mix (0=browse, 1=streaming, 2=upload, 3=mixed)
  kAdvChurn,     // a=churn generations
};

std::string_view StepKindName(StepKind kind);
Result<StepKind> ParseStepKind(std::string_view name);
ScenarioFamily FamilyOfStep(StepKind kind);

struct ScenarioStep {
  StepKind kind = StepKind::kHostVisit;
  int64_t a = 0;
  int64_t b = 0;
  int64_t c = 0;
  int64_t d = 0;
  Bytes payload;

  bool operator==(const ScenarioStep&) const = default;
};

// Shape parameters the runner clamps into safe ranges (see runner.cc);
// serialized so a repro captures the exact shape that failed.
struct ScenarioTopology {
  int shards = 2;
  int threads = 2;  // compared against a 1-thread run by trace-identity
  int nym_count = 2;
  int nyms_per_host = 2;
  int visits = 1;
  int generations = 1;
  int echo_deadline_ms = 1500;
  bool check_mode_identity = false;   // also diff full vs incremental waterfill
  bool checkpoint_roundtrip = false;  // host family: checkpoint→restore→diff

  bool operator==(const ScenarioTopology&) const = default;
};

struct Scenario {
  ScenarioFamily family = ScenarioFamily::kNet;
  uint64_t seed = 1;
  ScenarioTopology topology;
  std::vector<ScenarioStep> steps;

  bool operator==(const Scenario&) const = default;
};

// --- .nymfuzz text form ----------------------------------------------------
// Line-based: `nymfuzz 1` header, `family`/`seed`/`topology` lines, one
// `step <kind> a=.. b=.. payload=<hex>` line per step, `end`. '#' starts a
// comment. ScenarioFromText is total: arbitrary bytes yield a Status, never
// a crash (the decoder family feeds it its own mutated output).
std::string ScenarioToText(const Scenario& scenario);
Result<Scenario> ScenarioFromText(std::string_view text);

// A repro file is a scenario plus the expectation block `nymfuzz --replay`
// verifies: the oracle that failed (empty = expected clean), a human note,
// and the hex SHA-256 of the run's outcome surface for byte-identity.
struct ReproFile {
  Scenario scenario;
  std::string oracle;
  std::string detail;
  std::string digest;
};

std::string ReproToText(const ReproFile& repro);
Result<ReproFile> ReproFromText(std::string_view text);

}  // namespace nymix

#endif  // SRC_FUZZ_SCENARIO_H_
