#include "src/fuzz/oracle.h"

namespace nymix {

const std::vector<OracleInfo>& AllOracles() {
  static const std::vector<OracleInfo> kOracles = {
      {"nat-isolation",
       "no AnonVM probe answered; uplink carries only DHCP + anonymizer traffic"},
      {"ops-terminate", "every async op fires its completion with a Status"},
      {"trace-identity", "trace+metrics bytes identical across thread counts"},
      {"mode-identity", "trace bytes identical across incremental/full waterfill"},
      {"checkpoint-identity", "checkpoint→restore→re-checkpoint log is byte-identical"},
      {"unionfs-model", "UnionFs agrees with a plain map model"},
      {"decoder-sane", "decoders never crash, never over-claim, roundtrip cleanly"},
      {"scrub-clean", "successful scrubs leave no detectable removed-class risks"},
      {"fleet-accounting", "fleet visit/recovery/abandon ledgers are consistent"},
      {"adversary-leak",
       "planted isolation failures are caught (advantage >= 0.9); clean fleets are not"},
  };
  return kOracles;
}

bool IsKnownOracle(std::string_view name) {
  for (const OracleInfo& oracle : AllOracles()) {
    if (name == oracle.name) {
      return true;
    }
  }
  return false;
}

bool OracleSuite::enabled(std::string_view name) const {
  for (const std::string& disabled : disabled_) {
    if (name == disabled) {
      return false;
    }
  }
  return true;
}

bool OracleSuite::Fail(std::string_view name, std::string detail) {
  if (!enabled(name) || !oracle_.empty()) {
    return false;
  }
  oracle_ = std::string(name);
  detail_ = std::move(detail);
  return true;
}

}  // namespace nymix
