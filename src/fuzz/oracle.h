// Invariant oracles: the properties every fuzzed scenario is checked
// against. Each oracle has a stable name — the shrinker minimizes against
// "same oracle still fails", repro files record which oracle tripped, and
// `nymfuzz --list-oracles` prints this table.
#ifndef SRC_FUZZ_ORACLE_H_
#define SRC_FUZZ_ORACLE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace nymix {

struct OracleInfo {
  const char* name;
  const char* property;
};

// The full suite, in reporting order:
//   nat-isolation        no AnonVM probe is ever answered; nothing but
//                        DHCP + anonymizer classes on the host uplink
//   ops-terminate        every async op fires its completion with a Status
//                        (success or failure — never silence)
//   trace-identity       merged trace+metrics bytes identical across
//                        --threads=1 and the scenario's thread count
//   mode-identity        trace bytes identical across incremental and
//                        full-recompute waterfill modes
//   checkpoint-identity  checkpoint → crash → restore → re-checkpoint
//                        yields a byte-identical checkpoint log
//   unionfs-model        UnionFs agrees with a plain map model of the
//                        same write/unlink sequence
//   decoder-sane         Scan/Recover never crash, never claim more bytes
//                        than exist, and recovered data re-encodes cleanly
//   scrub-clean          a successful scrub leaves no detectable risks of
//                        the classes it claims to remove
//   fleet-accounting     fleet aggregates are consistent (exact visit
//                        counts when fault-free; recovery/abandon ledgers
//                        never exceed their causes)
const std::vector<OracleInfo>& AllOracles();
bool IsKnownOracle(std::string_view name);

// What one scenario execution reports back.
struct RunReport {
  bool ok = true;
  std::string oracle;  // first failing oracle name; empty when ok
  std::string detail;  // human-readable failure specifics
  // Hex SHA-256 of the run's outcome surface (family-specific: trace and
  // metrics bytes, decoder verdict log, ...). Two runs of the same
  // scenario must produce the same digest — `nymfuzz --replay` enforces it.
  std::string digest;
  uint64_t steps_executed = 0;
};

// Tracks the first failure across a run; later failures are dropped (the
// shrinker needs ONE stable name to minimize against, and the first trip
// is the closest to the root cause).
class OracleSuite {
 public:
  OracleSuite() = default;
  explicit OracleSuite(std::vector<std::string> disabled) : disabled_(std::move(disabled)) {}

  bool enabled(std::string_view name) const;

  // Records a failure (no-op if `name` is disabled or something already
  // failed). Returns true when this call recorded the failure.
  bool Fail(std::string_view name, std::string detail);

  bool ok() const { return oracle_.empty(); }
  const std::string& failed_oracle() const { return oracle_; }
  const std::string& detail() const { return detail_; }

 private:
  std::vector<std::string> disabled_;
  std::string oracle_;
  std::string detail_;
};

}  // namespace nymix

#endif  // SRC_FUZZ_ORACLE_H_
