// Scenario generator: maps a 64-bit seed to a Scenario, deterministically.
// Same seed + same options = the same scenario, byte for byte — the fuzz
// loop IS replayable from its seed alone, before any .nymfuzz file exists.
#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include <optional>

#include "src/fuzz/scenario.h"

namespace nymix {

struct GeneratorOptions {
  // Pin the family; unset = the seed picks one (weighted toward the cheap
  // decoder family so long fuzz runs spend most wall-clock on byte-level
  // coverage and sample the simulation families).
  std::optional<ScenarioFamily> family;
  // Upper bound on generated steps (>=1; actual count is seed-driven).
  int max_steps = 12;
};

Scenario GenerateScenario(uint64_t seed, const GeneratorOptions& options = {});

}  // namespace nymix

#endif  // SRC_FUZZ_GENERATOR_H_
