#include "src/fuzz/runner.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "src/adversary/experiment.h"
#include "src/anon/anonymizer.h"
#include "src/core/fleet.h"
#include "src/core/fleet_checkpoint.h"
#include "src/core/testbed.h"
#include "src/core/validation.h"
#include "src/crypto/sha256.h"
#include "src/fuzz/entropy.h"
#include "src/net/capture.h"
#include "src/net/flow.h"
#include "src/net/link.h"
#include "src/obs/observability.h"
#include "src/parallel/channel.h"
#include "src/parallel/sharded_sim.h"
#include "src/sanitize/scrubber.h"
#include "src/store/kv_store.h"
#include "src/store/nbt.h"
#include "src/store/record_log.h"
#include "src/unionfs/union_fs.h"
#include "src/util/blob.h"
#include "src/util/bytes.h"
#include "src/util/prng.h"
#include "src/workload/browser.h"
#include "src/workload/website.h"

namespace nymix {
namespace {

// ---------------------------------------------------------------- helpers

int64_t ClampI(int64_t value, int64_t lo, int64_t hi) {
  return value < lo ? lo : (value > hi ? hi : value);
}

// Wraps any int64 into [0, count); the runner's "dangling references are
// no-ops or redirects" rule for index arguments.
int Wrap(int64_t value, int count) {
  if (count <= 0) {
    return 0;
  }
  int64_t m = value % count;
  return static_cast<int>(m < 0 ? m + count : m);
}

std::string DigestOf(const std::string& surface) {
  return HexEncode(DigestToBytes(Sha256::Hash(surface)));
}

// Optional observer for RunScenarioGolden: invoked on the merged
// observability of the base run, before the simulation is torn down.
using GoldenEmit = std::function<void(const TraceRecorder&, const MetricsRegistry&)>;

// ------------------------------------------------------------- net family

// Replies to every packet until the deadline; identical in spirit to the
// parallel_equivalence_test storm sink, but owned by the fuzz runner so
// scenarios control topology and timing.
class FuzzEchoSink : public PacketSink {
 public:
  FuzzEchoSink(EventLoop& loop, Link* out, std::string name, SimTime deadline)
      : loop_(loop), out_(out), name_(std::move(name)), deadline_(deadline) {}

  void Kick() { Send(); }

  void OnPacket(const Packet&, Link&, bool) override {
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("fuzz.echo." + name_)->Increment();
    }
    if (loop_.now() < deadline_) {
      loop_.ScheduleAfter(Millis(1), [this] { Send(); });
    }
  }

 private:
  void Send() {
    Packet packet;
    packet.payload = Bytes(64);
    packet.annotation = name_;
    out_->SendFromA(std::move(packet));
  }

  EventLoop& loop_;
  Link* out_;
  std::string name_;
  SimTime deadline_;
};

struct NetRunResult {
  std::string trace;
  std::string stats;
  uint64_t flows_started = 0;
  uint64_t flows_done = 0;
};

NetRunResult RunNetOnce(const Scenario& scenario, int threads, bool full_recompute) {
  const ScenarioTopology& t = scenario.topology;
  int shards = static_cast<int>(ClampI(t.shards, 1, 4));
  SimTime deadline = Millis(ClampI(t.echo_deadline_ms, 200, 3000));

  ShardedSimulation sharded(scenario.seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);

  // Per-shard plumbing the steps act on. Flow counters are per shard (each
  // element is touched only by its shard's thread), summed after the run.
  std::vector<Link*> first_links(static_cast<size_t>(shards));
  std::vector<Link*> second_links(static_cast<size_t>(shards));
  std::vector<uint64_t> started(static_cast<size_t>(shards), 0);
  std::vector<uint64_t> done(static_cast<size_t>(shards), 0);
  for (int s = 0; s < shards; ++s) {
    Simulation& sim = sharded.shard(s);
    sim.flows().set_full_recompute(full_recompute);
    first_links[static_cast<size_t>(s)] =
        sim.CreateLink("fz-s" + std::to_string(s) + "-l0", Millis(2), 8'000'000);
    second_links[static_cast<size_t>(s)] =
        sim.CreateLink("fz-s" + std::to_string(s) + "-l1", Millis(3), 6'000'000);
  }

  std::vector<std::unique_ptr<FuzzEchoSink>> sinks;
  std::vector<CrossShardChannel*> channels;

  int step_index = 0;
  for (const ScenarioStep& step : scenario.steps) {
    ++step_index;
    switch (step.kind) {
      case StepKind::kNetChannel: {
        if (shards < 2) {
          break;  // cross-shard channel needs two shards; shrunk to no-op
        }
        int a = Wrap(step.a, shards);
        int b = (a + 1 + Wrap(step.b, shards - 1)) % shards;
        SimDuration latency = Millis(ClampI(step.c, 1, 50));
        uint64_t bandwidth = static_cast<uint64_t>(ClampI(step.d, 100, 10'000)) * 1000;
        CrossShardChannel* channel = sharded.CreateChannel(
            "fz-ch" + std::to_string(channels.size()), a, b, latency, bandwidth);
        auto sink_a = std::make_unique<FuzzEchoSink>(
            sharded.shard(a).loop(), channel->a_end(),
            "ch" + std::to_string(channels.size()) + ".a", deadline);
        auto sink_b = std::make_unique<FuzzEchoSink>(
            sharded.shard(b).loop(), channel->b_end(),
            "ch" + std::to_string(channels.size()) + ".b", deadline);
        channel->a_end()->AttachA(sink_a.get());
        channel->b_end()->AttachA(sink_b.get());
        FuzzEchoSink* kick_a = sink_a.get();
        FuzzEchoSink* kick_b = sink_b.get();
        SimTime kick_at = Millis(static_cast<SimDuration>(7 * channels.size() % 50));
        sharded.shard(a).loop().ScheduleAt(kick_at, [kick_a] { kick_a->Kick(); });
        sharded.shard(b).loop().ScheduleAt(kick_at + Millis(3), [kick_b] { kick_b->Kick(); });
        sinks.push_back(std::move(sink_a));
        sinks.push_back(std::move(sink_b));
        channels.push_back(channel);
        break;
      }
      case StepKind::kNetFaultProfile: {
        if (channels.empty()) {
          break;  // nothing to degrade yet
        }
        CrossShardChannel* channel = channels[static_cast<size_t>(
            Wrap(step.a, static_cast<int>(channels.size())))];
        LinkFaultProfile profile;
        profile.loss_probability = static_cast<double>(ClampI(step.b, 0, 500)) / 1000.0;
        profile.spike_probability = static_cast<double>(ClampI(step.c, 0, 500)) / 1000.0;
        profile.spike_latency = Millis(3);
        channel->SetFaultProfile(profile,
                                 Mix64(scenario.seed ^ static_cast<uint64_t>(step_index)));
        break;
      }
      case StepKind::kNetFlow: {
        int s = Wrap(step.a, shards);
        Simulation& sim = sharded.shard(s);
        uint64_t bytes = static_cast<uint64_t>(ClampI(step.b, 10'000, 500'000));
        int count = static_cast<int>(ClampI(step.c, 1, 4));
        uint64_t* done_slot = &done[static_cast<size_t>(s)];
        // Status form: completion fires exactly once even when a link flap
        // stalls the flow — the ops-terminate oracle depends on that.
        FlowOptions flow_options;
        flow_options.stall_timeout = Millis(30'000);
        for (int f = 0; f < count; ++f) {
          ++started[static_cast<size_t>(s)];
          sim.flows().StartFlow(
              Route::Through({first_links[static_cast<size_t>(s)],
                              second_links[static_cast<size_t>(s)]}),
              bytes, 1.1, flow_options,
              [done_slot](Result<SimTime>) { ++*done_slot; });
        }
        break;
      }
      case StepKind::kNetLinkFlap: {
        int s = Wrap(step.a, shards);
        Link* link = first_links[static_cast<size_t>(s)];
        SimTime down_at = Millis(ClampI(step.b, 0, 5000));
        SimDuration duration = Millis(ClampI(step.c, 50, 2000));
        sharded.shard(s).loop().ScheduleAt(down_at, [link] { link->SetDown(true); });
        sharded.shard(s).loop().ScheduleAt(down_at + duration,
                                           [link] { link->SetDown(false); });
        break;
      }
      default:
        break;  // foreign-family step: no-op by the closure rule
    }
  }

  sharded.RunUntilIdle();
  sharded.MergeObservability();

  NetRunResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  result.stats = stats.str();
  for (int s = 0; s < shards; ++s) {
    result.flows_started += started[static_cast<size_t>(s)];
    result.flows_done += done[static_cast<size_t>(s)];
  }
  return result;
}

void RunNetFamily(const Scenario& scenario, OracleSuite& suite, std::string& surface) {
  int threads = static_cast<int>(ClampI(scenario.topology.threads, 1, 8));
  NetRunResult base = RunNetOnce(scenario, /*threads=*/1, /*full_recompute=*/false);
  surface += "net flows=" + std::to_string(base.flows_done) + "/" +
             std::to_string(base.flows_started) + "\n";
  surface += base.trace;
  surface += base.stats;

  if (base.flows_done != base.flows_started && suite.enabled("ops-terminate")) {
    suite.Fail("ops-terminate",
               "flows completed " + std::to_string(base.flows_done) + " of " +
                   std::to_string(base.flows_started) + " started");
  }
  if (threads > 1 && suite.enabled("trace-identity")) {
    NetRunResult other = RunNetOnce(scenario, threads, /*full_recompute=*/false);
    if (other.trace != base.trace) {
      suite.Fail("trace-identity", "trace bytes diverged between --threads=1 and --threads=" +
                                       std::to_string(threads));
    } else if (other.stats != base.stats) {
      suite.Fail("trace-identity", "metrics bytes diverged between --threads=1 and --threads=" +
                                       std::to_string(threads));
    }
  }
  if (scenario.topology.check_mode_identity && suite.enabled("mode-identity")) {
    NetRunResult full = RunNetOnce(scenario, /*threads=*/1, /*full_recompute=*/true);
    if (full.trace != base.trace) {
      suite.Fail("mode-identity",
                 "trace bytes diverged between incremental and full-recompute waterfill");
    }
  }
}

// ------------------------------------------------------------ host family

// Replaces the CommVM policy with one that ECHOES wire packets back to the
// AnonVM — the deliberate NAT leak behind --plant=nat-leak. Anonymizer
// control replies keep flowing so the nym still browses normally; only the
// drop-raw-guest-traffic rule is sabotaged.
void PlantNatLeak(Nym* nym) {
  VirtualMachine* comm = nym->comm_vm();
  Link* wire = nym->wire();
  Link* vm_uplink = nym->vm_uplink();
  comm->SetPacketHandler([nym, comm, wire, vm_uplink](const Packet& packet, Link& link, bool) {
    if (&link == wire) {
      comm->SendPacket(wire, packet);  // the leak: answer instead of drop
      return;
    }
    if (&link == vm_uplink && nym->anonymizer() != nullptr) {
      nym->anonymizer()->HandlePacket(packet);
    }
  });
}

struct HostRig {
  Testbed bed;
  Observability obs;
  PacketCapture capture;
  std::vector<Nym*> nyms;           // nullptr = failed boot / lost to a crash
  std::vector<std::string> names;
  // Per-nym UnionFs model: path -> expected bytes.
  std::vector<std::map<std::string, Bytes>> models;

  explicit HostRig(uint64_t seed) : bed(seed) {}
};

// Drives the loop until `done` flips; false means the loop went idle with
// the completion never fired — the ops-terminate failure mode.
bool Await(HostRig& rig, const bool& done) {
  return rig.bed.sim().loop().RunUntilCondition([&done] { return done; });
}

std::string FuzzPath(int64_t path_id) { return "/fuzz/p" + std::to_string(Wrap(path_id, 16)); }

void CheckUnionModels(HostRig& rig, OracleSuite& suite, std::string& surface) {
  for (size_t n = 0; n < rig.nyms.size(); ++n) {
    Nym* nym = rig.nyms[n];
    if (nym == nullptr) {
      continue;
    }
    UnionFs& fs = nym->anon_vm()->disk().fs();
    for (const auto& [path, expected] : rig.models[n]) {
      auto blob = fs.ReadFile(path);
      if (!blob.ok()) {
        suite.Fail("unionfs-model", "model has '" + path + "' on " + rig.names[n] +
                                        " but ReadFile failed: " + blob.status().ToString());
        return;
      }
      if (blob->Materialize() != expected) {
        suite.Fail("unionfs-model",
                   "content mismatch at '" + path + "' on " + rig.names[n]);
        return;
      }
    }
    // Paths the model does NOT hold must not exist (a stale whiteout or a
    // resurrected file would show up here).
    for (int64_t id = 0; id < 16; ++id) {
      std::string path = FuzzPath(id);
      if (rig.models[n].count(path) == 0 && fs.Exists(path)) {
        suite.Fail("unionfs-model",
                   "'" + path + "' exists on " + rig.names[n] + " but the model deleted it");
        return;
      }
    }
  }
  surface += "unionfs models verified\n";
}

void RunHostFamily(const Scenario& scenario, const RunnerOptions& options, OracleSuite& suite,
                   std::string& surface) {
  HostRig rig(scenario.seed);
  rig.obs.EnableAll();
  rig.obs.trace.set_record_wall_time(false);
  rig.obs.metrics.set_record_wall_time(false);
  rig.bed.sim().loop().set_observability(&rig.obs);
  rig.bed.host().uplink()->AttachCapture(&rig.capture);
  rig.bed.host().EmitDhcp();

  Prng scrub_prng(Mix64(scenario.seed ^ Fnv1a64("fuzz.scrub")));
  std::vector<Website*> sites = rig.bed.sites().all();

  // --- boot the cast --------------------------------------------------
  int nym_count = static_cast<int>(ClampI(scenario.topology.nym_count, 1, 3));
  for (int i = 0; i < nym_count; ++i) {
    std::string name = "fz" + std::to_string(i);
    bool fired = false;
    Result<Nym*> created = InternalError("pending");
    rig.bed.manager().CreateNym(name, NymManager::CreateOptions{},
                                [&](Result<Nym*> nym, NymStartupReport) {
                                  created = std::move(nym);
                                  fired = true;
                                });
    if (!Await(rig, fired)) {
      suite.Fail("ops-terminate", "CreateNym('" + name + "') completion never fired");
      return;
    }
    rig.names.push_back(name);
    rig.models.emplace_back();
    if (created.ok()) {
      rig.nyms.push_back(*created);
      Status mkdir = (*created)->anon_vm()->disk().fs().Mkdir("/fuzz", /*recursive=*/true);
      (void)mkdir;  // already-exists is fine
      if (options.plant_nat_leak) {
        PlantNatLeak(*created);
      }
    } else {
      rig.nyms.push_back(nullptr);
      surface += "create " + name + " err=" + created.status().ToString() + "\n";
    }
  }

  // --- execute the step list ------------------------------------------
  for (const ScenarioStep& step : scenario.steps) {
    int n = Wrap(step.a, nym_count);
    Nym* nym = rig.nyms[static_cast<size_t>(n)];
    switch (step.kind) {
      case StepKind::kHostVisit: {
        if (nym == nullptr || sites.empty()) {
          surface += "visit skip (no nym)\n";
          break;
        }
        Website* site = sites[static_cast<size_t>(Wrap(step.b, static_cast<int>(sites.size())))];
        bool fired = false;
        Result<SimTime> finished = InternalError("pending");
        nym->browser()->Visit(*site, [&](Result<SimTime> r) {
          finished = std::move(r);
          fired = true;
        });
        if (!Await(rig, fired)) {
          suite.Fail("ops-terminate", "Visit completion never fired (nym " +
                                          rig.names[static_cast<size_t>(n)] + ")");
          return;
        }
        surface += "visit " + rig.names[static_cast<size_t>(n)] +
                   (finished.ok() ? " ok t=" + std::to_string(*finished)
                                  : " err=" + finished.status().ToString()) +
                   "\n";
        break;
      }
      case StepKind::kHostCrashRecover: {
        if (nym == nullptr) {
          surface += "crash skip (no nym)\n";
          break;
        }
        rig.bed.manager().InjectCrash(*nym);
        bool fired = false;
        Result<Nym*> recovered = InternalError("pending");
        rig.bed.manager().RecoverNym(nym, [&](Result<Nym*> r, NymStartupReport) {
          recovered = std::move(r);
          fired = true;
        });
        if (!Await(rig, fired)) {
          suite.Fail("ops-terminate", "RecoverNym completion never fired");
          return;
        }
        if (recovered.ok()) {
          rig.nyms[static_cast<size_t>(n)] = *recovered;
          if (options.plant_nat_leak) {
            PlantNatLeak(*recovered);  // recovery reinstalled the policy
          }
          surface += "recover " + rig.names[static_cast<size_t>(n)] + " ok\n";
        } else {
          // The wreck was torn down by the failed recovery; the slot is
          // gone for the rest of the scenario.
          rig.nyms[static_cast<size_t>(n)] = nullptr;
          surface += "recover " + rig.names[static_cast<size_t>(n)] +
                     " err=" + recovered.status().ToString() + "\n";
        }
        break;
      }
      case StepKind::kHostCheckpoint: {
        if (nym == nullptr) {
          break;
        }
        Status status = rig.bed.manager().CheckpointNym(*nym);
        surface += "checkpoint " + rig.names[static_cast<size_t>(n)] + " " +
                   (status.ok() ? "ok" : status.ToString()) + "\n";
        break;
      }
      case StepKind::kHostRelayCrash: {
        size_t relay = static_cast<size_t>(Wrap(step.a, 12));
        SimDuration restart_after = Millis(ClampI(step.b, 100, 5000));
        rig.bed.tor().CrashRelay(relay);
        TorNetwork* tor = &rig.bed.tor();
        rig.bed.sim().loop().ScheduleAfter(restart_after,
                                           [tor, relay] { tor->RestartRelay(relay); });
        surface += "relay_crash r" + std::to_string(relay) + "\n";
        break;
      }
      case StepKind::kHostUplinkFlap: {
        SimDuration duration = Millis(ClampI(step.a, 50, 2000));
        Link* uplink = rig.bed.host().uplink();
        uplink->SetDown(true);
        rig.bed.sim().loop().ScheduleAfter(duration, [uplink] { uplink->SetDown(false); });
        surface += "uplink_flap " + std::to_string(duration) + "us\n";
        break;
      }
      case StepKind::kHostUnionWrite: {
        if (nym == nullptr) {
          break;
        }
        std::string path = FuzzPath(step.b);
        Bytes content = Prng(Mix64(static_cast<uint64_t>(step.c)))
                            .NextBytes(static_cast<size_t>(ClampI(step.d, 0, 4096)));
        UnionFs& fs = nym->anon_vm()->disk().fs();
        Status wrote = fs.WriteFile(path, Blob::FromBytes(content));
        if (wrote.ok()) {
          rig.models[static_cast<size_t>(n)][path] = std::move(content);
        } else if (suite.enabled("unionfs-model")) {
          suite.Fail("unionfs-model", "WriteFile('" + path + "') failed: " + wrote.ToString());
          return;
        }
        break;
      }
      case StepKind::kHostUnionUnlink: {
        if (nym == nullptr) {
          break;
        }
        std::string path = FuzzPath(step.b);
        UnionFs& fs = nym->anon_vm()->disk().fs();
        bool model_has = rig.models[static_cast<size_t>(n)].count(path) > 0;
        Status unlinked = fs.Unlink(path);
        if (unlinked.ok() != model_has && suite.enabled("unionfs-model")) {
          suite.Fail("unionfs-model",
                     "Unlink('" + path + "') " + (unlinked.ok() ? "succeeded" : "failed") +
                         " but the model says the file " + (model_has ? "exists" : "does not exist"));
          return;
        }
        rig.models[static_cast<size_t>(n)].erase(path);
        break;
      }
      case StepKind::kHostScrub: {
        ScrubOptions scrub;
        switch (Wrap(step.a, 3)) {
          case 0:
            scrub.level = ParanoiaLevel::kMetadataOnly;
            break;
          case 1:
            scrub.level = ParanoiaLevel::kMetadataAndVisual;
            break;
          default:
            scrub.level = ParanoiaLevel::kRasterize;
            break;
        }
        ByteSpan data(step.payload.data(),
                      std::min<size_t>(step.payload.size(), 256 * kKiB));
        Result<RiskReport> before = AnalyzeFile(data);
        Result<ScrubResult> scrubbed = ScrubFile(data, scrub, scrub_prng);
        surface += "scrub kind=" +
                   std::string(before.ok() ? FileKindName(before->kind) : "err") +
                   (scrubbed.ok() ? " ok" : " err=" + scrubbed.status().ToString()) + "\n";
        if (scrubbed.ok() && suite.enabled("scrub-clean")) {
          Result<RiskReport> after = AnalyzeFile(scrubbed->data);
          if (!after.ok()) {
            suite.Fail("scrub-clean",
                       "scrub output does not re-analyze: " + after.status().ToString());
            return;
          }
          for (RiskType type : {RiskType::kGpsLocation, RiskType::kDeviceSerial,
                                RiskType::kAuthorIdentity}) {
            if (after->Has(type)) {
              suite.Fail("scrub-clean", "scrubbed file still carries " +
                                            std::string(RiskTypeName(type)));
              return;
            }
          }
        }
        break;
      }
      default:
        break;  // foreign-family step: no-op
    }
    if (!suite.ok()) {
      return;
    }
  }

  // --- end-of-run oracles ----------------------------------------------
  CheckUnionModels(rig, suite, surface);
  if (!suite.ok()) {
    return;
  }

  Nym* probe_from = nullptr;
  Nym* probe_other = nullptr;
  for (Nym* nym : rig.nyms) {
    if (nym == nullptr) {
      continue;
    }
    if (probe_from == nullptr) {
      probe_from = nym;
    } else if (probe_other == nullptr) {
      probe_other = nym;
    }
  }
  if (probe_from != nullptr && suite.enabled("nat-isolation")) {
    LeakProbeResult probes =
        ProbeAnonVmIsolation(rig.bed.sim(), rig.bed.host(), *probe_from, probe_other);
    surface += "probes sent=" + std::to_string(probes.probes_sent) +
               " answered=" + std::to_string(probes.responses_received) + "\n";
    if (probes.responses_received != 0) {
      suite.Fail("nat-isolation",
                 std::to_string(probes.responses_received) + " of " +
                     std::to_string(probes.probes_sent) +
                     " AnonVM probes were ANSWERED — identity boundary breached");
      return;
    }
    CaptureAudit audit = AuditUplinkCapture(rig.capture);
    if (!audit.Passed()) {
      std::string classes;
      for (const auto& [annotation, count] : audit.histogram) {
        classes += annotation + "=" + std::to_string(count) + " ";
      }
      suite.Fail("nat-isolation", "uplink capture not clean: " + classes);
      return;
    }
  }

  // --- checkpoint → crash → restore → re-checkpoint identity ------------
  if (scenario.topology.checkpoint_roundtrip && probe_from != nullptr &&
      suite.enabled("checkpoint-identity")) {
    KvStore first;
    Status checkpointed = CheckpointHost(rig.bed.manager(), "host/0", first);
    if (!checkpointed.ok()) {
      suite.Fail("checkpoint-identity", "CheckpointHost failed: " + checkpointed.ToString());
      return;
    }
    for (Nym* nym : rig.nyms) {
      if (nym != nullptr) {
        rig.bed.manager().InjectCrash(*nym);
      }
    }
    int restored = 0;
    Status restore = RestoreHost(rig.bed.manager(), "host/0", first, &restored);
    if (!restore.ok()) {
      suite.Fail("checkpoint-identity", "RestoreHost failed: " + restore.ToString());
      return;
    }
    // Drive the restored boots to quiescence before re-checkpointing.
    NymManager* manager = &rig.bed.manager();
    std::vector<std::string> live_names;
    for (size_t i = 0; i < rig.nyms.size(); ++i) {
      if (rig.nyms[i] != nullptr) {
        live_names.push_back(rig.names[i]);
      }
    }
    bool ready = rig.bed.sim().loop().RunUntilCondition([manager, &live_names] {
      for (const std::string& name : live_names) {
        Nym* nym = manager->FindNym(name);
        if (nym == nullptr || nym->anonymizer() == nullptr || !nym->anonymizer()->ready()) {
          return false;
        }
      }
      return true;
    });
    if (!ready) {
      suite.Fail("ops-terminate", "restored nyms never became ready");
      return;
    }
    KvStore second;
    Status recheck = CheckpointHost(rig.bed.manager(), "host/0", second);
    if (!recheck.ok()) {
      suite.Fail("checkpoint-identity", "re-CheckpointHost failed: " + recheck.ToString());
      return;
    }
    if (first.log() != second.log()) {
      suite.Fail("checkpoint-identity",
                 "restored host re-checkpoints differently: " +
                     std::to_string(first.log().size()) + " vs " +
                     std::to_string(second.log().size()) + " log bytes");
      return;
    }
    surface += "checkpoint roundtrip ok restored=" + std::to_string(restored) + "\n";
  }

  // Fold the trace into the outcome surface: replay byte-identity covers
  // the entire event stream, not just the ad-hoc log lines above.
  surface += rig.obs.trace.ToChromeJson();
  std::ostringstream metrics;
  rig.obs.metrics.WriteJson(metrics);
  surface += metrics.str();
}

// ----------------------------------------------------------- fleet family

struct FleetRunResult {
  std::string trace;
  std::string stats;
  uint64_t visits = 0;
  uint64_t churns = 0;
  uint64_t visit_failures = 0;
  uint64_t vm_recoveries = 0;
  uint64_t slots_abandoned = 0;
};

FleetRunResult RunFleetOnce(const Scenario& scenario, int threads, bool full_recompute) {
  const ScenarioTopology& t = scenario.topology;
  FleetOptions options;
  options.nym_count = static_cast<int>(ClampI(t.nym_count, 1, 8));
  options.nyms_per_host = static_cast<int>(ClampI(t.nyms_per_host, 1, 4));
  options.visits_per_generation = static_cast<int>(ClampI(t.visits, 1, 3));
  options.generations = static_cast<int>(ClampI(t.generations, 1, 2));
  options.full_recompute = full_recompute;
  int shards = static_cast<int>(ClampI(t.shards, 1, 4));
  int hosts = (options.nym_count + options.nyms_per_host - 1) / options.nyms_per_host;

  ShardedSimulation sharded(scenario.seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  ShardedFleet fleet(sharded, options, scenario.seed);

  for (const ScenarioStep& step : scenario.steps) {
    switch (step.kind) {
      case StepKind::kFleetVmCrash: {
        int host = Wrap(step.a, hosts);
        fleet.ScheduleVmCrash(host, Millis(ClampI(step.b, 0, 60'000)));
        break;
      }
      case StepKind::kFleetUplinkFlap: {
        int host = Wrap(step.a, hosts);
        Link* uplink = fleet.host_machine(host).uplink();
        EventLoop& loop = sharded.shard(fleet.shard_of_host(host)).loop();
        SimTime down_at = Millis(ClampI(step.b, 0, 60'000));
        SimDuration duration = Millis(ClampI(step.c, 50, 5000));
        loop.ScheduleAt(down_at, [uplink] { uplink->SetDown(true); });
        loop.ScheduleAt(down_at + duration, [uplink] { uplink->SetDown(false); });
        break;
      }
      case StepKind::kFleetRelayCrash: {
        int host = Wrap(step.a, hosts);
        TorNetwork* tor = &fleet.tor(host);
        size_t relay = static_cast<size_t>(Wrap(step.b, 6));
        EventLoop& loop = sharded.shard(fleet.shard_of_host(host)).loop();
        SimTime crash_at = Millis(ClampI(step.c, 0, 60'000));
        SimDuration restart_after = Millis(ClampI(step.d, 100, 5000));
        loop.ScheduleAt(crash_at, [tor, relay] { tor->CrashRelay(relay); });
        loop.ScheduleAt(crash_at + restart_after, [tor, relay] { tor->RestartRelay(relay); });
        break;
      }
      default:
        break;  // foreign-family step: no-op
    }
  }

  fleet.Run();
  sharded.MergeObservability();

  FleetRunResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  stats << fleet.visits() << "/" << fleet.churns() << "/" << fleet.visit_failures() << "/"
        << fleet.vm_recoveries() << "/" << fleet.slots_abandoned();
  result.stats = stats.str();
  result.visits = fleet.visits();
  result.churns = fleet.churns();
  result.visit_failures = fleet.visit_failures();
  result.vm_recoveries = fleet.vm_recoveries();
  result.slots_abandoned = fleet.slots_abandoned();
  return result;
}

void RunFleetFamily(const Scenario& scenario, OracleSuite& suite, std::string& surface) {
  const ScenarioTopology& t = scenario.topology;
  int threads = static_cast<int>(ClampI(t.threads, 1, 8));
  FleetRunResult base = RunFleetOnce(scenario, /*threads=*/1, /*full_recompute=*/false);
  surface += "fleet visits=" + std::to_string(base.visits) +
             " churns=" + std::to_string(base.churns) +
             " vfail=" + std::to_string(base.visit_failures) +
             " recov=" + std::to_string(base.vm_recoveries) +
             " abandoned=" + std::to_string(base.slots_abandoned) + "\n";
  surface += base.trace;
  surface += base.stats;

  if (suite.enabled("fleet-accounting")) {
    int nyms = static_cast<int>(ClampI(t.nym_count, 1, 8));
    int visits = static_cast<int>(ClampI(t.visits, 1, 3));
    int generations = static_cast<int>(ClampI(t.generations, 1, 2));
    uint64_t crash_steps = 0;
    bool any_fault = false;
    for (const ScenarioStep& step : scenario.steps) {
      if (FamilyOfStep(step.kind) == ScenarioFamily::kFleet) {
        any_fault = true;
        if (step.kind == StepKind::kFleetVmCrash) {
          ++crash_steps;
        }
      }
    }
    uint64_t expected_visits =
        static_cast<uint64_t>(nyms) * static_cast<uint64_t>(visits) *
        static_cast<uint64_t>(generations);
    if (!any_fault &&
        (base.visits != expected_visits || base.visit_failures != 0 ||
         base.slots_abandoned != 0 || base.vm_recoveries != 0)) {
      suite.Fail("fleet-accounting",
                 "fault-free run: visits=" + std::to_string(base.visits) + " (expected " +
                     std::to_string(expected_visits) + "), failures=" +
                     std::to_string(base.visit_failures) + ", abandoned=" +
                     std::to_string(base.slots_abandoned));
    } else if (base.vm_recoveries > crash_steps) {
      suite.Fail("fleet-accounting", "more VM recoveries (" +
                                         std::to_string(base.vm_recoveries) +
                                         ") than scheduled crashes (" +
                                         std::to_string(crash_steps) + ")");
    } else if (base.slots_abandoned > static_cast<uint64_t>(nyms)) {
      suite.Fail("fleet-accounting", "abandoned more slots than exist");
    }
  }
  if (!suite.ok()) {
    return;
  }

  if (threads > 1 && suite.enabled("trace-identity")) {
    FleetRunResult other = RunFleetOnce(scenario, threads, /*full_recompute=*/false);
    if (other.trace != base.trace) {
      suite.Fail("trace-identity", "fleet trace diverged between --threads=1 and --threads=" +
                                       std::to_string(threads));
    } else if (other.stats != base.stats) {
      suite.Fail("trace-identity", "fleet metrics diverged between --threads=1 and --threads=" +
                                       std::to_string(threads));
    }
  }
  if (t.check_mode_identity && suite.enabled("mode-identity")) {
    FleetRunResult full = RunFleetOnce(scenario, /*threads=*/1, /*full_recompute=*/true);
    if (full.trace != base.trace) {
      suite.Fail("mode-identity",
                 "fleet trace diverged between incremental and full-recompute modes");
    }
  }
}

// --------------------------------------------------------- decoder family

void RunDecoderFamily(const Scenario& scenario, OracleSuite& suite, std::string& surface) {
  Prng scrub_prng(Mix64(scenario.seed ^ Fnv1a64("fuzz.scrub")));
  int index = 0;
  for (const ScenarioStep& step : scenario.steps) {
    std::string label = "step" + std::to_string(index++);
    ByteSpan data(step.payload.data(), std::min<size_t>(step.payload.size(), 256 * kKiB));
    switch (step.kind) {
      case StepKind::kDecodeRecordLog: {
        ScanResult scan = ScanRecordLog(data);
        surface += label + " recordlog tail=" + std::to_string(static_cast<int>(scan.tail)) +
                   " records=" + std::to_string(scan.records.size()) +
                   " valid=" + std::to_string(scan.valid_bytes) + "\n";
        if (scan.valid_bytes > data.size()) {
          suite.Fail("decoder-sane", "ScanRecordLog claims " + std::to_string(scan.valid_bytes) +
                                         " valid bytes of a " + std::to_string(data.size()) +
                                         "-byte buffer");
          return;
        }
        Result<std::vector<Record>> strict = ReadRecordLog(data);
        if (scan.clean() != strict.ok()) {
          suite.Fail("decoder-sane",
                     std::string("Scan says ") + (scan.clean() ? "clean" : "damaged") +
                         " but strict ReadRecordLog " + (strict.ok() ? "succeeded" : "failed"));
          return;
        }
        // Resuming a writer on the valid prefix must yield a clean log.
        Bytes prefix(data.begin(), data.begin() + static_cast<ptrdiff_t>(scan.valid_bytes));
        if (scan.tail != LogTail::kBadHeader) {
          RecordLogWriter writer(std::move(prefix));
          writer.Append(7, BytesFromString("tail-probe"));
          if (!ScanRecordLog(writer.bytes()).clean()) {
            suite.Fail("decoder-sane", "append after recovery does not produce a clean log");
            return;
          }
        }
        break;
      }
      case StepKind::kDecodeKv: {
        Result<KvRecoverResult> recovered = KvStore::Recover(data);
        if (!recovered.ok()) {
          surface += label + " kv err=" + recovered.status().ToString() + "\n";
          break;
        }
        surface += label + " kv keys=" + std::to_string(recovered->store.size()) +
                   " valid=" + std::to_string(recovered->valid_bytes) +
                   " lost=" + std::to_string(recovered->lost_bytes) + "\n";
        if (recovered->valid_bytes + recovered->lost_bytes > data.size() + kMiB) {
          suite.Fail("decoder-sane", "KvStore::Recover byte accounting exceeds the input");
          return;
        }
        // The recovered store's own log must re-open strictly.
        Result<KvStore> reopened = KvStore::Open(recovered->store.log());
        if (!reopened.ok()) {
          suite.Fail("decoder-sane", "recovered KvStore log does not re-open: " +
                                         reopened.status().ToString());
          return;
        }
        if (reopened->size() != recovered->store.size()) {
          suite.Fail("decoder-sane", "recovered KvStore re-opens with a different key count");
          return;
        }
        break;
      }
      case StepKind::kDecodeNbt: {
        Result<NbtRecovered> recovered = RecoverNbt(data);
        if (!recovered.ok()) {
          surface += label + " nbt err=" + recovered.status().ToString() + "\n";
          break;
        }
        surface += label + " nbt events=" + std::to_string(recovered->events_recovered) +
                   " valid=" + std::to_string(recovered->valid_bytes) +
                   " lost=" + std::to_string(recovered->lost_bytes) + "\n";
        // A recovered document must re-encode and strictly re-decode.
        Bytes reencoded = EncodeNbt(recovered->doc.has_trace ? &recovered->doc.trace : nullptr,
                                    recovered->doc.has_metrics ? &recovered->doc.metrics : nullptr);
        Result<NbtDocument> redecoded = DecodeNbt(reencoded);
        if (!redecoded.ok()) {
          suite.Fail("decoder-sane", "recovered NBT does not re-encode cleanly: " +
                                         redecoded.status().ToString());
          return;
        }
        if (NbtToJson(*redecoded) != NbtToJson(recovered->doc)) {
          suite.Fail("decoder-sane", "NBT re-encode changes the JSON view");
          return;
        }
        break;
      }
      case StepKind::kDecodeScenario: {
        Result<Scenario> parsed = ScenarioFromText(StringFromBytes(data));
        if (!parsed.ok()) {
          surface += label + " scenario err\n";
          break;
        }
        surface += label + " scenario steps=" + std::to_string(parsed->steps.size()) + "\n";
        // Canonical stability: print → parse must be the identity on the
        // parsed value (otherwise corpus files rot as they round-trip).
        Result<Scenario> reparsed = ScenarioFromText(ScenarioToText(*parsed));
        if (!reparsed.ok() || !(*reparsed == *parsed)) {
          suite.Fail("decoder-sane", "scenario text round-trip is not the identity");
          return;
        }
        break;
      }
      case StepKind::kScrubBytes: {
        ScrubOptions scrub;
        scrub.level = Wrap(step.a, 3) == 0   ? ParanoiaLevel::kMetadataOnly
                      : Wrap(step.a, 3) == 1 ? ParanoiaLevel::kMetadataAndVisual
                                             : ParanoiaLevel::kRasterize;
        Result<RiskReport> analyzed = AnalyzeFile(data);
        Result<ScrubResult> scrubbed = ScrubFile(data, scrub, scrub_prng);
        surface += label + " scrub " + (analyzed.ok() ? "analyzed" : "unanalyzable") +
                   (scrubbed.ok() ? " ok" : " rejected") + "\n";
        if (scrubbed.ok() && suite.enabled("scrub-clean")) {
          Result<RiskReport> after = AnalyzeFile(scrubbed->data);
          if (!after.ok()) {
            suite.Fail("scrub-clean", "scrub output does not re-analyze: " +
                                          after.status().ToString());
            return;
          }
        }
        break;
      }
      default:
        surface += label + " foreign-step noop\n";
        break;
    }
  }
}

// -------------------------------------------------------- parallel family

// One end of a windowed channel: counts arrivals into the owning shard's
// metrics, and (when the scenario enabled echo on this channel) replies on
// the direction's next promised send window until the deadline. Replying
// anywhere else would trip the send-window CHECK in Link::Send — the
// promise is a hard contract, and this harness stays inside it by
// construction so every generated/shrunk scenario is runnable.
class WindowedSink : public PacketSink {
 public:
  WindowedSink(EventLoop& loop, Link* out, const SendSchedule& schedule, std::string name,
               SimTime deadline, const bool& echo)
      : loop_(loop), out_(out), schedule_(schedule), name_(std::move(name)),
        deadline_(deadline), echo_(echo) {}

  void OnPacket(const Packet&, Link&, bool) override {
    ++delivered_;
    if (MetricsRegistry* meters = loop_.meters()) {
      meters->GetCounter("fuzz.par." + name_)->Increment();
    }
    if (echo_ && loop_.now() < deadline_) {
      SimTime window = NextSendWindow(schedule_, loop_.now());
      Link* out = out_;
      std::string name = name_;
      loop_.ScheduleAt(window, [out, name] {
        Packet packet;
        packet.payload = Bytes(64);
        packet.annotation = name;
        out->SendFromA(std::move(packet));
      });
    }
  }

  uint64_t delivered() const { return delivered_; }

 private:
  EventLoop& loop_;
  Link* out_;
  SendSchedule schedule_;
  std::string name_;
  SimTime deadline_;
  const bool& echo_;  // owned by the channel record; set before the run
  uint64_t delivered_ = 0;
};

struct ParRunResult {
  std::string trace;
  std::string stats;
  uint64_t deliveries = 0;
};

ParRunResult RunParallelOnce(const Scenario& scenario, int threads,
                             const GoldenEmit* golden = nullptr) {
  const ScenarioTopology& t = scenario.topology;
  int shards = static_cast<int>(ClampI(t.shards, 1, 4));
  SimTime deadline = Millis(ClampI(t.echo_deadline_ms, 200, 3000));

  ShardedSimulation sharded(scenario.seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);

  struct ParChannel {
    CrossShardChannel* channel = nullptr;
    int shard_a = 0;
    int shard_b = 0;
    std::unique_ptr<WindowedSink> sink_a;
    std::unique_ptr<WindowedSink> sink_b;
    std::unique_ptr<bool> echo = std::make_unique<bool>(false);
  };
  std::vector<ParChannel> channels;

  for (const ScenarioStep& step : scenario.steps) {
    switch (step.kind) {
      case StepKind::kParChannel: {
        if (shards < 2) {
          break;  // needs two shards; shrunk to no-op
        }
        ParChannel par;
        par.shard_a = Wrap(step.a, shards);
        par.shard_b = (par.shard_a + 1 + Wrap(step.b, shards - 1)) % shards;
        SimDuration latency = Millis(ClampI(step.c, 1, 250));
        SimDuration window = Millis(ClampI(step.d, 0, 2000));  // 0 = unconstrained
        std::string id = std::to_string(channels.size());
        par.channel = sharded.CreateChannel("par-ch" + id, par.shard_a, par.shard_b, latency,
                                            4'000'000);
        // Offset phases so opposite directions never share an instant.
        par.channel->PromiseSendWindows(SendSchedule{window, 0},
                                        SendSchedule{window, window / 2});
        par.sink_a = std::make_unique<WindowedSink>(
            sharded.shard(par.shard_a).loop(), par.channel->a_end(),
            par.channel->schedule_a_to_b(), "ch" + id + ".a", deadline, *par.echo);
        par.sink_b = std::make_unique<WindowedSink>(
            sharded.shard(par.shard_b).loop(), par.channel->b_end(),
            par.channel->schedule_b_to_a(), "ch" + id + ".b", deadline, *par.echo);
        par.channel->a_end()->AttachA(par.sink_a.get());
        par.channel->b_end()->AttachA(par.sink_b.get());
        channels.push_back(std::move(par));
        break;
      }
      case StepKind::kParBurst: {
        if (channels.empty()) {
          break;
        }
        ParChannel& par = channels[static_cast<size_t>(
            Wrap(step.a, static_cast<int>(channels.size())))];
        bool from_a = (step.b % 2) == 0;
        int shard = from_a ? par.shard_a : par.shard_b;
        Link* out = from_a ? par.channel->a_end() : par.channel->b_end();
        SendSchedule schedule =
            from_a ? par.channel->schedule_a_to_b() : par.channel->schedule_b_to_a();
        SimTime at = Millis(ClampI(step.c, 0, 3000));
        int count = static_cast<int>(ClampI(step.d, 1, 5));
        EventLoop& loop = sharded.shard(shard).loop();
        // Two hops: land on the requested tick, then snap the burst onto
        // the direction's next promised window.
        loop.ScheduleAt(at, [&loop, out, schedule, count] {
          loop.ScheduleAt(NextSendWindow(schedule, loop.now()), [out, count] {
            for (int k = 0; k < count; ++k) {
              Packet packet;
              packet.payload = Bytes(64);
              packet.annotation = "burst" + std::to_string(k);
              out->SendFromA(std::move(packet));
            }
          });
        });
        break;
      }
      case StepKind::kParEcho: {
        if (channels.empty()) {
          break;
        }
        *channels[static_cast<size_t>(Wrap(step.a, static_cast<int>(channels.size())))].echo =
            true;
        break;
      }
      default:
        break;  // foreign-family step: no-op by the closure rule
    }
  }

  sharded.RunUntilIdle();
  sharded.MergeObservability();
  if (golden != nullptr) {
    (*golden)(sharded.merged().trace, sharded.merged().metrics);
  }

  ParRunResult result;
  result.trace = sharded.merged().trace.ToChromeJson();
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  // Epoch structure and cross-delivery totals are part of the identity
  // surface: an executor change that alters horizons shows up here even
  // when the trace happens to coincide.
  stats << " epochs=" << sharded.epochs() << " xdeliv=" << sharded.cross_deliveries();
  for (const ParChannel& par : channels) {
    stats << " " << par.sink_a->delivered() << "/" << par.sink_b->delivered();
  }
  result.stats = stats.str();
  result.deliveries = sharded.cross_deliveries();
  return result;
}

void RunParallelFamily(const Scenario& scenario, OracleSuite& suite, std::string& surface) {
  int threads = static_cast<int>(ClampI(scenario.topology.threads, 1, 8));
  ParRunResult base = RunParallelOnce(scenario, /*threads=*/1);
  surface += "parallel deliveries=" + std::to_string(base.deliveries) + "\n";
  surface += base.trace;
  surface += base.stats;

  if (threads > 1 && suite.enabled("trace-identity")) {
    ParRunResult other = RunParallelOnce(scenario, threads);
    if (other.trace != base.trace) {
      suite.Fail("trace-identity",
                 "windowed-storm trace diverged between --threads=1 and --threads=" +
                     std::to_string(threads));
    } else if (other.stats != base.stats) {
      suite.Fail("trace-identity",
                 "windowed-storm metrics/epochs diverged between --threads=1 and --threads=" +
                     std::to_string(threads));
    }
  }
}

// -------------------------------------------------------- adversary family

// Steps configure the experiment (last write wins); the runner clamps the
// shape so every generated scenario is a meaningful leak-quantification
// run: nyms_per_host is pinned to 2 and nym_count kept even so a planted
// same-host leak always has positive pairs (with singleton hosts the
// true-positive class is empty and advantage is undefined).
struct AdvRunResult {
  std::string trace;
  std::string stats;
  AdversaryReport report;
};

AdversaryOptions AdversaryOptionsFor(const Scenario& scenario) {
  const ScenarioTopology& t = scenario.topology;
  AdversaryOptions options;
  options.nyms_per_host = 2;
  options.nym_count = 4 + 2 * Wrap(t.nym_count, 3);  // 4, 6, or 8
  options.generations = static_cast<int>(ClampI(t.generations, 1, 2));
  for (const ScenarioStep& step : scenario.steps) {
    switch (step.kind) {
      case StepKind::kAdvPlant:
        options.plant = static_cast<LeakPlant>(Wrap(step.a, 4));
        break;
      case StepKind::kAdvWorkload:
        options.workload = static_cast<WorkloadMix>(Wrap(step.a, 4));
        break;
      case StepKind::kAdvChurn:
        options.generations = static_cast<int>(ClampI(step.a, 1, 2));
        break;
      default:
        break;  // foreign-family step: no-op by the closure rule
    }
  }
  return options;
}

AdvRunResult RunAdversaryOnce(const Scenario& scenario, int threads,
                              const GoldenEmit* golden = nullptr) {
  int shards = static_cast<int>(ClampI(scenario.topology.shards, 1, 4));
  AdversaryOptions options = AdversaryOptionsFor(scenario);

  ShardedSimulation sharded(scenario.seed, ShardPlan{shards, threads});
  sharded.EnableObservability(/*record_wall_time=*/false);
  AdversaryExperiment experiment(sharded, options, scenario.seed);
  experiment.Run();
  sharded.MergeObservability();
  if (golden != nullptr) {
    (*golden)(sharded.merged().trace, sharded.merged().metrics);
  }

  AdvRunResult result;
  result.report = experiment.Analyze();
  result.trace = sharded.merged().trace.ToChromeJson();

  MetricsRegistry adversary_metrics;
  adversary_metrics.set_enabled(true);
  adversary_metrics.set_record_wall_time(false);
  AdversaryExperiment::ExportMetrics(result.report, adversary_metrics);
  std::ostringstream stats;
  sharded.merged().metrics.WriteJson(stats);
  stats << "\n";
  adversary_metrics.WriteJson(stats);
  stats << " visits=" << experiment.visits() << " churns=" << experiment.churns();
  result.stats = stats.str();
  return result;
}

void RunAdversaryFamily(const Scenario& scenario, OracleSuite& suite, std::string& surface) {
  AdversaryOptions options = AdversaryOptionsFor(scenario);
  LeakPlant plant = options.plant;
  // The scrub plant leaks only through uploads: under a workload with no
  // upload site every stain is empty and the fleet is indistinguishable
  // from clean, so the oracle holds it to the clean floor instead.
  bool plant_observable =
      plant != LeakPlant::kNone &&
      !(plant == LeakPlant::kDisabledScrub && options.workload != WorkloadMix::kUpload &&
        options.workload != WorkloadMix::kMixed);

  int threads = static_cast<int>(ClampI(scenario.topology.threads, 1, 8));
  AdvRunResult base = RunAdversaryOnce(scenario, /*threads=*/1);
  char line[160];
  std::snprintf(line, sizeof(line),
                "adversary plant=%s advantage=%.6f linkage=%.6f instances=%llu\n",
                std::string(LeakPlantName(plant)).c_str(), base.report.linkage.advantage,
                base.report.linkage.linkage_probability,
                static_cast<unsigned long long>(base.report.nym_instances));
  surface += line;
  surface += base.trace;
  surface += base.stats;

  if (suite.enabled("adversary-leak")) {
    double advantage = base.report.linkage.advantage;
    if (!plant_observable && advantage > 0.1) {
      std::snprintf(line, sizeof(line),
                    "clean fleet linked with advantage %.6f (> 0.1 floor)", advantage);
      suite.Fail("adversary-leak", line);
    } else if (plant_observable && advantage < 0.9) {
      std::snprintf(line, sizeof(line), "planted %s escaped: advantage %.6f (< 0.9 bar)",
                    std::string(LeakPlantName(plant)).c_str(), advantage);
      suite.Fail("adversary-leak", line);
    }
  }

  if (threads > 1 && suite.enabled("trace-identity")) {
    AdvRunResult other = RunAdversaryOnce(scenario, threads);
    if (other.trace != base.trace) {
      suite.Fail("trace-identity",
                 "adversary trace diverged between --threads=1 and --threads=" +
                     std::to_string(threads));
    } else if (other.stats != base.stats) {
      suite.Fail("trace-identity",
                 "adversary metrics diverged between --threads=1 and --threads=" +
                     std::to_string(threads));
    }
  }
}

}  // namespace

RunReport RunScenario(const Scenario& scenario, const RunnerOptions& options) {
  OracleSuite suite(options.disabled_oracles);
  std::string surface;
  switch (scenario.family) {
    case ScenarioFamily::kNet:
      RunNetFamily(scenario, suite, surface);
      break;
    case ScenarioFamily::kHost:
      RunHostFamily(scenario, options, suite, surface);
      break;
    case ScenarioFamily::kFleet:
      RunFleetFamily(scenario, suite, surface);
      break;
    case ScenarioFamily::kDecoder:
      RunDecoderFamily(scenario, suite, surface);
      break;
    case ScenarioFamily::kParallel:
      RunParallelFamily(scenario, suite, surface);
      break;
    case ScenarioFamily::kAdversary:
      RunAdversaryFamily(scenario, suite, surface);
      break;
  }
  RunReport report;
  report.ok = suite.ok();
  report.oracle = suite.failed_oracle();
  report.detail = suite.detail();
  report.digest = DigestOf(surface);
  report.steps_executed = scenario.steps.size();
  return report;
}

Status RunScenarioGolden(
    const Scenario& scenario,
    const std::function<void(const TraceRecorder& trace, const MetricsRegistry& metrics)>& emit) {
  switch (scenario.family) {
    case ScenarioFamily::kParallel:
      RunParallelOnce(scenario, /*threads=*/1, &emit);
      return OkStatus();
    case ScenarioFamily::kAdversary:
      RunAdversaryOnce(scenario, /*threads=*/1, &emit);
      return OkStatus();
    default:
      return InvalidArgumentError(
          "golden promotion supports the parallel and adversary families, not '" +
          std::string(ScenarioFamilyName(scenario.family)) + "'");
  }
}

}  // namespace nymix
