#include "src/fuzz/generator.h"

#include <algorithm>
#include <sstream>

#include "src/fuzz/entropy.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/kv_store.h"
#include "src/store/nbt.h"
#include "src/store/record_log.h"

namespace nymix {
namespace {

// --- decoder payload builders ---------------------------------------------
// Decoder bugs live at the boundary of validity, so payloads start from a
// VALID encoding and get structurally mutated, with a minority of raw
// random buffers to keep the header paths honest.

Bytes ValidRecordLog(EntropySource& entropy) {
  RecordLogWriter writer;
  int records = static_cast<int>(entropy.Pick(6));
  for (int i = 0; i < records; ++i) {
    writer.Append(static_cast<uint32_t>(entropy.Pick(32)),
                  entropy.RandomBytes(entropy.Pick(120)));
  }
  return writer.TakeBytes();
}

Bytes ValidKvLog(EntropySource& entropy) {
  KvStore store;
  int puts = static_cast<int>(entropy.Pick(8));
  for (int i = 0; i < puts; ++i) {
    std::string key = "k" + std::to_string(entropy.Pick(4));
    if (entropy.Chance(0.2)) {
      store.Delete(key);
    } else {
      store.Put(key, entropy.RandomBytes(1 + entropy.Pick(60)));
    }
  }
  return store.log();
}

Bytes ValidNbt(EntropySource& entropy) {
  TraceRecorder trace;
  trace.set_enabled(true);
  trace.set_record_wall_time(false);
  MetricsRegistry metrics;
  metrics.set_enabled(true);
  metrics.set_record_wall_time(false);
  int events = static_cast<int>(entropy.Pick(5));
  for (int i = 0; i < events; ++i) {
    trace.AddInstant("fuzz", "e" + std::to_string(i), "fuzz", Millis(static_cast<int64_t>(i)));
    metrics.GetCounter("fuzz.c" + std::to_string(entropy.Pick(3)))->Increment();
  }
  bool with_trace = entropy.Chance(0.8);
  bool with_metrics = entropy.Chance(0.8);
  return EncodeNbt(with_trace ? &trace : nullptr, with_metrics ? &metrics : nullptr);
}

ScenarioStep RandomStepFor(ScenarioFamily family, EntropySource& entropy);

Bytes ValidScenarioText(EntropySource& entropy) {
  // A tiny self-referential scenario: the parser fuzzes itself.
  Scenario inner;
  inner.family = static_cast<ScenarioFamily>(entropy.Pick(5));
  inner.seed = entropy.prng().NextU64();
  inner.topology.shards = static_cast<int>(1 + entropy.Pick(4));
  int steps = static_cast<int>(entropy.Pick(4));
  for (int i = 0; i < steps; ++i) {
    inner.steps.push_back(RandomStepFor(inner.family, entropy));
  }
  return BytesFromString(ScenarioToText(inner));
}

Bytes DecoderPayload(StepKind kind, EntropySource& entropy) {
  Bytes payload;
  if (entropy.Chance(0.25)) {
    payload = entropy.RandomBytes(entropy.Pick(200));  // raw garbage
  } else {
    switch (kind) {
      case StepKind::kDecodeRecordLog:
        payload = ValidRecordLog(entropy);
        break;
      case StepKind::kDecodeKv:
        payload = ValidKvLog(entropy);
        break;
      case StepKind::kDecodeNbt:
        payload = ValidNbt(entropy);
        break;
      case StepKind::kDecodeScenario:
        payload = ValidScenarioText(entropy);
        break;
      default:
        payload = entropy.RandomBytes(64 + entropy.Pick(200));
        break;
    }
    // Usually corrupt; sometimes leave valid (exercises the clean paths
    // and the over-claiming checks on intact inputs).
    if (entropy.Chance(0.8)) {
      entropy.MutateBytes(payload);
    }
  }
  return payload;
}

// --- per-family step menus ------------------------------------------------

ScenarioStep RandomStepFor(ScenarioFamily family, EntropySource& entropy) {
  ScenarioStep step;
  switch (family) {
    case ScenarioFamily::kNet: {
      static constexpr StepKind kMenu[] = {
          StepKind::kNetChannel, StepKind::kNetChannel, StepKind::kNetFlow,
          StepKind::kNetFlow, StepKind::kNetFaultProfile, StepKind::kNetLinkFlap};
      step.kind = kMenu[entropy.Pick(6)];
      step.a = entropy.IntIn(0, 7);
      step.b = entropy.IntIn(0, 400'000);
      step.c = entropy.IntIn(0, 4000);
      step.d = entropy.IntIn(0, 12'000);
      break;
    }
    case ScenarioFamily::kHost: {
      static constexpr StepKind kMenu[] = {
          StepKind::kHostVisit,       StepKind::kHostVisit,
          StepKind::kHostUnionWrite,  StepKind::kHostUnionWrite,
          StepKind::kHostUnionUnlink, StepKind::kHostCrashRecover,
          StepKind::kHostCheckpoint,  StepKind::kHostRelayCrash,
          StepKind::kHostUplinkFlap,  StepKind::kHostScrub};
      step.kind = kMenu[entropy.Pick(10)];
      step.a = entropy.IntIn(0, 15);
      step.b = entropy.IntIn(0, 15);
      step.c = entropy.IntIn(0, 1'000'000);
      step.d = entropy.IntIn(0, 4096);
      if (step.kind == StepKind::kHostScrub) {
        step.payload = entropy.RandomBytes(entropy.Pick(300));
      }
      break;
    }
    case ScenarioFamily::kFleet: {
      static constexpr StepKind kMenu[] = {StepKind::kFleetVmCrash,
                                           StepKind::kFleetVmCrash,
                                           StepKind::kFleetUplinkFlap,
                                           StepKind::kFleetRelayCrash};
      step.kind = kMenu[entropy.Pick(4)];
      step.a = entropy.IntIn(0, 7);
      step.b = entropy.IntIn(0, 30'000);
      step.c = entropy.IntIn(0, 30'000);
      step.d = entropy.IntIn(100, 5000);
      break;
    }
    case ScenarioFamily::kDecoder: {
      static constexpr StepKind kMenu[] = {
          StepKind::kDecodeRecordLog, StepKind::kDecodeKv, StepKind::kDecodeNbt,
          StepKind::kDecodeScenario, StepKind::kScrubBytes};
      step.kind = kMenu[entropy.Pick(5)];
      step.a = entropy.IntIn(0, 2);
      step.payload = DecoderPayload(step.kind, entropy);
      break;
    }
    case ScenarioFamily::kParallel: {
      // Burst-heavy: channels are only interesting when traffic actually
      // collides on their promised windows.
      static constexpr StepKind kMenu[] = {
          StepKind::kParChannel, StepKind::kParChannel, StepKind::kParBurst,
          StepKind::kParBurst,   StepKind::kParBurst,   StepKind::kParEcho};
      step.kind = kMenu[entropy.Pick(6)];
      step.a = entropy.IntIn(0, 7);
      step.b = entropy.IntIn(0, 7);
      step.c = entropy.IntIn(0, 3000);
      step.d = entropy.IntIn(0, 2000);
      break;
    }
    case ScenarioFamily::kAdversary: {
      // Plant-heavy: the interesting behavior is whether a planted isolation
      // failure survives the observer's analyzers, so most steps toggle the
      // plant; workload/churn steps vary what the taps get to see.
      static constexpr StepKind kMenu[] = {
          StepKind::kAdvPlant, StepKind::kAdvPlant, StepKind::kAdvPlant,
          StepKind::kAdvWorkload, StepKind::kAdvWorkload, StepKind::kAdvChurn};
      step.kind = kMenu[entropy.Pick(6)];
      step.a = entropy.IntIn(0, 7);
      step.b = entropy.IntIn(0, 7);
      break;
    }
  }
  return step;
}

}  // namespace

Scenario GenerateScenario(uint64_t seed, const GeneratorOptions& options) {
  EntropySource entropy(seed);
  Scenario scenario;
  scenario.seed = seed;

  if (options.family.has_value()) {
    scenario.family = *options.family;
  } else {
    // Weighted: decoder scenarios are ~milliseconds, simulation families
    // ~tens of milliseconds; spend most draws where iteration is cheap.
    size_t roll = entropy.Pick(12);
    scenario.family = roll < 4    ? ScenarioFamily::kDecoder
                      : roll < 6  ? ScenarioFamily::kNet
                      : roll < 8  ? ScenarioFamily::kHost
                      : roll < 10 ? ScenarioFamily::kFleet
                                  : ScenarioFamily::kParallel;
  }

  // Family-forked streams: a draw-count change in one family's generator
  // never reshuffles another family's scenarios for the same seed.
  EntropySource stream = entropy.Fork(ScenarioFamilyName(scenario.family));

  ScenarioTopology& t = scenario.topology;
  t.shards = static_cast<int>(1 + stream.Pick(4));
  t.threads = static_cast<int>(1 + stream.Pick(8));
  t.nym_count = static_cast<int>(1 + stream.Pick(4));
  t.nyms_per_host = static_cast<int>(1 + stream.Pick(3));
  t.visits = static_cast<int>(1 + stream.Pick(3));
  t.generations = static_cast<int>(1 + stream.Pick(2));
  t.echo_deadline_ms = static_cast<int>(300 + 100 * stream.Pick(15));
  t.check_mode_identity = stream.Chance(0.3);
  t.checkpoint_roundtrip =
      scenario.family == ScenarioFamily::kHost && stream.Chance(0.35);

  int max_steps = std::max(1, options.max_steps);
  int count = static_cast<int>(1 + stream.Pick(static_cast<size_t>(max_steps)));
  scenario.steps.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    scenario.steps.push_back(RandomStepFor(scenario.family, stream));
  }
  return scenario;
}

}  // namespace nymix
