// Deterministic scenario shrinker: given a failing scenario, produce the
// smallest scenario that still fails the SAME oracle.
//
// Guarantees (tests/fuzz_test.cc property-checks all three):
//   - Deterministic: shrinking the same scenario twice yields identical
//     results — passes run in a fixed order and take the first improvement,
//     never a random one.
//   - Monotonic: every accepted candidate strictly decreases the weight
//     metric (steps dominate, then payload bytes, then topology, then
//     argument magnitudes), so progress can never cycle.
//   - Terminating: the weight is a non-negative integer that strictly
//     decreases on acceptance, and candidate executions are hard-capped;
//     shrinking a pathological scenario ends, it does not hang.
#ifndef SRC_FUZZ_SHRINK_H_
#define SRC_FUZZ_SHRINK_H_

#include <cstdint>

#include "src/fuzz/runner.h"
#include "src/fuzz/scenario.h"

namespace nymix {

// Ordering metric the shrinker minimizes. Steps dominate everything (one
// deleted step beats any amount of payload trimming), then payload bytes,
// then topology sizes, then raw argument magnitudes.
uint64_t ScenarioWeight(const Scenario& scenario);

struct ShrinkResult {
  Scenario scenario;       // the minimized scenario
  RunReport report;        // its (still-failing) report
  int candidates_tried = 0;
  int candidates_accepted = 0;
};

// Minimizes `scenario`, which must currently fail (report.ok == false)
// under `options`; `report` is its failing RunReport. Candidates are
// accepted only when they fail the SAME oracle with strictly lower weight.
// `max_candidates` caps total candidate executions.
ShrinkResult ShrinkScenario(const Scenario& scenario, const RunReport& report,
                            const RunnerOptions& options, int max_candidates = 400);

}  // namespace nymix

#endif  // SRC_FUZZ_SHRINK_H_
