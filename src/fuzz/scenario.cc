#include "src/fuzz/scenario.h"

#include <charconv>

namespace nymix {
namespace {

struct FamilyName {
  ScenarioFamily family;
  const char* name;
};

constexpr FamilyName kFamilyNames[] = {
    {ScenarioFamily::kNet, "net"},
    {ScenarioFamily::kHost, "host"},
    {ScenarioFamily::kFleet, "fleet"},
    {ScenarioFamily::kDecoder, "decoder"},
    {ScenarioFamily::kParallel, "parallel"},
    {ScenarioFamily::kAdversary, "adversary"},
};

struct KindName {
  StepKind kind;
  ScenarioFamily family;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {StepKind::kNetChannel, ScenarioFamily::kNet, "net_channel"},
    {StepKind::kNetFaultProfile, ScenarioFamily::kNet, "net_fault_profile"},
    {StepKind::kNetFlow, ScenarioFamily::kNet, "net_flow"},
    {StepKind::kNetLinkFlap, ScenarioFamily::kNet, "net_link_flap"},
    {StepKind::kHostVisit, ScenarioFamily::kHost, "host_visit"},
    {StepKind::kHostCrashRecover, ScenarioFamily::kHost, "host_crash_recover"},
    {StepKind::kHostCheckpoint, ScenarioFamily::kHost, "host_checkpoint"},
    {StepKind::kHostRelayCrash, ScenarioFamily::kHost, "host_relay_crash"},
    {StepKind::kHostUplinkFlap, ScenarioFamily::kHost, "host_uplink_flap"},
    {StepKind::kHostUnionWrite, ScenarioFamily::kHost, "host_union_write"},
    {StepKind::kHostUnionUnlink, ScenarioFamily::kHost, "host_union_unlink"},
    {StepKind::kHostScrub, ScenarioFamily::kHost, "host_scrub"},
    {StepKind::kFleetVmCrash, ScenarioFamily::kFleet, "fleet_vm_crash"},
    {StepKind::kFleetUplinkFlap, ScenarioFamily::kFleet, "fleet_uplink_flap"},
    {StepKind::kFleetRelayCrash, ScenarioFamily::kFleet, "fleet_relay_crash"},
    {StepKind::kDecodeRecordLog, ScenarioFamily::kDecoder, "decode_record_log"},
    {StepKind::kDecodeKv, ScenarioFamily::kDecoder, "decode_kv"},
    {StepKind::kDecodeNbt, ScenarioFamily::kDecoder, "decode_nbt"},
    {StepKind::kDecodeScenario, ScenarioFamily::kDecoder, "decode_scenario"},
    {StepKind::kScrubBytes, ScenarioFamily::kDecoder, "scrub_bytes"},
    {StepKind::kParChannel, ScenarioFamily::kParallel, "par_channel"},
    {StepKind::kParBurst, ScenarioFamily::kParallel, "par_burst"},
    {StepKind::kParEcho, ScenarioFamily::kParallel, "par_echo"},
    {StepKind::kAdvPlant, ScenarioFamily::kAdversary, "adv_plant"},
    {StepKind::kAdvWorkload, ScenarioFamily::kAdversary, "adv_workload"},
    {StepKind::kAdvChurn, ScenarioFamily::kAdversary, "adv_churn"},
};

std::string_view TrimSpace(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

// Pops the next space-separated token off `line`.
std::string_view NextToken(std::string_view& line) {
  line = TrimSpace(line);
  size_t end = line.find(' ');
  std::string_view token = line.substr(0, end);
  line.remove_prefix(end == std::string_view::npos ? line.size() : end + 1);
  return token;
}

Result<int64_t> ParseInt(std::string_view text) {
  int64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgumentError("bad integer '" + std::string(text) + "'");
  }
  return value;
}

Result<uint64_t> ParseU64(std::string_view text) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return InvalidArgumentError("bad unsigned integer '" + std::string(text) + "'");
  }
  return value;
}

// Splits `key=value`; returns false when no '=' is present.
bool SplitKeyValue(std::string_view token, std::string_view& key, std::string_view& value) {
  size_t eq = token.find('=');
  if (eq == std::string_view::npos) {
    return false;
  }
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

void AppendTopology(std::string& out, const ScenarioTopology& t) {
  out += "topology shards=" + std::to_string(t.shards);
  out += " threads=" + std::to_string(t.threads);
  out += " nyms=" + std::to_string(t.nym_count);
  out += " per_host=" + std::to_string(t.nyms_per_host);
  out += " visits=" + std::to_string(t.visits);
  out += " generations=" + std::to_string(t.generations);
  out += " echo_ms=" + std::to_string(t.echo_deadline_ms);
  out += " mode_identity=" + std::to_string(t.check_mode_identity ? 1 : 0);
  out += " checkpoint=" + std::to_string(t.checkpoint_roundtrip ? 1 : 0);
  out += "\n";
}

Status ParseTopologyLine(std::string_view rest, ScenarioTopology& t) {
  while (!(rest = TrimSpace(rest)).empty()) {
    std::string_view token = NextToken(rest);
    std::string_view key;
    std::string_view value;
    if (!SplitKeyValue(token, key, value)) {
      return InvalidArgumentError("topology token without '=': '" + std::string(token) + "'");
    }
    Result<int64_t> parsed = ParseInt(value);
    if (!parsed.ok()) {
      return parsed.status();
    }
    int v = static_cast<int>(*parsed);
    if (key == "shards") {
      t.shards = v;
    } else if (key == "threads") {
      t.threads = v;
    } else if (key == "nyms") {
      t.nym_count = v;
    } else if (key == "per_host") {
      t.nyms_per_host = v;
    } else if (key == "visits") {
      t.visits = v;
    } else if (key == "generations") {
      t.generations = v;
    } else if (key == "echo_ms") {
      t.echo_deadline_ms = v;
    } else if (key == "mode_identity") {
      t.check_mode_identity = v != 0;
    } else if (key == "checkpoint") {
      t.checkpoint_roundtrip = v != 0;
    } else {
      return InvalidArgumentError("unknown topology key '" + std::string(key) + "'");
    }
  }
  return OkStatus();
}

Status ParseStepLine(std::string_view rest, ScenarioStep& step) {
  std::string_view kind_name = NextToken(rest);
  Result<StepKind> kind = ParseStepKind(kind_name);
  if (!kind.ok()) {
    return kind.status();
  }
  step.kind = *kind;
  while (!(rest = TrimSpace(rest)).empty()) {
    std::string_view token = NextToken(rest);
    std::string_view key;
    std::string_view value;
    if (!SplitKeyValue(token, key, value)) {
      return InvalidArgumentError("step token without '=': '" + std::string(token) + "'");
    }
    if (key == "payload") {
      Result<Bytes> bytes = HexDecode(value);
      if (!bytes.ok()) {
        return bytes.status();
      }
      step.payload = std::move(*bytes);
      continue;
    }
    Result<int64_t> parsed = ParseInt(value);
    if (!parsed.ok()) {
      return parsed.status();
    }
    if (key == "a") {
      step.a = *parsed;
    } else if (key == "b") {
      step.b = *parsed;
    } else if (key == "c") {
      step.c = *parsed;
    } else if (key == "d") {
      step.d = *parsed;
    } else {
      return InvalidArgumentError("unknown step key '" + std::string(key) + "'");
    }
  }
  return OkStatus();
}

// Shared scanner for ScenarioFromText / ReproFromText. When `repro` is
// null, expectation lines (oracle/detail/digest) are rejected.
Status ParseNymfuzz(std::string_view text, Scenario& scenario, ReproFile* repro) {
  bool saw_header = false;
  bool saw_end = false;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line = TrimSpace(line);
    if (line.empty() || line.front() == '#') {
      continue;
    }
    std::string_view rest = line;
    std::string_view keyword = NextToken(rest);
    if (!saw_header) {
      if (keyword != "nymfuzz" || TrimSpace(rest) != "1") {
        return InvalidArgumentError("not a nymfuzz v1 file (missing 'nymfuzz 1' header)");
      }
      saw_header = true;
      continue;
    }
    if (keyword == "family") {
      Result<ScenarioFamily> family = ParseScenarioFamily(TrimSpace(rest));
      if (!family.ok()) {
        return family.status();
      }
      scenario.family = *family;
    } else if (keyword == "seed") {
      Result<uint64_t> seed = ParseU64(TrimSpace(rest));
      if (!seed.ok()) {
        return seed.status();
      }
      scenario.seed = *seed;
    } else if (keyword == "topology") {
      Status status = ParseTopologyLine(rest, scenario.topology);
      if (!status.ok()) {
        return status;
      }
    } else if (keyword == "step") {
      if (saw_end) {
        return InvalidArgumentError("step after 'end'");
      }
      ScenarioStep step;
      Status status = ParseStepLine(rest, step);
      if (!status.ok()) {
        return status;
      }
      scenario.steps.push_back(std::move(step));
    } else if (keyword == "end") {
      saw_end = true;
    } else if (keyword == "oracle" || keyword == "detail" || keyword == "digest") {
      if (repro == nullptr) {
        return InvalidArgumentError("'" + std::string(keyword) +
                                    "' expectation line in a plain scenario file");
      }
      std::string value(TrimSpace(rest));
      if (keyword == "oracle") {
        repro->oracle = std::move(value);
      } else if (keyword == "detail") {
        repro->detail = std::move(value);
      } else {
        repro->digest = std::move(value);
      }
    } else {
      return InvalidArgumentError("unknown keyword '" + std::string(keyword) + "'");
    }
  }
  if (!saw_header) {
    return InvalidArgumentError("empty nymfuzz file");
  }
  if (!saw_end) {
    return InvalidArgumentError("missing 'end' line (truncated file?)");
  }
  return OkStatus();
}

std::string SingleLine(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

}  // namespace

std::string_view ScenarioFamilyName(ScenarioFamily family) {
  for (const FamilyName& entry : kFamilyNames) {
    if (entry.family == family) {
      return entry.name;
    }
  }
  return "?";
}

Result<ScenarioFamily> ParseScenarioFamily(std::string_view name) {
  for (const FamilyName& entry : kFamilyNames) {
    if (name == entry.name) {
      return entry.family;
    }
  }
  return InvalidArgumentError("unknown scenario family '" + std::string(name) + "'");
}

std::string_view StepKindName(StepKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

Result<StepKind> ParseStepKind(std::string_view name) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      return entry.kind;
    }
  }
  return InvalidArgumentError("unknown step kind '" + std::string(name) + "'");
}

ScenarioFamily FamilyOfStep(StepKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.family;
    }
  }
  return ScenarioFamily::kNet;
}

std::string ScenarioToText(const Scenario& scenario) {
  std::string out = "nymfuzz 1\n";
  out += "family " + std::string(ScenarioFamilyName(scenario.family)) + "\n";
  out += "seed " + std::to_string(scenario.seed) + "\n";
  AppendTopology(out, scenario.topology);
  for (const ScenarioStep& step : scenario.steps) {
    out += "step " + std::string(StepKindName(step.kind));
    out += " a=" + std::to_string(step.a);
    out += " b=" + std::to_string(step.b);
    out += " c=" + std::to_string(step.c);
    out += " d=" + std::to_string(step.d);
    if (!step.payload.empty()) {
      out += " payload=" + HexEncode(step.payload);
    }
    out += "\n";
  }
  out += "end\n";
  return out;
}

Result<Scenario> ScenarioFromText(std::string_view text) {
  Scenario scenario;
  Status status = ParseNymfuzz(text, scenario, nullptr);
  if (!status.ok()) {
    return status;
  }
  return scenario;
}

std::string ReproToText(const ReproFile& repro) {
  std::string out = ScenarioToText(repro.scenario);
  if (!repro.oracle.empty()) {
    out += "oracle " + SingleLine(repro.oracle) + "\n";
  }
  if (!repro.detail.empty()) {
    out += "detail " + SingleLine(repro.detail) + "\n";
  }
  if (!repro.digest.empty()) {
    out += "digest " + SingleLine(repro.digest) + "\n";
  }
  return out;
}

Result<ReproFile> ReproFromText(std::string_view text) {
  ReproFile repro;
  Status status = ParseNymfuzz(text, repro.scenario, &repro);
  if (!status.ok()) {
    return status;
  }
  return repro;
}

}  // namespace nymix
