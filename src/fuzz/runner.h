// Scenario runner: executes one Scenario under the invariant-oracle suite
// and reports what happened.
//
// Contract (the shrinker and replay depend on every clause):
//   - Total: any scenario — any step order, any argument values, any
//     payload bytes — runs to completion without crashing the harness.
//     Out-of-range arguments are clamped or wrapped; references to things
//     that don't exist (a nym that failed to boot, a channel never
//     created) degrade to logged no-ops.
//   - Deterministic: the same scenario produces the same RunReport,
//     including the same outcome digest, every time, on every machine.
//   - Oracle-tagged: a failure is reported as the FIRST oracle that
//     tripped plus a human-readable detail line; the report's ok flag
//     never reflects expected-and-handled errors (a visit failing with a
//     Status during an uplink flap is normal life, not a finding).
#ifndef SRC_FUZZ_RUNNER_H_
#define SRC_FUZZ_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/fuzz/oracle.h"
#include "src/fuzz/scenario.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace nymix {

struct RunnerOptions {
  // Deliberately sabotage the CommVM policy of every nym the host family
  // boots: wire packets are echoed back to the AnonVM instead of dropped.
  // The nat-isolation oracle MUST catch this — the planted-leak self-test
  // (CI and tests/fuzz_test.cc) proves the oracle is live, not vacuous.
  bool plant_nat_leak = false;
  // Oracle names (see AllOracles()) to skip.
  std::vector<std::string> disabled_oracles;
};

RunReport RunScenario(const Scenario& scenario, const RunnerOptions& options = {});

// Golden-trace promotion hook (tests/golden_scenarios.cc): runs the
// scenario's base threads=1 simulation — no oracles, no rerun — and hands
// the merged trace/metrics to `emit` before teardown, so a clean corpus
// survivor can be re-emitted as a tests/golden/ JSON/NBT pair. Supported
// for the simulation-backed families that merge shard observability
// (parallel, adversary); other families return InvalidArgumentError.
Status RunScenarioGolden(
    const Scenario& scenario,
    const std::function<void(const TraceRecorder& trace, const MetricsRegistry& metrics)>& emit);

}  // namespace nymix

#endif  // SRC_FUZZ_RUNNER_H_
