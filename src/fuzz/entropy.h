// EntropySource: the fuzzer's single randomness root.
//
// Everything the generator and the byte mutators draw — topologies, step
// arguments, payload corruption — flows from one explicitly seeded Prng, so
// a scenario is a pure function of (seed, max_steps) and every failure
// replays bit-for-bit from its .nymfuzz file. The only place in the whole
// tree allowed to read ambient entropy is AmbientSeed() below, and only to
// pick a seed that is then printed and recorded: once the seed is known,
// the run is as deterministic as any other.
//
// nymlint's fuzz-entropy rule enforces this contract mechanically: any
// std::random_device / rand() / time-seeded engine outside this file fails
// the lint.
#ifndef SRC_FUZZ_ENTROPY_H_
#define SRC_FUZZ_ENTROPY_H_

#include <string_view>

#include "src/util/bytes.h"
#include "src/util/prng.h"

namespace nymix {

class EntropySource {
 public:
  explicit EntropySource(uint64_t seed)
      : seed_(seed), prng_(Mix64(seed ^ Fnv1a64("nymfuzz.entropy"))) {}

  uint64_t seed() const { return seed_; }
  Prng& prng() { return prng_; }

  // Independent child stream; used so one family's draws cannot perturb
  // another's (adding a net step kind must not reshuffle host scenarios).
  EntropySource Fork(std::string_view label) {
    return EntropySource(Mix64(seed_ ^ Fnv1a64(label)));
  }

  // --- Generator primitives -------------------------------------------
  bool Chance(double probability) { return prng_.NextDouble() < probability; }
  int64_t IntIn(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(prng_.NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }
  size_t Pick(size_t count) { return static_cast<size_t>(prng_.NextBelow(count)); }
  Bytes RandomBytes(size_t count) { return prng_.NextBytes(count); }

  // Structured corruption of a valid byte string: bit flips, truncation,
  // random splices and byte overwrites, biased to stay near the valid
  // boundary (that is where decoder bugs live). Never grows the buffer
  // beyond 2x its input size.
  void MutateBytes(Bytes& data);

 private:
  uint64_t seed_;
  Prng prng_;
};

// Draws a fresh seed from the environment for `nymfuzz --seed=random`. The
// sole sanctioned ambient-entropy read in the tree; callers must print the
// chosen seed so the run can be replayed.
uint64_t AmbientSeed();

}  // namespace nymix

#endif  // SRC_FUZZ_ENTROPY_H_
