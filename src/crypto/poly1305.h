// Poly1305 one-time authenticator (RFC 8439 §2.5).
#ifndef SRC_CRYPTO_POLY1305_H_
#define SRC_CRYPTO_POLY1305_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace nymix {

inline constexpr size_t kPoly1305KeySize = 32;
inline constexpr size_t kPoly1305TagSize = 16;

using Poly1305Key = std::array<uint8_t, kPoly1305KeySize>;
using Poly1305Tag = std::array<uint8_t, kPoly1305TagSize>;

Poly1305Tag Poly1305Mac(const Poly1305Key& key, ByteSpan message);

}  // namespace nymix

#endif  // SRC_CRYPTO_POLY1305_H_
