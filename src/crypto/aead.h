// ChaCha20-Poly1305 AEAD (RFC 8439 §2.8). This is the cipher protecting
// quasi-persistent nym archives at rest in cloud or local storage (§3.5).
#ifndef SRC_CRYPTO_AEAD_H_
#define SRC_CRYPTO_AEAD_H_

#include "src/crypto/chacha20.h"
#include "src/crypto/poly1305.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

// ciphertext || 16-byte tag.
Bytes AeadSeal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteSpan plaintext, ByteSpan aad);

// Fails with UNAUTHENTICATED if the tag does not verify (tampering, wrong
// key/password, truncation).
Result<Bytes> AeadOpen(const ChaChaKey& key, const ChaChaNonce& nonce, ByteSpan sealed,
                       ByteSpan aad);

}  // namespace nymix

#endif  // SRC_CRYPTO_AEAD_H_
