#include "src/crypto/chacha20.h"

#include <cstring>

namespace nymix {

namespace {

uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl(d, 16);
  c += d;
  b ^= c;
  b = Rotl(b, 12);
  a += b;
  d ^= a;
  d = Rotl(d, 8);
  c += d;
  b ^= c;
  b = Rotl(b, 7);
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<uint8_t, 64> ChaCha20Block(const ChaChaKey& key, const ChaChaNonce& nonce,
                                      uint32_t counter) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = LoadLe32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = LoadLe32(nonce.data() + 4 * i);
  }

  uint32_t working[16];
  std::memcpy(working, state, sizeof(state));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(working[0], working[4], working[8], working[12]);
    QuarterRound(working[1], working[5], working[9], working[13]);
    QuarterRound(working[2], working[6], working[10], working[14]);
    QuarterRound(working[3], working[7], working[11], working[15]);
    QuarterRound(working[0], working[5], working[10], working[15]);
    QuarterRound(working[1], working[6], working[11], working[12]);
    QuarterRound(working[2], working[7], working[8], working[13]);
    QuarterRound(working[3], working[4], working[9], working[14]);
  }

  std::array<uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    uint32_t word = working[i] + state[i];
    out[4 * i] = static_cast<uint8_t>(word);
    out[4 * i + 1] = static_cast<uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<uint8_t>(word >> 24);
  }
  return out;
}

void ChaCha20XorInPlace(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t initial_counter,
                        Bytes& data) {
  uint32_t counter = initial_counter;
  size_t offset = 0;
  while (offset < data.size()) {
    std::array<uint8_t, 64> keystream = ChaCha20Block(key, nonce, counter++);
    size_t take = std::min<size_t>(64, data.size() - offset);
    for (size_t i = 0; i < take; ++i) {
      data[offset + i] ^= keystream[i];
    }
    offset += take;
  }
}

Bytes ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t initial_counter,
                  ByteSpan data) {
  Bytes out(data.begin(), data.end());
  ChaCha20XorInPlace(key, nonce, initial_counter, out);
  return out;
}

}  // namespace nymix
