// SHA-256 (FIPS 180-4). Used for key derivation, archive integrity, Merkle
// base-image verification, and deterministic guard seeding.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace nymix {

inline constexpr size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void Update(ByteSpan data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(ByteSpan data);
  static Sha256Digest Hash(std::string_view text);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

// Digest helpers used throughout the tree.
Bytes DigestToBytes(const Sha256Digest& digest);
uint64_t DigestPrefix64(const Sha256Digest& digest);

}  // namespace nymix

#endif  // SRC_CRYPTO_SHA256_H_
