// ChaCha20 stream cipher (RFC 8439). 256-bit key, 96-bit nonce, 32-bit
// block counter. XOR-based, so Encrypt and Decrypt are the same operation.
#ifndef SRC_CRYPTO_CHACHA20_H_
#define SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace nymix {

inline constexpr size_t kChaCha20KeySize = 32;
inline constexpr size_t kChaCha20NonceSize = 12;

using ChaChaKey = std::array<uint8_t, kChaCha20KeySize>;
using ChaChaNonce = std::array<uint8_t, kChaCha20NonceSize>;

// Produces the 64-byte keystream block for the given counter.
std::array<uint8_t, 64> ChaCha20Block(const ChaChaKey& key, const ChaChaNonce& nonce,
                                      uint32_t counter);

// XORs the keystream (starting at `initial_counter`) over `data` in place.
void ChaCha20XorInPlace(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t initial_counter,
                        Bytes& data);

// Convenience copy variant.
Bytes ChaCha20Xor(const ChaChaKey& key, const ChaChaNonce& nonce, uint32_t initial_counter,
                  ByteSpan data);

}  // namespace nymix

#endif  // SRC_CRYPTO_CHACHA20_H_
