#include "src/crypto/merkle.h"

namespace nymix {

Sha256Digest MerkleTree::HashLeaf(const Sha256Digest& block_digest) {
  Sha256 hasher;
  uint8_t prefix = 0x00;
  hasher.Update(ByteSpan(&prefix, 1));
  hasher.Update(ByteSpan(block_digest.data(), block_digest.size()));
  return hasher.Finish();
}

Sha256Digest MerkleTree::HashInterior(const Sha256Digest& left, const Sha256Digest& right) {
  Sha256 hasher;
  uint8_t prefix = 0x01;
  hasher.Update(ByteSpan(&prefix, 1));
  hasher.Update(ByteSpan(left.data(), left.size()));
  hasher.Update(ByteSpan(right.data(), right.size()));
  return hasher.Finish();
}

MerkleTree MerkleTree::Build(const std::vector<Sha256Digest>& block_digests) {
  MerkleTree tree;
  tree.leaf_count_ = block_digests.size();
  if (block_digests.empty()) {
    tree.root_ = Sha256::Hash(ByteSpan());
    return tree;
  }

  std::vector<Sha256Digest> level;
  level.reserve(block_digests.size());
  for (const auto& digest : block_digests) {
    level.push_back(HashLeaf(digest));
  }
  tree.levels_.push_back(level);

  while (tree.levels_.back().size() > 1) {
    const auto& below = tree.levels_.back();
    std::vector<Sha256Digest> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      const Sha256Digest& left = below[i];
      const Sha256Digest& right = (i + 1 < below.size()) ? below[i + 1] : below[i];
      above.push_back(HashInterior(left, right));
    }
    tree.levels_.push_back(std::move(above));
  }
  tree.root_ = tree.levels_.back()[0];
  return tree;
}

MerkleTree MerkleTree::BuildFromBlocks(const std::vector<Bytes>& blocks) {
  std::vector<Sha256Digest> digests;
  digests.reserve(blocks.size());
  for (const auto& block : blocks) {
    digests.push_back(Sha256::Hash(block));
  }
  return Build(digests);
}

Result<MerkleTree> MerkleTree::FromLevels(std::vector<std::vector<Sha256Digest>> levels) {
  MerkleTree tree;
  if (levels.empty()) {
    // Build() over zero blocks stores no levels and a sentinel root.
    tree.root_ = Sha256::Hash(ByteSpan());
    return tree;
  }
  for (size_t i = 0; i + 1 < levels.size(); ++i) {
    if (levels[i + 1].size() != (levels[i].size() + 1) / 2) {
      return InvalidArgumentError("merkle: level " + std::to_string(i + 1) +
                                  " size does not halve its parent");
    }
  }
  if (levels.back().size() != 1) {
    return InvalidArgumentError("merkle: top level is not a single root");
  }
  // Spot check: recompute the leftmost path bottom-up. Catches levels that
  // are internally inconsistent without paying for a full rebuild.
  for (size_t i = 0; i + 1 < levels.size(); ++i) {
    const Sha256Digest& left = levels[i][0];
    const Sha256Digest& right = levels[i].size() > 1 ? levels[i][1] : levels[i][0];
    if (HashInterior(left, right) != levels[i + 1][0]) {
      return InvalidArgumentError("merkle: leftmost path mismatch at level " +
                                  std::to_string(i + 1));
    }
  }
  tree.leaf_count_ = levels[0].size();
  tree.root_ = levels.back()[0];
  tree.levels_ = std::move(levels);
  return tree;
}

Result<MerkleProof> MerkleTree::ProveLeaf(uint64_t leaf_index) const {
  if (leaf_index >= leaf_count_) {
    return InvalidArgumentError("leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = leaf_index;
  proof.leaf_count = leaf_count_;
  uint64_t index = leaf_index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    uint64_t sibling = (index % 2 == 0) ? index + 1 : index - 1;
    if (sibling >= nodes.size()) {
      sibling = index;  // odd node pairs with itself
    }
    proof.siblings.push_back(nodes[sibling]);
    index /= 2;
  }
  return proof;
}

bool MerkleTree::VerifyProof(const Sha256Digest& root, const Sha256Digest& block_digest,
                             const MerkleProof& proof) {
  if (proof.leaf_index >= proof.leaf_count) {
    return false;
  }
  Sha256Digest node = HashLeaf(block_digest);
  uint64_t index = proof.leaf_index;
  uint64_t level_count = proof.leaf_count;
  for (const Sha256Digest& sibling : proof.siblings) {
    if (index % 2 == 0) {
      node = HashInterior(node, sibling);
    } else {
      node = HashInterior(sibling, node);
    }
    index /= 2;
    level_count = (level_count + 1) / 2;
  }
  if (level_count != 1) {
    return false;
  }
  return node == root;
}

}  // namespace nymix
