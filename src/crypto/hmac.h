// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869) and PBKDF2 (RFC 8018) built on
// SHA-256. PBKDF2 turns nym passwords into archive keys; HKDF derives
// subkeys (encryption key, guard seed) from a master secret.
#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"

namespace nymix {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan message);

// HKDF-Extract then HKDF-Expand; output length up to 255*32 bytes.
Bytes HkdfSha256(ByteSpan input_key, ByteSpan salt, ByteSpan info, size_t length);

// PBKDF2-HMAC-SHA256. `iterations` trades brute-force cost for CPU time.
Bytes Pbkdf2Sha256(ByteSpan password, ByteSpan salt, uint32_t iterations, size_t length);

}  // namespace nymix

#endif  // SRC_CRYPTO_HMAC_H_
