#include "src/crypto/aead.h"

#include <cstring>

namespace nymix {

namespace {

Poly1305Tag ComputeTag(const ChaChaKey& key, const ChaChaNonce& nonce, ByteSpan ciphertext,
                       ByteSpan aad) {
  // One-time Poly1305 key = first 32 bytes of the counter-0 keystream block.
  std::array<uint8_t, 64> block0 = ChaCha20Block(key, nonce, 0);
  Poly1305Key otk;
  std::memcpy(otk.data(), block0.data(), otk.size());

  Bytes mac_data;
  mac_data.reserve(aad.size() + ciphertext.size() + 32);
  mac_data.insert(mac_data.end(), aad.begin(), aad.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  mac_data.insert(mac_data.end(), ciphertext.begin(), ciphertext.end());
  mac_data.resize((mac_data.size() + 15) / 16 * 16, 0);
  AppendU64(mac_data, aad.size());
  AppendU64(mac_data, ciphertext.size());
  return Poly1305Mac(otk, mac_data);
}

}  // namespace

Bytes AeadSeal(const ChaChaKey& key, const ChaChaNonce& nonce, ByteSpan plaintext, ByteSpan aad) {
  Bytes out = ChaCha20Xor(key, nonce, 1, plaintext);
  Poly1305Tag tag = ComputeTag(key, nonce, out, aad);
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Result<Bytes> AeadOpen(const ChaChaKey& key, const ChaChaNonce& nonce, ByteSpan sealed,
                       ByteSpan aad) {
  if (sealed.size() < kPoly1305TagSize) {
    return UnauthenticatedError("sealed box shorter than a tag");
  }
  ByteSpan ciphertext = sealed.subspan(0, sealed.size() - kPoly1305TagSize);
  ByteSpan tag_span = sealed.subspan(sealed.size() - kPoly1305TagSize);
  Poly1305Tag expected = ComputeTag(key, nonce, ciphertext, aad);
  if (!ConstantTimeEquals(ByteSpan(expected.data(), expected.size()), tag_span)) {
    return UnauthenticatedError("AEAD tag mismatch");
  }
  return ChaCha20Xor(key, nonce, 1, ciphertext);
}

}  // namespace nymix
