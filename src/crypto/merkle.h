// Merkle hash tree over fixed-size blocks (§3.4 future work, implemented):
// Nymix verifies every block loaded from the read-only host OS partition
// against a well-known root and shuts the nym down on any mismatch, so a
// tampered USB image cannot silently stain all future AnonVMs.
#ifndef SRC_CRYPTO_MERKLE_H_
#define SRC_CRYPTO_MERKLE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

struct MerkleProof {
  uint64_t leaf_index = 0;
  uint64_t leaf_count = 0;
  // Sibling digests from leaf level up to (not including) the root.
  std::vector<Sha256Digest> siblings;
};

class MerkleTree {
 public:
  // Builds a tree over per-block digests. Leaves are domain-separated
  // (0x00-prefixed), interior nodes 0x01-prefixed, to block second-preimage
  // splicing. Odd nodes are paired with themselves.
  static MerkleTree Build(const std::vector<Sha256Digest>& block_digests);

  // Convenience: hash each block then build.
  static MerkleTree BuildFromBlocks(const std::vector<Bytes>& blocks);

  const Sha256Digest& root() const { return root_; }
  uint64_t leaf_count() const { return leaf_count_; }

  Result<MerkleProof> ProveLeaf(uint64_t leaf_index) const;

  // Verifies that `block_digest` is leaf `proof.leaf_index` of a tree with
  // the given root.
  static bool VerifyProof(const Sha256Digest& root, const Sha256Digest& block_digest,
                          const MerkleProof& proof);

  // Domain-separated hashing used for both build and verify paths.
  static Sha256Digest HashLeaf(const Sha256Digest& block_digest);
  static Sha256Digest HashInterior(const Sha256Digest& left, const Sha256Digest& right);

  // Full node table, leaf level first — what a checkpoint serializes so
  // restore can skip the O(n) rebuild.
  const std::vector<std::vector<Sha256Digest>>& levels() const { return levels_; }

  // Reassembles a tree from serialized levels. Cheap structural checks
  // only (level sizes halve up to a single root; one leaf-to-root path is
  // recomputed as a spot check) — integrity of checkpointed bytes is the
  // record log's CRC's job, this guards against logic errors.
  static Result<MerkleTree> FromLevels(std::vector<std::vector<Sha256Digest>> levels);

 private:
  uint64_t leaf_count_ = 0;
  // levels_[0] = leaf hashes, levels_.back() = {root}.
  std::vector<std::vector<Sha256Digest>> levels_;
  Sha256Digest root_ = {};
};

}  // namespace nymix

#endif  // SRC_CRYPTO_MERKLE_H_
