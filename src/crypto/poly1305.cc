#include "src/crypto/poly1305.h"

#include <cstring>

namespace nymix {

namespace {

// 26-bit limb implementation following the public-domain poly1305-donna-32.
uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

Poly1305Tag Poly1305Mac(const Poly1305Key& key, ByteSpan message) {
  // r is clamped (RFC 8439 §2.5.1) and split into five 26-bit limbs.
  uint32_t r0 = LoadLe32(key.data() + 0) & 0x3ffffff;
  uint32_t r1 = (LoadLe32(key.data() + 3) >> 2) & 0x3ffff03;
  uint32_t r2 = (LoadLe32(key.data() + 6) >> 4) & 0x3ffc0ff;
  uint32_t r3 = (LoadLe32(key.data() + 9) >> 6) & 0x3f03fff;
  uint32_t r4 = (LoadLe32(key.data() + 12) >> 8) & 0x00fffff;

  uint32_t s1 = r1 * 5;
  uint32_t s2 = r2 * 5;
  uint32_t s3 = r3 * 5;
  uint32_t s4 = r4 * 5;

  uint32_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  size_t offset = 0;
  while (offset < message.size()) {
    uint8_t block[16];
    size_t take = std::min<size_t>(16, message.size() - offset);
    uint32_t hibit;
    if (take == 16) {
      std::memcpy(block, message.data() + offset, 16);
      hibit = 1u << 24;
    } else {
      std::memset(block, 0, sizeof(block));
      std::memcpy(block, message.data() + offset, take);
      block[take] = 1;
      hibit = 0;
    }
    offset += take;

    h0 += LoadLe32(block + 0) & 0x3ffffff;
    h1 += (LoadLe32(block + 3) >> 2) & 0x3ffffff;
    h2 += (LoadLe32(block + 6) >> 4) & 0x3ffffff;
    h3 += (LoadLe32(block + 9) >> 6) & 0x3ffffff;
    h4 += (LoadLe32(block + 12) >> 8) | hibit;

    uint64_t d0 = static_cast<uint64_t>(h0) * r0 + static_cast<uint64_t>(h1) * s4 +
                  static_cast<uint64_t>(h2) * s3 + static_cast<uint64_t>(h3) * s2 +
                  static_cast<uint64_t>(h4) * s1;
    uint64_t d1 = static_cast<uint64_t>(h0) * r1 + static_cast<uint64_t>(h1) * r0 +
                  static_cast<uint64_t>(h2) * s4 + static_cast<uint64_t>(h3) * s3 +
                  static_cast<uint64_t>(h4) * s2;
    uint64_t d2 = static_cast<uint64_t>(h0) * r2 + static_cast<uint64_t>(h1) * r1 +
                  static_cast<uint64_t>(h2) * r0 + static_cast<uint64_t>(h3) * s4 +
                  static_cast<uint64_t>(h4) * s3;
    uint64_t d3 = static_cast<uint64_t>(h0) * r3 + static_cast<uint64_t>(h1) * r2 +
                  static_cast<uint64_t>(h2) * r1 + static_cast<uint64_t>(h3) * r0 +
                  static_cast<uint64_t>(h4) * s4;
    uint64_t d4 = static_cast<uint64_t>(h0) * r4 + static_cast<uint64_t>(h1) * r3 +
                  static_cast<uint64_t>(h2) * r2 + static_cast<uint64_t>(h3) * r1 +
                  static_cast<uint64_t>(h4) * r0;

    uint64_t carry = d0 >> 26;
    h0 = static_cast<uint32_t>(d0) & 0x3ffffff;
    d1 += carry;
    carry = d1 >> 26;
    h1 = static_cast<uint32_t>(d1) & 0x3ffffff;
    d2 += carry;
    carry = d2 >> 26;
    h2 = static_cast<uint32_t>(d2) & 0x3ffffff;
    d3 += carry;
    carry = d3 >> 26;
    h3 = static_cast<uint32_t>(d3) & 0x3ffffff;
    d4 += carry;
    carry = d4 >> 26;
    h4 = static_cast<uint32_t>(d4) & 0x3ffffff;
    h0 += static_cast<uint32_t>(carry) * 5;
    carry = h0 >> 26;
    h0 &= 0x3ffffff;
    h1 += static_cast<uint32_t>(carry);
  }

  // Full carry propagation.
  uint32_t carry = h1 >> 26;
  h1 &= 0x3ffffff;
  h2 += carry;
  carry = h2 >> 26;
  h2 &= 0x3ffffff;
  h3 += carry;
  carry = h3 >> 26;
  h3 &= 0x3ffffff;
  h4 += carry;
  carry = h4 >> 26;
  h4 &= 0x3ffffff;
  h0 += carry * 5;
  carry = h0 >> 26;
  h0 &= 0x3ffffff;
  h1 += carry;

  // Compute h + -p and select h if h < p.
  uint32_t g0 = h0 + 5;
  carry = g0 >> 26;
  g0 &= 0x3ffffff;
  uint32_t g1 = h1 + carry;
  carry = g1 >> 26;
  g1 &= 0x3ffffff;
  uint32_t g2 = h2 + carry;
  carry = g2 >> 26;
  g2 &= 0x3ffffff;
  uint32_t g3 = h3 + carry;
  carry = g3 >> 26;
  g3 &= 0x3ffffff;
  uint32_t g4 = h4 + carry - (1u << 26);

  uint32_t mask = (g4 >> 31) - 1;  // all-ones if h >= p
  g0 &= mask;
  g1 &= mask;
  g2 &= mask;
  g3 &= mask;
  g4 &= mask;
  mask = ~mask;
  h0 = (h0 & mask) | g0;
  h1 = (h1 & mask) | g1;
  h2 = (h2 & mask) | g2;
  h3 = (h3 & mask) | g3;
  h4 = (h4 & mask) | g4;

  // h %= 2^128, repacked into 32-bit words.
  h0 = (h0 | (h1 << 26)) & 0xffffffff;
  h1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffff;
  h2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffff;
  h3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffff;

  // tag = (h + s) mod 2^128 where s is the second key half.
  uint64_t f = static_cast<uint64_t>(h0) + LoadLe32(key.data() + 16);
  h0 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h1) + LoadLe32(key.data() + 20) + (f >> 32);
  h1 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h2) + LoadLe32(key.data() + 24) + (f >> 32);
  h2 = static_cast<uint32_t>(f);
  f = static_cast<uint64_t>(h3) + LoadLe32(key.data() + 28) + (f >> 32);
  h3 = static_cast<uint32_t>(f);

  Poly1305Tag tag;
  uint32_t words[4] = {h0, h1, h2, h3};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 4; ++i) {
      tag[4 * w + i] = static_cast<uint8_t>(words[w] >> (8 * i));
    }
  }
  return tag;
}

}  // namespace nymix
