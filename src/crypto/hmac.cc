#include "src/crypto/hmac.h"

#include <cstring>

#include "src/util/check.h"

namespace nymix {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan message) {
  uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    Sha256Digest digest = Sha256::Hash(key);
    std::memcpy(block_key, digest.data(), digest.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad[64];
  uint8_t opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteSpan(ipad, 64));
  inner.Update(message);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteSpan(opad, 64));
  outer.Update(ByteSpan(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Bytes HkdfSha256(ByteSpan input_key, ByteSpan salt, ByteSpan info, size_t length) {
  NYMIX_CHECK(length <= 255 * kSha256DigestSize);
  Sha256Digest prk = HmacSha256(salt, input_key);

  Bytes output;
  output.reserve(length);
  Bytes previous;
  uint8_t counter = 1;
  while (output.size() < length) {
    Bytes block_input = previous;
    block_input.insert(block_input.end(), info.begin(), info.end());
    block_input.push_back(counter++);
    Sha256Digest block = HmacSha256(ByteSpan(prk.data(), prk.size()), block_input);
    previous.assign(block.begin(), block.end());
    size_t take = std::min(previous.size(), length - output.size());
    output.insert(output.end(), previous.begin(), previous.begin() + take);
  }
  return output;
}

Bytes Pbkdf2Sha256(ByteSpan password, ByteSpan salt, uint32_t iterations, size_t length) {
  NYMIX_CHECK(iterations > 0);
  Bytes output;
  output.reserve(length);
  uint32_t block_index = 1;
  while (output.size() < length) {
    Bytes salted(salt.begin(), salt.end());
    for (int i = 3; i >= 0; --i) {
      salted.push_back(static_cast<uint8_t>(block_index >> (8 * i)));
    }
    Sha256Digest u = HmacSha256(password, salted);
    Sha256Digest accum = u;
    for (uint32_t iter = 1; iter < iterations; ++iter) {
      u = HmacSha256(password, ByteSpan(u.data(), u.size()));
      for (size_t i = 0; i < accum.size(); ++i) {
        accum[i] ^= u[i];
      }
    }
    size_t take = std::min(accum.size(), length - output.size());
    output.insert(output.end(), accum.begin(), accum.begin() + take);
    ++block_index;
  }
  return output;
}

}  // namespace nymix
