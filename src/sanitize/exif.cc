#include "src/sanitize/exif.h"

#include <cmath>

#include "src/util/check.h"

namespace nymix {

namespace {

constexpr uint16_t kTypeAscii = 2;
constexpr uint16_t kTypeLong = 4;
constexpr uint16_t kTypeRational = 5;

struct RawEntry {
  uint16_t tag = 0;
  uint16_t type = 0;
  uint32_t count = 0;
  Bytes value;  // raw little-endian value bytes
};

RawEntry AsciiEntry(uint16_t tag, const std::string& text) {
  RawEntry entry;
  entry.tag = tag;
  entry.type = kTypeAscii;
  entry.count = static_cast<uint32_t>(text.size() + 1);
  entry.value = BytesFromString(text);
  entry.value.push_back(0);
  return entry;
}

RawEntry LongEntry(uint16_t tag, uint32_t value) {
  RawEntry entry;
  entry.tag = tag;
  entry.type = kTypeLong;
  entry.count = 1;
  AppendU32(entry.value, value);
  return entry;
}

void AppendRational(Bytes& out, uint32_t numerator, uint32_t denominator) {
  AppendU32(out, numerator);
  AppendU32(out, denominator);
}

// Degrees/minutes/seconds as three rationals (EXIF GPS convention).
RawEntry DmsEntry(uint16_t tag, double degrees_abs) {
  RawEntry entry;
  entry.tag = tag;
  entry.type = kTypeRational;
  entry.count = 3;
  uint32_t deg = static_cast<uint32_t>(degrees_abs);
  double rem_minutes = (degrees_abs - deg) * 60.0;
  uint32_t minutes = static_cast<uint32_t>(rem_minutes);
  double seconds = (rem_minutes - minutes) * 60.0;
  AppendRational(entry.value, deg, 1);
  AppendRational(entry.value, minutes, 1);
  AppendRational(entry.value, static_cast<uint32_t>(std::lround(seconds * 10000)), 10000);
  return entry;
}

// Serializes one IFD (entry table + out-of-line data) assuming the IFD
// starts at absolute offset `base` within the TIFF stream.
Bytes BuildIfd(const std::vector<RawEntry>& entries, uint32_t base) {
  size_t table_size = 2 + entries.size() * 12 + 4;
  Bytes out;
  AppendU16(out, static_cast<uint16_t>(entries.size()));
  Bytes data_area;
  for (const RawEntry& entry : entries) {
    AppendU16(out, entry.tag);
    AppendU16(out, entry.type);
    AppendU32(out, entry.count);
    if (entry.value.size() <= 4) {
      Bytes inline_value = entry.value;
      inline_value.resize(4, 0);
      out.insert(out.end(), inline_value.begin(), inline_value.end());
    } else {
      uint32_t offset = static_cast<uint32_t>(base + table_size + data_area.size());
      AppendU32(out, offset);
      data_area.insert(data_area.end(), entry.value.begin(), entry.value.end());
    }
  }
  AppendU32(out, 0);  // next IFD
  out.insert(out.end(), data_area.begin(), data_area.end());
  return out;
}

}  // namespace

Bytes EncodeExif(const ExifData& exif) {
  std::vector<RawEntry> ifd0;
  if (exif.camera_make) {
    ifd0.push_back(AsciiEntry(kTagMake, *exif.camera_make));
  }
  if (exif.camera_model) {
    ifd0.push_back(AsciiEntry(kTagModel, *exif.camera_model));
  }
  if (exif.software) {
    ifd0.push_back(AsciiEntry(kTagSoftware, *exif.software));
  }
  if (exif.datetime_original) {
    ifd0.push_back(AsciiEntry(kTagDateTime, *exif.datetime_original));
  }
  if (exif.body_serial_number) {
    ifd0.push_back(AsciiEntry(kTagBodySerial, *exif.body_serial_number));
  }
  if (exif.gps) {
    ifd0.push_back(LongEntry(kTagGpsIfdPointer, 0));  // patched below
  }

  // Header is 8 bytes; IFD0 starts right after it.
  Bytes ifd0_bytes = BuildIfd(ifd0, 8);
  if (exif.gps) {
    uint32_t gps_offset = static_cast<uint32_t>(8 + ifd0_bytes.size());
    for (auto& entry : ifd0) {
      if (entry.tag == kTagGpsIfdPointer) {
        entry.value.clear();
        AppendU32(entry.value, gps_offset);
      }
    }
    ifd0_bytes = BuildIfd(ifd0, 8);

    std::vector<RawEntry> gps_ifd;
    gps_ifd.push_back(AsciiEntry(kGpsTagLatitudeRef, exif.gps->latitude >= 0 ? "N" : "S"));
    gps_ifd.push_back(DmsEntry(kGpsTagLatitude, std::abs(exif.gps->latitude)));
    gps_ifd.push_back(AsciiEntry(kGpsTagLongitudeRef, exif.gps->longitude >= 0 ? "E" : "W"));
    gps_ifd.push_back(DmsEntry(kGpsTagLongitude, std::abs(exif.gps->longitude)));
    Bytes gps_bytes = BuildIfd(gps_ifd, gps_offset);
    ifd0_bytes.insert(ifd0_bytes.end(), gps_bytes.begin(), gps_bytes.end());
  }

  Bytes tiff;
  tiff.push_back('I');
  tiff.push_back('I');
  AppendU16(tiff, 42);
  AppendU32(tiff, 8);
  tiff.insert(tiff.end(), ifd0_bytes.begin(), ifd0_bytes.end());
  return tiff;
}

namespace {

struct ParsedEntry {
  uint16_t tag = 0;
  uint16_t type = 0;
  uint32_t count = 0;
  Bytes value;
};

Result<std::vector<ParsedEntry>> ParseIfd(ByteSpan tiff, uint32_t ifd_offset) {
  size_t offset = ifd_offset;
  NYMIX_ASSIGN_OR_RETURN(uint16_t entry_count, ReadU16(tiff, offset));
  std::vector<ParsedEntry> entries;
  for (uint16_t i = 0; i < entry_count; ++i) {
    ParsedEntry entry;
    NYMIX_ASSIGN_OR_RETURN(entry.tag, ReadU16(tiff, offset));
    NYMIX_ASSIGN_OR_RETURN(entry.type, ReadU16(tiff, offset));
    NYMIX_ASSIGN_OR_RETURN(entry.count, ReadU32(tiff, offset));
    size_t value_size = entry.count;
    if (entry.type == kTypeLong) {
      value_size = entry.count * 4;
    } else if (entry.type == kTypeRational) {
      value_size = entry.count * 8;
    }
    if (value_size <= 4) {
      if (offset + 4 > tiff.size()) {
        return DataLossError("truncated inline IFD value");
      }
      entry.value.assign(tiff.begin() + offset, tiff.begin() + offset + value_size);
      offset += 4;
    } else {
      size_t here = offset;
      NYMIX_ASSIGN_OR_RETURN(uint32_t value_offset, ReadU32(tiff, here));
      offset = here;
      if (static_cast<size_t>(value_offset) + value_size > tiff.size()) {
        return DataLossError("IFD value offset out of range");
      }
      entry.value.assign(tiff.begin() + value_offset,
                         tiff.begin() + value_offset + value_size);
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string AsciiValue(const ParsedEntry& entry) {
  std::string text(entry.value.begin(), entry.value.end());
  while (!text.empty() && text.back() == '\0') {
    text.pop_back();
  }
  return text;
}

Result<double> DmsValue(const ParsedEntry& entry) {
  if (entry.type != kTypeRational || entry.count != 3 || entry.value.size() != 24) {
    return DataLossError("bad GPS coordinate entry");
  }
  double parts[3];
  size_t offset = 0;
  for (double& part : parts) {
    NYMIX_ASSIGN_OR_RETURN(uint32_t numerator, ReadU32(entry.value, offset));
    NYMIX_ASSIGN_OR_RETURN(uint32_t denominator, ReadU32(entry.value, offset));
    if (denominator == 0) {
      return DataLossError("zero denominator in GPS rational");
    }
    part = static_cast<double>(numerator) / denominator;
  }
  return parts[0] + parts[1] / 60.0 + parts[2] / 3600.0;
}

}  // namespace

Result<ExifData> DecodeExif(ByteSpan tiff) {
  if (tiff.size() < 8 || tiff[0] != 'I' || tiff[1] != 'I') {
    return DataLossError("not a little-endian TIFF stream");
  }
  size_t offset = 2;
  NYMIX_ASSIGN_OR_RETURN(uint16_t magic, ReadU16(tiff, offset));
  if (magic != 42) {
    return DataLossError("bad TIFF magic");
  }
  NYMIX_ASSIGN_OR_RETURN(uint32_t ifd0_offset, ReadU32(tiff, offset));
  NYMIX_ASSIGN_OR_RETURN(auto entries, ParseIfd(tiff, ifd0_offset));

  ExifData exif;
  std::optional<uint32_t> gps_offset;
  for (const ParsedEntry& entry : entries) {
    switch (entry.tag) {
      case kTagMake:
        exif.camera_make = AsciiValue(entry);
        break;
      case kTagModel:
        exif.camera_model = AsciiValue(entry);
        break;
      case kTagSoftware:
        exif.software = AsciiValue(entry);
        break;
      case kTagDateTime:
        exif.datetime_original = AsciiValue(entry);
        break;
      case kTagBodySerial:
        exif.body_serial_number = AsciiValue(entry);
        break;
      case kTagGpsIfdPointer: {
        size_t value_offset = 0;
        NYMIX_ASSIGN_OR_RETURN(uint32_t pointer, ReadU32(entry.value, value_offset));
        gps_offset = pointer;
        break;
      }
      default:
        break;
    }
  }

  if (gps_offset.has_value()) {
    NYMIX_ASSIGN_OR_RETURN(auto gps_entries, ParseIfd(tiff, *gps_offset));
    GpsCoordinate gps;
    double lat_sign = 1.0, lon_sign = 1.0;
    for (const ParsedEntry& entry : gps_entries) {
      switch (entry.tag) {
        case kGpsTagLatitudeRef:
          lat_sign = AsciiValue(entry) == "S" ? -1.0 : 1.0;
          break;
        case kGpsTagLongitudeRef:
          lon_sign = AsciiValue(entry) == "W" ? -1.0 : 1.0;
          break;
        case kGpsTagLatitude: {
          NYMIX_ASSIGN_OR_RETURN(double value, DmsValue(entry));
          gps.latitude = value;
          break;
        }
        case kGpsTagLongitude: {
          NYMIX_ASSIGN_OR_RETURN(double value, DmsValue(entry));
          gps.longitude = value;
          break;
        }
        default:
          break;
      }
    }
    gps.latitude *= lat_sign;
    gps.longitude *= lon_sign;
    exif.gps = gps;
  }
  return exif;
}

}  // namespace nymix
