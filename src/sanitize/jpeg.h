// JPEG-lite container: authentic JPEG marker framing (SOI, APP1/Exif, COM,
// SOS with 0xFF byte stuffing, EOI) around an uncompressed pixel payload.
// Entropy coding is out of scope — what the SaniVM scrubs and the tests
// exercise is the metadata structure, which is byte-for-byte EXIF.
#ifndef SRC_SANITIZE_JPEG_H_
#define SRC_SANITIZE_JPEG_H_

#include <optional>

#include "src/sanitize/exif.h"
#include "src/sanitize/image.h"

namespace nymix {

struct JpegFile {
  Image image;
  std::optional<ExifData> exif;
  std::optional<std::string> comment;  // COM segment
};

// Serializes to bytes with real marker framing.
Bytes EncodeJpeg(const JpegFile& jpeg);

// Parses EncodeJpeg output (and tolerates unknown APPn segments).
Result<JpegFile> DecodeJpeg(ByteSpan data);

// True if the byte stream starts with SOI (FF D8).
bool LooksLikeJpeg(ByteSpan data);

}  // namespace nymix

#endif  // SRC_SANITIZE_JPEG_H_
