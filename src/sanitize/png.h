// PNG-lite container: real PNG framing — 8-byte signature, length/type/
// data/CRC32 chunks, IHDR, textual metadata (tEXt), EXIF (eXIf chunk,
// PNG 1.6 extension), raw IDAT payload, IEND. CRCs are genuine CRC32 and
// are verified on parse, so corruption and truncation are detected.
#ifndef SRC_SANITIZE_PNG_H_
#define SRC_SANITIZE_PNG_H_

#include <map>
#include <optional>

#include "src/sanitize/exif.h"
#include "src/sanitize/image.h"

namespace nymix {

// CRC-32 (ISO 3309 / PNG polynomial); exposed for reuse and direct tests.
uint32_t Crc32(ByteSpan data);

struct PngFile {
  Image image;
  // tEXt entries: "Author", "Comment", "Software", location strings...
  std::map<std::string, std::string> text_entries;
  std::optional<ExifData> exif;  // eXIf chunk
};

Bytes EncodePng(const PngFile& png);
Result<PngFile> DecodePng(ByteSpan data);
bool LooksLikePng(ByteSpan data);

}  // namespace nymix

#endif  // SRC_SANITIZE_PNG_H_
