// Document models for the SaniVM's "reconstruct the document completely as
// a series of bitmaps" mode (§3.6/§4.3).
//
// PdfLite: a text-based, genuinely parseable subset of PDF — header,
// numbered objects, an /Info dictionary (Author, Creator, Producer,
// CreationDate, Title), page objects with visible-text content streams,
// and a trailer. Hidden payloads can ride in unreferenced objects, which
// metadata scrubbing alone does NOT remove — the rasterize mode does.
//
// DocLite: a binary word-processor container with core properties
// (creator, company, last-modified-by, revision count, total editing
// time) plus visible paragraphs and *hidden* runs (tracked changes,
// deleted text) — Byers' classic Word-leak scenario.
#ifndef SRC_SANITIZE_DOCUMENT_H_
#define SRC_SANITIZE_DOCUMENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/sanitize/image.h"

namespace nymix {

// ------------------------------------------------------------------ PDF

struct PdfInfo {
  std::optional<std::string> title;
  std::optional<std::string> author;
  std::optional<std::string> creator;
  std::optional<std::string> producer;
  std::optional<std::string> creation_date;

  bool Empty() const { return !title && !author && !creator && !producer && !creation_date; }
};

struct PdfFile {
  PdfInfo info;
  std::vector<std::string> pages;          // visible text per page
  std::vector<std::string> hidden_objects; // unreferenced object payloads
};

Bytes EncodePdf(const PdfFile& pdf);
Result<PdfFile> DecodePdf(ByteSpan data);
bool LooksLikePdf(ByteSpan data);

// Renders each page's visible text to a bitmap (deterministic glyph
// hashing, not typography). Only visible text survives — hidden objects
// and Info never reach the raster.
std::vector<Image> RasterizePdf(const PdfFile& pdf);

// ------------------------------------------------------------------ DOC

struct DocProperties {
  std::optional<std::string> creator;
  std::optional<std::string> company;
  std::optional<std::string> last_modified_by;
  uint32_t revision = 0;
  uint32_t editing_minutes = 0;

  bool Empty() const {
    return !creator && !company && !last_modified_by && revision == 0 && editing_minutes == 0;
  }
};

struct DocFile {
  DocProperties properties;
  std::vector<std::string> paragraphs;    // visible body text
  std::vector<std::string> hidden_runs;   // tracked changes / deleted text
};

Bytes EncodeDoc(const DocFile& doc);
Result<DocFile> DecodeDoc(ByteSpan data);
bool LooksLikeDoc(ByteSpan data);

std::vector<Image> RasterizeDoc(const DocFile& doc);

// Shared text-to-bitmap renderer (one image per text block).
Image RasterizeTextBlock(const std::string& text);

}  // namespace nymix

#endif  // SRC_SANITIZE_DOCUMENT_H_
