#include "src/sanitize/jpeg.h"

#include <cstring>

namespace nymix {

namespace {

constexpr uint8_t kMarkerPrefix = 0xFF;
constexpr uint8_t kSoi = 0xD8;
constexpr uint8_t kEoi = 0xD9;
constexpr uint8_t kApp1 = 0xE1;
constexpr uint8_t kCom = 0xFE;
constexpr uint8_t kSos = 0xDA;
constexpr char kExifHeader[6] = {'E', 'x', 'i', 'f', 0, 0};

void AppendSegment(Bytes& out, uint8_t marker, ByteSpan payload) {
  out.push_back(kMarkerPrefix);
  out.push_back(marker);
  uint16_t length = static_cast<uint16_t>(payload.size() + 2);  // includes the length field
  out.push_back(static_cast<uint8_t>(length >> 8));             // JPEG lengths are big-endian
  out.push_back(static_cast<uint8_t>(length));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

bool LooksLikeJpeg(ByteSpan data) {
  return data.size() >= 2 && data[0] == kMarkerPrefix && data[1] == kSoi;
}

Bytes EncodeJpeg(const JpegFile& jpeg) {
  Bytes out;
  out.push_back(kMarkerPrefix);
  out.push_back(kSoi);

  if (jpeg.exif.has_value() && !jpeg.exif->Empty()) {
    Bytes payload(kExifHeader, kExifHeader + sizeof(kExifHeader));
    Bytes tiff = EncodeExif(*jpeg.exif);
    payload.insert(payload.end(), tiff.begin(), tiff.end());
    AppendSegment(out, kApp1, payload);
  }
  if (jpeg.comment.has_value()) {
    AppendSegment(out, kCom, BytesFromString(*jpeg.comment));
  }

  // SOS header carries our dimensions; scan data follows with 0xFF bytes
  // stuffed as FF 00 (real JPEG byte stuffing) until EOI.
  Bytes sos_header;
  AppendU32(sos_header, jpeg.image.width);
  AppendU32(sos_header, jpeg.image.height);
  AppendSegment(out, kSos, sos_header);
  for (uint8_t byte : jpeg.image.rgb) {
    out.push_back(byte);
    if (byte == kMarkerPrefix) {
      out.push_back(0x00);
    }
  }
  out.push_back(kMarkerPrefix);
  out.push_back(kEoi);
  return out;
}

Result<JpegFile> DecodeJpeg(ByteSpan data) {
  if (!LooksLikeJpeg(data)) {
    return DataLossError("missing SOI marker");
  }
  JpegFile jpeg;
  size_t offset = 2;
  while (offset + 4 <= data.size()) {
    if (data[offset] != kMarkerPrefix) {
      return DataLossError("expected marker prefix");
    }
    uint8_t marker = data[offset + 1];
    uint16_t length = static_cast<uint16_t>((data[offset + 2] << 8) | data[offset + 3]);
    if (length < 2 || offset + 2 + length > data.size()) {
      return DataLossError("truncated JPEG segment");
    }
    ByteSpan payload = data.subspan(offset + 4, length - 2);
    offset += 2 + length;

    if (marker == kApp1 && payload.size() > sizeof(kExifHeader) &&
        std::memcmp(payload.data(), kExifHeader, sizeof(kExifHeader)) == 0) {
      NYMIX_ASSIGN_OR_RETURN(ExifData exif, DecodeExif(payload.subspan(sizeof(kExifHeader))));
      jpeg.exif = exif;
    } else if (marker == kCom) {
      jpeg.comment = StringFromBytes(payload);
    } else if (marker == kSos) {
      size_t header_offset = 0;
      NYMIX_ASSIGN_OR_RETURN(jpeg.image.width, ReadU32(payload, header_offset));
      NYMIX_ASSIGN_OR_RETURN(jpeg.image.height, ReadU32(payload, header_offset));
      // Scan data: unstuff FF 00, stop at FF D9.
      jpeg.image.rgb.clear();
      jpeg.image.rgb.reserve(static_cast<size_t>(jpeg.image.width) * jpeg.image.height * 3);
      while (offset < data.size()) {
        uint8_t byte = data[offset];
        if (byte == kMarkerPrefix) {
          if (offset + 1 >= data.size()) {
            return DataLossError("truncated scan data");
          }
          uint8_t next = data[offset + 1];
          if (next == 0x00) {
            jpeg.image.rgb.push_back(kMarkerPrefix);
            offset += 2;
            continue;
          }
          if (next == kEoi) {
            if (jpeg.image.rgb.size() !=
                static_cast<size_t>(jpeg.image.width) * jpeg.image.height * 3) {
              return DataLossError("scan data does not match dimensions");
            }
            return jpeg;
          }
          return DataLossError("unexpected marker in scan data");
        }
        jpeg.image.rgb.push_back(byte);
        ++offset;
      }
      return DataLossError("missing EOI");
    }
    // Unknown segments (APP0 etc.) are skipped.
  }
  return DataLossError("no SOS segment");
}

}  // namespace nymix
