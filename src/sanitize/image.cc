#include "src/sanitize/image.h"

#include <algorithm>
#include <cstring>

namespace nymix {

namespace {

constexpr int kWatermarkRepeats = 32;

int Luminance(const uint8_t* pixel) {
  return (2 * pixel[0] + 3 * pixel[1] + pixel[2]) / 6;
}

bool IsSkinTone(int r, int g, int b) {
  return r > 160 && r > g && g > b && g > 90 && g < 190 && b > 60;
}

uint16_t WatermarkChecksum(uint32_t payload) {
  return static_cast<uint16_t>(Mix64(payload) >> 48);
}

}  // namespace

Image Image::Solid(uint32_t width, uint32_t height, uint8_t r, uint8_t g, uint8_t b) {
  Image image;
  image.width = width;
  image.height = height;
  image.rgb.resize(static_cast<size_t>(width) * height * 3);
  for (size_t i = 0; i < image.rgb.size(); i += 3) {
    image.rgb[i] = r;
    image.rgb[i + 1] = g;
    image.rgb[i + 2] = b;
  }
  return image;
}

bool FaceRegion::Overlaps(const FaceRegion& other) const {
  return x < other.x + other.width && other.x < x + width && y < other.y + other.height &&
         other.y < y + height;
}

Image GeneratePhoto(uint32_t width, uint32_t height, uint64_t seed,
                    const std::vector<FaceRegion>& faces) {
  Image image;
  image.width = width;
  image.height = height;
  image.rgb.resize(static_cast<size_t>(width) * height * 3);
  // Textured background: greens/browns with deterministic per-pixel noise.
  for (uint32_t y = 0; y < height; ++y) {
    for (uint32_t x = 0; x < width; ++x) {
      uint64_t h = Mix64(seed ^ (static_cast<uint64_t>(y) << 32 | x));
      uint8_t* pixel = image.PixelAt(x, y);
      pixel[0] = static_cast<uint8_t>(80 + (h & 31));
      pixel[1] = static_cast<uint8_t>(100 + ((h >> 5) & 31));
      pixel[2] = static_cast<uint8_t>(70 + ((h >> 10) & 31));
    }
  }
  for (const FaceRegion& face : faces) {
    // Skin base with light texture.
    for (uint32_t y = face.y; y < std::min(height, face.y + face.height); ++y) {
      for (uint32_t x = face.x; x < std::min(width, face.x + face.width); ++x) {
        uint64_t h = Mix64(seed ^ 0x1234 ^ (static_cast<uint64_t>(y) << 32 | x));
        uint8_t* pixel = image.PixelAt(x, y);
        pixel[0] = static_cast<uint8_t>(200 + (h & 15));
        pixel[1] = static_cast<uint8_t>(145 + ((h >> 4) & 15));
        pixel[2] = static_cast<uint8_t>(110 + ((h >> 8) & 15));
      }
    }
    // High-contrast features: two eyes and a mouth (dark pixels).
    auto draw_dark = [&](uint32_t fx, uint32_t fy, uint32_t fw, uint32_t fh) {
      for (uint32_t y = fy; y < std::min(height, fy + fh); ++y) {
        for (uint32_t x = fx; x < std::min(width, fx + fw); ++x) {
          uint8_t* pixel = image.PixelAt(x, y);
          pixel[0] = 25;
          pixel[1] = 20;
          pixel[2] = 20;
        }
      }
    };
    uint32_t eye_w = std::max<uint32_t>(2, face.width / 6);
    uint32_t eye_h = std::max<uint32_t>(2, face.height / 8);
    draw_dark(face.x + face.width / 4, face.y + face.height / 3, eye_w, eye_h);
    draw_dark(face.x + 2 * face.width / 3, face.y + face.height / 3, eye_w, eye_h);
    draw_dark(face.x + face.width / 3, face.y + 3 * face.height / 4, face.width / 3,
              std::max<uint32_t>(1, face.height / 12));
  }
  return image;
}

std::vector<FaceRegion> DetectFaces(const Image& image) {
  constexpr uint32_t kBlock = 8;
  uint32_t blocks_x = image.width / kBlock;
  uint32_t blocks_y = image.height / kBlock;
  std::vector<uint8_t> is_face_block(blocks_x * blocks_y, 0);

  for (uint32_t by = 0; by < blocks_y; ++by) {
    for (uint32_t bx = 0; bx < blocks_x; ++bx) {
      int64_t sum_r = 0, sum_g = 0, sum_b = 0;
      int64_t sum_lum = 0;
      for (uint32_t y = by * kBlock; y < (by + 1) * kBlock; ++y) {
        for (uint32_t x = bx * kBlock; x < (bx + 1) * kBlock; ++x) {
          const uint8_t* pixel = image.PixelAt(x, y);
          sum_r += pixel[0];
          sum_g += pixel[1];
          sum_b += pixel[2];
          sum_lum += Luminance(pixel);
        }
      }
      const int n = kBlock * kBlock;
      int mean_r = static_cast<int>(sum_r / n);
      int mean_g = static_cast<int>(sum_g / n);
      int mean_b = static_cast<int>(sum_b / n);
      if (!IsSkinTone(mean_r, mean_g, mean_b)) {
        continue;
      }
      // Feature requirement: near-skin blocks only count when the face's
      // dark features (eyes/mouth) are nearby. Look for strong darkness in
      // the surrounding 3x3 block neighbourhood.
      int mean_lum = static_cast<int>(sum_lum / n);
      int dark_pixels = 0;
      uint32_t x0 = bx > 0 ? (bx - 1) * kBlock : 0;
      uint32_t y0 = by > 0 ? (by - 1) * kBlock : 0;
      uint32_t x1 = std::min(image.width, (bx + 2) * kBlock);
      uint32_t y1 = std::min(image.height, (by + 2) * kBlock);
      for (uint32_t y = y0; y < y1; ++y) {
        for (uint32_t x = x0; x < x1; ++x) {
          if (Luminance(image.PixelAt(x, y)) < mean_lum - 60) {
            ++dark_pixels;
          }
        }
      }
      if (dark_pixels >= 4) {
        is_face_block[by * blocks_x + bx] = 1;
      }
    }
  }

  // Cluster marked blocks into bounding boxes with a simple flood fill.
  std::vector<FaceRegion> faces;
  std::vector<uint8_t> visited(is_face_block.size(), 0);
  for (uint32_t by = 0; by < blocks_y; ++by) {
    for (uint32_t bx = 0; bx < blocks_x; ++bx) {
      uint32_t index = by * blocks_x + bx;
      if (!is_face_block[index] || visited[index]) {
        continue;
      }
      uint32_t min_x = bx, max_x = bx, min_y = by, max_y = by;
      std::vector<uint32_t> stack = {index};
      visited[index] = 1;
      size_t count = 0;
      while (!stack.empty()) {
        uint32_t current = stack.back();
        stack.pop_back();
        ++count;
        uint32_t cx = current % blocks_x;
        uint32_t cy = current / blocks_x;
        min_x = std::min(min_x, cx);
        max_x = std::max(max_x, cx);
        min_y = std::min(min_y, cy);
        max_y = std::max(max_y, cy);
        const int dx[] = {1, -1, 0, 0};
        const int dy[] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          int64_t nx = static_cast<int64_t>(cx) + dx[d];
          int64_t ny = static_cast<int64_t>(cy) + dy[d];
          if (nx < 0 || ny < 0 || nx >= blocks_x || ny >= blocks_y) {
            continue;
          }
          uint32_t neighbor = static_cast<uint32_t>(ny) * blocks_x + static_cast<uint32_t>(nx);
          if (is_face_block[neighbor] && !visited[neighbor]) {
            visited[neighbor] = 1;
            stack.push_back(neighbor);
          }
        }
      }
      if (count >= 2) {
        faces.push_back(FaceRegion{min_x * kBlock, min_y * kBlock,
                                   (max_x - min_x + 1) * kBlock, (max_y - min_y + 1) * kBlock});
      }
    }
  }
  return faces;
}

void BlurRegion(Image& image, const FaceRegion& region, int radius) {
  uint32_t x1 = std::min(image.width, region.x + region.width);
  uint32_t y1 = std::min(image.height, region.y + region.height);
  Image source = image;  // read from the unblurred copy
  for (uint32_t y = region.y; y < y1; ++y) {
    for (uint32_t x = region.x; x < x1; ++x) {
      int64_t sum[3] = {0, 0, 0};
      int count = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          int64_t sx = static_cast<int64_t>(x) + dx;
          int64_t sy = static_cast<int64_t>(y) + dy;
          if (sx < 0 || sy < 0 || sx >= image.width || sy >= image.height) {
            continue;
          }
          const uint8_t* pixel = source.PixelAt(static_cast<uint32_t>(sx),
                                                static_cast<uint32_t>(sy));
          sum[0] += pixel[0];
          sum[1] += pixel[1];
          sum[2] += pixel[2];
          ++count;
        }
      }
      uint8_t* out = image.PixelAt(x, y);
      for (int c = 0; c < 3; ++c) {
        out[c] = static_cast<uint8_t>(sum[c] / count);
      }
    }
  }
}

Image Downscale(const Image& image, uint32_t factor) {
  NYMIX_CHECK(factor > 0);
  Image out;
  out.width = std::max<uint32_t>(1, image.width / factor);
  out.height = std::max<uint32_t>(1, image.height / factor);
  out.rgb.resize(static_cast<size_t>(out.width) * out.height * 3);
  for (uint32_t y = 0; y < out.height; ++y) {
    for (uint32_t x = 0; x < out.width; ++x) {
      int64_t sum[3] = {0, 0, 0};
      int count = 0;
      for (uint32_t sy = y * factor; sy < std::min(image.height, (y + 1) * factor); ++sy) {
        for (uint32_t sx = x * factor; sx < std::min(image.width, (x + 1) * factor); ++sx) {
          const uint8_t* pixel = image.PixelAt(sx, sy);
          sum[0] += pixel[0];
          sum[1] += pixel[1];
          sum[2] += pixel[2];
          ++count;
        }
      }
      uint8_t* out_pixel = out.PixelAt(x, y);
      for (int c = 0; c < 3; ++c) {
        out_pixel[c] = static_cast<uint8_t>(sum[c] / std::max(count, 1));
      }
    }
  }
  return out;
}

void AddNoise(Image& image, int amplitude, Prng& prng) {
  NYMIX_CHECK(amplitude >= 0);
  for (auto& byte : image.rgb) {
    int delta = static_cast<int>(prng.NextBelow(2 * amplitude + 1)) - amplitude;
    byte = static_cast<uint8_t>(std::clamp(static_cast<int>(byte) + delta, 0, 255));
  }
}

Status EmbedWatermark(Image& image, uint32_t payload) {
  uint64_t message = (static_cast<uint64_t>(WatermarkChecksum(payload)) << 32) | payload;
  constexpr int kMessageBits = 48;
  uint64_t pixels = static_cast<uint64_t>(image.width) * image.height;
  if (pixels < static_cast<uint64_t>(kMessageBits) * kWatermarkRepeats) {
    return InvalidArgumentError("image too small for watermark");
  }
  for (int repeat = 0; repeat < kWatermarkRepeats; ++repeat) {
    for (int bit = 0; bit < kMessageBits; ++bit) {
      size_t pixel_index = static_cast<size_t>(repeat) * kMessageBits + bit;
      uint8_t& red = image.rgb[pixel_index * 3];
      red = static_cast<uint8_t>((red & 0xfe) | ((message >> bit) & 1));
    }
  }
  return OkStatus();
}

Result<uint32_t> DetectWatermark(const Image& image) {
  constexpr int kMessageBits = 48;
  uint64_t pixels = static_cast<uint64_t>(image.width) * image.height;
  if (pixels < static_cast<uint64_t>(kMessageBits) * kWatermarkRepeats) {
    return NotFoundError("image too small to carry a watermark");
  }
  uint64_t message = 0;
  for (int bit = 0; bit < kMessageBits; ++bit) {
    int votes = 0;
    for (int repeat = 0; repeat < kWatermarkRepeats; ++repeat) {
      size_t pixel_index = static_cast<size_t>(repeat) * kMessageBits + bit;
      votes += image.rgb[pixel_index * 3] & 1;
    }
    if (votes * 2 > kWatermarkRepeats) {
      message |= uint64_t{1} << bit;
    }
  }
  uint32_t payload = static_cast<uint32_t>(message);
  uint16_t checksum = static_cast<uint16_t>(message >> 32);
  if (checksum != WatermarkChecksum(payload)) {
    return NotFoundError("no watermark present");
  }
  return payload;
}

}  // namespace nymix
