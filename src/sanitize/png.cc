#include "src/sanitize/png.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace nymix {

namespace {

constexpr uint8_t kSignature[8] = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'};

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table;
  for (uint32_t n = 0; n < 256; ++n) {
    uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

void AppendU32Be(Bytes& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value >> 24));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value));
}

uint32_t ReadU32Be(ByteSpan data, size_t offset) {
  return (static_cast<uint32_t>(data[offset]) << 24) |
         (static_cast<uint32_t>(data[offset + 1]) << 16) |
         (static_cast<uint32_t>(data[offset + 2]) << 8) | data[offset + 3];
}

void AppendChunk(Bytes& out, const char type[4], ByteSpan payload) {
  AppendU32Be(out, static_cast<uint32_t>(payload.size()));
  Bytes crc_input(type, type + 4);
  crc_input.insert(crc_input.end(), payload.begin(), payload.end());
  out.insert(out.end(), type, type + 4);
  out.insert(out.end(), payload.begin(), payload.end());
  AppendU32Be(out, Crc32(crc_input));
}

}  // namespace

uint32_t Crc32(ByteSpan data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xffffffffu;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

bool LooksLikePng(ByteSpan data) {
  return data.size() >= 8 && std::memcmp(data.data(), kSignature, 8) == 0;
}

Bytes EncodePng(const PngFile& png) {
  Bytes out(kSignature, kSignature + 8);

  Bytes ihdr;
  AppendU32Be(ihdr, png.image.width);
  AppendU32Be(ihdr, png.image.height);
  ihdr.push_back(8);  // bit depth
  ihdr.push_back(2);  // color type: truecolor
  ihdr.push_back(0);  // compression
  ihdr.push_back(0);  // filter
  ihdr.push_back(0);  // interlace
  AppendChunk(out, "IHDR", ihdr);

  for (const auto& [keyword, text] : png.text_entries) {
    Bytes payload = BytesFromString(keyword);
    payload.push_back(0);
    Bytes value = BytesFromString(text);
    payload.insert(payload.end(), value.begin(), value.end());
    AppendChunk(out, "tEXt", payload);
  }
  if (png.exif.has_value() && !png.exif->Empty()) {
    AppendChunk(out, "eXIf", EncodeExif(*png.exif));
  }
  AppendChunk(out, "IDAT", png.image.rgb);
  AppendChunk(out, "IEND", {});
  return out;
}

Result<PngFile> DecodePng(ByteSpan data) {
  if (!LooksLikePng(data)) {
    return DataLossError("missing PNG signature");
  }
  PngFile png;
  size_t offset = 8;
  bool saw_end = false;
  while (offset + 12 <= data.size() && !saw_end) {
    uint32_t length = ReadU32Be(data, offset);
    if (offset + 12 + length > data.size()) {
      return DataLossError("truncated PNG chunk");
    }
    const char* type = reinterpret_cast<const char*>(data.data() + offset + 4);
    ByteSpan payload = data.subspan(offset + 8, length);
    uint32_t stored_crc = ReadU32Be(data, offset + 8 + length);
    Bytes crc_input(data.begin() + offset + 4, data.begin() + offset + 8 + length);
    if (Crc32(crc_input) != stored_crc) {
      return DataLossError(std::string("PNG chunk CRC mismatch: ") + std::string(type, 4));
    }

    if (std::memcmp(type, "IHDR", 4) == 0) {
      if (length != 13) {
        return DataLossError("bad IHDR length");
      }
      png.image.width = ReadU32Be(payload, 0);
      png.image.height = ReadU32Be(payload, 4);
    } else if (std::memcmp(type, "tEXt", 4) == 0) {
      auto separator = std::find(payload.begin(), payload.end(), 0);
      if (separator == payload.end()) {
        return DataLossError("tEXt missing separator");
      }
      std::string keyword(payload.begin(), separator);
      std::string text(separator + 1, payload.end());
      png.text_entries[keyword] = text;
    } else if (std::memcmp(type, "eXIf", 4) == 0) {
      NYMIX_ASSIGN_OR_RETURN(ExifData exif, DecodeExif(payload));
      png.exif = exif;
    } else if (std::memcmp(type, "IDAT", 4) == 0) {
      png.image.rgb.assign(payload.begin(), payload.end());
    } else if (std::memcmp(type, "IEND", 4) == 0) {
      saw_end = true;
    }
    offset += 12 + length;
  }
  if (!saw_end) {
    return DataLossError("missing IEND");
  }
  if (png.image.rgb.size() != static_cast<size_t>(png.image.width) * png.image.height * 3) {
    return DataLossError("IDAT does not match IHDR dimensions");
  }
  return png;
}

}  // namespace nymix
