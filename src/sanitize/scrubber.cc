#include "src/sanitize/scrubber.h"

#include <algorithm>

namespace nymix {

std::string_view FileKindName(FileKind kind) {
  switch (kind) {
    case FileKind::kJpeg:
      return "JPEG";
    case FileKind::kPng:
      return "PNG";
    case FileKind::kPdf:
      return "PDF";
    case FileKind::kDoc:
      return "DOC";
    case FileKind::kUnknown:
      return "unknown";
  }
  return "?";
}

std::string_view RiskTypeName(RiskType type) {
  switch (type) {
    case RiskType::kGpsLocation:
      return "gps-location";
    case RiskType::kDeviceSerial:
      return "device-serial";
    case RiskType::kCameraModel:
      return "camera-model";
    case RiskType::kAuthorIdentity:
      return "author-identity";
    case RiskType::kTimestamp:
      return "timestamp";
    case RiskType::kSoftwareVersion:
      return "software-version";
    case RiskType::kComment:
      return "comment";
    case RiskType::kFace:
      return "visible-face";
    case RiskType::kHiddenContent:
      return "hidden-content";
    case RiskType::kRevisionHistory:
      return "revision-history";
  }
  return "?";
}

FileKind DetectFileKind(ByteSpan data) {
  if (LooksLikeJpeg(data)) {
    return FileKind::kJpeg;
  }
  if (LooksLikePng(data)) {
    return FileKind::kPng;
  }
  if (LooksLikePdf(data)) {
    return FileKind::kPdf;
  }
  if (LooksLikeDoc(data)) {
    return FileKind::kDoc;
  }
  return FileKind::kUnknown;
}

bool RiskReport::Has(RiskType type) const {
  return std::any_of(risks.begin(), risks.end(),
                     [type](const Risk& risk) { return risk.type == type; });
}

std::string RiskReport::Summary() const {
  std::string out(FileKindName(kind));
  out += ": ";
  if (risks.empty()) {
    out += "clean";
    return out;
  }
  for (size_t i = 0; i < risks.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += RiskTypeName(risks[i].type);
    if (!risks[i].detail.empty()) {
      out += " (" + risks[i].detail + ")";
    }
  }
  return out;
}

namespace {

void AnalyzeExif(const ExifData& exif, RiskReport& report) {
  if (exif.gps.has_value()) {
    report.risks.push_back(
        Risk{RiskType::kGpsLocation, std::to_string(exif.gps->latitude) + "," +
                                         std::to_string(exif.gps->longitude)});
  }
  if (exif.body_serial_number.has_value()) {
    report.risks.push_back(Risk{RiskType::kDeviceSerial, *exif.body_serial_number});
  }
  if (exif.camera_make.has_value() || exif.camera_model.has_value()) {
    report.risks.push_back(
        Risk{RiskType::kCameraModel, exif.camera_model.value_or(exif.camera_make.value_or(""))});
  }
  if (exif.datetime_original.has_value()) {
    report.risks.push_back(Risk{RiskType::kTimestamp, *exif.datetime_original});
  }
  if (exif.software.has_value()) {
    report.risks.push_back(Risk{RiskType::kSoftwareVersion, *exif.software});
  }
}

void AnalyzeFaces(const Image& image, RiskReport& report) {
  auto faces = DetectFaces(image);
  for (const FaceRegion& face : faces) {
    report.risks.push_back(Risk{RiskType::kFace, std::to_string(face.width) + "x" +
                                                     std::to_string(face.height) + "@" +
                                                     std::to_string(face.x) + "," +
                                                     std::to_string(face.y)});
  }
}

}  // namespace

Result<RiskReport> AnalyzeFile(ByteSpan data) {
  RiskReport report;
  report.kind = DetectFileKind(data);
  switch (report.kind) {
    case FileKind::kJpeg: {
      NYMIX_ASSIGN_OR_RETURN(JpegFile jpeg, DecodeJpeg(data));
      if (jpeg.exif.has_value()) {
        AnalyzeExif(*jpeg.exif, report);
      }
      if (jpeg.comment.has_value()) {
        report.risks.push_back(Risk{RiskType::kComment, *jpeg.comment});
      }
      AnalyzeFaces(jpeg.image, report);
      return report;
    }
    case FileKind::kPng: {
      NYMIX_ASSIGN_OR_RETURN(PngFile png, DecodePng(data));
      if (png.exif.has_value()) {
        AnalyzeExif(*png.exif, report);
      }
      for (const auto& [keyword, text] : png.text_entries) {
        if (keyword == "Author" || keyword == "Artist") {
          report.risks.push_back(Risk{RiskType::kAuthorIdentity, text});
        } else if (keyword == "Software") {
          report.risks.push_back(Risk{RiskType::kSoftwareVersion, text});
        } else {
          report.risks.push_back(Risk{RiskType::kComment, keyword + "=" + text});
        }
      }
      AnalyzeFaces(png.image, report);
      return report;
    }
    case FileKind::kPdf: {
      NYMIX_ASSIGN_OR_RETURN(PdfFile pdf, DecodePdf(data));
      if (pdf.info.author.has_value()) {
        report.risks.push_back(Risk{RiskType::kAuthorIdentity, *pdf.info.author});
      }
      if (pdf.info.creator.has_value() || pdf.info.producer.has_value()) {
        report.risks.push_back(Risk{RiskType::kSoftwareVersion,
                                    pdf.info.creator.value_or("") + "/" +
                                        pdf.info.producer.value_or("")});
      }
      if (pdf.info.creation_date.has_value()) {
        report.risks.push_back(Risk{RiskType::kTimestamp, *pdf.info.creation_date});
      }
      for (const std::string& hidden : pdf.hidden_objects) {
        report.risks.push_back(
            Risk{RiskType::kHiddenContent, std::to_string(hidden.size()) + " hidden bytes"});
      }
      return report;
    }
    case FileKind::kDoc: {
      NYMIX_ASSIGN_OR_RETURN(DocFile doc, DecodeDoc(data));
      if (doc.properties.creator.has_value() || doc.properties.last_modified_by.has_value()) {
        report.risks.push_back(Risk{RiskType::kAuthorIdentity,
                                    doc.properties.creator.value_or("") + "/" +
                                        doc.properties.last_modified_by.value_or("")});
      }
      if (doc.properties.company.has_value()) {
        report.risks.push_back(Risk{RiskType::kAuthorIdentity, *doc.properties.company});
      }
      if (doc.properties.revision > 0 || doc.properties.editing_minutes > 0) {
        report.risks.push_back(Risk{RiskType::kRevisionHistory,
                                    "rev " + std::to_string(doc.properties.revision)});
      }
      for (const std::string& hidden : doc.hidden_runs) {
        report.risks.push_back(
            Risk{RiskType::kHiddenContent, std::to_string(hidden.size()) + " hidden chars"});
      }
      return report;
    }
    case FileKind::kUnknown:
      return InvalidArgumentError("unrecognized file type");
  }
  return InternalError("unreachable");
}

Bytes BundleRasterPages(const std::vector<Image>& pages) {
  Bytes out = {'N', 'R', 'B', '1'};
  AppendU32(out, static_cast<uint32_t>(pages.size()));
  for (const Image& page : pages) {
    PngFile png;
    png.image = page;
    AppendLengthPrefixed(out, EncodePng(png));
  }
  return out;
}

Result<std::vector<Image>> UnbundleRasterPages(ByteSpan bundle) {
  if (bundle.size() < 8 || bundle[0] != 'N' || bundle[1] != 'R' || bundle[2] != 'B' ||
      bundle[3] != '1') {
    return DataLossError("not a raster bundle");
  }
  size_t offset = 4;
  NYMIX_ASSIGN_OR_RETURN(uint32_t count, ReadU32(bundle, offset));
  std::vector<Image> pages;
  for (uint32_t i = 0; i < count; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes png_bytes, ReadLengthPrefixed(bundle, offset));
    NYMIX_ASSIGN_OR_RETURN(PngFile png, DecodePng(png_bytes));
    pages.push_back(std::move(png.image));
  }
  return pages;
}

namespace {

FaceRegion ExpandRegion(const FaceRegion& region, uint32_t margin, const Image& image) {
  FaceRegion out;
  out.x = region.x > margin ? region.x - margin : 0;
  out.y = region.y > margin ? region.y - margin : 0;
  out.width = std::min<uint32_t>(image.width - out.x, region.width + 2 * margin);
  out.height = std::min<uint32_t>(image.height - out.y, region.height + 2 * margin);
  return out;
}

void ApplyVisualScrub(Image& image, const ScrubOptions& options, Prng& prng,
                      std::vector<std::string>& actions) {
  // Blur detected faces, then re-run the detector: a bounding box can clip
  // a feature (mouth at the box edge), so iterate until the detector goes
  // silent. Regions are expanded by the blur radius so edge pixels cannot
  // pull unblurred features back in.
  size_t total_blurred = 0;
  for (int pass = 0; pass < 4; ++pass) {
    auto faces = DetectFaces(image);
    if (faces.empty()) {
      break;
    }
    for (const FaceRegion& face : faces) {
      BlurRegion(image, ExpandRegion(face, 2 * options.face_blur_radius, image),
                 options.face_blur_radius);
    }
    total_blurred += faces.size();
  }
  if (total_blurred > 0) {
    actions.push_back("blurred " + std::to_string(total_blurred) + " face region(s)");
  }
  if (options.downscale_factor > 1) {
    image = Downscale(image, options.downscale_factor);
    actions.push_back("downscaled by " + std::to_string(options.downscale_factor));
  }
  if (options.noise_amplitude > 0) {
    AddNoise(image, options.noise_amplitude, prng);
    actions.push_back("added +-" + std::to_string(options.noise_amplitude) + " noise");
  }
}

}  // namespace

Result<ScrubResult> ScrubFile(ByteSpan data, const ScrubOptions& options, Prng& prng) {
  ScrubResult result;
  NYMIX_ASSIGN_OR_RETURN(result.before, AnalyzeFile(data));

  switch (result.before.kind) {
    case FileKind::kJpeg: {
      NYMIX_ASSIGN_OR_RETURN(JpegFile jpeg, DecodeJpeg(data));
      jpeg.exif.reset();
      jpeg.comment.reset();
      result.actions.push_back("stripped EXIF and comments");
      if (options.level != ParanoiaLevel::kMetadataOnly) {
        ApplyVisualScrub(jpeg.image, options, prng, result.actions);
      }
      result.data = EncodeJpeg(jpeg);
      break;
    }
    case FileKind::kPng: {
      NYMIX_ASSIGN_OR_RETURN(PngFile png, DecodePng(data));
      png.exif.reset();
      png.text_entries.clear();
      result.actions.push_back("stripped eXIf and tEXt chunks");
      if (options.level != ParanoiaLevel::kMetadataOnly) {
        ApplyVisualScrub(png.image, options, prng, result.actions);
      }
      result.data = EncodePng(png);
      break;
    }
    case FileKind::kPdf: {
      NYMIX_ASSIGN_OR_RETURN(PdfFile pdf, DecodePdf(data));
      if (options.level == ParanoiaLevel::kRasterize) {
        result.data = BundleRasterPages(RasterizePdf(pdf));
        result.actions.push_back("rasterized PDF to bitmaps");
        result.after.kind = FileKind::kUnknown;
        result.after.risks.clear();
        return result;
      }
      pdf.info = PdfInfo{};
      result.actions.push_back("cleared /Info dictionary");
      // Note: hidden unreferenced objects survive metadata-only scrubbing —
      // this is the documented limitation that motivates rasterize mode.
      result.data = EncodePdf(pdf);
      break;
    }
    case FileKind::kDoc: {
      NYMIX_ASSIGN_OR_RETURN(DocFile doc, DecodeDoc(data));
      if (options.level == ParanoiaLevel::kRasterize) {
        result.data = BundleRasterPages(RasterizeDoc(doc));
        result.actions.push_back("rasterized DOC to bitmaps");
        result.after.kind = FileKind::kUnknown;
        result.after.risks.clear();
        return result;
      }
      doc.properties = DocProperties{};
      doc.hidden_runs.clear();
      result.actions.push_back("cleared core properties and tracked changes");
      result.data = EncodeDoc(doc);
      break;
    }
    case FileKind::kUnknown:
      return InvalidArgumentError("cannot scrub unrecognized file type");
  }

  NYMIX_ASSIGN_OR_RETURN(result.after, AnalyzeFile(result.data));
  return result;
}

}  // namespace nymix
