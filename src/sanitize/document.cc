#include "src/sanitize/document.h"

#include <algorithm>
#include <cstring>

#include "src/util/check.h"
#include "src/util/prng.h"

namespace nymix {

namespace {

// PDF string values keep to a paren-free alphabet to sidestep escaping.
std::string PdfEscape(std::string text) {
  std::replace(text.begin(), text.end(), '(', '[');
  std::replace(text.begin(), text.end(), ')', ']');
  return text;
}

void AppendInfoField(std::string& dict, const char* key,
                     const std::optional<std::string>& value) {
  if (value.has_value()) {
    dict += std::string(" /") + key + " (" + PdfEscape(*value) + ")";
  }
}

// Extracts "(value)" for "/Key (value)" from a dictionary body.
std::optional<std::string> DictString(const std::string& dict, const std::string& key) {
  size_t pos = dict.find("/" + key + " (");
  if (pos == std::string::npos) {
    return std::nullopt;
  }
  size_t start = dict.find('(', pos) + 1;
  size_t end = dict.find(')', start);
  if (end == std::string::npos) {
    return std::nullopt;
  }
  return dict.substr(start, end - start);
}

std::optional<std::string> StreamBody(const std::string& object) {
  size_t start = object.find("stream\n");
  if (start == std::string::npos) {
    return std::nullopt;
  }
  start += 7;
  size_t end = object.find("\nendstream", start);
  if (end == std::string::npos) {
    return std::nullopt;
  }
  return object.substr(start, end - start);
}

}  // namespace

bool LooksLikePdf(ByteSpan data) {
  return data.size() >= 5 && std::memcmp(data.data(), "%PDF-", 5) == 0;
}

Bytes EncodePdf(const PdfFile& pdf) {
  std::string out = "%PDF-1.4\n";
  int next_object = 1;
  out += std::to_string(next_object++) + " 0 obj\n<< /Type /Catalog /Pages 2 0 R >>\nendobj\n";
  out += std::to_string(next_object++) + " 0 obj\n<< /Type /Pages /Count " +
         std::to_string(pdf.pages.size()) + " >>\nendobj\n";

  int info_object = 0;
  if (!pdf.info.Empty()) {
    info_object = next_object++;
    std::string dict = "<<";
    AppendInfoField(dict, "Title", pdf.info.title);
    AppendInfoField(dict, "Author", pdf.info.author);
    AppendInfoField(dict, "Creator", pdf.info.creator);
    AppendInfoField(dict, "Producer", pdf.info.producer);
    AppendInfoField(dict, "CreationDate", pdf.info.creation_date);
    dict += " >>";
    out += std::to_string(info_object) + " 0 obj\n" + dict + "\nendobj\n";
  }

  for (const std::string& page : pdf.pages) {
    out += std::to_string(next_object++) +
           " 0 obj\n<< /Type /Page >>\nstream\n" + page + "\nendstream\nendobj\n";
  }
  for (const std::string& hidden : pdf.hidden_objects) {
    out += std::to_string(next_object++) +
           " 0 obj\n<< /Type /XObject /Subtype /Ghost >>\nstream\n" + hidden +
           "\nendstream\nendobj\n";
  }

  out += "trailer\n<< /Root 1 0 R";
  if (info_object != 0) {
    out += " /Info " + std::to_string(info_object) + " 0 R";
  }
  out += " >>\n%%EOF\n";
  return BytesFromString(out);
}

Result<PdfFile> DecodePdf(ByteSpan data) {
  if (!LooksLikePdf(data)) {
    return DataLossError("missing %PDF header");
  }
  std::string text = StringFromBytes(data);
  if (text.find("%%EOF") == std::string::npos) {
    return DataLossError("missing %%EOF");
  }
  PdfFile pdf;

  // Locate the Info object via the trailer reference.
  size_t trailer = text.find("trailer");
  std::string info_dict;
  if (trailer != std::string::npos) {
    std::string trailer_text = text.substr(trailer);
    size_t info_ref = trailer_text.find("/Info ");
    if (info_ref != std::string::npos) {
      int object_number = std::atoi(trailer_text.c_str() + info_ref + 6);
      std::string marker = "\n" + std::to_string(object_number) + " 0 obj\n";
      size_t object_start = text.find(marker);
      if (object_start == std::string::npos) {
        return DataLossError("dangling /Info reference");
      }
      size_t object_end = text.find("endobj", object_start);
      info_dict = text.substr(object_start, object_end - object_start);
      pdf.info.title = DictString(info_dict, "Title");
      pdf.info.author = DictString(info_dict, "Author");
      pdf.info.creator = DictString(info_dict, "Creator");
      pdf.info.producer = DictString(info_dict, "Producer");
      pdf.info.creation_date = DictString(info_dict, "CreationDate");
    }
  }

  // Walk every object; classify pages vs hidden streams.
  size_t cursor = 0;
  while (true) {
    size_t object_start = text.find(" 0 obj\n", cursor);
    if (object_start == std::string::npos) {
      break;
    }
    size_t object_end = text.find("endobj", object_start);
    if (object_end == std::string::npos) {
      return DataLossError("unterminated object");
    }
    std::string object = text.substr(object_start, object_end - object_start);
    cursor = object_end + 6;
    if (object.find("/Type /Page >>") != std::string::npos) {
      auto body = StreamBody(object);
      if (!body.has_value()) {
        return DataLossError("page without content stream");
      }
      pdf.pages.push_back(*body);
    } else if (object.find("/Type /XObject") != std::string::npos) {
      auto body = StreamBody(object);
      if (body.has_value()) {
        pdf.hidden_objects.push_back(*body);
      }
    }
  }
  return pdf;
}

Image RasterizeTextBlock(const std::string& text) {
  constexpr uint32_t kGlyphWidth = 6;
  constexpr uint32_t kGlyphHeight = 10;
  constexpr uint32_t kColumns = 64;
  uint32_t rows = static_cast<uint32_t>(text.size() + kColumns - 1) / kColumns;
  rows = std::max<uint32_t>(rows, 1);
  Image image = Image::Solid(kColumns * kGlyphWidth, rows * (kGlyphHeight + 2), 250, 250, 245);
  for (size_t i = 0; i < text.size(); ++i) {
    uint32_t column = static_cast<uint32_t>(i % kColumns);
    uint32_t row = static_cast<uint32_t>(i / kColumns);
    uint64_t glyph = Mix64(static_cast<uint8_t>(text[i]));
    for (uint32_t gy = 0; gy < kGlyphHeight; ++gy) {
      for (uint32_t gx = 0; gx < kGlyphWidth; ++gx) {
        if ((glyph >> ((gy * kGlyphWidth + gx) % 60)) & 1) {
          uint8_t* pixel =
              image.PixelAt(column * kGlyphWidth + gx, row * (kGlyphHeight + 2) + gy);
          pixel[0] = 20;
          pixel[1] = 20;
          pixel[2] = 30;
        }
      }
    }
  }
  return image;
}

std::vector<Image> RasterizePdf(const PdfFile& pdf) {
  std::vector<Image> out;
  out.reserve(pdf.pages.size());
  for (const std::string& page : pdf.pages) {
    out.push_back(RasterizeTextBlock(page));
  }
  return out;
}

// ------------------------------------------------------------------ DOC

namespace {

constexpr uint8_t kDocMagic[4] = {'D', 'O', 'C', 'L'};

void AppendOptionalString(Bytes& out, const std::optional<std::string>& value) {
  out.push_back(value.has_value() ? 1 : 0);
  if (value.has_value()) {
    AppendLengthPrefixed(out, BytesFromString(*value));
  }
}

Result<std::optional<std::string>> ReadOptionalString(ByteSpan data, size_t& offset) {
  if (offset >= data.size()) {
    return DataLossError("truncated optional string");
  }
  uint8_t present = data[offset++];
  if (present == 0) {
    return std::optional<std::string>();
  }
  NYMIX_ASSIGN_OR_RETURN(Bytes value, ReadLengthPrefixed(data, offset));
  return std::optional<std::string>(StringFromBytes(value));
}

}  // namespace

bool LooksLikeDoc(ByteSpan data) {
  return data.size() >= 4 && std::memcmp(data.data(), kDocMagic, 4) == 0;
}

Bytes EncodeDoc(const DocFile& doc) {
  Bytes out(kDocMagic, kDocMagic + 4);
  AppendU16(out, 1);  // version
  AppendOptionalString(out, doc.properties.creator);
  AppendOptionalString(out, doc.properties.company);
  AppendOptionalString(out, doc.properties.last_modified_by);
  AppendU32(out, doc.properties.revision);
  AppendU32(out, doc.properties.editing_minutes);
  AppendU32(out, static_cast<uint32_t>(doc.paragraphs.size()));
  for (const std::string& paragraph : doc.paragraphs) {
    AppendLengthPrefixed(out, BytesFromString(paragraph));
  }
  AppendU32(out, static_cast<uint32_t>(doc.hidden_runs.size()));
  for (const std::string& hidden : doc.hidden_runs) {
    AppendLengthPrefixed(out, BytesFromString(hidden));
  }
  return out;
}

Result<DocFile> DecodeDoc(ByteSpan data) {
  if (!LooksLikeDoc(data)) {
    return DataLossError("missing DOCL magic");
  }
  size_t offset = 4;
  NYMIX_ASSIGN_OR_RETURN(uint16_t version, ReadU16(data, offset));
  if (version != 1) {
    return DataLossError("unsupported DOCL version");
  }
  DocFile doc;
  NYMIX_ASSIGN_OR_RETURN(doc.properties.creator, ReadOptionalString(data, offset));
  NYMIX_ASSIGN_OR_RETURN(doc.properties.company, ReadOptionalString(data, offset));
  NYMIX_ASSIGN_OR_RETURN(doc.properties.last_modified_by, ReadOptionalString(data, offset));
  NYMIX_ASSIGN_OR_RETURN(doc.properties.revision, ReadU32(data, offset));
  NYMIX_ASSIGN_OR_RETURN(doc.properties.editing_minutes, ReadU32(data, offset));
  NYMIX_ASSIGN_OR_RETURN(uint32_t paragraph_count, ReadU32(data, offset));
  for (uint32_t i = 0; i < paragraph_count; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes paragraph, ReadLengthPrefixed(data, offset));
    doc.paragraphs.push_back(StringFromBytes(paragraph));
  }
  NYMIX_ASSIGN_OR_RETURN(uint32_t hidden_count, ReadU32(data, offset));
  for (uint32_t i = 0; i < hidden_count; ++i) {
    NYMIX_ASSIGN_OR_RETURN(Bytes hidden, ReadLengthPrefixed(data, offset));
    doc.hidden_runs.push_back(StringFromBytes(hidden));
  }
  return doc;
}

std::vector<Image> RasterizeDoc(const DocFile& doc) {
  std::vector<Image> out;
  out.reserve(doc.paragraphs.size());
  for (const std::string& paragraph : doc.paragraphs) {
    out.push_back(RasterizeTextBlock(paragraph));
  }
  return out;
}

}  // namespace nymix
