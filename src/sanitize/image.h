// Raster image model for the SaniVM's scrubbing transformations (§3.6):
// face detection and blurring, resolution reduction, noise injection to
// disrupt steganographic watermarks. Faces are generated with a skin-tone
// base plus high-contrast features; the detector looks for skin-dominant
// blocks *with* internal contrast, so blurring genuinely defeats it.
// Watermarks are real LSB steganography: noise or downscaling destroys
// them, metadata-only scrubbing does not — exactly the paper's layered
// "paranoia level" argument.
#ifndef SRC_SANITIZE_IMAGE_H_
#define SRC_SANITIZE_IMAGE_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {

struct Image {
  uint32_t width = 0;
  uint32_t height = 0;
  Bytes rgb;  // width * height * 3

  static Image Solid(uint32_t width, uint32_t height, uint8_t r, uint8_t g, uint8_t b);

  uint8_t* PixelAt(uint32_t x, uint32_t y) { return &rgb[(y * width + x) * 3]; }
  const uint8_t* PixelAt(uint32_t x, uint32_t y) const { return &rgb[(y * width + x) * 3]; }
  uint64_t ByteSize() const { return rgb.size(); }
  bool SameDimensions(const Image& other) const {
    return width == other.width && height == other.height;
  }
};

struct FaceRegion {
  uint32_t x = 0;
  uint32_t y = 0;
  uint32_t width = 0;
  uint32_t height = 0;

  bool Overlaps(const FaceRegion& other) const;
};

// A synthetic "photo": textured background with face regions drawn in.
Image GeneratePhoto(uint32_t width, uint32_t height, uint64_t seed,
                    const std::vector<FaceRegion>& faces);

// Block-based detector: skin-dominant 8x8 blocks with eye-like internal
// contrast, clustered into bounding boxes.
std::vector<FaceRegion> DetectFaces(const Image& image);

// Box blur over a region (kills the detector's contrast requirement).
void BlurRegion(Image& image, const FaceRegion& region, int radius);

// Integer-factor downscale (paper: "reduce the resolution").
Image Downscale(const Image& image, uint32_t factor);

// Adds +-amplitude uniform noise per channel.
void AddNoise(Image& image, int amplitude, Prng& prng);

// --- LSB watermarking ---------------------------------------------------
// Embeds `payload` bits into the red channel's least-significant bits with
// 32 repetitions for redundancy. Returns error if the image is too small.
Status EmbedWatermark(Image& image, uint32_t payload);

// Majority-decodes the watermark; returns NOT_FOUND if the checksum fails
// (i.e. the watermark was destroyed or never present).
Result<uint32_t> DetectWatermark(const Image& image);

}  // namespace nymix

#endif  // SRC_SANITIZE_IMAGE_H_
