// EXIF/TIFF metadata codec. Real structure: a TIFF header ("II", 42, IFD
// offset), IFD0 with ASCII/rational entries, and a GPS sub-IFD reached via
// tag 0x8825 — the exact bytes that leak "GPS coordinates and his
// smartphone's serial number" in the paper's Bob scenario (§2, §3.6).
#ifndef SRC_SANITIZE_EXIF_H_
#define SRC_SANITIZE_EXIF_H_

#include <optional>
#include <string>

#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

struct GpsCoordinate {
  double latitude = 0.0;   // positive north
  double longitude = 0.0;  // positive east

  bool operator==(const GpsCoordinate&) const = default;
};

struct ExifData {
  std::optional<std::string> camera_make;
  std::optional<std::string> camera_model;
  std::optional<std::string> body_serial_number;
  std::optional<std::string> datetime_original;  // "YYYY:MM:DD HH:MM:SS"
  std::optional<std::string> software;
  std::optional<GpsCoordinate> gps;

  bool Empty() const {
    return !camera_make && !camera_model && !body_serial_number && !datetime_original &&
           !software && !gps;
  }
};

// TIFF tags used (subset of the EXIF 2.3 standard).
inline constexpr uint16_t kTagMake = 0x010F;
inline constexpr uint16_t kTagModel = 0x0110;
inline constexpr uint16_t kTagSoftware = 0x0131;
inline constexpr uint16_t kTagDateTime = 0x0132;
inline constexpr uint16_t kTagGpsIfdPointer = 0x8825;
inline constexpr uint16_t kTagBodySerial = 0xA431;
inline constexpr uint16_t kGpsTagLatitudeRef = 0x0001;
inline constexpr uint16_t kGpsTagLatitude = 0x0002;
inline constexpr uint16_t kGpsTagLongitudeRef = 0x0003;
inline constexpr uint16_t kGpsTagLongitude = 0x0004;

// Serializes to a little-endian TIFF byte stream (IFD0 + optional GPS IFD).
Bytes EncodeExif(const ExifData& exif);

// Parses a TIFF stream produced by EncodeExif or a compatible writer.
Result<ExifData> DecodeExif(ByteSpan tiff);

}  // namespace nymix

#endif  // SRC_SANITIZE_EXIF_H_
