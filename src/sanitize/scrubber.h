// The SaniVM's scrubbing suite (§3.6/§4.3): automated risk analysis over
// the supported file formats, and scrubbing transformations selectable by
// "paranoia level":
//   kMetadataOnly    — MAT mode: strip EXIF/tEXt/Info/core-properties.
//   kMetadataAndVisual — additionally blur detected faces and add noise /
//                        downscale to disrupt watermarks (images).
//   kRasterize       — reconstruct documents as bitmaps; nothing but the
//                      visible rendering survives.
#ifndef SRC_SANITIZE_SCRUBBER_H_
#define SRC_SANITIZE_SCRUBBER_H_

#include <string>
#include <vector>

#include "src/sanitize/document.h"
#include "src/sanitize/jpeg.h"
#include "src/sanitize/png.h"

namespace nymix {

enum class FileKind { kJpeg, kPng, kPdf, kDoc, kUnknown };
std::string_view FileKindName(FileKind kind);
FileKind DetectFileKind(ByteSpan data);

enum class RiskType {
  kGpsLocation,
  kDeviceSerial,
  kCameraModel,
  kAuthorIdentity,
  kTimestamp,
  kSoftwareVersion,
  kComment,
  kFace,
  kHiddenContent,
  kRevisionHistory,
};
std::string_view RiskTypeName(RiskType type);

struct Risk {
  RiskType type;
  std::string detail;
};

struct RiskReport {
  FileKind kind = FileKind::kUnknown;
  std::vector<Risk> risks;

  bool clean() const { return risks.empty(); }
  bool Has(RiskType type) const;
  std::string Summary() const;
};

// Inspects a file and lists everything that could identify the user — the
// list Nymix presents before any cross-nym transfer.
Result<RiskReport> AnalyzeFile(ByteSpan data);

enum class ParanoiaLevel { kMetadataOnly, kMetadataAndVisual, kRasterize };

struct ScrubOptions {
  ParanoiaLevel level = ParanoiaLevel::kMetadataOnly;
  int face_blur_radius = 6;
  int noise_amplitude = 3;
  uint32_t downscale_factor = 1;  // >1 also reduces resolution
};

struct ScrubResult {
  Bytes data;              // the scrubbed replacement file
  RiskReport before;       // what was found
  RiskReport after;        // what remains (faces may survive kMetadataOnly)
  std::vector<std::string> actions;  // human-readable transformation log
};

// Scrubs a file according to the options. Rasterize mode turns documents
// into multi-page PNG bundles (one PNG per page, concatenated with a tiny
// index header) and images into a metadata-free re-encode.
Result<ScrubResult> ScrubFile(ByteSpan data, const ScrubOptions& options, Prng& prng);

// Rasterized-bundle helpers (format: "NRB1", count, length-prefixed PNGs).
Bytes BundleRasterPages(const std::vector<Image>& pages);
Result<std::vector<Image>> UnbundleRasterPages(ByteSpan bundle);

}  // namespace nymix

#endif  // SRC_SANITIZE_SCRUBBER_H_
