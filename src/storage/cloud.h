// CloudService: a free-to-use storage provider (the paper's "DropBox or
// Google Drive", §3.5) modeled as an Internet host with pseudonymous
// accounts and opaque objects. The provider's view is deliberately
// explicit: an access log of (time, observed source address, action) plus
// the encrypted blobs — the basis for the deniability tests ("the cloud
// provider learns nothing about the account owner ... nor the pseudonym
// therein").
#ifndef SRC_STORAGE_CLOUD_H_
#define SRC_STORAGE_CLOUD_H_

#include <map>

#include "src/net/simulation.h"

namespace nymix {

struct StoredObject {
  Bytes data;                 // encrypted archive bytes actually held
  uint64_t logical_size = 0;  // archive's full logical size (Fig. 6 series)
  uint32_t sequence = 0;      // save-cycle counter (opaque to the provider)
  SimTime uploaded_at = 0;
};

struct CloudAccessLogEntry {
  SimTime time = 0;
  Ipv4Address observed_source;  // exit relay / VPN / user's real address
  std::string action;           // "login", "put nym1", ...
};

class CloudService : public InternetHost {
 public:
  struct Config {
    uint64_t access_bandwidth_bps = 100'000'000;
    SimDuration access_latency = Millis(15);
    // Free-tier quota per account ("free-to-use cloud storage options,
    // such as DropBox or Google Drive", §3.5). Counted in logical bytes.
    uint64_t free_quota_bytes = 2 * kGiB;
  };

  CloudService(Simulation& sim, const std::string& domain)
      : CloudService(sim, domain, Config{}) {}
  CloudService(Simulation& sim, const std::string& domain, Config config);

  const std::string& domain() const { return domain_; }
  Ipv4Address ip() const { return ip_; }
  Link* access_link() const { return access_link_; }

  // --- Account API (invoked by client logic; wire time is modeled by the
  // anonymizer Fetch that accompanies each call) ------------------------
  Status CreateAccount(const std::string& user, const std::string& password);
  Status Authenticate(const std::string& user, const std::string& password) const;

  Status Put(const std::string& user, const std::string& object, StoredObject stored);
  // Logical bytes the account currently stores (quota accounting).
  Result<uint64_t> UsageBytes(const std::string& user) const;
  Result<StoredObject> Get(const std::string& user, const std::string& object) const;
  Status Delete(const std::string& user, const std::string& object);
  Result<std::vector<std::string>> List(const std::string& user) const;

  // The provider-side observation channel.
  void LogAccess(SimTime time, Ipv4Address observed_source, std::string action);
  const std::vector<CloudAccessLogEntry>& access_log() const { return access_log_; }

  void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override;

 private:
  struct Account {
    std::string password;
    std::map<std::string, StoredObject> objects;
  };

  std::string domain_;
  Config config_;
  Link* access_link_;
  Ipv4Address ip_;
  std::map<std::string, Account> accounts_;
  std::vector<CloudAccessLogEntry> access_log_;
};

}  // namespace nymix

#endif  // SRC_STORAGE_CLOUD_H_
