#include "src/storage/nym_archive.h"

#include "src/compress/nymzip.h"
#include "src/crypto/aead.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/unionfs/serialize.h"

namespace nymix {

namespace {

ChaChaKey DeriveKey(std::string_view nym_name, std::string_view password) {
  Bytes salt = BytesFromString(nym_name);
  Bytes material = Pbkdf2Sha256(BytesFromString(password), salt, NymArchiver::kKdfIterations,
                                kChaCha20KeySize);
  ChaChaKey key;
  std::copy(material.begin(), material.end(), key.begin());
  return key;
}

ChaChaNonce NonceForSequence(uint32_t sequence) {
  ChaChaNonce nonce = {};
  nonce[0] = 'N';
  nonce[1] = 'Y';
  nonce[2] = 'M';
  for (int i = 0; i < 4; ++i) {
    nonce[8 + i] = static_cast<uint8_t>(sequence >> (8 * i));
  }
  return nonce;
}

Bytes ArchiveAad(std::string_view nym_name, uint32_t sequence) {
  Bytes aad = BytesFromString(nym_name);
  AppendU32(aad, sequence);
  return aad;
}

// Logical bytes of synthetic content not materialized into the stream.
uint64_t SyntheticEstimate(const MemFs& fs) {
  uint64_t total = 0;
  fs.ForEachFile([&total](const std::string& path, const Blob& blob) {
    (void)path;
    if (blob.is_synthetic()) {
      total += blob.CompressedSizeEstimate();
    }
  });
  return total;
}

}  // namespace

Result<NymArchive> NymArchiver::Seal(const MemFs& anonvm_writable, const MemFs& commvm_writable,
                                     std::string_view nym_name, std::string_view password,
                                     uint32_t sequence) {
  Bytes plaintext;
  plaintext.insert(plaintext.end(), {'N', 'A', 'R', 'C'});
  AppendLengthPrefixed(plaintext, SerializeMemFs(anonvm_writable));
  AppendLengthPrefixed(plaintext, SerializeMemFs(commvm_writable));

  Bytes compressed = NymzipCompress(plaintext);
  ChaChaKey key = DeriveKey(nym_name, password);
  Bytes aad = ArchiveAad(nym_name, sequence);
  NymArchive archive;
  archive.sequence = sequence;
  archive.sealed = AeadSeal(key, NonceForSequence(sequence), compressed, aad);
  archive.logical_size =
      archive.sealed.size() + SyntheticEstimate(anonvm_writable) + SyntheticEstimate(commvm_writable);
  return archive;
}

Result<NymArchiveContents> NymArchiver::Open(ByteSpan sealed, std::string_view nym_name,
                                             std::string_view password, uint32_t sequence) {
  ChaChaKey key = DeriveKey(nym_name, password);
  Bytes aad = ArchiveAad(nym_name, sequence);
  NYMIX_ASSIGN_OR_RETURN(Bytes compressed, AeadOpen(key, NonceForSequence(sequence), sealed, aad));
  NYMIX_ASSIGN_OR_RETURN(Bytes plaintext, NymzipDecompress(compressed));
  if (plaintext.size() < 4 || plaintext[0] != 'N' || plaintext[1] != 'A' || plaintext[2] != 'R' ||
      plaintext[3] != 'C') {
    return DataLossError("not a nym archive");
  }
  size_t offset = 4;
  NYMIX_ASSIGN_OR_RETURN(Bytes anon_stream, ReadLengthPrefixed(plaintext, offset));
  NYMIX_ASSIGN_OR_RETURN(Bytes comm_stream, ReadLengthPrefixed(plaintext, offset));
  NymArchiveContents contents;
  NYMIX_ASSIGN_OR_RETURN(contents.anonvm_writable, DeserializeMemFs(anon_stream));
  NYMIX_ASSIGN_OR_RETURN(contents.commvm_writable, DeserializeMemFs(comm_stream));
  return contents;
}

double NymArchiver::AnonVmFraction(const MemFs& anonvm_writable, const MemFs& commvm_writable) {
  double anon = static_cast<double>(EstimateCompressedPayload(anonvm_writable));
  double comm = static_cast<double>(EstimateCompressedPayload(commvm_writable));
  if (anon + comm == 0) {
    return 0.0;
  }
  return anon / (anon + comm);
}

uint64_t DeriveGuardSeed(std::string_view storage_location, std::string_view password) {
  Sha256 hasher;
  hasher.Update(ByteSpan(reinterpret_cast<const uint8_t*>("guard-seed"), 10));
  Bytes location = BytesFromString(storage_location);
  hasher.Update(location);
  Bytes pass = BytesFromString(password);
  hasher.Update(pass);
  return DigestPrefix64(hasher.Finish());
}

std::string BlindObjectName(std::string_view nym_name, std::string_view password) {
  Sha256 hasher;
  hasher.Update(ByteSpan(reinterpret_cast<const uint8_t*>("object-name"), 11));
  Bytes name = BytesFromString(nym_name);
  hasher.Update(name);
  Bytes pass = BytesFromString(password);
  hasher.Update(pass);
  uint64_t digest = DigestPrefix64(hasher.Finish());
  static const char kHex[] = "0123456789abcdef";
  std::string out = "obj-";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(digest >> shift) & 0xF];
  }
  return out;
}

}  // namespace nymix
