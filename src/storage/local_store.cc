#include "src/storage/local_store.h"

namespace nymix {

Status LocalStore::Put(const std::string& name, NymArchive archive) {
  archives_[name] = std::move(archive);
  return OkStatus();
}

Result<NymArchive> LocalStore::Get(const std::string& name) const {
  auto it = archives_.find(name);
  if (it == archives_.end()) {
    return NotFoundError("no archive named " + name);
  }
  return it->second;
}

Status LocalStore::Delete(const std::string& name) {
  if (archives_.erase(name) == 0) {
    return NotFoundError("no archive named " + name);
  }
  return OkStatus();
}

std::vector<LocalStore::ForensicEntry> LocalStore::InspectDevice() const {
  std::vector<ForensicEntry> out;
  out.reserve(archives_.size());
  for (const auto& [name, archive] : archives_) {
    out.push_back(ForensicEntry{name, archive.sealed.size()});
  }
  return out;
}

}  // namespace nymix
