#include "src/storage/cloud.h"

namespace nymix {

CloudService::CloudService(Simulation& sim, const std::string& domain, Config config)
    : domain_(domain), config_(config) {
  access_link_ = sim.CreateLink("cloud-" + domain, config_.access_latency,
                                config_.access_bandwidth_bps);
  ip_ = sim.internet().RegisterHost(domain, this, access_link_);
}

Status CloudService::CreateAccount(const std::string& user, const std::string& password) {
  if (accounts_.count(user) > 0) {
    return AlreadyExistsError("account exists: " + user);
  }
  accounts_[user].password = password;
  return OkStatus();
}

Status CloudService::Authenticate(const std::string& user, const std::string& password) const {
  auto it = accounts_.find(user);
  if (it == accounts_.end() || it->second.password != password) {
    // One error for both cases: the provider should not leak which accounts
    // exist (and neither should our model).
    return UnauthenticatedError("bad credentials");
  }
  return OkStatus();
}

Status CloudService::Put(const std::string& user, const std::string& object,
                         StoredObject stored) {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    return UnauthenticatedError("no such account");
  }
  uint64_t usage = 0;
  for (const auto& [name, existing] : it->second.objects) {
    if (name != object) {  // overwrite replaces, it doesn't add
      usage += existing.logical_size;
    }
  }
  if (usage + stored.logical_size > config_.free_quota_bytes) {
    return ResourceExhaustedError("free-tier quota exceeded for " + user);
  }
  it->second.objects[object] = std::move(stored);
  return OkStatus();
}

Result<uint64_t> CloudService::UsageBytes(const std::string& user) const {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    return UnauthenticatedError("no such account");
  }
  uint64_t usage = 0;
  for (const auto& [name, object] : it->second.objects) {
    (void)name;
    usage += object.logical_size;
  }
  return usage;
}

Result<StoredObject> CloudService::Get(const std::string& user, const std::string& object) const {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    return UnauthenticatedError("no such account");
  }
  auto obj = it->second.objects.find(object);
  if (obj == it->second.objects.end()) {
    return NotFoundError("no such object: " + object);
  }
  return obj->second;
}

Status CloudService::Delete(const std::string& user, const std::string& object) {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    return UnauthenticatedError("no such account");
  }
  if (it->second.objects.erase(object) == 0) {
    return NotFoundError("no such object: " + object);
  }
  return OkStatus();
}

Result<std::vector<std::string>> CloudService::List(const std::string& user) const {
  auto it = accounts_.find(user);
  if (it == accounts_.end()) {
    return UnauthenticatedError("no such account");
  }
  std::vector<std::string> names;
  names.reserve(it->second.objects.size());
  for (const auto& [name, object] : it->second.objects) {
    (void)object;
    names.push_back(name);
  }
  return names;
}

void CloudService::LogAccess(SimTime time, Ipv4Address observed_source, std::string action) {
  access_log_.push_back(CloudAccessLogEntry{time, observed_source, std::move(action)});
}

void CloudService::OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) {
  // Control-plane pings (login page fetches) are acknowledged; bulk object
  // transfer is flow-modeled by the caller.
  Packet response;
  response.src_ip = packet.dst_ip;
  response.src_port = packet.dst_port;
  response.dst_ip = packet.src_ip;
  response.dst_port = packet.src_port;
  response.payload = BytesFromString("200 OK");
  response.annotation = packet.annotation;
  reply(std::move(response));
}

}  // namespace nymix
