// NymArchive: the quasi-persistent nym state format (§3.5). Archiving a
// nym serializes the AnonVM and CommVM writable layers, compresses them
// with nymzip, and seals the result with ChaCha20-Poly1305 under a key
// derived from the user's password (PBKDF2) with the nym name as salt.
// The sequence number (save cycle) goes into the nonce and the AAD, so no
// (key, nonce) pair repeats and a provider cannot splice versions.
//
// Figure 6 reports `logical_size`: synthetic bulk blobs (browser cache)
// contribute their compressed-size estimate instead of materialized bytes,
// so the archive's reported size tracks what a real system would upload.
#ifndef SRC_STORAGE_NYM_ARCHIVE_H_
#define SRC_STORAGE_NYM_ARCHIVE_H_

#include <memory>
#include <string>

#include "src/unionfs/mem_fs.h"
#include "src/util/bytes.h"
#include "src/util/status.h"

namespace nymix {

struct NymArchive {
  Bytes sealed;               // what is actually uploaded/stored
  uint64_t logical_size = 0;  // sealed size + synthetic-content estimate
  uint32_t sequence = 0;      // save-cycle counter (nonce/AAD input)
};

struct NymArchiveContents {
  std::unique_ptr<MemFs> anonvm_writable;
  std::unique_ptr<MemFs> commvm_writable;
};

class NymArchiver {
 public:
  static constexpr uint32_t kKdfIterations = 2048;

  static Result<NymArchive> Seal(const MemFs& anonvm_writable, const MemFs& commvm_writable,
                                 std::string_view nym_name, std::string_view password,
                                 uint32_t sequence);

  // Fails UNAUTHENTICATED on a wrong password or tampered/spliced archive.
  static Result<NymArchiveContents> Open(ByteSpan sealed, std::string_view nym_name,
                                         std::string_view password, uint32_t sequence);

  // Fraction of the archive attributable to the AnonVM (the paper: "the
  // AnonVM content accounting for 85% of the pseudonym size").
  static double AnonVmFraction(const MemFs& anonvm_writable, const MemFs& commvm_writable);
};

// §3.5's proposed fix for the ephemeral-download-nym guard problem: derive
// the entry-guard selection seed deterministically from the nym's storage
// location and password, so every incarnation (including the one-shot
// download nym) picks the same guard.
uint64_t DeriveGuardSeed(std::string_view storage_location, std::string_view password);

// Blind storage-object name: H("object-name" || nym_name || password),
// hex-encoded. The cloud provider indexes archives by this value, so its
// view (object listing + access log) never contains the pseudonym — only
// the owner, who knows the name and password, can recompute it. Found by
// the nymflow identity-taint rule: the manager used to upload archives
// under the raw nym name.
// nymlint:declassify(nymflow-identity-taint): output is a one-way digest of the pseudonym; the provider cannot invert it
std::string BlindObjectName(std::string_view nym_name, std::string_view password);

}  // namespace nymix

#endif  // SRC_STORAGE_NYM_ARCHIVE_H_
