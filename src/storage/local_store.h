// LocalStore: the non-cloud persistence option of §3.5 — "either on
// different local disks or USB drives". Unlike cloud storage, whatever is
// written here is visible to anyone who confiscates the device, which the
// store makes explicit through InspectDevice(): the forensic view an
// adversary obtains (names and sizes of encrypted blobs, but never keys).
#ifndef SRC_STORAGE_LOCAL_STORE_H_
#define SRC_STORAGE_LOCAL_STORE_H_

#include <map>
#include <string>

#include "src/storage/nym_archive.h"

namespace nymix {

class LocalStore {
 public:
  explicit LocalStore(std::string device_name) : device_name_(std::move(device_name)) {}

  const std::string& device_name() const { return device_name_; }

  Status Put(const std::string& name, NymArchive archive);
  Result<NymArchive> Get(const std::string& name) const;
  Status Delete(const std::string& name);

  struct ForensicEntry {
    std::string name;
    uint64_t stored_bytes = 0;
  };
  // What device confiscation reveals: presence of suspicious encrypted
  // blobs (contrast: a cloud-stored nym leaves nothing on the device).
  std::vector<ForensicEntry> InspectDevice() const;
  bool HasSuspiciousState() const { return !archives_.empty(); }

 private:
  std::string device_name_;
  std::map<std::string, NymArchive> archives_;
};

}  // namespace nymix

#endif  // SRC_STORAGE_LOCAL_STORE_H_
