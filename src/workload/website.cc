#include "src/workload/website.h"

#include <algorithm>
#include <set>

namespace nymix {

std::vector<WebsiteProfile> PaperWebsiteProfiles() {
  std::vector<WebsiteProfile> profiles;

  WebsiteProfile gmail;
  gmail.name = "Gmail";
  gmail.domain = "mail.google.com";
  gmail.page_bytes = 2500 * kKiB;
  gmail.revisit_bytes = 1500 * kKiB;
  gmail.cache_first_bytes = 25 * kMiB;
  gmail.cache_revisit_bytes = 4 * kMiB;
  gmail.supports_login = true;
  gmail.memory_dirty_bytes = 16 * kMiB;
  profiles.push_back(gmail);

  WebsiteProfile twitter;
  twitter.name = "Twitter";
  twitter.domain = "twitter.com";
  twitter.page_bytes = 2000 * kKiB;
  twitter.revisit_bytes = 1200 * kKiB;
  twitter.cache_first_bytes = 15 * kMiB;
  twitter.cache_revisit_bytes = 2500 * kKiB;
  twitter.supports_login = true;
  twitter.memory_dirty_bytes = 12 * kMiB;
  profiles.push_back(twitter);

  WebsiteProfile youtube;
  youtube.name = "Youtube";
  youtube.domain = "youtube.com";
  youtube.page_bytes = 3 * kMiB;
  youtube.revisit_bytes = 2 * kMiB;
  youtube.cache_first_bytes = 22 * kMiB;
  youtube.cache_revisit_bytes = 8 * kMiB;
  youtube.supports_login = true;
  youtube.memory_dirty_bytes = 20 * kMiB;
  profiles.push_back(youtube);

  WebsiteProfile torblog;
  torblog.name = "TorBlog";
  torblog.domain = "blog.torproject.org";
  torblog.page_bytes = 800 * kKiB;
  torblog.revisit_bytes = 400 * kKiB;
  torblog.cache_first_bytes = 6 * kMiB;
  torblog.cache_revisit_bytes = 1 * kMiB;
  torblog.memory_dirty_bytes = 6 * kMiB;
  profiles.push_back(torblog);

  WebsiteProfile bbc;
  bbc.name = "BBC";
  bbc.domain = "bbc.co.uk";
  bbc.page_bytes = 1800 * kKiB;
  bbc.revisit_bytes = 900 * kKiB;
  bbc.cache_first_bytes = 9 * kMiB;
  bbc.cache_revisit_bytes = 1500 * kKiB;
  bbc.memory_dirty_bytes = 10 * kMiB;
  profiles.push_back(bbc);

  WebsiteProfile facebook;
  facebook.name = "Facebook";
  facebook.domain = "facebook.com";
  facebook.page_bytes = 2600 * kKiB;
  facebook.revisit_bytes = 1600 * kKiB;
  facebook.cache_first_bytes = 20 * kMiB;
  facebook.cache_revisit_bytes = 3500 * kKiB;
  facebook.supports_login = true;
  facebook.memory_dirty_bytes = 17 * kMiB;
  profiles.push_back(facebook);

  WebsiteProfile slashdot;
  slashdot.name = "Slashdot";
  slashdot.domain = "slashdot.org";
  slashdot.page_bytes = 1200 * kKiB;
  slashdot.revisit_bytes = 600 * kKiB;
  slashdot.cache_first_bytes = 4 * kMiB;
  slashdot.cache_revisit_bytes = 800 * kKiB;
  slashdot.memory_dirty_bytes = 7 * kMiB;
  profiles.push_back(slashdot);

  WebsiteProfile espn;
  espn.name = "ESPN";
  espn.domain = "espn.com";
  espn.page_bytes = 2200 * kKiB;
  espn.revisit_bytes = 1100 * kKiB;
  espn.cache_first_bytes = 11 * kMiB;
  espn.cache_revisit_bytes = 1800 * kKiB;
  espn.memory_dirty_bytes = 11 * kMiB;
  profiles.push_back(espn);

  return profiles;
}

WebsiteProfile StreamingWebsiteProfile() {
  WebsiteProfile stream;
  stream.name = "StreamTube";
  stream.domain = "stream.example.net";
  stream.page_bytes = 1 * kMiB;       // player shell
  stream.revisit_bytes = 2 * kMiB;    // one media segment
  stream.stream_segments = 6;         // ~11 MiB steady pull per visit
  stream.cache_first_bytes = 8 * kMiB;
  stream.cache_revisit_bytes = 2 * kMiB;
  stream.memory_dirty_bytes = 24 * kMiB;
  return stream;
}

WebsiteProfile LargeUploadWebsiteProfile() {
  WebsiteProfile upload;
  upload.name = "ShareDrop";
  upload.domain = "upload.example.net";
  upload.page_bytes = 600 * kKiB;
  upload.revisit_bytes = 300 * kKiB;
  upload.upload_bytes = 8 * kMiB;     // photo batch through the scrub path
  upload.cache_first_bytes = 2 * kMiB;
  upload.cache_revisit_bytes = 512 * kKiB;
  upload.memory_dirty_bytes = 9 * kMiB;
  return upload;
}

Website::Website(Simulation& sim, WebsiteProfile profile) : profile_(std::move(profile)) {
  access_link_ = sim.CreateLink("web-" + profile_.name, Millis(10), 1'000'000'000);
  ip_ = sim.internet().RegisterHost(profile_.domain, this, access_link_);
}

void Website::RecordVisit(SimTime time, Ipv4Address source, std::string cookie,
                          std::string account, std::string evercookie) {
  tracker_log_.push_back(
      VisitRecord{time, source, std::move(cookie), std::move(account), std::move(evercookie)});
}

size_t Website::DistinctCookies() const {
  std::set<std::string> cookies;
  for (const auto& record : tracker_log_) {
    cookies.insert(record.cookie);
  }
  return cookies.size();
}

size_t Website::DistinctEvercookies() const {
  std::set<std::string> stains;
  for (const auto& record : tracker_log_) {
    if (!record.evercookie.empty()) {
      stains.insert(record.evercookie);
    }
  }
  return stains.size();
}

size_t Website::DistinctSources() const {
  std::set<Ipv4Address> sources;
  for (const auto& record : tracker_log_) {
    sources.insert(record.observed_source);
  }
  return sources.size();
}

void Website::OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) {
  Packet response;
  response.src_ip = packet.dst_ip;
  response.src_port = packet.dst_port;
  response.dst_ip = packet.src_ip;
  response.dst_port = packet.src_port;
  response.payload = BytesFromString("200 OK");
  response.annotation = packet.annotation;
  reply(std::move(response));
}

WebsiteDirectory::WebsiteDirectory(Simulation& sim, const std::vector<WebsiteProfile>& profiles) {
  for (const auto& profile : profiles) {
    sites_.push_back(std::make_unique<Website>(sim, profile));
  }
}

Website& WebsiteDirectory::ByName(const std::string& name) {
  auto it = std::find_if(sites_.begin(), sites_.end(),
                         [&](const auto& site) { return site->profile().name == name; });
  NYMIX_CHECK_MSG(it != sites_.end(), name.c_str());
  return **it;
}

Website& WebsiteDirectory::ByDomain(const std::string& domain) {
  auto it = std::find_if(sites_.begin(), sites_.end(),
                         [&](const auto& site) { return site->profile().domain == domain; });
  NYMIX_CHECK_MSG(it != sites_.end(), domain.c_str());
  return **it;
}

std::vector<Website*> WebsiteDirectory::all() {
  std::vector<Website*> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) {
    out.push_back(site.get());
  }
  return out;
}

}  // namespace nymix
