// BrowserModel: the Chromium instance inside an AnonVM. Visits fetch a
// site through the nym's anonymizer; completed visits write cache entries
// into the VM's RAM-backed disk (with the default 83 MB Chromium cache cap
// and LRU eviction — §5.3 notes the cache "could have been configured to
// be smaller than the default of 83 MB"), set cookies, append history, and
// dirty guest heap pages. Everything Figure 3 and Figure 6 measure flows
// through here.
#ifndef SRC_WORKLOAD_BROWSER_H_
#define SRC_WORKLOAD_BROWSER_H_

#include <memory>
#include <string>

#include "src/anon/anonymizer.h"
#include "src/anon/dns_proxy.h"
#include "src/hv/vm.h"
#include "src/workload/website.h"

namespace nymix {

class BrowserModel {
 public:
  struct Config {
    uint64_t cache_capacity = 83 * kMiB;  // Chromium default (§5.3)
    std::string cache_dir = "/home/user/.cache/chromium";
    std::string profile_dir = "/home/user/.config/chromium";
    SimDuration render_time = Millis(900);  // parse/layout/paint after fetch
  };

  BrowserModel(Simulation& sim, VirtualMachine* anon_vm, Anonymizer* anonymizer, uint64_t seed)
      : BrowserModel(sim, anon_vm, anonymizer, seed, Config{}) {}
  BrowserModel(Simulation& sim, VirtualMachine* anon_vm, Anonymizer* anonymizer, uint64_t seed,
               Config config);

  // Routes name resolution through the CommVM's DNS proxy (§4.1). Without
  // one, resolution is folded into the anonymizer's Fetch.
  void UseDnsProxy(DnsProxy* dns) { dns_ = dns; }

  // Loads the site's page; `done` fires when rendering completes. The
  // tracker sees (exit identity, this browser's cookie for the domain).
  void Visit(Website& site, std::function<void(Result<SimTime>)> done);

  // Logs into the site; stores the credential in the browser profile so
  // future sessions restored from this state need not re-enter it (§3.5).
  void Login(Website& site, const std::string& account, const std::string& password,
             std::function<void(Result<SimTime>)> done);

  bool HasStoredCredential(const std::string& domain) const;
  Result<std::string> StoredAccount(const std::string& domain) const;

  // Stable per-domain tracking cookie (created on first contact).
  std::string CookieFor(const std::string& domain);
  bool HasCookieFor(const std::string& domain) const;

  // Merges externally supplied cookies into the jar (and persists them),
  // overwriting on collision. This is the "shared cookie jar" isolation
  // failure the adversary suite plants: a sync service or misconfigured
  // profile bleed that gives two nyms the same tracking identity. Clean
  // Nymix code never calls this.
  void ImportCookies(const std::map<std::string, std::string>& cookies);

  // "Clear cookies": empties the cookie jar — but NOT evercookies, which
  // is precisely why per-nym throwaway VMs beat in-browser private modes
  // (§3.3: "a single state management bug ... render the user trackable").
  Status ClearCookies();

  // Evercookie planted by a hostile site: stored redundantly in the cache
  // directory and a Flash-LSO-style store; reading it repairs any copy the
  // user deleted. Empty return = no stain present yet.
  std::string PlantOrReadEvercookie(const std::string& domain);
  bool HasEvercookie(const std::string& domain) const;

  uint64_t CacheBytes() const;
  size_t CacheEntryCount() const;
  std::vector<std::string> History() const;

  // Number of visits this browser performed (first visit to a domain costs
  // more than a revisit).
  size_t visits_performed() const { return visits_performed_; }

 private:
  void WriteCacheEntry(const WebsiteProfile& profile, uint64_t bytes);
  void EvictCacheIfNeeded();
  Status AppendHistory(const std::string& domain);

  Simulation& sim_;
  VirtualMachine* anon_vm_;
  Anonymizer* anonymizer_;
  DnsProxy* dns_ = nullptr;
  Config config_;
  Prng prng_;
  std::map<std::string, std::string> cookies_;      // domain -> cookie id
  std::map<std::string, std::string> credentials_;  // domain -> account
  std::map<std::string, bool> visited_;             // domain -> seen before
  uint64_t next_cache_file_ = 1;
  size_t visits_performed_ = 0;
  // Lifetime token for the render timer: the browser schedules it on the
  // simulation-owned loop, and a nym crash (§3.4 wipe) destroys the browser
  // with the timer still queued. The timer must evaporate, not touch the
  // freed browser or complete a visit for a dead nym.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
};

}  // namespace nymix

#endif  // SRC_WORKLOAD_BROWSER_H_
