// Peacekeeper model (§5.2, Figure 4): Futuremark's JavaScript benchmark as
// a CPU-phase sequence — six subtest kernels separated by DOM/paint idle
// gaps. The score is inversely proportional to wall-clock completion time,
// calibrated so a native run on the paper's quad-core i7 scores ~4800.
#ifndef SRC_WORKLOAD_PEACEKEEPER_H_
#define SRC_WORKLOAD_PEACEKEEPER_H_

#include "src/hv/host.h"

namespace nymix {

class Peacekeeper {
 public:
  // Six subtests: 8 s compute + 2 s render/idle each (native reference).
  static std::vector<CpuPhase> Phases();

  // Native wall time of Phases() in seconds.
  static double ReferenceSeconds();

  // Score for a run that took `elapsed_seconds` (native reference ~4800).
  static double ScoreFromElapsed(double elapsed_seconds);

  // Runs the benchmark on the host's scheduler; `virtualized` selects the
  // in-VM (overhead-paying) variant. `done` receives the score.
  static void Run(HostMachine& host, bool virtualized, std::function<void(double)> done);

  // The Figure 4 "expected" curve: per-instance average score if N single-
  // nym runs shared the cores perfectly (no idle-gap overlap).
  static double ExpectedScore(double single_nym_score, size_t nyms, uint32_t cores);
};

}  // namespace nymix

#endif  // SRC_WORKLOAD_PEACEKEEPER_H_
