// The §5.2 bandwidth workload: "we download the current Linux kernel
// version 3.14.2, from a server running within DeterLab in order to
// guarantee the 10 Mbit download rate" (Figure 5).
#ifndef SRC_WORKLOAD_DOWNLOADER_H_
#define SRC_WORKLOAD_DOWNLOADER_H_

#include "src/anon/anonymizer.h"

namespace nymix {

// linux-3.14.2.tar.xz.
inline constexpr uint64_t kLinuxKernelTarballBytes = 78'000'000;
inline constexpr char kKernelMirrorDomain[] = "mirror.deterlab.net";

class KernelMirror : public InternetHost {
 public:
  explicit KernelMirror(Simulation& sim);

  Ipv4Address ip() const { return ip_; }
  size_t downloads_served() const { return downloads_served_; }
  void CountDownload() { ++downloads_served_; }

  void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override;

 private:
  Link* access_link_;
  Ipv4Address ip_;
  size_t downloads_served_ = 0;
};

// Downloads the kernel through `anonymizer`; `done` gets the elapsed
// virtual seconds.
void DownloadKernel(Anonymizer& anonymizer, KernelMirror& mirror, Simulation& sim,
                    std::function<void(Result<double>)> done);

}  // namespace nymix

#endif  // SRC_WORKLOAD_DOWNLOADER_H_
