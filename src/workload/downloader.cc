#include "src/workload/downloader.h"

namespace nymix {

KernelMirror::KernelMirror(Simulation& sim) {
  // The DeterLab server is local and fast; only the client's shaped uplink
  // limits throughput ("the DeterLab testbed has no additional delays or
  // bandwidth constraints").
  access_link_ = sim.CreateLink("deterlab-mirror", Millis(2), 1'000'000'000);
  ip_ = sim.internet().RegisterHost(kKernelMirrorDomain, this, access_link_);
}

void KernelMirror::OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) {
  Packet response;
  response.src_ip = packet.dst_ip;
  response.src_port = packet.dst_port;
  response.dst_ip = packet.src_ip;
  response.dst_port = packet.src_port;
  response.payload = BytesFromString("200 OK");
  response.annotation = packet.annotation;
  reply(std::move(response));
}

void DownloadKernel(Anonymizer& anonymizer, KernelMirror& mirror, Simulation& sim,
                    std::function<void(Result<double>)> done) {
  SimTime start = sim.now();
  anonymizer.Fetch(kKernelMirrorDomain, 2 * kKiB, kLinuxKernelTarballBytes,
                   [&mirror, start, done = std::move(done)](Result<FetchReceipt> receipt) {
                     if (!receipt.ok()) {
                       done(receipt.status());
                       return;
                     }
                     mirror.CountDownload();
                     done(ToSeconds(receipt->completed_at - start));
                   });
}

}  // namespace nymix
