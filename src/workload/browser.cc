#include "src/workload/browser.h"

#include <algorithm>
#include <string_view>

namespace nymix {

namespace {

// Parses "key value" lines into a map.
std::map<std::string, std::string> ParseKvFile(const VmDisk& disk, const std::string& path) {
  std::map<std::string, std::string> out;
  auto blob = disk.fs().ReadFile(path);
  if (!blob.ok()) {
    return out;
  }
  std::string text = StringFromBytes(blob->Materialize());
  size_t position = 0;
  while (position < text.size()) {
    size_t end = text.find('\n', position);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string line = text.substr(position, end - position);
    position = end + 1;
    size_t space = line.find(' ');
    if (space != std::string::npos) {
      out[line.substr(0, space)] = line.substr(space + 1);
    }
  }
  return out;
}

std::string RenderKvFile(const std::map<std::string, std::string>& entries) {
  std::string out;
  for (const auto& [key, value] : entries) {
    out += key + " " + value + "\n";
  }
  return out;
}

}  // namespace

BrowserModel::BrowserModel(Simulation& sim, VirtualMachine* anon_vm, Anonymizer* anonymizer,
                           uint64_t seed, Config config)
    : sim_(sim),
      anon_vm_(anon_vm),
      anonymizer_(anonymizer),
      config_(std::move(config)),
      prng_(seed) {
  NYMIX_CHECK(anon_vm_ != nullptr);
  NYMIX_CHECK(anonymizer_ != nullptr);
  // A browser over a restored (quasi-persistent) disk picks its state back
  // up from the profile directory.
  cookies_ = ParseKvFile(anon_vm_->disk(), config_.profile_dir + "/cookies");
  credentials_ = ParseKvFile(anon_vm_->disk(), config_.profile_dir + "/logins");
  auto entries = anon_vm_->disk().fs().List(config_.cache_dir);
  if (entries.ok()) {
    for (const auto& entry : *entries) {
      if (entry.name.rfind("f_", 0) == 0) {
        uint64_t index = std::strtoull(entry.name.c_str() + 2, nullptr, 10);
        next_cache_file_ = std::max(next_cache_file_, index + 1);
      }
    }
  }
}

bool BrowserModel::HasCookieFor(const std::string& domain) const {
  return cookies_.count(domain) > 0;
}

std::string BrowserModel::CookieFor(const std::string& domain) {
  auto it = cookies_.find(domain);
  if (it != cookies_.end()) {
    return it->second;
  }
  std::string cookie = HexEncode(prng_.NextBytes(8));
  cookies_[domain] = cookie;
  NYMIX_CHECK(anon_vm_->disk()
                  .WriteFile(config_.profile_dir + "/cookies",
                             Blob::FromString(RenderKvFile(cookies_)))
                  .ok());
  return cookie;
}

void BrowserModel::ImportCookies(const std::map<std::string, std::string>& cookies) {
  for (const auto& [domain, value] : cookies) {
    cookies_[domain] = value;
  }
  NYMIX_CHECK(anon_vm_->disk()
                  .WriteFile(config_.profile_dir + "/cookies",
                             Blob::FromString(RenderKvFile(cookies_)))
                  .ok());
}

Status BrowserModel::ClearCookies() {
  cookies_.clear();
  if (anon_vm_->disk().fs().Exists(config_.profile_dir + "/cookies")) {
    return anon_vm_->disk().fs().Unlink(config_.profile_dir + "/cookies");
  }
  return OkStatus();
}

namespace {

std::string LsoPath(const BrowserModel::Config& config, const std::string& domain) {
  return config.profile_dir + "/flash_lso/" + domain;
}

std::string CacheStainPath(const BrowserModel::Config& config, const std::string& domain) {
  // Hides among cache entries with a name the eviction scan skips.
  return config.cache_dir + "/ec_" + domain;
}

}  // namespace

bool BrowserModel::HasEvercookie(const std::string& domain) const {
  return anon_vm_->disk().fs().Exists(LsoPath(config_, domain)) ||
         anon_vm_->disk().fs().Exists(CacheStainPath(config_, domain));
}

std::string BrowserModel::PlantOrReadEvercookie(const std::string& domain) {
  // Read whichever copy survived; a missing copy is silently repaired —
  // the essence of the evercookie.
  std::string value;
  for (const std::string& path : {LsoPath(config_, domain), CacheStainPath(config_, domain)}) {
    auto blob = anon_vm_->disk().fs().ReadFile(path);
    if (blob.ok() && !blob->is_synthetic()) {
      value = StringFromBytes(blob->Materialize());
      break;
    }
  }
  if (value.empty()) {
    value = HexEncode(prng_.NextBytes(8));
  }
  for (const std::string& path : {LsoPath(config_, domain), CacheStainPath(config_, domain)}) {
    NYMIX_CHECK(anon_vm_->disk().WriteFile(path, Blob::FromString(value)).ok());
  }
  return value;
}

bool BrowserModel::HasStoredCredential(const std::string& domain) const {
  return credentials_.count(domain) > 0;
}

Result<std::string> BrowserModel::StoredAccount(const std::string& domain) const {
  auto it = credentials_.find(domain);
  if (it == credentials_.end()) {
    return NotFoundError("no stored credential for " + domain);
  }
  return it->second;
}

uint64_t BrowserModel::CacheBytes() const {
  auto entries = anon_vm_->disk().fs().List(config_.cache_dir);
  if (!entries.ok()) {
    return 0;
  }
  uint64_t total = 0;
  for (const auto& entry : *entries) {
    total += entry.size;
  }
  return total;
}

size_t BrowserModel::CacheEntryCount() const {
  auto entries = anon_vm_->disk().fs().List(config_.cache_dir);
  return entries.ok() ? entries->size() : 0;
}

std::vector<std::string> BrowserModel::History() const {
  std::vector<std::string> out;
  auto blob = anon_vm_->disk().fs().ReadFile(config_.profile_dir + "/history");
  if (!blob.ok()) {
    return out;
  }
  std::string text = StringFromBytes(blob->Materialize());
  size_t position = 0;
  while (position < text.size()) {
    size_t end = text.find('\n', position);
    if (end == std::string::npos) {
      end = text.size();
    }
    if (end > position) {
      out.push_back(text.substr(position, end - position));
    }
    position = end + 1;
  }
  return out;
}

Status BrowserModel::AppendHistory(const std::string& domain) {
  std::string text;
  auto blob = anon_vm_->disk().fs().ReadFile(config_.profile_dir + "/history");
  if (blob.ok()) {
    text = StringFromBytes(blob->Materialize());
  }
  text += domain + "\n";
  return anon_vm_->disk().WriteFile(config_.profile_dir + "/history", Blob::FromString(text));
}

void BrowserModel::WriteCacheEntry(const WebsiteProfile& profile, uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  char name[32];
  std::snprintf(name, sizeof(name), "f_%08llu", static_cast<unsigned long long>(next_cache_file_));
  ++next_cache_file_;
  Status status = anon_vm_->disk().WriteFile(
      config_.cache_dir + "/" + name,
      Blob::Synthetic(bytes, prng_.NextU64(), profile.cache_entropy));
  if (!status.ok()) {
    // Disk full: evict and retry once; give up silently if still full
    // (the browser drops cache entries, it does not crash).
    EvictCacheIfNeeded();
    (void)anon_vm_->disk().WriteFile(
        config_.cache_dir + "/" + name,
        Blob::Synthetic(bytes, prng_.NextU64(), profile.cache_entropy));
  }
  EvictCacheIfNeeded();
}

void BrowserModel::EvictCacheIfNeeded() {
  while (CacheBytes() > config_.cache_capacity) {
    auto entries = anon_vm_->disk().fs().List(config_.cache_dir);
    if (!entries.ok() || entries->empty()) {
      return;
    }
    // Entries sort lexicographically; the zero-padded names make the first
    // entry the oldest (LRU by insertion).
    const std::string oldest = (*entries)[0].name;
    if (!anon_vm_->disk().fs().Unlink(config_.cache_dir + "/" + oldest).ok()) {
      return;
    }
  }
}

void BrowserModel::Visit(Website& site, std::function<void(Result<SimTime>)> done) {
  const WebsiteProfile& profile = site.profile();
  // First full page load vs revisit is a history question, not a cookie
  // question (logging in sets a cookie without populating the cache).
  auto history = History();
  bool revisit =
      std::find(history.begin(), history.end(), profile.domain) != history.end();
  uint64_t download = revisit ? profile.revisit_bytes : profile.page_bytes;
  if (profile.stream_segments > 1) {
    // Streaming profile: media segments ride the same fetch as one long
    // transfer (the flow model already coalesces bulk bytes).
    download += static_cast<uint64_t>(profile.stream_segments - 1) * profile.revisit_bytes;
  }
  // Default profiles upload only the 4 KiB request, exactly as before.
  uint64_t upload = 4 * kKiB + profile.upload_bytes;
  std::string cookie = CookieFor(profile.domain);
  std::string account = credentials_.count(profile.domain) ? credentials_[profile.domain] : "";
  std::string evercookie;
  if (profile.plants_evercookie) {
    evercookie = PlantOrReadEvercookie(profile.domain);
  }

  ++visits_performed_;
  SimTime visit_start = sim_.now();
  auto perform = [this, &site, profile, revisit, download, upload, cookie, account, evercookie,
                  visit_start](std::function<void(Result<SimTime>)> fetch_done) {
    anonymizer_->Fetch(
        profile.domain, upload, download,
        [this, &site, profile, revisit, cookie, account, evercookie, visit_start,
         fetch_done = std::move(fetch_done)](Result<FetchReceipt> receipt) {
          if (!receipt.ok()) {
            fetch_done(receipt.status());
            return;
          }
          site.RecordVisit(receipt->completed_at, receipt->observed_source, cookie, account,
                           evercookie);
          WriteCacheEntry(profile,
                          revisit ? profile.cache_revisit_bytes : profile.cache_first_bytes);
          Status history = AppendHistory(profile.domain);
          if (!history.ok()) {
            fetch_done(history);
            return;
          }
          anon_vm_->memory().DirtyPages(profile.memory_dirty_bytes / kPageSize, prng_);
          sim_.loop().ScheduleAfter(
              config_.render_time,
              [this, alive = std::weak_ptr<char>(alive_), profile, visit_start,
               fetch_done = std::move(fetch_done)] {
                if (alive.expired()) {
                  return;  // browser (and its nym) torn down mid-render
                }
                if (TraceRecorder* tracer = sim_.loop().tracer()) {
                  // The span lands on the owning nym's track: the AnonVM is
                  // named "<nym>-anon".
                  std::string track = anon_vm_->name();
                  constexpr std::string_view kSuffix = "-anon";
                  if (track.size() > kSuffix.size() &&
                      track.compare(track.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
                    track.resize(track.size() - kSuffix.size());
                  }
                  tracer->AddComplete("core", "page_load:" + profile.domain, track, visit_start,
                                      sim_.now() - visit_start);
                }
                if (MetricsRegistry* meters = sim_.loop().meters()) {
                  meters->GetCounter("core.page_loads")->Increment();
                  meters->GetHistogram("core.page_load_us")
                      ->Record(static_cast<double>(sim_.now() - visit_start));
                }
                fetch_done(sim_.now());
              });
        });
  };

  if (dns_ != nullptr) {
    // Resolution rides the CommVM's DNS path first (§4.1); a failed lookup
    // never turns into a direct query.
    dns_->Resolve(profile.domain,
                  [perform, done = std::move(done)](Result<Ipv4Address> resolved) mutable {
                    if (!resolved.ok()) {
                      done(resolved.status());
                      return;
                    }
                    perform(std::move(done));
                  });
  } else {
    perform(std::move(done));
  }
}

void BrowserModel::Login(Website& site, const std::string& account, const std::string& password,
                         std::function<void(Result<SimTime>)> done) {
  (void)password;  // the site model does not verify; the credential store matters
  const WebsiteProfile& profile = site.profile();
  if (!profile.supports_login) {
    done(FailedPreconditionError(profile.name + " does not support login"));
    return;
  }
  credentials_[profile.domain] = account;
  Status status = anon_vm_->disk().WriteFile(config_.profile_dir + "/logins",
                                             Blob::FromString(RenderKvFile(credentials_)));
  if (!status.ok()) {
    done(status);
    return;
  }
  std::string cookie = CookieFor(profile.domain);
  anonymizer_->Fetch(profile.domain, 8 * kKiB, 64 * kKiB,
                     [this, &site, cookie, account,
                      done = std::move(done)](Result<FetchReceipt> receipt) {
                       if (!receipt.ok()) {
                         done(receipt.status());
                         return;
                       }
                       site.RecordVisit(receipt->completed_at, receipt->observed_source, cookie,
                                        account);
                       done(receipt->completed_at);
                     });
}

}  // namespace nymix
