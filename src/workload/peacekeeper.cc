#include "src/workload/peacekeeper.h"

namespace nymix {

namespace {

constexpr int kSubtests = 6;
constexpr SimDuration kComputePerSubtest = Seconds(8);
constexpr SimDuration kIdlePerSubtest = Seconds(2);
constexpr double kNativeReferenceScore = 4800.0;

}  // namespace

std::vector<CpuPhase> Peacekeeper::Phases() {
  std::vector<CpuPhase> phases;
  phases.reserve(2 * kSubtests);
  for (int i = 0; i < kSubtests; ++i) {
    phases.push_back(CpuPhase::Compute(kComputePerSubtest));
    phases.push_back(CpuPhase::Idle(kIdlePerSubtest));
  }
  return phases;
}

double Peacekeeper::ReferenceSeconds() {
  return kSubtests * ToSeconds(kComputePerSubtest + kIdlePerSubtest);
}

double Peacekeeper::ScoreFromElapsed(double elapsed_seconds) {
  return kNativeReferenceScore * ReferenceSeconds() / elapsed_seconds;
}

void Peacekeeper::Run(HostMachine& host, bool virtualized, std::function<void(double)> done) {
  SimTime start = host.sim().now();
  host.cpu().Submit(Phases(), virtualized, [start, done = std::move(done)](SimTime finished) {
    done(ScoreFromElapsed(ToSeconds(finished - start)));
  });
}

double Peacekeeper::ExpectedScore(double single_nym_score, size_t nyms, uint32_t cores) {
  if (nyms == 0) {
    return kNativeReferenceScore;
  }
  double slowdown = nyms <= cores ? 1.0 : static_cast<double>(nyms) / cores;
  return single_nym_score / slowdown;
}

}  // namespace nymix
