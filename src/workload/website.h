// Website models: the eight sites of the §5.2 memory experiment (Gmail,
// Twitter, Youtube, Tor Blog, BBC, Facebook, Slashdot, ESPN) plus the
// DeterLab kernel mirror of §5.2's bandwidth experiment. Each site has a
// traffic/caching profile, and — because this is a tracking-protection
// paper — a tracker's view: the per-visit log of (time, observed source
// address, cookie) that linkability tests and the Buddies metric inspect.
#ifndef SRC_WORKLOAD_WEBSITE_H_
#define SRC_WORKLOAD_WEBSITE_H_

#include <string>
#include <vector>

#include "src/net/simulation.h"

namespace nymix {

struct WebsiteProfile {
  std::string name;
  std::string domain;
  uint64_t page_bytes = 2 * kMiB;          // first page load
  uint64_t revisit_bytes = 1 * kMiB;       // subsequent loads (cached assets)
  uint64_t cache_first_bytes = 10 * kMiB;  // browser cache written on first visit
  uint64_t cache_revisit_bytes = 1 * kMiB;
  double cache_entropy = 0.85;             // compressibility of cached assets
  bool supports_login = false;
  uint64_t memory_dirty_bytes = 40 * kMiB;  // browser heap growth per visit
  // Hostile tracker: plants an evercookie [38] — a stain persisted outside
  // the cookie jar (cache + Flash-LSO store) that survives "clear cookies"
  // and re-identifies the browser instance across sessions (§3.3).
  bool plants_evercookie = false;
  // Streaming: a visit fetches this many media segments, each of
  // revisit_bytes, on top of the page itself (1 = plain page load). Long
  // steady transfers are the most correlatable traffic shape the adversary
  // suite models.
  int stream_segments = 1;
  // Large upload: a visit additionally uploads this many bytes (photo
  // share / backup). Uploads pass the SaniVM scrub pipeline, so they are
  // where a disabled scrub leaks EXIF stains.
  uint64_t upload_bytes = 0;
};

// The paper's visit order: "Gmail, Twitter, Youtube, Tor Blog, BBC,
// Facebook, Slashdot, and ESPN".
std::vector<WebsiteProfile> PaperWebsiteProfiles();

// Beyond the paper's browse set (ROADMAP item 4): a segment-streaming video
// site and a large-upload share site, the two traffic shapes the adversary
// bench sweeps against. Deterministic fixed profiles like the paper set.
WebsiteProfile StreamingWebsiteProfile();
WebsiteProfile LargeUploadWebsiteProfile();

class Website : public InternetHost {
 public:
  Website(Simulation& sim, WebsiteProfile profile);

  const WebsiteProfile& profile() const { return profile_; }
  Ipv4Address ip() const { return ip_; }
  Link* access_link() const { return access_link_; }

  struct VisitRecord {
    SimTime time = 0;
    Ipv4Address observed_source;
    std::string cookie;
    std::string account;     // empty unless logged in
    std::string evercookie;  // empty unless the site plants one (§3.3 stain)
  };

  void RecordVisit(SimTime time, Ipv4Address source, std::string cookie, std::string account,
                   std::string evercookie = "");
  const std::vector<VisitRecord>& tracker_log() const { return tracker_log_; }
  size_t visit_count() const { return tracker_log_.size(); }

  // Tracker analysis helper: distinct (cookie, source) identities seen. A
  // working Nymix shows this site one identity per nym and nothing linking
  // them.
  size_t DistinctCookies() const;
  size_t DistinctSources() const;
  // Stain-based linking: sessions sharing an evercookie are the same
  // browser instance no matter what the cookie jar says.
  size_t DistinctEvercookies() const;

  void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override;

 private:
  WebsiteProfile profile_;
  Link* access_link_;
  Ipv4Address ip_;
  std::vector<VisitRecord> tracker_log_;
};

// Owns one Website per profile; registered on the simulation's Internet.
class WebsiteDirectory {
 public:
  WebsiteDirectory(Simulation& sim, const std::vector<WebsiteProfile>& profiles);

  Website& ByName(const std::string& name);
  Website& ByDomain(const std::string& domain);
  std::vector<Website*> all();

 private:
  std::vector<std::unique_ptr<Website>> sites_;
};

}  // namespace nymix

#endif  // SRC_WORKLOAD_WEBSITE_H_
