#include "src/adversary/attacks.h"

#include <algorithm>

namespace nymix {

double PairCounts::tpr() const {
  uint64_t p = positives();
  return p == 0 ? 0.0 : static_cast<double>(true_positive) / static_cast<double>(p);
}

double PairCounts::fpr() const {
  uint64_t n = negatives();
  return n == 0 ? 0.0 : static_cast<double>(false_positive) / static_cast<double>(n);
}

double PairCounts::advantage() const { return std::max(0.0, tpr() - fpr()); }

namespace {

// Cookie probe: linked if any canonical site saw the same cookie value
// from both instances.
bool CookiesLink(const NymRecord& a, const NymRecord& b) {
  for (const auto& [site, cookie] : a.cookies) {
    auto it = b.cookies.find(site);
    if (it != b.cookies.end() && !cookie.empty() && cookie == it->second) {
      return true;
    }
  }
  return false;
}

// Exit probe: linked if the maps share >= min_common sites and agree on
// every shared one.
bool ExitsLink(const NymRecord& a, const NymRecord& b, size_t min_common) {
  size_t common = 0;
  for (const auto& [site, exit] : a.exits) {
    auto it = b.exits.find(site);
    if (it == b.exits.end()) {
      continue;
    }
    if (it->second != exit) {
      return false;
    }
    ++common;
  }
  return common >= min_common;
}

bool StainsLink(const NymRecord& a, const NymRecord& b) {
  return !a.stain.empty() && a.stain == b.stain;
}

void Score(PairCounts& counts, bool linked, bool same_host) {
  if (same_host) {
    linked ? ++counts.true_positive : ++counts.false_negative;
  } else {
    linked ? ++counts.false_positive : ++counts.true_negative;
  }
}

}  // namespace

LinkageSummary LinkNyms(const std::vector<NymRecord>& nyms, size_t min_common_sites) {
  LinkageSummary summary;
  uint64_t positives = 0;
  uint64_t positives_linked = 0;
  for (size_t i = 0; i < nyms.size(); ++i) {
    for (size_t j = i + 1; j < nyms.size(); ++j) {
      const NymRecord& a = nyms[i];
      const NymRecord& b = nyms[j];
      const bool same_host = a.host == b.host;
      const bool by_cookie = CookiesLink(a, b);
      const bool by_exit = ExitsLink(a, b, min_common_sites);
      const bool by_stain = StainsLink(a, b);
      Score(summary.cookie, by_cookie, same_host);
      Score(summary.exit_fingerprint, by_exit, same_host);
      Score(summary.stain, by_stain, same_host);
      if (same_host) {
        ++positives;
        if (by_cookie || by_exit || by_stain) {
          ++positives_linked;
        }
      }
    }
  }
  summary.advantage = std::max({summary.cookie.advantage(), summary.exit_fingerprint.advantage(),
                                summary.stain.advantage()});
  summary.linkage_probability =
      positives == 0 ? 0.0 : static_cast<double>(positives_linked) / static_cast<double>(positives);
  return summary;
}

AnonymitySummary IntersectLifetimes(const std::vector<NymRecord>& nyms,
                                    const std::vector<FlowObservation>& exit_flows) {
  AnonymitySummary summary;
  double total = 0.0;
  double min_set = 0.0;
  bool first = true;
  for (const FlowObservation& obs : exit_flows) {
    if (!obs.completed) {
      continue;
    }
    uint64_t alive = 0;
    for (const NymRecord& nym : nyms) {
      if (nym.born <= obs.ended_at && obs.ended_at <= nym.died) {
        ++alive;
      }
    }
    ++summary.samples;
    total += static_cast<double>(alive);
    if (first || static_cast<double>(alive) < min_set) {
      min_set = static_cast<double>(alive);
      first = false;
    }
  }
  if (summary.samples > 0) {
    summary.min_set = min_set;
    summary.mean_set = total / static_cast<double>(summary.samples);
  }
  return summary;
}

FlowCorrelationSummary CorrelateFlows(const std::vector<FlowObservation>& entry_flows,
                                      const std::vector<FlowObservation>& exit_flows,
                                      SimDuration window) {
  FlowCorrelationSummary summary;
  for (const FlowObservation& exit : exit_flows) {
    if (!exit.completed) {
      continue;
    }
    ++summary.exit_flows;
    uint64_t candidates = 0;
    bool candidate_is_true = false;
    for (const FlowObservation& entry : entry_flows) {
      if (!entry.completed || entry.wire_bytes != exit.wire_bytes) {
        continue;
      }
      SimTime delta = entry.ended_at > exit.ended_at ? entry.ended_at - exit.ended_at
                                                     : exit.ended_at - entry.ended_at;
      if (delta > window) {
        continue;
      }
      ++candidates;
      if (candidates == 1) {
        candidate_is_true = entry.flow_id == exit.flow_id;
      }
    }
    if (candidates == 0) {
      ++summary.unmatched;
    } else if (candidates > 1) {
      ++summary.ambiguous;
    } else if (candidate_is_true) {
      ++summary.matched_correct;
    } else {
      ++summary.matched_wrong;
    }
  }
  summary.accuracy = summary.exit_flows == 0
                         ? 0.0
                         : static_cast<double>(summary.matched_correct) /
                               static_cast<double>(summary.exit_flows);
  return summary;
}

}  // namespace nymix
