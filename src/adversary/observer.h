// PassiveObserver: one adversary vantage point clamped onto a Link via the
// metadata-only tap interface (src/net/tap.h). The paper's threat model
// (§2) grants the adversary the wire, not the endpoint: an observer at an
// entry position (the host's shaped uplink — where an ISP or local-network
// attacker sits) or an exit position (a destination's access link — where
// a malicious exit relay or server-side tap sits) sees timing, sizes and
// endpoints, and nothing else.
//
// Observers are passive by contract: they accumulate observations into
// plain vectors and never touch simulation state from the hooks. All
// analysis happens post-run (src/adversary/attacks.h), serially, in
// vantage order — so adversary metrics are byte-identical across thread
// counts like every other output.
#ifndef SRC_ADVERSARY_OBSERVER_H_
#define SRC_ADVERSARY_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "src/net/tap.h"

namespace nymix {

enum class TapSite { kEntry, kExit };
std::string_view TapSiteName(TapSite site);

// One bulk flow as seen from one vantage point. Derived purely from the
// tap's FlowMetadata — the analyzer side never learns more than a wire tap
// could.
struct FlowObservation {
  int vantage = 0;  // observer ordinal (entry: host index; exit: site ordinal)
  TapSite site = TapSite::kEntry;
  uint64_t flow_id = 0;  // simulator key; analyzers treat it as ground truth only
  SimTime created_at = 0;
  SimTime ended_at = 0;
  uint64_t wire_bytes = 0;
  bool completed = false;
};

class PassiveObserver : public LinkTap {
 public:
  PassiveObserver(TapSite site, int vantage) : site_(site), vantage_(vantage) {}

  void OnPacket(const Link& link, const PacketMetadata& meta) override;
  void OnFlowEnded(const Link& link, const FlowMetadata& meta) override;

  TapSite site() const { return site_; }
  int vantage() const { return vantage_; }
  const std::vector<FlowObservation>& flows() const { return flows_; }
  uint64_t packets_seen() const { return packets_seen_; }
  uint64_t bytes_seen() const { return bytes_seen_; }

 private:
  TapSite site_;
  int vantage_;
  std::vector<FlowObservation> flows_;
  uint64_t packets_seen_ = 0;
  uint64_t bytes_seen_ = 0;
};

}  // namespace nymix

#endif  // SRC_ADVERSARY_OBSERVER_H_
