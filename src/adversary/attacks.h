// Attack analyzers: the computations a real adversary would run over what
// the taps and colluding trackers collected. Three linkage probes score
// unordered pairs of nym instances; ground truth (which instances belong to
// the same user/host) comes from the harness, never from the attack.
//
//   * Cookie linkage — colluding trackers compare the cookie each browser
//     presented for the same canonical site. Clean Nymix gives every nym a
//     fresh jar, so no two instances ever share a value; a bled jar (the
//     kSharedCookieJar plant) links same-host instances immediately (§3.3).
//   * Exit-fingerprint linkage — a tracker observing which exit relay each
//     session arrived from builds a site -> exit map per session. Clean
//     clients draw exits independently per destination, so two maps agree
//     on all sites only by chance; pinned exits (kReusedCircuit) make
//     same-host maps identical (§3.5's stream-isolation argument).
//   * Stain linkage — uploads that skipped the SaniVM scrub carry the
//     device's EXIF body serial (§3.6, the paper's Bob scenario); two
//     sessions uploading the same serial are the same device.
//
// Attacker advantage per probe is max(0, TPR - FPR) over unordered pairs —
// how much better than random guessing the probe separates same-host pairs
// from cross-host pairs. The overall advantage is the max over probes: an
// adversary runs every attack and keeps what works.
//
// Intersection and flow-correlation attacks consume tap observations
// directly. They are reported as metrics (anonymity-set size over virtual
// time, attribution accuracy) but deliberately kept out of the pair
// advantage: in a simulated network where one Flow object traverses the
// whole route, entry/exit timing correlation is structurally perfect and
// would mask the isolation signal the oracle tests pin.
#ifndef SRC_ADVERSARY_ATTACKS_H_
#define SRC_ADVERSARY_ATTACKS_H_

#include <map>
#include <string>
#include <vector>

#include "src/adversary/observer.h"

namespace nymix {

// Ground truth + per-attack evidence for one nym instance (one generation
// of one slot). Assembled by the experiment harness at churn time.
struct NymRecord {
  int host = 0;  // true identity: the physical machine (and user) behind it
  int slot = 0;
  int generation = 0;
  SimTime born = 0;
  SimTime died = 0;
  // Canonical site key -> cookie value the browser presented there.
  std::map<std::string, std::string> cookies;
  // Canonical site key -> exit relay index the session arrived from.
  std::map<std::string, size_t> exits;
  // EXIF body serial recovered from this instance's uploads ("" = none,
  // i.e. the scrub pipeline did its job or nothing was uploaded).
  std::string stain;
};

// Confusion counts over unordered pairs of nym instances. Positive class:
// the two instances share a host.
struct PairCounts {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t false_negative = 0;
  uint64_t true_negative = 0;

  uint64_t positives() const { return true_positive + false_negative; }
  uint64_t negatives() const { return false_positive + true_negative; }
  double tpr() const;
  double fpr() const;
  // max(0, TPR - FPR): advantage over a random guesser with the same
  // marginal link rate.
  double advantage() const;
};

struct LinkageSummary {
  PairCounts cookie;
  PairCounts exit_fingerprint;
  PairCounts stain;
  // Best probe's advantage; what the planted-leak oracles threshold on.
  double advantage = 0.0;
  // Fraction of same-host pairs linked by at least one probe.
  double linkage_probability = 0.0;
};

// Scores all three linkage probes over every unordered pair.
// `min_common_sites`: the exit-fingerprint probe only links a pair whose
// maps share at least this many sites AND agree on every shared site —
// fewer coincidences than an any-site-agrees rule by orders of magnitude.
LinkageSummary LinkNyms(const std::vector<NymRecord>& nyms, size_t min_common_sites);

// Intersection attack: for each completed exit-side flow, how many nym
// instances were alive when it ended? The minimum over observations is the
// churn-epoch anonymity set — the set an intersection attacker narrows a
// long-lived pseudonym down to (§3.5). A clean fleet must keep this floor
// high; the baseline test pins it.
struct AnonymitySummary {
  uint64_t samples = 0;
  double min_set = 0.0;
  double mean_set = 0.0;
};
AnonymitySummary IntersectLifetimes(const std::vector<NymRecord>& nyms,
                                    const std::vector<FlowObservation>& exit_flows);

// Windowed flow correlation: match each completed exit-side observation to
// entry-side observations with the same wire size ending within `window`.
// Accuracy counts exits whose sole candidate is the true flow; ambiguous
// exits had several candidates (the fair-share mixing the paper relies on).
struct FlowCorrelationSummary {
  uint64_t exit_flows = 0;
  uint64_t matched_correct = 0;  // unique candidate, and it was the true one
  uint64_t matched_wrong = 0;    // unique candidate, but a different flow
  uint64_t ambiguous = 0;        // multiple candidates in the window
  uint64_t unmatched = 0;        // no candidate (e.g. entry tap missing)
  double accuracy = 0.0;         // matched_correct / exit_flows
};
FlowCorrelationSummary CorrelateFlows(const std::vector<FlowObservation>& entry_flows,
                                      const std::vector<FlowObservation>& exit_flows,
                                      SimDuration window);

}  // namespace nymix

#endif  // SRC_ADVERSARY_ATTACKS_H_
