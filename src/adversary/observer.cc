#include "src/adversary/observer.h"

namespace nymix {

std::string_view TapSiteName(TapSite site) {
  switch (site) {
    case TapSite::kEntry:
      return "entry";
    case TapSite::kExit:
      return "exit";
  }
  return "unknown";
}

void PassiveObserver::OnPacket(const Link& link, const PacketMetadata& meta) {
  (void)link;
  ++packets_seen_;
  bytes_seen_ += meta.wire_bytes;
}

void PassiveObserver::OnFlowEnded(const Link& link, const FlowMetadata& meta) {
  (void)link;
  FlowObservation obs;
  obs.vantage = vantage_;
  obs.site = site_;
  obs.flow_id = meta.flow_id;
  obs.created_at = meta.created_at;
  obs.ended_at = meta.ended_at;
  obs.wire_bytes = meta.wire_bytes;
  obs.completed = meta.completed;
  flows_.push_back(obs);
  bytes_seen_ += meta.wire_bytes;
}

}  // namespace nymix
