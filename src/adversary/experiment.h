// AdversaryExperiment: a churning fleet of Nymix clusters instrumented
// with the adversary's taps, plus deliberately plantable isolation
// failures — the executable form of the paper's tracking-protection claim.
//
// Fleet shape mirrors ShardedFleet (src/core/fleet.h): N nyms over
// ceil(N / nyms_per_host) host clusters placed round-robin onto shards;
// every slot spawns, visits the workload's site list with think time,
// churns (terminate + replace) once per generation. On top of that:
//
//   * A PassiveObserver at every host uplink (entry vantage) and every
//     destination's access link (exit vantage).
//   * Per-cluster replicas of the workload's four sites (a shard's DNS is
//     cluster-local; names are prefixed "h<c>." so replicas coexist, while
//     the canonical site key — the profile name — stays cluster-invariant
//     for cross-host linkage analysis).
//   * A ground-truth NymRecord snapshotted at each churn: which cookies,
//     exit indices, and upload stains this instance actually exposed.
//   * Optional leak plants — the isolation failures the oracles must catch:
//       kSharedCookieJar  — same-host nyms import one cookie jar (§3.3)
//       kReusedCircuit    — same-host nyms pin exits per destination (§3.5)
//       kDisabledScrub    — uploads skip the SaniVM and keep EXIF (§3.6)
//
// Analyze() runs the attack suite post-run, serially, over structures
// ordered by (cluster, slot, generation) — so the AdversaryReport, and the
// adversary.* metric family ExportMetrics emits, are byte-identical across
// thread counts.
#ifndef SRC_ADVERSARY_EXPERIMENT_H_
#define SRC_ADVERSARY_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/adversary/attacks.h"
#include "src/adversary/observer.h"
#include "src/core/nym_manager.h"
#include "src/parallel/sharded_sim.h"
#include "src/workload/website.h"

namespace nymix {

enum class LeakPlant { kNone, kSharedCookieJar, kReusedCircuit, kDisabledScrub };
std::string_view LeakPlantName(LeakPlant plant);

// Which four sites the fleet visits. Browse is the paper-style page set;
// streaming and upload swap in the ROADMAP item 4 profiles; mixed carries
// one of each shape (and is what the catch/clear test matrix uses, since
// the scrub plant only leaks through uploads).
enum class WorkloadMix { kBrowse, kStreaming, kUpload, kMixed };
std::string_view WorkloadMixName(WorkloadMix mix);

struct AdversaryOptions {
  int nym_count = 8;
  int nyms_per_host = 2;
  int generations = 2;
  // Passes over the site list per generation (4 visits per pass).
  int passes_per_generation = 1;
  WorkloadMix workload = WorkloadMix::kMixed;
  LeakPlant plant = LeakPlant::kNone;
  // Correlation window for the flow-matching attack.
  SimDuration correlation_window = Millis(500);
  // Exit-fingerprint probe: minimum shared sites for a verdict (attacks.h).
  size_t min_common_sites = 3;
  // Per-cluster Tor deployment. 4 exits x 4 sites makes a coincidental
  // full-map agreement a 1-in-256 event per pair — rare enough that the
  // clean fleet's exit advantage stays ~0 at any test scale.
  TorNetwork::Config tor = MakeAdversaryTorConfig();

  static TorNetwork::Config MakeAdversaryTorConfig() {
    TorNetwork::Config config;
    config.relay_count = 8;
    config.guard_count = 2;
    config.exit_count = 4;
    return config;
  }
};

// Quantified leak metrics — what the oracles threshold and the ablation
// sweeps emit.
struct AdversaryReport {
  LinkageSummary linkage;
  AnonymitySummary anonymity;
  FlowCorrelationSummary correlation;
  uint64_t nym_instances = 0;
  uint64_t entry_flows = 0;
  uint64_t exit_flows = 0;
  uint64_t tap_packets = 0;
  uint64_t tap_bytes = 0;
};

class AdversaryExperiment {
 public:
  // Builds every cluster, site replica, and tap up front. `sharded` must
  // outlive the experiment; its plan fixes the cluster partition.
  AdversaryExperiment(ShardedSimulation& sharded, const AdversaryOptions& options, uint64_t seed);
  ~AdversaryExperiment();

  // Spawns every slot's first nym and drives the executor to quiescence.
  void Run();

  // Runs every attack over the collected observations (call after Run).
  AdversaryReport Analyze() const;

  // Emits `report` as the adversary.* metric family (gauges for rates and
  // advantages, counters for observation volumes).
  static void ExportMetrics(const AdversaryReport& report, MetricsRegistry& metrics);

  // Post-run aggregates, summed in shard-id order.
  uint64_t visits() const;
  uint64_t churns() const;
  int host_count() const { return static_cast<int>(clusters_.size()); }

  // Tap access for the metadata-only negative tests.
  const PassiveObserver& entry_observer(int host) const {
    return *clusters_[static_cast<size_t>(host)]->entry_tap;
  }

 private:
  struct SiteReplica {
    std::unique_ptr<Website> site;
    std::unique_ptr<PassiveObserver> exit_tap;
  };

  struct Cluster {
    int shard = 0;
    std::unique_ptr<HostMachine> host;
    std::unique_ptr<TorNetwork> tor;
    std::unique_ptr<NymManager> manager;
    std::vector<SiteReplica> sites;  // one per workload site, this cluster's replica
    std::unique_ptr<PassiveObserver> entry_tap;
  };

  struct Slot {
    int cluster = 0;
    Nym* nym = nullptr;
    SimTime born = 0;
    int visits_done = 0;  // within the current generation
    int generation = 0;
    int visit_retries = 0;
    int create_retries = 0;
    bool finished = false;
    int epoch = 0;
  };

  struct ShardState {
    Prng think_prng;
    int total_slots = 0;
    int finished_slots = 0;
    uint64_t visits = 0;
    uint64_t churns = 0;

    explicit ShardState(uint64_t seed) : think_prng(seed) {}
  };

  Cluster& ClusterOf(int slot) {
    return *clusters_[static_cast<size_t>(slots_[static_cast<size_t>(slot)].cluster)];
  }
  ShardState& ShardOf(int slot) {
    return *shard_states_[static_cast<size_t>(ClusterOf(slot).shard)];
  }

  void SpawnNym(int slot);
  void VisitNext(int slot, int epoch);
  void Advance(int slot, int epoch);
  void FinishSlot(int slot);
  void AbandonSlot(int slot);
  SimDuration ThinkTime(ShardState& shard);
  // Ground truth at churn time: cookies, exit map, upload stain.
  NymRecord SnapshotNym(int slot);

  ShardedSimulation& sharded_;
  AdversaryOptions options_;
  uint64_t seed_ = 0;
  std::vector<WebsiteProfile> site_profiles_;  // canonical (unprefixed) workload
  std::vector<std::unique_ptr<Cluster>> clusters_;
  std::vector<Slot> slots_;
  std::vector<std::unique_ptr<ShardState>> shard_states_;
  // Ground truth per slot, appended in generation order (shard-local
  // writes; flattened slot-major for analysis).
  std::vector<std::vector<NymRecord>> records_by_slot_;
};

}  // namespace nymix

#endif  // SRC_ADVERSARY_EXPERIMENT_H_
