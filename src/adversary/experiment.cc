#include "src/adversary/experiment.h"

#include <algorithm>

#include "src/anon/tor.h"
#include "src/sanitize/jpeg.h"
#include "src/sanitize/scrubber.h"
#include "src/util/prng.h"

namespace nymix {
namespace {

// Same retry budgets as the core fleet: generous against transient failure,
// finite against a schedule that never heals.
constexpr int kMaxVisitRetries = 64;
constexpr int kMaxCreateRetries = 8;

// Every cluster boots from a copy of the same release stick (content is a
// pure function of these, like src/core/fleet).
constexpr const char* kImageName = "nymix";
constexpr uint64_t kImageSeed = 42;
constexpr uint64_t kImageSizeBytes = 64 * kMiB;

// The four-site workloads. Canonical names/domains; each cluster registers
// replicas under "h<c>-" / "h<c>." prefixes (a shard's DNS would otherwise
// overwrite duplicate names across clusters). Distinct byte sizes per site
// keep the size dimension of flow correlation meaningful.
WebsiteProfile BrowseProfile(const char* name, const char* domain, uint64_t page_kib,
                             uint64_t revisit_kib) {
  WebsiteProfile profile;
  profile.name = name;
  profile.domain = domain;
  profile.page_bytes = page_kib * kKiB;
  profile.revisit_bytes = revisit_kib * kKiB;
  profile.cache_first_bytes = 3 * kMiB;
  profile.cache_revisit_bytes = 512 * kKiB;
  profile.memory_dirty_bytes = 8 * kMiB;
  return profile;
}

std::vector<WebsiteProfile> WorkloadProfiles(WorkloadMix mix) {
  WebsiteProfile alpha = BrowseProfile("alpha", "alpha.example.org", 900, 500);
  WebsiteProfile beta = BrowseProfile("beta", "beta.example.org", 1300, 700);
  WebsiteProfile gamma = BrowseProfile("gamma", "gamma.example.org", 700, 350);
  WebsiteProfile delta = BrowseProfile("delta", "delta.example.org", 1100, 600);
  switch (mix) {
    case WorkloadMix::kBrowse:
      return {alpha, beta, gamma, delta};
    case WorkloadMix::kStreaming:
      return {alpha, beta, gamma, StreamingWebsiteProfile()};
    case WorkloadMix::kUpload:
      return {alpha, beta, gamma, LargeUploadWebsiteProfile()};
    case WorkloadMix::kMixed:
      return {alpha, beta, StreamingWebsiteProfile(), LargeUploadWebsiteProfile()};
  }
  return {alpha, beta, gamma, delta};
}

}  // namespace

std::string_view LeakPlantName(LeakPlant plant) {
  switch (plant) {
    case LeakPlant::kNone:
      return "none";
    case LeakPlant::kSharedCookieJar:
      return "shared_cookie_jar";
    case LeakPlant::kReusedCircuit:
      return "reused_circuit";
    case LeakPlant::kDisabledScrub:
      return "disabled_scrub";
  }
  return "unknown";
}

std::string_view WorkloadMixName(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kBrowse:
      return "browse";
    case WorkloadMix::kStreaming:
      return "streaming";
    case WorkloadMix::kUpload:
      return "upload";
    case WorkloadMix::kMixed:
      return "mixed";
  }
  return "unknown";
}

AdversaryExperiment::AdversaryExperiment(ShardedSimulation& sharded,
                                         const AdversaryOptions& options, uint64_t seed)
    : sharded_(sharded), options_(options), seed_(seed) {
  NYMIX_CHECK(options_.nym_count >= 1);
  NYMIX_CHECK(options_.nyms_per_host >= 1);
  NYMIX_CHECK(options_.generations >= 1);
  NYMIX_CHECK(options_.passes_per_generation >= 1);
  site_profiles_ = WorkloadProfiles(options_.workload);

  const int shards = sharded_.shard_count();
  for (int s = 0; s < shards; ++s) {
    shard_states_.push_back(std::make_unique<ShardState>(
        Mix64(seed ^ Fnv1a64("adversary.think") ^ static_cast<uint64_t>(s))));
  }

  // One base image per shard, as in src/core/fleet: the Merkle-verification
  // cache must not be shared across concurrently-running shards.
  std::vector<std::shared_ptr<BaseImage>> images;
  for (int s = 0; s < shards; ++s) {
    images.push_back(BaseImage::CreateDistribution(kImageName, kImageSeed, kImageSizeBytes));
  }

  const int hosts = (options_.nym_count + options_.nyms_per_host - 1) / options_.nyms_per_host;
  for (int c = 0; c < hosts; ++c) {
    const int shard = c % shards;
    Simulation& sim = sharded_.shard(shard);
    auto cluster = std::make_unique<Cluster>();
    cluster->shard = shard;
    cluster->host = std::make_unique<HostMachine>(sim, HostConfig{});
    cluster->tor = std::make_unique<TorNetwork>(sim, options_.tor);
    cluster->manager = std::make_unique<NymManager>(
        *cluster->host, images[static_cast<size_t>(shard)], cluster->tor.get(), nullptr);
    const std::string prefix = "h" + std::to_string(c);
    for (size_t i = 0; i < site_profiles_.size(); ++i) {
      WebsiteProfile replica = site_profiles_[i];
      replica.name = prefix + "-" + replica.name;
      replica.domain = prefix + "." + replica.domain;
      SiteReplica entry;
      entry.site = std::make_unique<Website>(sim, replica);
      entry.exit_tap = std::make_unique<PassiveObserver>(
          TapSite::kExit, c * static_cast<int>(site_profiles_.size()) + static_cast<int>(i));
      entry.site->access_link()->AttachTap(entry.exit_tap.get());
      cluster->sites.push_back(std::move(entry));
    }
    cluster->entry_tap = std::make_unique<PassiveObserver>(TapSite::kEntry, c);
    cluster->host->uplink()->AttachTap(cluster->entry_tap.get());
    clusters_.push_back(std::move(cluster));
  }

  slots_.resize(static_cast<size_t>(options_.nym_count));
  records_by_slot_.resize(static_cast<size_t>(options_.nym_count));
  for (int i = 0; i < options_.nym_count; ++i) {
    slots_[static_cast<size_t>(i)].cluster = i / options_.nyms_per_host;
    ++ShardOf(i).total_slots;
  }
}

AdversaryExperiment::~AdversaryExperiment() = default;

void AdversaryExperiment::Run() {
  for (int i = 0; i < options_.nym_count; ++i) {
    SpawnNym(i);
  }
  sharded_.RunUntilIdle();
  for (int s = 0; s < sharded_.shard_count(); ++s) {
    const ShardState& state = *shard_states_[static_cast<size_t>(s)];
    NYMIX_CHECK(state.finished_slots == state.total_slots);
  }
}

SimDuration AdversaryExperiment::ThinkTime(ShardState& shard) {
  return Millis(500 + static_cast<SimDuration>(shard.think_prng.NextBelow(1500)));
}

void AdversaryExperiment::SpawnNym(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  const int epoch = state.epoch;
  const int host = state.cluster;
  std::string name = "adv-h" + std::to_string(host) + "-s" +
                     std::to_string(slot % options_.nyms_per_host) + "-g" +
                     std::to_string(state.generation);
  NymManager::CreateOptions create;
  if (options_.plant == LeakPlant::kReusedCircuit) {
    // Same-host nyms share the pin key, so they land on the same exit per
    // destination — the stream-isolation failure the exit probe catches.
    create.circuit_reuse_key =
        Mix64(seed_ ^ Fnv1a64("adversary.reuse") ^ static_cast<uint64_t>(host));
  }
  ClusterOf(slot).manager->CreateNym(
      name, create, [this, slot, epoch](Result<Nym*> nym, NymStartupReport) {
        Slot& state = slots_[static_cast<size_t>(slot)];
        if (state.finished || state.epoch != epoch) {
          if (nym.ok()) {
            Status ignored = ClusterOf(slot).manager->TerminateNym(*nym);
            (void)ignored;
          }
          return;
        }
        ShardState& shard = ShardOf(slot);
        if (!nym.ok()) {
          if (++state.create_retries > kMaxCreateRetries) {
            AbandonSlot(slot);
            return;
          }
          sharded_.shard(ClusterOf(slot).shard)
              .loop()
              .ScheduleAfter(ThinkTime(shard), [this, slot] { SpawnNym(slot); });
          return;
        }
        state.create_retries = 0;
        state.nym = *nym;
        state.visits_done = 0;
        state.born = sharded_.shard(ClusterOf(slot).shard).now();
        if (options_.plant == LeakPlant::kSharedCookieJar) {
          // The bled jar: every nym on this host presents the same
          // host-scoped cookie values (a sync-service bleed, §3.3).
          Cluster& cluster = ClusterOf(slot);
          std::map<std::string, std::string> jar;
          for (size_t i = 0; i < cluster.sites.size(); ++i) {
            jar[cluster.sites[i].site->profile().domain] =
                "leak-h" + std::to_string(state.cluster) + "-" + site_profiles_[i].name;
          }
          state.nym->browser()->ImportCookies(jar);
        }
        VisitNext(slot, epoch);
      });
}

void AdversaryExperiment::VisitNext(int slot, int epoch) {
  Cluster& cluster = ClusterOf(slot);
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  Website& site =
      *cluster.sites[static_cast<size_t>(state.visits_done) % cluster.sites.size()].site;
  state.nym->browser()->Visit(site, [this, slot, epoch](Result<SimTime> done) {
    Cluster& cluster = ClusterOf(slot);
    ShardState& shard = *shard_states_[static_cast<size_t>(cluster.shard)];
    Slot& state = slots_[static_cast<size_t>(slot)];
    if (state.finished || state.epoch != epoch) {
      return;
    }
    if (!done.ok()) {
      if (++state.visit_retries > kMaxVisitRetries) {
        AbandonSlot(slot);
        return;
      }
      sharded_.shard(cluster.shard)
          .loop()
          .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { VisitNext(slot, epoch); });
      return;
    }
    state.visit_retries = 0;
    ++shard.visits;
    ++state.visits_done;
    sharded_.shard(cluster.shard)
        .loop()
        .ScheduleAfter(ThinkTime(shard), [this, slot, epoch] { Advance(slot, epoch); });
  });
}

NymRecord AdversaryExperiment::SnapshotNym(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  Cluster& cluster = ClusterOf(slot);
  NymRecord record;
  record.host = state.cluster;
  record.slot = slot;
  record.generation = state.generation;
  record.born = state.born;
  record.died = sharded_.shard(cluster.shard).now();

  BrowserModel* browser = state.nym->browser();
  Anonymizer* anonymizer = state.nym->anonymizer();
  TorClient* tor_client =
      anonymizer->kind() == AnonymizerKind::kTor ? static_cast<TorClient*>(anonymizer) : nullptr;
  bool uploaded = false;
  for (size_t i = 0; i < cluster.sites.size(); ++i) {
    const std::string& key = site_profiles_[i].name;  // canonical, cluster-invariant
    const std::string& domain = cluster.sites[i].site->profile().domain;
    if (browser->HasCookieFor(domain)) {
      record.cookies[key] = browser->CookieFor(domain);
    }
    if (tor_client != nullptr) {
      // Cached from the visits above — reading it back consumes no Prng.
      record.exits[key] = tor_client->ExitIndexForDestination(domain);
    }
    if (site_profiles_[i].upload_bytes > 0) {
      uploaded = true;
    }
  }

  if (uploaded) {
    // What the upload destination received: a photo from the host's one
    // camera. The clean pipeline routes it through the SaniVM scrub first
    // (§3.6); the plant ships it raw, serial and all.
    JpegFile photo;
    photo.image = Image::Solid(16, 16, 120, 100, 90);
    ExifData exif;
    exif.camera_make = "NymCam";
    exif.body_serial_number = "serial-h" + std::to_string(state.cluster);
    photo.exif = exif;
    Bytes wire = EncodeJpeg(photo);
    if (options_.plant != LeakPlant::kDisabledScrub) {
      Prng scrub_prng(Mix64(seed_ ^ Fnv1a64("adversary.scrub") ^
                            (static_cast<uint64_t>(slot) << 8) ^
                            static_cast<uint64_t>(state.generation)));
      auto scrubbed = ScrubFile(wire, ScrubOptions{}, scrub_prng);
      NYMIX_CHECK_MSG(scrubbed.ok(), "upload scrub failed");
      wire = std::move(scrubbed->data);
    }
    auto received = DecodeJpeg(wire);
    if (received.ok() && received->exif.has_value() &&
        received->exif->body_serial_number.has_value()) {
      record.stain = *received->exif->body_serial_number;
    }
  }
  return record;
}

void AdversaryExperiment::Advance(int slot, int epoch) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  if (state.finished || state.epoch != epoch) {
    return;
  }
  const int target = options_.passes_per_generation * static_cast<int>(site_profiles_.size());
  if (state.visits_done < target) {
    VisitNext(slot, epoch);
    return;
  }
  // Churn boundary: snapshot what this instance exposed, then wipe it.
  records_by_slot_[static_cast<size_t>(slot)].push_back(SnapshotNym(slot));
  ++state.generation;
  Status terminated = ClusterOf(slot).manager->TerminateNym(state.nym);
  NYMIX_CHECK_MSG(terminated.ok(), terminated.ToString().c_str());
  state.nym = nullptr;
  if (state.generation >= options_.generations) {
    FinishSlot(slot);
    return;
  }
  ++ShardOf(slot).churns;
  SpawnNym(slot);
}

void AdversaryExperiment::AbandonSlot(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  state.finished = true;
  if (state.nym != nullptr) {
    Status ignored = ClusterOf(slot).manager->TerminateNym(state.nym);
    (void)ignored;
    state.nym = nullptr;
  }
  FinishSlot(slot);
}

void AdversaryExperiment::FinishSlot(int slot) {
  Slot& state = slots_[static_cast<size_t>(slot)];
  state.finished = true;
  ShardState& shard = ShardOf(slot);
  ++shard.finished_slots;
}

AdversaryReport AdversaryExperiment::Analyze() const {
  // Flatten in (cluster, slot, generation) order — slots are already
  // cluster-major, and per-slot records are generation-ordered.
  std::vector<NymRecord> records;
  for (const auto& slot_records : records_by_slot_) {
    records.insert(records.end(), slot_records.begin(), slot_records.end());
  }
  std::vector<FlowObservation> entry_flows;
  std::vector<FlowObservation> exit_flows;
  uint64_t tap_packets = 0;
  uint64_t tap_bytes = 0;
  for (const auto& cluster : clusters_) {
    const auto& entry = cluster->entry_tap->flows();
    entry_flows.insert(entry_flows.end(), entry.begin(), entry.end());
    tap_packets += cluster->entry_tap->packets_seen();
    tap_bytes += cluster->entry_tap->bytes_seen();
    for (const auto& replica : cluster->sites) {
      const auto& exit = replica.exit_tap->flows();
      exit_flows.insert(exit_flows.end(), exit.begin(), exit.end());
      tap_packets += replica.exit_tap->packets_seen();
      tap_bytes += replica.exit_tap->bytes_seen();
    }
  }

  AdversaryReport report;
  report.linkage = LinkNyms(records, options_.min_common_sites);
  report.anonymity = IntersectLifetimes(records, exit_flows);
  report.correlation = CorrelateFlows(entry_flows, exit_flows, options_.correlation_window);
  report.nym_instances = records.size();
  report.entry_flows = entry_flows.size();
  report.exit_flows = exit_flows.size();
  report.tap_packets = tap_packets;
  report.tap_bytes = tap_bytes;
  return report;
}

void AdversaryExperiment::ExportMetrics(const AdversaryReport& report, MetricsRegistry& metrics) {
  metrics.GetGauge("adversary.advantage.cookie")->Set(report.linkage.cookie.advantage());
  metrics.GetGauge("adversary.advantage.exit_fingerprint")
      ->Set(report.linkage.exit_fingerprint.advantage());
  metrics.GetGauge("adversary.advantage.stain")->Set(report.linkage.stain.advantage());
  metrics.GetGauge("adversary.advantage.overall")->Set(report.linkage.advantage);
  metrics.GetGauge("adversary.linkage_probability")->Set(report.linkage.linkage_probability);
  metrics.GetGauge("adversary.anonymity_set.min")->Set(report.anonymity.min_set);
  metrics.GetGauge("adversary.anonymity_set.mean")->Set(report.anonymity.mean_set);
  metrics.GetGauge("adversary.flowcorr.accuracy")->Set(report.correlation.accuracy);
  metrics.GetCounter("adversary.flowcorr.matched")->Increment(report.correlation.matched_correct);
  metrics.GetCounter("adversary.flowcorr.ambiguous")->Increment(report.correlation.ambiguous);
  metrics.GetCounter("adversary.flowcorr.unmatched")->Increment(report.correlation.unmatched);
  metrics.GetCounter("adversary.pairs.positive")->Increment(report.linkage.cookie.positives());
  metrics.GetCounter("adversary.pairs.negative")->Increment(report.linkage.cookie.negatives());
  metrics.GetCounter("adversary.nym_instances")->Increment(report.nym_instances);
  metrics.GetCounter("adversary.flows.entry")->Increment(report.entry_flows);
  metrics.GetCounter("adversary.flows.exit")->Increment(report.exit_flows);
  metrics.GetCounter("adversary.taps.packets")->Increment(report.tap_packets);
  metrics.GetCounter("adversary.taps.bytes")->Increment(report.tap_bytes);
}

uint64_t AdversaryExperiment::visits() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->visits;
  }
  return total;
}

uint64_t AdversaryExperiment::churns() const {
  uint64_t total = 0;
  for (const auto& state : shard_states_) {
    total += state->churns;
  }
  return total;
}

}  // namespace nymix
