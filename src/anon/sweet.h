// SWEET model (§4.1): "Serving the Web by Exploiting Email Tunnels" — the
// paper's own implementation of Houmansadr et al.'s circumvention tool.
// Web traffic is wrapped in email messages exchanged with a benign mail
// provider, so the cost model is dominated by mail-spool batching latency
// and MIME/base64 expansion, not bandwidth.
#ifndef SRC_ANON_SWEET_H_
#define SRC_ANON_SWEET_H_

#include "src/anon/anonymizer.h"

namespace nymix {

class SweetTunnel : public Anonymizer {
 public:
  struct Config {
    SimDuration mail_batch_latency = SecondsF(1.5);  // spool polling interval
    uint64_t mail_bandwidth_bps = 2'000'000;
    double mime_overhead = 1.37;  // base64 + headers
    SimDuration account_setup = SecondsF(1.0);
  };

  SweetTunnel(ClientAttachment attachment, uint64_t instance_id)
      : SweetTunnel(attachment, instance_id, Config{}) {}
  SweetTunnel(ClientAttachment attachment, uint64_t instance_id, Config config);

  AnonymizerKind kind() const override { return AnonymizerKind::kSweet; }
  std::string_view Name() const override { return "SWEET"; }
  void Start(std::function<void(Result<SimTime>)> ready) override;
  bool ready() const override { return ready_; }
  void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
             std::function<void(Result<FetchReceipt>)> done) override;
  double OverheadFactor() const override { return config_.mime_overhead; }
  bool ProtectsNetworkIdentity() const override { return true; }

  Ipv4Address mail_gateway_ip() const { return gateway_ip_; }

 private:
  class MailGateway : public InternetHost {
   public:
    void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override {
      (void)packet;
      (void)reply;
    }
  };

  ClientAttachment attachment_;
  Config config_;
  MailGateway gateway_;
  Ipv4Address gateway_ip_;
  Link* mail_link_;
  bool ready_ = false;
};

}  // namespace nymix

#endif  // SRC_ANON_SWEET_H_
