// The pluggable anonymizer interface (§3.3/§4.1). An Anonymizer lives
// inside a nym's CommVM; the AnonVM's traffic reaches the Internet only
// through it. Implementations: TorClient, DissentClient, IncognitoVpn,
// SweetTunnel, and ChainedAnonymizer for "best of both worlds" serial
// composition.
//
// An anonymizer is constructed around a ClientAttachment: the CommVM's
// outbound link plus the ordered client-side links its flows traverse
// (vm uplink, host uplink). Control traffic goes out as packets annotated
// with the anonymizer's name — which is exactly what the §5.1 uplink
// capture is allowed to see besides DHCP.
#ifndef SRC_ANON_ANONYMIZER_H_
#define SRC_ANON_ANONYMIZER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/net/simulation.h"
#include "src/unionfs/mem_fs.h"
#include "src/util/fault.h"

namespace nymix {

enum class AnonymizerKind { kIncognito, kTor, kDissent, kSweet, kChained };
std::string_view AnonymizerKindName(AnonymizerKind kind);

struct ClientAttachment {
  Simulation* sim = nullptr;
  // The CommVM's outbound link into the host router (packets: SendFromA).
  Link* vm_uplink = nullptr;
  // Ordered links client flows traverse toward the Internet.
  std::vector<Link*> client_links;
  // The host's public address — what a destination sees when the
  // anonymizer does NOT protect network identity (incognito mode).
  Ipv4Address host_public_ip;
};

// Result of a completed anonymous fetch, for linkability analysis.
struct FetchReceipt {
  SimTime completed_at = 0;
  // The network identity the destination observed (exit relay, VPN address,
  // the user's own address for incognito...). Linking two nyms is exactly
  // the question of whether these correlate.
  Ipv4Address observed_source;
};

class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  virtual AnonymizerKind kind() const = 0;
  virtual std::string_view Name() const = 0;

  // Bootstraps the tool (directory download, circuit build, DC-net join).
  // `ready` fires exactly once: with the time traffic could flow, or with a
  // Status when bootstrap failed for good (retries exhausted, superseded).
  // Implementations wrap `ready` in OnceCallback (src/util/fault.h), so a
  // dropped completion surfaces as kCancelled rather than silence.
  virtual void Start(std::function<void(Result<SimTime>)> ready) = 0;
  virtual bool ready() const = 0;

  // Anonymously performs a request/response exchange with `host` (DNS name
  // resolved inside the anonymizer — the AnonVM never does DNS, §4.1).
  virtual void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
                     std::function<void(Result<FetchReceipt>)> done) = 0;

  // Multiplicative wire overhead on fetched bytes (Tor cells: ~1.12).
  virtual double OverheadFactor() const = 0;

  // Whether the destination/network can see the user's real address.
  virtual bool ProtectsNetworkIdentity() const = 0;

  // Persist/restore long-lived state (Tor entry guards) into the CommVM
  // filesystem (§3.5: quasi-persistent nyms keep anonymizer state).
  virtual Status SaveState(MemFs& fs) const {
    (void)fs;
    return OkStatus();
  }
  virtual Status RestoreState(const MemFs& fs) {
    (void)fs;
    return OkStatus();
  }

  // Incoming packet from the CommVM NIC addressed to this anonymizer.
  virtual void HandlePacket(const Packet& packet) { (void)packet; }
};

}  // namespace nymix

#endif  // SRC_ANON_ANONYMIZER_H_
