// DNS handling in the CommVM (§4.1): "While Tor does not support UDP
// redirection, it has a built-in DNS server. Dissent, on the other hand,
// does have support for UDP redirection. For tools that support neither,
// Nymix would need to convert UDP-based DNS requests to TCP before
// transmitting them over the communication tool."
//
// The DnsProxy is the piece of CommVM plumbing that fields the AnonVM's
// UDP DNS queries and answers them by whichever path the active
// anonymizer affords. A resolver outside the anonymous channel would be
// the classic DNS leak; the proxy's counters make "zero direct queries"
// testable.
#ifndef SRC_ANON_DNS_PROXY_H_
#define SRC_ANON_DNS_PROXY_H_

#include <memory>

#include "src/anon/anonymizer.h"

namespace nymix {

class DnsProxy {
 public:
  enum class Transport {
    kAnonymizerNative,     // Tor: resolved at the exit via the circuit
    kUdpProxy,             // Dissent / incognito: UDP rides the tool
    kUdpToTcpConversion,   // SWEET etc.: wrap the query in a TCP stream
  };
  static std::string_view TransportName(Transport transport);

  // Picks the §4.1 path for the given tool.
  static Transport TransportFor(AnonymizerKind kind);

  DnsProxy(Simulation& sim, Anonymizer* anonymizer, Transport transport);

  Transport transport() const { return transport_; }

  // Resolves `name` anonymously. Timing: one anonymized round trip, plus
  // an extra stream-setup round trip for UDP->TCP conversion. Results are
  // cached per name (positive answers only), like a local stub resolver.
  void Resolve(const std::string& name, std::function<void(Result<Ipv4Address>)> done);

  uint64_t queries() const { return queries_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t conversions() const { return conversions_; }
  // Queries sent outside the anonymizer. Always zero by construction; the
  // counter exists so audits can assert it.
  uint64_t direct_leaks() const { return 0; }

 private:
  SimDuration LookupLatency() const;

  Simulation& sim_;
  Anonymizer* anonymizer_;
  Transport transport_;
  // Lifetime token for in-flight queries: a nym crash (§3.4 wipe) destroys
  // the proxy while resolve events are still queued on the loop; those
  // events must evaporate, not touch the freed proxy or call into the
  // equally-dead browser.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);
  std::map<std::string, Ipv4Address> cache_;
  uint64_t queries_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t conversions_ = 0;
};

}  // namespace nymix

#endif  // SRC_ANON_DNS_PROXY_H_
