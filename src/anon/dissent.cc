#include "src/anon/dissent.h"

namespace nymix {

void DissentServers::FrontServer::OnDatagram(const Packet& packet,
                                             const std::function<void(Packet)>& reply) {
  Packet response;
  response.src_ip = packet.dst_ip;
  response.src_port = packet.dst_port;
  response.dst_ip = packet.src_ip;
  response.dst_port = packet.src_port;
  response.protocol = IpProtocol::kTcp;
  response.payload = BytesFromString("ACK " + StringFromBytes(packet.payload));
  response.annotation = "Dissent";
  // Anytrust: every server must countersign, so one exchange costs a full
  // server-set round trip; modeled as a fixed processing delay.
  loop_.ScheduleAfter(Millis(60), [reply, response = std::move(response)]() mutable {
    reply(std::move(response));
  });
}

DissentServers::DissentServers(Simulation& sim, Config config)
    : sim_(sim), config_(config), front_(sim.loop()) {
  NYMIX_CHECK(config_.group_size > 0);
  // The group link is the DC-net's effective pipe: aggregate server
  // bandwidth divided by the member count, with round batching latency.
  group_link_ = sim.CreateLink("dissent-group", config_.round_interval,
                               config_.server_bandwidth_bps / config_.group_size);
  front_ip_ = sim.internet().RegisterHost("dissent.front.net", &front_, group_link_);
  dcnet_ = std::make_unique<DcNetGroup>(config_.group_size, /*slot_bytes=*/512,
                                        sim.prng().NextU64());
}

size_t DissentServers::AssignSlot(uint64_t client_nonce) {
  ++members_joined_;
  // The verifiable shuffle's output position for this member. Mix the nonce
  // so slots look random but are reproducible.
  return static_cast<size_t>(Mix64(client_nonce ^ members_joined_) % config_.group_size);
}

DissentClient::DissentClient(ClientAttachment attachment, DissentServers& servers, uint64_t seed)
    : attachment_(attachment), servers_(servers), prng_(seed) {
  NYMIX_CHECK(attachment_.sim != nullptr);
  NYMIX_CHECK(attachment_.vm_uplink != nullptr);
}

void DissentClient::SendJoinPacket(int exchange) {
  Packet packet;
  packet.src_ip = kGuestCommVmIp;
  packet.src_port = next_port_++;
  packet.dst_ip = servers_.front_ip();
  packet.dst_port = 12345;
  packet.protocol = IpProtocol::kTcp;
  packet.payload = BytesFromString("JOIN nonce=" + std::to_string(join_nonce_) +
                                   " exchange=" + std::to_string(exchange));
  packet.annotation = "Dissent";
  attachment_.vm_uplink->SendFromA(std::move(packet));
}

void DissentClient::Start(std::function<void(Result<SimTime>)> ready) {
  join_nonce_ = prng_.NextU64();
  on_joined_ = OnceCallback<Result<SimTime>>(std::move(ready));
  pending_exchange_ = 1;
  SendJoinPacket(pending_exchange_);
}

void DissentClient::HandlePacket(const Packet& packet) {
  std::string text = StringFromBytes(packet.payload);
  std::string expect = "nonce=" + std::to_string(join_nonce_) +
                       " exchange=" + std::to_string(pending_exchange_);
  if (pending_exchange_ == 0 || text.find(expect) == std::string::npos) {
    return;
  }
  // Three exchanges: identity registration, key agreement, shuffle commit.
  if (pending_exchange_ < 3) {
    ++pending_exchange_;
    SendJoinPacket(pending_exchange_);
    return;
  }
  pending_exchange_ = 0;
  member_index_ = servers_.members_joined();  // joining order = member id
  slot_ = servers_.AssignSlot(join_nonce_);
  attachment_.sim->loop().ScheduleAfter(servers_.config().key_ceremony, [this] {
    joined_ = true;
    if (on_joined_) {
      auto callback = std::move(on_joined_);
      on_joined_ = OnceCallback<Result<SimTime>>();
      callback(attachment_.sim->now());
    }
  });
}

void DissentClient::PostAnonymousMessage(ByteSpan message,
                                         std::function<void(Result<Bytes>)> done) {
  if (!joined_ || !member_index_.has_value()) {
    done(FailedPreconditionError("not joined to a DC-net group"));
    return;
  }
  DcNetGroup& group = servers_.dcnet();
  if (message.size() > group.slot_bytes()) {
    done(InvalidArgumentError("message exceeds the DC-net slot size"));
    return;
  }
  if (*member_index_ >= group.member_count()) {
    done(FailedPreconditionError("group is full beyond the DC-net size"));
    return;
  }
  uint64_t round = servers_.NextRoundNumber();
  size_t me = *member_index_;
  Bytes payload(message.begin(), message.end());
  // One round of wall-clock latency: everyone must transmit before the
  // servers can combine.
  attachment_.sim->loop().ScheduleAfter(
      servers_.config().round_interval, [&group, me, round, payload = std::move(payload),
                                         done = std::move(done)] {
        std::vector<size_t> slots = group.SlotPermutation(round);
        std::vector<Bytes> messages(group.member_count());
        messages[me] = payload;  // everyone else transmits cover traffic
        DcNetGroup::RoundResult result = group.RunRound(messages, slots, round);
        if (!result.corrupted_slots.empty()) {
          done(DataLossError("round disrupted"));
          return;
        }
        done(group.SlotPayload(result.plaintext, slots[me]));
      });
}

void DissentClient::Fetch(const std::string& host, uint64_t request_bytes,
                          uint64_t response_bytes,
                          std::function<void(Result<FetchReceipt>)> done) {
  if (!joined_) {
    done(FailedPreconditionError("not joined to a DC-net group"));
    return;
  }
  auto resolved = attachment_.sim->internet().Resolve(host);
  if (!resolved.ok()) {
    done(resolved.status());
    return;
  }
  std::vector<Link*> links = attachment_.client_links;
  links.push_back(servers_.group_link());
  if (Link* access = attachment_.sim->internet().AccessLink(*resolved);
      access != nullptr && access != servers_.group_link()) {
    links.push_back(access);
  }
  uint64_t total = request_bytes + response_bytes;
  // Round accounting: each round carries one slot's share of the group pipe.
  uint64_t round_capacity =
      servers_.config().server_bandwidth_bps / servers_.config().group_size / 8 *
      static_cast<uint64_t>(ToSeconds(servers_.config().round_interval) * 1000) / 1000;
  Ipv4Address observed = servers_.front_ip();
  attachment_.sim->flows().StartFlow(
      Route::Through(std::move(links)), total, OverheadFactor(),
      [rounds = rounds_used_, total, round_capacity, observed,
       done = std::move(done)](SimTime t) {
        *rounds += round_capacity == 0 ? 1 : (total + round_capacity - 1) / round_capacity;
        done(FetchReceipt{t, observed});
      });
}

}  // namespace nymix
