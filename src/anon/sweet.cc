#include "src/anon/sweet.h"

namespace nymix {

SweetTunnel::SweetTunnel(ClientAttachment attachment, uint64_t instance_id, Config config)
    : attachment_(attachment), config_(config) {
  NYMIX_CHECK(attachment_.sim != nullptr);
  mail_link_ = attachment_.sim->CreateLink("sweet-mail-" + std::to_string(instance_id),
                                           config_.mail_batch_latency,
                                           config_.mail_bandwidth_bps);
  gateway_ip_ = attachment_.sim->internet().RegisterHost(
      "mail-" + std::to_string(instance_id) + ".sweet.net", &gateway_, mail_link_);
}

void SweetTunnel::Start(std::function<void(Result<SimTime>)> ready) {
  auto once = OnceCallback<Result<SimTime>>(std::move(ready));
  attachment_.sim->loop().ScheduleAfter(config_.account_setup, [this, once]() mutable {
    ready_ = true;
    once(attachment_.sim->now());
  });
}

void SweetTunnel::Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
                        std::function<void(Result<FetchReceipt>)> done) {
  if (!ready_) {
    done(FailedPreconditionError("SWEET tunnel not ready"));
    return;
  }
  auto resolved = attachment_.sim->internet().Resolve(host);
  if (!resolved.ok()) {
    done(resolved.status());
    return;
  }
  std::vector<Link*> links = attachment_.client_links;
  links.push_back(mail_link_);
  if (Link* access = attachment_.sim->internet().AccessLink(*resolved);
      access != nullptr && access != mail_link_) {
    links.push_back(access);
  }
  Ipv4Address observed = gateway_ip_;
  attachment_.sim->flows().StartFlow(Route::Through(std::move(links)),
                                     request_bytes + response_bytes, config_.mime_overhead,
                                     [observed, done = std::move(done)](SimTime t) {
                                       done(FetchReceipt{t, observed});
                                     });
}

}  // namespace nymix
