// Incognito mode (§4.1): "Linux' IPTables masquerade mode in order to
// provide a NAT interface into the Internet" — a lightweight pass-through
// with minimal overhead and NO network-level tracking protection. The
// destination observes the user's real public address; Nymix still gives
// the session a throwaway browser environment.
#ifndef SRC_ANON_INCOGNITO_H_
#define SRC_ANON_INCOGNITO_H_

#include "src/anon/anonymizer.h"

namespace nymix {

class IncognitoVpn : public Anonymizer {
 public:
  explicit IncognitoVpn(ClientAttachment attachment) : attachment_(attachment) {
    NYMIX_CHECK(attachment_.sim != nullptr);
  }

  AnonymizerKind kind() const override { return AnonymizerKind::kIncognito; }
  std::string_view Name() const override { return "Incognito"; }

  void Start(std::function<void(Result<SimTime>)> ready) override {
    // Just an iptables rule install.
    auto once = OnceCallback<Result<SimTime>>(std::move(ready));
    attachment_.sim->loop().ScheduleAfter(Millis(200), [this, once]() mutable {
      ready_ = true;
      once(attachment_.sim->now());
    });
  }
  bool ready() const override { return ready_; }

  void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
             std::function<void(Result<FetchReceipt>)> done) override;

  double OverheadFactor() const override { return 1.0; }
  bool ProtectsNetworkIdentity() const override { return false; }

 private:
  ClientAttachment attachment_;
  bool ready_ = false;
};

}  // namespace nymix

#endif  // SRC_ANON_INCOGNITO_H_
