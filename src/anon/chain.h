// ChainedAnonymizer: serial composition, "connecting CommVMs in serial"
// (§3.3) — e.g. Tor over Dissent for "best of both worlds" anonymity. The
// inner tool wraps the traffic first (its byte overhead applies), then the
// outer tool carries the wrapped stream to the destination (its path and
// exit identity apply).
//
// Model approximation (documented in DESIGN.md): the inner stage's path
// latency is folded into its Start() time and byte overhead; the data path
// itself is the outer tool's.
#ifndef SRC_ANON_CHAIN_H_
#define SRC_ANON_CHAIN_H_

#include <memory>

#include "src/anon/anonymizer.h"

namespace nymix {

class ChainedAnonymizer : public Anonymizer {
 public:
  ChainedAnonymizer(std::unique_ptr<Anonymizer> inner, std::unique_ptr<Anonymizer> outer)
      : inner_(std::move(inner)), outer_(std::move(outer)) {
    NYMIX_CHECK(inner_ != nullptr && outer_ != nullptr);
  }

  AnonymizerKind kind() const override { return AnonymizerKind::kChained; }
  std::string_view Name() const override { return "Chained"; }

  Anonymizer& inner() { return *inner_; }
  Anonymizer& outer() { return *outer_; }

  void Start(std::function<void(Result<SimTime>)> ready) override {
    auto once = OnceCallback<Result<SimTime>>(std::move(ready));
    inner_->Start([this, once](Result<SimTime> inner_ready) mutable {
      if (!inner_ready.ok()) {
        // Inner stage failed for good; the chain cannot come up.
        once(inner_ready.status());
        return;
      }
      outer_->Start([once](Result<SimTime> outer_ready) mutable {
        once(std::move(outer_ready));
      });
    });
  }
  bool ready() const override { return inner_->ready() && outer_->ready(); }

  void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
             std::function<void(Result<FetchReceipt>)> done) override {
    if (!ready()) {
      done(FailedPreconditionError("chained anonymizer not ready"));
      return;
    }
    // The outer tool carries the inner tool's expanded byte stream.
    double inner_overhead = inner_->OverheadFactor();
    outer_->Fetch(host, static_cast<uint64_t>(request_bytes * inner_overhead),
                  static_cast<uint64_t>(response_bytes * inner_overhead), std::move(done));
  }

  double OverheadFactor() const override {
    return inner_->OverheadFactor() * outer_->OverheadFactor();
  }
  bool ProtectsNetworkIdentity() const override {
    return inner_->ProtectsNetworkIdentity() || outer_->ProtectsNetworkIdentity();
  }

  Status SaveState(MemFs& fs) const override {
    NYMIX_RETURN_IF_ERROR(inner_->SaveState(fs));
    return outer_->SaveState(fs);
  }
  Status RestoreState(const MemFs& fs) override {
    NYMIX_RETURN_IF_ERROR(inner_->RestoreState(fs));
    return outer_->RestoreState(fs);
  }
  void HandlePacket(const Packet& packet) override {
    inner_->HandlePacket(packet);
    outer_->HandlePacket(packet);
  }

 private:
  std::unique_ptr<Anonymizer> inner_;
  std::unique_ptr<Anonymizer> outer_;
};

// Test/bench adapter: attaches an anonymizer directly as the guest side of
// its uplink (no CommVM in between).
class AnonymizerPortAdapter : public PacketSink {
 public:
  explicit AnonymizerPortAdapter(Anonymizer* anonymizer) : anonymizer_(anonymizer) {}
  void OnPacket(const Packet& packet, Link& link, bool from_a) override {
    (void)link;
    (void)from_a;
    anonymizer_->HandlePacket(packet);
  }

 private:
  Anonymizer* anonymizer_;
};

}  // namespace nymix

#endif  // SRC_ANON_CHAIN_H_
