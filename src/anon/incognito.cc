#include "src/anon/incognito.h"

namespace nymix {

void IncognitoVpn::Fetch(const std::string& host, uint64_t request_bytes,
                         uint64_t response_bytes,
                         std::function<void(Result<FetchReceipt>)> done) {
  if (!ready_) {
    done(FailedPreconditionError("incognito NAT not up"));
    return;
  }
  auto resolved = attachment_.sim->internet().Resolve(host);
  if (!resolved.ok()) {
    done(resolved.status());
    return;
  }
  std::vector<Link*> links = attachment_.client_links;
  if (Link* access = attachment_.sim->internet().AccessLink(*resolved)) {
    links.push_back(access);
  }
  Ipv4Address observed = attachment_.host_public_ip;
  attachment_.sim->flows().StartFlow(Route::Through(std::move(links)),
                                     request_bytes + response_bytes, 1.0,
                                     [observed, done = std::move(done)](SimTime t) {
                                       done(FetchReceipt{t, observed});
                                     });
}

}  // namespace nymix
