// DC-net round engine (Chaum's Dining Cryptographers [11], the primitive
// under Dissent [76]). Real XOR math, not a cost model:
//
//   - every pair of members shares a seed; member i's ciphertext is the
//     XOR of PRG(seed_ij) for all j != i, XOR its slot plaintext;
//   - XORing all ciphertexts cancels every pad pairwise and yields the
//     concatenated slot plaintexts — without revealing which member wrote
//     which slot beyond the (externally shuffled) slot assignment;
//   - a disruptor who flips bits corrupts a slot; per-slot checksums
//     detect it, and a seed-reveal audit (Dissent's blame protocol, here
//     in its simplest retrospective form) identifies the member whose
//     transmission disagrees with their pads.
//
// The DissentClient's traffic costs are flow-modeled; this engine is the
// correctness core, exercised by tests, the micro bench, and
// DissentClient::PostAnonymousMessage.
#ifndef SRC_ANON_DCNET_H_
#define SRC_ANON_DCNET_H_

#include <optional>
#include <vector>

#include "src/util/bytes.h"
#include "src/util/prng.h"
#include "src/util/status.h"

namespace nymix {

class DcNetGroup {
 public:
  // `member_count` participants, `slot_bytes` payload per slot, one slot
  // per member. Pairwise seeds derive from `group_seed` (in Dissent these
  // come from a DH exchange; the derivation is deterministic per group).
  DcNetGroup(size_t member_count, size_t slot_bytes, uint64_t group_seed);

  size_t member_count() const { return member_count_; }
  size_t slot_bytes() const { return slot_bytes_; }
  size_t round_bytes() const { return member_count_ * slot_bytes_; }

  // The ciphertext member `member` transmits in round `round`, writing
  // `message` (possibly empty = no transmission) into slot `slot`.
  // Messages longer than slot_bytes are rejected.
  Result<Bytes> MemberCiphertext(size_t member, size_t slot, ByteSpan message,
                                 uint64_t round) const;

  // XOR-combines all members' ciphertexts into the round's plaintext.
  Result<Bytes> CombineRound(const std::vector<Bytes>& ciphertexts) const;

  // Extracts one slot's payload from a combined round.
  Result<Bytes> SlotPayload(const Bytes& round_plaintext, size_t slot) const;

  struct RoundResult {
    Bytes plaintext;
    std::vector<size_t> corrupted_slots;  // checksum-failed slots
  };
  // Runs a full round: each member i submits messages[i] into slots[i]
  // (empty = silent). Framing adds a per-slot checksum so disruption is
  // detectable. `disruptor` (optional member index) XORs noise over its
  // honest ciphertext.
  RoundResult RunRound(const std::vector<Bytes>& messages, const std::vector<size_t>& slots,
                       uint64_t round, std::optional<size_t> disruptor = std::nullopt) const;

  // Blame (seed-reveal audit): given the transmitted ciphertexts of a
  // corrupted round and each member's claimed (slot, message), recompute
  // every member's honest ciphertext from the revealed seeds and return
  // the members whose transmissions do not match. Anonymity of the round
  // is sacrificed — exactly Dissent's retrospective-blame trade-off.
  std::vector<size_t> Blame(const std::vector<Bytes>& transmitted,
                            const std::vector<Bytes>& messages,
                            const std::vector<size_t>& slots, uint64_t round) const;

  // Deterministic slot permutation for a round (the verifiable shuffle's
  // output): a bijection member -> slot.
  std::vector<size_t> SlotPermutation(uint64_t round) const;

 private:
  uint64_t PairSeed(size_t a, size_t b) const;
  Bytes PadFor(size_t member, size_t other, uint64_t round) const;
  Bytes HonestCiphertext(size_t member, size_t slot, ByteSpan framed, uint64_t round) const;
  Bytes FrameMessage(ByteSpan message) const;           // length + checksum + payload
  Result<Bytes> UnframeSlot(ByteSpan framed) const;     // verify + strip

  size_t member_count_;
  size_t slot_bytes_;   // payload bytes per slot
  size_t framed_bytes_; // payload + framing
  uint64_t group_seed_;
};

}  // namespace nymix

#endif  // SRC_ANON_DCNET_H_
