// Tor model: a directory authority, a relay population with guard/exit
// flags, and TorClient — the per-nym anonymizer instance running in a
// CommVM (§3.3). The model captures the costs the paper measures:
//   - bootstrap: consensus + descriptor download, then circuit building
//     (the Figure 7 "Start Tor" phase; much cheaper with cached state);
//   - entry-guard persistence: a fresh client picks a random guard, a
//     restored client reuses the stored one (§3.5's intersection-attack
//     argument), and a guard can be derived deterministically from a seed
//     (the paper's proposed hash-of-location-and-password scheme);
//   - data overhead: 512-byte cells with 498 payload bytes plus per-hop
//     TLS framing, ~12% total (Figure 5's "fixed cost, approximately 12%").
#ifndef SRC_ANON_TOR_H_
#define SRC_ANON_TOR_H_

#include <optional>
#include <set>
#include <vector>

#include "src/anon/anonymizer.h"

namespace nymix {

struct TorRelayInfo {
  std::string nickname;
  Ipv4Address ip;
  bool is_guard = false;
  bool is_exit = false;
  uint64_t bandwidth_bps = 100'000'000;
};

// A relay answers circuit-building cells after a small crypto-processing
// delay. An onion-encapsulated EXTEND cell carries "fwd=<next-hop-ip>"
// layers: the relay peels one layer, forwards the inner cell to the next
// hop, and relays the answer back — so each relay only ever talks to its
// neighbors, which is the property that makes the middle relay blind to
// the client (testable via sources_seen()). Bulk data is flow-modeled and
// does not pass through OnDatagram.
class TorRelay : public InternetHost {
 public:
  TorRelay(EventLoop& loop, std::string nickname, SimDuration crypto_delay);

  // Called by TorNetwork after registration.
  void AttachToInternet(Internet* internet, Ipv4Address self_ip) {
    internet_ = internet;
    self_ip_ = self_ip;
  }

  void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override;

  uint64_t cells_processed() const { return cells_processed_; }
  uint64_t cells_forwarded() const { return cells_forwarded_; }
  // Every source address this relay has observed — the basis of the
  // "middle never sees the client" test.
  const std::set<Ipv4Address>& sources_seen() const { return sources_seen_; }

 private:
  EventLoop& loop_;
  std::string nickname_;
  SimDuration crypto_delay_;
  Internet* internet_ = nullptr;
  Ipv4Address self_ip_;
  uint64_t cells_processed_ = 0;
  uint64_t cells_forwarded_ = 0;
  std::set<Ipv4Address> sources_seen_;
};

// The deployed relay population plus a directory authority, registered on
// the simulation's Internet (the paper's "test Tor deployment running on
// the DeterLab testbed").
class TorNetwork {
 public:
  struct Config {
    size_t relay_count = 12;
    size_t guard_count = 4;   // first `guard_count` relays are guards
    size_t exit_count = 4;    // last `exit_count` relays are exits
    uint64_t relay_bandwidth_bps = 100'000'000;
    SimDuration relay_link_latency = Millis(5);
    SimDuration relay_crypto_delay = Millis(30);
  };

  explicit TorNetwork(Simulation& sim) : TorNetwork(sim, Config{}) {}
  TorNetwork(Simulation& sim, Config config);

  const Config& config() const { return config_; }
  const std::vector<TorRelayInfo>& relays() const { return infos_; }
  std::vector<size_t> GuardIndices() const;
  std::vector<size_t> ExitIndices() const;
  Link* RelayAccessLink(size_t index) const { return access_links_[index]; }
  Result<size_t> IndexOfRelay(const std::string& nickname) const;
  Ipv4Address directory_ip() const { return directory_ip_; }
  TorRelay& relay(size_t index) { return *relays_[index]; }

  // Fault injection: a crashed relay vanishes from the network (packets to
  // it drop as if the host never existed, its access link goes down so
  // flows through it stall) until RestartRelay. Crash/restart order and
  // timing come from the experiment's FaultInjector schedule, so they are
  // seeded and replayable.
  void CrashRelay(size_t index);
  void RestartRelay(size_t index);
  bool RelayUp(size_t index) const;

 private:
  // The directory authority serves consensus documents; modeled as flows,
  // so the host only needs to exist and be routable.
  class DirectoryServer : public InternetHost {
   public:
    void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override {
      (void)packet;
      (void)reply;
    }
  };

  Simulation& sim_;
  Config config_;
  std::vector<std::unique_ptr<TorRelay>> relays_;
  std::vector<TorRelayInfo> infos_;
  std::vector<Link*> access_links_;
  DirectoryServer directory_;
  Ipv4Address directory_ip_;
};

struct TorClientConfig {
  // Fresh bootstrap: network consensus + relay descriptors.
  uint64_t consensus_bytes = 2 * kMiB;
  uint64_t descriptors_bytes = 6 * kMiB;
  // Warm bootstrap with cached state: differential refresh only.
  uint64_t refresh_bytes = 256 * kKiB;
  // Client-side processing time folded into bootstrap (parse, verify).
  SimDuration bootstrap_processing = SecondsF(2.0);
  int circuit_hops = 3;
  // 512-byte cells carrying 498 payload bytes, ~3% TLS/TCP framing per hop.
  double cell_overhead = (512.0 / 498.0) * 1.03 * 1.03 * 1.03;
  // Entry-guard rotation period: "Tor normally maintains the same entry
  // relay for several months — and may increase this period further
  // [14, 20]" (§3.5). Persisted guards older than this are re-drawn.
  SimDuration guard_lifetime = Seconds(90LL * 24 * 3600);  // ~3 months

  // --- Robustness knobs (fault injection / recovery) --------------------
  // A circuit-build attempt that has not completed within this window is
  // failed and retried with backoff (real Tor's CircuitBuildTimeout).
  SimDuration circuit_build_timeout = Seconds(10);
  BackoffPolicy circuit_retry;  // defaults: 500 ms, x2, 4 attempts
  // Consecutive failed build attempts before the entry guard is marked
  // dead and the next one is derived (seeded clients re-derive from the
  // same seed, preserving the §3.5 persistence argument).
  int guard_failure_threshold = 2;
  // Directory and fetch flows fail after stalling this long at rate 0.
  SimDuration directory_stall_timeout = Seconds(60);
  BackoffPolicy directory_retry;
  SimDuration fetch_stall_timeout = Seconds(30);
  BackoffPolicy fetch_retry;

  // --- Leak-plant knob (src/adversary) ----------------------------------
  // When set, per-destination exit selection is derived from
  // Mix64(*exit_pin_seed ^ Fnv1a64(host)) instead of this client's private
  // prng stream — so every nym sharing the pin seed lands on the SAME exit
  // for the same destination, the "reused circuit" isolation failure the
  // adversary suite must catch. Never set on the clean path; the default
  // (nullopt) draws from prng_ exactly as before, consuming identical Prng
  // state.
  std::optional<uint64_t> exit_pin_seed;
};

class TorClient : public Anonymizer {
 public:
  TorClient(ClientAttachment attachment, TorNetwork& network, uint64_t seed,
            TorClientConfig config = TorClientConfig{});
  ~TorClient() override;

  AnonymizerKind kind() const override { return AnonymizerKind::kTor; }
  std::string_view Name() const override { return "Tor"; }
  void Start(std::function<void(Result<SimTime>)> ready) override;
  bool ready() const override { return circuit_ready_; }
  void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
             std::function<void(Result<FetchReceipt>)> done) override;
  double OverheadFactor() const override { return config_.cell_overhead; }
  bool ProtectsNetworkIdentity() const override { return true; }
  Status SaveState(MemFs& fs) const override;
  Status RestoreState(const MemFs& fs) override;
  void HandlePacket(const Packet& packet) override;

  // §3.5: derive the guard choice from H(storage location || password) so a
  // restored nym — and even the ephemeral nym that downloads it — lands on
  // the same guard. Must be called before Start().
  void SeedGuardSelection(uint64_t seed);

  // Drops the current circuit and builds a fresh one (Tor's NEWNYM). An
  // in-flight build is cancelled cleanly: its pending ready callback fires
  // kCancelled before the new build starts (never silently dropped).
  void NewIdentity(std::function<void(Result<SimTime>)> ready);

  std::optional<size_t> entry_guard_index() const { return guard_index_; }
  std::optional<size_t> exit_index() const { return exit_index_; }
  int circuits_built() const { return circuits_built_; }
  bool has_cached_consensus() const { return has_cached_consensus_; }
  const std::set<size_t>& failed_guards() const { return failed_guards_; }

  // Stream isolation (IsolateDestAddr): each destination gets its own
  // exit, so two sites visited through the same nym cannot be linked by a
  // shared exit address. The guard stays fixed (§3.5).
  size_t ExitIndexForDestination(const std::string& host);
  size_t isolated_destinations() const { return exit_by_destination_.size(); }

 private:
  void DownloadDirectory(std::function<void(Status)> then);
  void ChooseGuardIfNeeded();
  void BuildCircuit(std::function<void(Result<SimTime>)> ready);
  // One seeded attempt of the current build; retried with backoff on
  // timeout until the circuit_retry budget is spent.
  void StartBuildAttempt();
  void OnBuildAttemptFailure(Status status);
  // Fails over the entry guard: mark it dead and re-derive the next one
  // (same seed for seeded clients — §3.5 persistence).
  void MarkGuardFailed();
  // Fires the pending ready callback (if any) with `status` and
  // invalidates every outstanding build event (timeout, retry).
  void CancelPendingBuild(Status status);
  void SendCircuitCell(int step);
  Route RouteThroughCircuit(Ipv4Address destination, size_t exit_index) const;
  // Trace track for this client's spans: the uplink name minus "-uplink",
  // which is the owning nym/VM name, so Tor spans nest under its lifecycle.
  std::string TraceTrack() const;

  ClientAttachment attachment_;
  TorNetwork& network_;
  TorClientConfig config_;
  uint64_t seed_;
  Prng prng_;
  // Lifetime token for deferred work. The client schedules events on the
  // simulation-owned loop (circuit timeouts, backoff retries, bootstrap
  // processing) and hands callbacks to the flow scheduler; a nym crash
  // (§3.4 wipe) destroys the client while those are still pending. Every
  // such lambda captures a weak_ptr to this token and evaporates if the
  // client is gone — it must not touch freed state or complete into the
  // equally-dead browser.
  std::shared_ptr<char> alive_ = std::make_shared<char>(0);

  bool has_cached_consensus_ = false;
  bool circuit_ready_ = false;
  std::optional<size_t> guard_index_;
  std::optional<size_t> middle_index_;
  std::optional<size_t> exit_index_;
  std::optional<uint64_t> guard_seed_;
  SimTime guard_chosen_at_ = 0;
  int circuits_built_ = 0;

  // Guard failover state.
  std::set<size_t> failed_guards_;
  int consecutive_guard_failures_ = 0;

  // In-progress circuit build. The generation counter invalidates stale
  // timeout/retry events after a build is superseded (NewIdentity) or
  // completes; OnceCallback guarantees the ready callback fires once.
  SimTime circuit_build_started_ = 0;
  int pending_step_ = 0;
  uint32_t circuit_id_ = 0;
  uint64_t build_generation_ = 0;
  uint64_t timeout_event_ = 0;
  bool has_timeout_event_ = false;
  Backoff circuit_backoff_;
  OnceCallback<Result<SimTime>> on_circuit_ready_;
  Port next_port_ = 40000;
  std::map<std::string, size_t> exit_by_destination_;  // stream isolation
};

}  // namespace nymix

#endif  // SRC_ANON_TOR_H_
