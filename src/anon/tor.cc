#include "src/anon/tor.h"

#include <cstdlib>
#include <string_view>

#include "src/util/prng.h"

namespace nymix {

std::string_view AnonymizerKindName(AnonymizerKind kind) {
  switch (kind) {
    case AnonymizerKind::kIncognito:
      return "Incognito";
    case AnonymizerKind::kTor:
      return "Tor";
    case AnonymizerKind::kDissent:
      return "Dissent";
    case AnonymizerKind::kSweet:
      return "SWEET";
    case AnonymizerKind::kChained:
      return "Chained";
  }
  return "?";
}

// ------------------------------------------------------------------ relays

TorRelay::TorRelay(EventLoop& loop, std::string nickname, SimDuration crypto_delay)
    : loop_(loop), nickname_(std::move(nickname)), crypto_delay_(crypto_delay) {}

void TorRelay::OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) {
  ++cells_processed_;
  sources_seen_.insert(packet.src_ip);
  std::string text = StringFromBytes(packet.payload);

  // Onion layer present? Peel it and forward the inner cell to the next
  // hop; our answer to the requester is whatever comes back.
  size_t fwd = text.find(" fwd=");
  if (fwd != std::string::npos && internet_ != nullptr) {
    size_t ip_start = fwd + 5;
    size_t ip_end = text.find(' ', ip_start);
    std::string next_hop_text =
        text.substr(ip_start, ip_end == std::string::npos ? std::string::npos
                                                          : ip_end - ip_start);
    std::string inner_text =
        text.substr(0, fwd) + (ip_end == std::string::npos ? "" : text.substr(ip_end));
    auto next_hop = ParseIpv4(next_hop_text);
    if (next_hop.ok()) {
      ++cells_forwarded_;
      Packet inner;
      inner.dst_ip = *next_hop;
      inner.dst_port = 9001;
      inner.protocol = IpProtocol::kTcp;
      inner.payload = BytesFromString(inner_text);
      inner.annotation = "Tor";
      Packet request = packet;  // addressing for the eventual answer
      loop_.ScheduleAfter(crypto_delay_, [this, inner = std::move(inner),
                                          request = std::move(request), reply]() mutable {
        internet_->SendBetweenHosts(
            self_ip_, std::move(inner), [request, reply](Packet answer) {
              Packet response;
              response.src_ip = request.dst_ip;
              response.src_port = request.dst_port;
              response.dst_ip = request.src_ip;
              response.dst_port = request.src_port;
              response.protocol = IpProtocol::kTcp;
              response.payload = answer.payload;
              response.annotation = "Tor";
              reply(std::move(response));
            });
      });
      return;
    }
  }

  // Terminal hop: acknowledge the cell.
  Packet response;
  response.src_ip = packet.dst_ip;
  response.src_port = packet.dst_port;
  response.dst_ip = packet.src_ip;
  response.dst_port = packet.src_port;
  response.protocol = IpProtocol::kTcp;
  response.payload = BytesFromString("ACK " + text);
  response.annotation = "Tor";
  loop_.ScheduleAfter(crypto_delay_, [reply, response = std::move(response)]() mutable {
    reply(std::move(response));
  });
}

// ------------------------------------------------------------------ network

TorNetwork::TorNetwork(Simulation& sim, Config config) : sim_(sim), config_(config) {
  NYMIX_CHECK(config_.guard_count + config_.exit_count <= config_.relay_count);
  for (size_t i = 0; i < config_.relay_count; ++i) {
    std::string nickname = "relay" + std::to_string(i);
    relays_.push_back(
        std::make_unique<TorRelay>(sim.loop(), nickname, config_.relay_crypto_delay));
    Link* access = sim.CreateLink("tor-" + nickname, config_.relay_link_latency,
                                  config_.relay_bandwidth_bps);
    Ipv4Address ip = sim.internet().RegisterHost(nickname + ".tor.net", relays_.back().get(),
                                                 access);
    relays_.back()->AttachToInternet(&sim.internet(), ip);
    access_links_.push_back(access);
    TorRelayInfo info;
    info.nickname = nickname;
    info.ip = ip;
    info.is_guard = i < config_.guard_count;
    info.is_exit = i >= config_.relay_count - config_.exit_count;
    info.bandwidth_bps = config_.relay_bandwidth_bps;
    infos_.push_back(info);
  }
  directory_ip_ = sim.internet().RegisterHost("dirauth.tor.net", &directory_);
}

std::vector<size_t> TorNetwork::GuardIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].is_guard) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> TorNetwork::ExitIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].is_exit) {
      out.push_back(i);
    }
  }
  return out;
}

Result<size_t> TorNetwork::IndexOfRelay(const std::string& nickname) const {
  for (size_t i = 0; i < infos_.size(); ++i) {
    if (infos_[i].nickname == nickname) {
      return i;
    }
  }
  return NotFoundError("no such relay: " + nickname);
}

void TorNetwork::CrashRelay(size_t index) {
  NYMIX_CHECK(index < infos_.size());
  sim_.internet().SetHostUp(infos_[index].ip, false);
  access_links_[index]->SetDown(true);
  if (MetricsRegistry* meters = sim_.loop().meters()) {
    meters->GetCounter("anon.tor.relay_crashes")->Increment();
  }
  if (TraceRecorder* tracer = sim_.loop().tracer()) {
    tracer->AddInstant("fault", "relay_crash:" + infos_[index].nickname, "faults",
                       sim_.now());
  }
}

void TorNetwork::RestartRelay(size_t index) {
  NYMIX_CHECK(index < infos_.size());
  sim_.internet().SetHostUp(infos_[index].ip, true);
  access_links_[index]->SetDown(false);
  if (MetricsRegistry* meters = sim_.loop().meters()) {
    meters->GetCounter("anon.tor.relay_restarts")->Increment();
  }
  if (TraceRecorder* tracer = sim_.loop().tracer()) {
    tracer->AddInstant("fault", "relay_restart:" + infos_[index].nickname, "faults",
                       sim_.now());
  }
}

bool TorNetwork::RelayUp(size_t index) const {
  NYMIX_CHECK(index < infos_.size());
  return sim_.internet().HostUp(infos_[index].ip);
}

// ------------------------------------------------------------------ client

TorClient::TorClient(ClientAttachment attachment, TorNetwork& network, uint64_t seed,
                     TorClientConfig config)
    : attachment_(attachment),
      network_(network),
      config_(config),
      seed_(seed),
      prng_(seed),
      // Retry/jitter streams are derived statelessly from the seed so they
      // never perturb prng_'s draw sequence (guard/relay choices must stay
      // byte-compatible with fault-free runs).
      circuit_backoff_(config.circuit_retry, Mix64(seed ^ Fnv1a64("tor.circuit.backoff"))) {
  NYMIX_CHECK(attachment_.sim != nullptr);
  NYMIX_CHECK(attachment_.vm_uplink != nullptr);
}

TorClient::~TorClient() {
  // Owner teardown: a build pending at destruction must not complete — the
  // ready callback belongs to the nym being destroyed right now, and the
  // drop-status fire from the OnceCallback destructor would run it
  // mid-teardown.
  on_circuit_ready_.Dismiss();
}

std::string TorClient::TraceTrack() const {
  std::string track = attachment_.vm_uplink->name();
  constexpr std::string_view kSuffix = "-uplink";
  if (track.size() > kSuffix.size() &&
      track.compare(track.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
    track.resize(track.size() - kSuffix.size());
  }
  return track;
}

void TorClient::SeedGuardSelection(uint64_t seed) {
  NYMIX_CHECK_MSG(!guard_index_.has_value(), "guard already chosen");
  guard_seed_ = seed;
}

void TorClient::ChooseGuardIfNeeded() {
  // Rotate out a guard past its lifetime ([14, 20]); a seeded choice is
  // location-derived and therefore stable.
  if (guard_index_.has_value() && !guard_seed_.has_value() &&
      attachment_.sim->now() - guard_chosen_at_ > config_.guard_lifetime) {
    guard_index_.reset();
  }
  MetricsRegistry* meters = attachment_.sim->loop().meters();
  if (guard_index_.has_value()) {
    if (meters != nullptr) {
      meters->GetCounter("anon.tor.guard_reused")->Increment();
    }
    return;
  }
  std::vector<size_t> guards = network_.GuardIndices();
  NYMIX_CHECK(!guards.empty());
  if (guard_seed_.has_value()) {
    // k=0 is the original hash-of-location choice (§3.5); each failover
    // re-derives the k-th candidate from the same seed, skipping guards
    // marked dead — so two same-seed clients fail over identically, and
    // the persistence argument survives guard crashes. Bounded scan: if
    // every guard has failed, the final candidate is accepted anyway
    // (deterministic desperation beats no guard at all).
    size_t pick = guards[*guard_seed_ % guards.size()];
    for (uint64_t k = 1;
         failed_guards_.find(pick) != failed_guards_.end() && k <= guards.size() * 4; ++k) {
      pick = guards[Mix64(*guard_seed_ + k) % guards.size()];
    }
    guard_index_ = pick;
  } else {
    std::vector<size_t> alive;
    for (size_t g : guards) {
      if (failed_guards_.find(g) == failed_guards_.end()) {
        alive.push_back(g);
      }
    }
    const std::vector<size_t>& pool = alive.empty() ? guards : alive;
    guard_index_ = pool[prng_.NextBelow(pool.size())];
  }
  guard_chosen_at_ = attachment_.sim->now();
  if (meters != nullptr) {
    meters->GetCounter("anon.tor.guard_chosen")->Increment();
  }
}

void TorClient::DownloadDirectory(std::function<void(Status)> then) {
  SimTime started = attachment_.sim->now();
  std::weak_ptr<char> alive = alive_;
  RetryWithBackoff(
      attachment_.sim->loop(), config_.directory_retry,
      Mix64(seed_ ^ Fnv1a64("tor.directory.backoff")), "tor.directory",
      [this, alive](std::function<void(Status)> finish) {
        if (alive.expired()) {
          return;  // client torn down; dropping finish cancels the retry run
        }
        uint64_t bytes = has_cached_consensus_
                             ? config_.refresh_bytes
                             : config_.consensus_bytes + config_.descriptors_bytes;
        if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
          meters->GetCounter("anon.tor.directory_bytes")->Increment(bytes);
        }
        FlowOptions options;
        options.stall_timeout = config_.directory_stall_timeout;
        Route route = Route::Through(attachment_.client_links);
        attachment_.sim->flows().StartFlow(
            route, bytes, 1.0, options,
            [finish = std::move(finish)](Result<SimTime> finished) {
              finish(finished.ok() ? OkStatus() : finished.status());
            });
      },
      [this, alive, started, then = std::move(then)](Status status) {
        if (alive.expired()) {
          return;  // client torn down while retries drained
        }
        if (!status.ok()) {
          then(std::move(status));
          return;
        }
        has_cached_consensus_ = true;
        attachment_.sim->loop().ScheduleAfter(config_.bootstrap_processing,
                                              [this, alive, started, then] {
                                                if (alive.expired()) {
                                                  return;
                                                }
                                                if (TraceRecorder* tracer =
                                                        attachment_.sim->loop().tracer()) {
                                                  tracer->AddComplete(
                                                      "anon", "tor_directory", TraceTrack(),
                                                      started, attachment_.sim->now() - started);
                                                }
                                                then(OkStatus());
                                              });
      });
}

void TorClient::Start(std::function<void(Result<SimTime>)> ready) {
  // The guard makes dropping the bootstrap completion impossible: any path
  // that loses the callback delivers kCancelled instead.
  auto once = OnceCallback<Result<SimTime>>(std::move(ready));
  DownloadDirectory([this, once](Status status) mutable {
    if (!status.ok()) {
      once(Status(StatusCode::kUnavailable,
                  "Tor bootstrap failed: " + status.ToString()));
      return;
    }
    ChooseGuardIfNeeded();
    BuildCircuit([once](Result<SimTime> built) mutable { once(std::move(built)); });
  });
}

void TorClient::NewIdentity(std::function<void(Result<SimTime>)> ready) {
  NYMIX_CHECK_MSG(has_cached_consensus_, "NewIdentity before bootstrap");
  circuit_ready_ = false;
  exit_by_destination_.clear();  // fresh identity: drop all stream bindings
  BuildCircuit(std::move(ready));
}

void TorClient::CancelPendingBuild(Status status) {
  // Invalidate the attempt in flight: stale replies no longer match
  // (pending_step_ 0), and the timeout/retry events see a newer generation.
  pending_step_ = 0;
  ++build_generation_;
  if (has_timeout_event_) {
    attachment_.sim->loop().Cancel(timeout_event_);
    has_timeout_event_ = false;
  }
  if (on_circuit_ready_) {
    auto callback = std::move(on_circuit_ready_);
    on_circuit_ready_ = OnceCallback<Result<SimTime>>();
    if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
      meters->GetCounter("anon.tor.builds_cancelled")->Increment();
    }
    callback(std::move(status));
  }
}

void TorClient::BuildCircuit(std::function<void(Result<SimTime>)> ready) {
  // A build superseding an in-flight one (NewIdentity mid-build) cancels
  // the old one cleanly — its callback fires kCancelled, never races the
  // new build's completion and is never silently dropped.
  CancelPendingBuild(CancelledError("circuit build superseded"));
  on_circuit_ready_ = OnceCallback<Result<SimTime>>(std::move(ready));
  circuit_backoff_.Reset();
  StartBuildAttempt();
}

void TorClient::StartBuildAttempt() {
  ChooseGuardIfNeeded();
  // Middle: any relay that is neither the guard nor exit-flagged; exit: any
  // exit relay other than guard/middle.
  std::vector<size_t> exits = network_.ExitIndices();
  NYMIX_CHECK(!exits.empty());
  do {
    exit_index_ = exits[prng_.NextBelow(exits.size())];
  } while (exits.size() > 1 && *exit_index_ == *guard_index_);
  const auto& relays = network_.relays();
  std::vector<size_t> middles;
  for (size_t i = 0; i < relays.size(); ++i) {
    if (i != *guard_index_ && i != *exit_index_) {
      middles.push_back(i);
    }
  }
  NYMIX_CHECK(!middles.empty());
  middle_index_ = middles[prng_.NextBelow(middles.size())];

  circuit_id_ = static_cast<uint32_t>(prng_.NextU64());
  circuit_build_started_ = attachment_.sim->now();
  pending_step_ = 1;
  ++build_generation_;
  const uint64_t generation = build_generation_;
  if (config_.circuit_build_timeout > 0) {
    timeout_event_ = attachment_.sim->loop().ScheduleAfter(
        config_.circuit_build_timeout,
        [this, alive = std::weak_ptr<char>(alive_), generation] {
          if (alive.expired()) {
            return;  // client torn down with the timeout still queued
          }
          if (generation != build_generation_ || pending_step_ == 0) {
            return;  // attempt already finished or was superseded
          }
          has_timeout_event_ = false;
          if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
            meters->GetCounter("anon.tor.circuit_timeouts")->Increment();
          }
          OnBuildAttemptFailure(
              DeadlineExceededError("circuit build timed out at step " +
                                    std::to_string(pending_step_)));
        });
    has_timeout_event_ = true;
  }
  SendCircuitCell(pending_step_);
}

void TorClient::MarkGuardFailed() {
  if (!guard_index_.has_value()) {
    return;
  }
  failed_guards_.insert(*guard_index_);
  if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
    meters->GetCounter("anon.tor.guard_failover")->Increment();
  }
  if (TraceRecorder* tracer = attachment_.sim->loop().tracer()) {
    tracer->AddInstant("fault",
                       "guard_failover:" + network_.relays()[*guard_index_].nickname,
                       TraceTrack(), attachment_.sim->now());
  }
  guard_index_.reset();
  consecutive_guard_failures_ = 0;
}

void TorClient::OnBuildAttemptFailure(Status status) {
  pending_step_ = 0;
  if (has_timeout_event_) {
    attachment_.sim->loop().Cancel(timeout_event_);
    has_timeout_event_ = false;
  }
  if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
    meters->GetCounter("anon.tor.circuit_build_failures")->Increment();
  }
  ++consecutive_guard_failures_;
  if (consecutive_guard_failures_ >= config_.guard_failure_threshold) {
    // The common cause of repeated timeouts is a dead entry guard (every
    // cell physically goes through it); fail over before retrying.
    MarkGuardFailed();
  }
  Result<SimDuration> delay = circuit_backoff_.NextDelay();
  if (!delay.ok()) {
    if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
      meters->GetCounter("anon.tor.circuits_abandoned")->Increment();
    }
    if (on_circuit_ready_) {
      auto callback = std::move(on_circuit_ready_);
      on_circuit_ready_ = OnceCallback<Result<SimTime>>();
      callback(circuit_backoff_.Exhausted("circuit build abandoned", status));
    }
    return;
  }
  if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
    meters->GetCounter("anon.tor.circuit_retries")->Increment();
  }
  if (TraceRecorder* tracer = attachment_.sim->loop().tracer()) {
    tracer->AddInstant("retry", "circuit_retry", TraceTrack(), attachment_.sim->now());
  }
  const uint64_t generation = build_generation_;
  attachment_.sim->loop().ScheduleAfter(
      *delay, [this, alive = std::weak_ptr<char>(alive_), generation] {
        if (alive.expired()) {
          return;  // client torn down while waiting out the backoff
        }
        if (generation != build_generation_) {
          return;  // superseded while waiting out the backoff
        }
        StartBuildAttempt();
      });
}

void TorClient::SendCircuitCell(int step) {
  // All circuit cells physically go to the entry guard. EXTEND cells are
  // onion-wrapped: each " fwd=<ip>" layer tells one relay where to forward
  // the (to it, opaque) inner cell, so the middle relay hears only from
  // the guard and the exit only from the middle.
  const TorRelayInfo& guard = network_.relays()[*guard_index_];
  Packet cell;
  cell.src_ip = kGuestCommVmIp;
  cell.src_port = next_port_++;
  cell.dst_ip = guard.ip;
  cell.dst_port = 9001;
  cell.protocol = IpProtocol::kTcp;
  std::string verb = step == 1 ? "CREATE2" : "EXTEND2";
  std::string payload = verb + " circ=" + std::to_string(circuit_id_) +
                        " step=" + std::to_string(step);
  if (step >= 2) {
    payload += " fwd=" + network_.relays()[*middle_index_].ip.ToString();
  }
  if (step >= 3) {
    payload += " fwd=" + network_.relays()[*exit_index_].ip.ToString();
  }
  cell.payload = BytesFromString(payload);
  cell.annotation = "Tor";
  if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
    meters->GetCounter("anon.tor.circuit_cells")->Increment();
  }
  attachment_.vm_uplink->SendFromA(std::move(cell));
}

void TorClient::HandlePacket(const Packet& packet) {
  std::string text = StringFromBytes(packet.payload);
  std::string expect = " circ=" + std::to_string(circuit_id_) +
                       " step=" + std::to_string(pending_step_);
  if (pending_step_ == 0 || text.find(expect) == std::string::npos) {
    return;  // stale or unrelated cell
  }
  if (pending_step_ < config_.circuit_hops) {
    ++pending_step_;
    SendCircuitCell(pending_step_);
    return;
  }
  pending_step_ = 0;
  if (has_timeout_event_) {
    attachment_.sim->loop().Cancel(timeout_event_);
    has_timeout_event_ = false;
  }
  consecutive_guard_failures_ = 0;
  circuit_ready_ = true;
  ++circuits_built_;
  if (TraceRecorder* tracer = attachment_.sim->loop().tracer()) {
    tracer->AddComplete("anon", "build_circuit", TraceTrack(), circuit_build_started_,
                        attachment_.sim->now() - circuit_build_started_);
  }
  if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
    meters->GetCounter("anon.tor.circuits_built")->Increment();
    meters->GetHistogram("anon.tor.circuit_build_us")
        ->Record(static_cast<double>(attachment_.sim->now() - circuit_build_started_));
  }
  if (on_circuit_ready_) {
    auto callback = std::move(on_circuit_ready_);
    on_circuit_ready_ = OnceCallback<Result<SimTime>>();
    callback(attachment_.sim->now());
  }
}

size_t TorClient::ExitIndexForDestination(const std::string& host) {
  auto it = exit_by_destination_.find(host);
  if (it != exit_by_destination_.end()) {
    return it->second;
  }
  std::vector<size_t> exits = network_.ExitIndices();
  // Prefer exits that are currently up (a crashed relay should not get new
  // streams); with nothing up, fall back to the full set so the choice —
  // and the prng_ draw count — stays deterministic.
  std::vector<size_t> alive;
  for (size_t e : exits) {
    if (network_.RelayUp(e)) {
      alive.push_back(e);
    }
  }
  const std::vector<size_t>& pool = alive.empty() ? exits : alive;
  size_t exit;
  if (config_.exit_pin_seed.has_value()) {
    // Planted circuit reuse: the exit is a pure function of (pin seed,
    // destination), shared by every client carrying the same pin. No prng_
    // draw happens on this branch — the plant must not perturb any other
    // seeded decision this client makes.
    exit = pool[Mix64(*config_.exit_pin_seed ^ Fnv1a64(host)) % pool.size()];
  } else {
    exit = pool[prng_.NextBelow(pool.size())];
  }
  exit_by_destination_.emplace(host, exit);
  return exit;
}

Route TorClient::RouteThroughCircuit(Ipv4Address destination, size_t exit_index) const {
  std::vector<Link*> links = attachment_.client_links;
  links.push_back(network_.RelayAccessLink(*guard_index_));
  links.push_back(network_.RelayAccessLink(*middle_index_));
  links.push_back(network_.RelayAccessLink(exit_index));
  if (Link* dest_access = attachment_.sim->internet().AccessLink(destination)) {
    links.push_back(dest_access);
  }
  return Route::Through(std::move(links));
}

void TorClient::Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
                      std::function<void(Result<FetchReceipt>)> done) {
  auto once = OnceCallback<Result<FetchReceipt>>(std::move(done));
  if (!circuit_ready_) {
    once(FailedPreconditionError("Tor circuit not ready"));
    return;
  }
  // DNS happens at the exit (§4.1: "Tor has a built-in DNS server").
  auto resolved = attachment_.sim->internet().Resolve(host);
  if (!resolved.ok()) {
    once(resolved.status());
    return;
  }
  // Retries respect stream isolation: the exit is always the destination's
  // bound exit; a failed attempt drops that binding so the retry re-rolls a
  // fresh (but still per-destination) exit. Other destinations' bindings —
  // and the entry guard — are untouched.
  auto receipt = std::make_shared<FetchReceipt>();
  const Ipv4Address destination = *resolved;
  std::weak_ptr<char> alive = alive_;
  RetryWithBackoff(
      attachment_.sim->loop(), config_.fetch_retry,
      Mix64(seed_ ^ Fnv1a64("tor.fetch.backoff") ^ Fnv1a64(host)), "tor.fetch",
      [this, alive, host, destination, request_bytes, response_bytes,
       receipt](std::function<void(Status)> finish) {
        if (alive.expired()) {
          return;  // client torn down; dropping finish cancels the retry run
        }
        size_t exit_index = ExitIndexForDestination(host);
        Ipv4Address exit_ip = network_.relays()[exit_index].ip;
        Route route = RouteThroughCircuit(destination, exit_index);
        FlowOptions options;
        options.stall_timeout = config_.fetch_stall_timeout;
        attachment_.sim->flows().StartFlow(
            route, request_bytes + response_bytes, config_.cell_overhead, options,
            [this, alive, host, exit_ip, receipt,
             finish = std::move(finish)](Result<SimTime> t) {
              if (alive.expired()) {
                return;  // flow outlived the client (nym crash mid-fetch)
              }
              if (!t.ok()) {
                exit_by_destination_.erase(host);
                if (MetricsRegistry* meters = attachment_.sim->loop().meters()) {
                  meters->GetCounter("anon.tor.fetch_attempt_failures")->Increment();
                }
                finish(t.status());
                return;
              }
              *receipt = FetchReceipt{*t, exit_ip};
              finish(OkStatus());
            });
      },
      [alive, once, receipt](Status status) mutable {
        if (alive.expired()) {
          // The caller's completion belongs to the same dead nym (browser
          // and client are torn down together); Dismiss so neither a late
          // fire nor the drop-status path runs it.
          once.Dismiss();
          return;
        }
        if (!status.ok()) {
          once(std::move(status));
          return;
        }
        once(*receipt);
      });
}

Status TorClient::SaveState(MemFs& fs) const {
  std::string state;
  if (guard_index_.has_value()) {
    state += "guard=" + network_.relays()[*guard_index_].nickname + "\n";
    state += "guard-since=" + std::to_string(guard_chosen_at_) + "\n";
  }
  if (has_cached_consensus_) {
    state += "consensus-cached=1\n";
    // The cached consensus + microdescriptors are the bulk of persisted
    // CommVM state (the ~15% non-AnonVM share of a nym archive, §5.3).
    NYMIX_RETURN_IF_ERROR(fs.WriteFile(
        "/var/lib/tor/cached-microdescs",
        Blob::Synthetic(config_.consensus_bytes + config_.descriptors_bytes,
                        Fnv1a64("cached-microdescs"), 0.55)));
  }
  return fs.WriteFile("/var/lib/tor/state", Blob::FromString(state));
}

Status TorClient::RestoreState(const MemFs& fs) {
  auto blob = fs.ReadFile("/var/lib/tor/state");
  if (!blob.ok()) {
    return blob.status();
  }
  std::string text = StringFromBytes(blob->Materialize());
  size_t guard_pos = text.find("guard=");
  if (guard_pos != std::string::npos) {
    size_t end = text.find('\n', guard_pos);
    std::string nickname = text.substr(guard_pos + 6, end - guard_pos - 6);
    NYMIX_ASSIGN_OR_RETURN(size_t index, network_.IndexOfRelay(nickname));
    guard_index_ = index;
    size_t since_pos = text.find("guard-since=");
    if (since_pos != std::string::npos) {
      guard_chosen_at_ = std::atoll(text.c_str() + since_pos + 12);
    }
  }
  if (text.find("consensus-cached=1") != std::string::npos) {
    has_cached_consensus_ = true;
  }
  return OkStatus();
}

}  // namespace nymix
