#include "src/anon/dns_proxy.h"

namespace nymix {

std::string_view DnsProxy::TransportName(Transport transport) {
  switch (transport) {
    case Transport::kAnonymizerNative:
      return "native";
    case Transport::kUdpProxy:
      return "udp-proxy";
    case Transport::kUdpToTcpConversion:
      return "udp-to-tcp";
  }
  return "?";
}

DnsProxy::Transport DnsProxy::TransportFor(AnonymizerKind kind) {
  switch (kind) {
    case AnonymizerKind::kTor:
      return Transport::kAnonymizerNative;  // Tor's built-in DNS (§4.1)
    case AnonymizerKind::kDissent:
    case AnonymizerKind::kIncognito:
      return Transport::kUdpProxy;  // UDP redirection supported
    case AnonymizerKind::kSweet:
    case AnonymizerKind::kChained:
      return Transport::kUdpToTcpConversion;  // neither: convert to TCP
  }
  return Transport::kUdpToTcpConversion;
}

DnsProxy::DnsProxy(Simulation& sim, Anonymizer* anonymizer, Transport transport)
    : sim_(sim), anonymizer_(anonymizer), transport_(transport) {
  NYMIX_CHECK(anonymizer_ != nullptr);
}

SimDuration DnsProxy::LookupLatency() const {
  // One anonymized round trip per query; an approximate channel RTT is
  // derived from the tool's relative cost (the flow layer models bulk
  // traffic; DNS is a single small exchange).
  SimDuration base = Millis(120);
  switch (transport_) {
    case Transport::kAnonymizerNative:
      return base;
    case Transport::kUdpProxy:
      return base + Millis(40);  // proxy hop
    case Transport::kUdpToTcpConversion:
      return 2 * base + Millis(40);  // extra stream-establishment round trip
  }
  return base;
}

void DnsProxy::Resolve(const std::string& name,
                       std::function<void(Result<Ipv4Address>)> done) {
  ++queries_;
  std::weak_ptr<char> alive = alive_;
  auto cached = cache_.find(name);
  if (cached != cache_.end()) {
    ++cache_hits_;
    Ipv4Address ip = cached->second;
    sim_.loop().ScheduleAfter(Micros(50), [alive, ip, done = std::move(done)] {
      if (alive.expired()) {
        return;  // proxy torn down while the answer was in flight
      }
      done(ip);
    });
    return;
  }
  if (!anonymizer_->ready()) {
    // The proxy refuses rather than falling back to a direct (leaking)
    // resolver — the whole point of §4.1's plumbing.
    done(FailedPreconditionError("anonymizer not ready; refusing un-anonymized DNS"));
    return;
  }
  if (transport_ == Transport::kUdpToTcpConversion) {
    ++conversions_;
  }
  sim_.loop().ScheduleAfter(LookupLatency(), [this, alive, name, done = std::move(done)] {
    if (alive.expired()) {
      return;  // proxy (and its nym) torn down mid-query; drop everything
    }
    auto resolved = sim_.internet().Resolve(name);
    if (resolved.ok()) {
      cache_[name] = *resolved;
    }
    done(resolved);
  });
}

}  // namespace nymix
