#include "src/anon/dcnet.h"

#include <algorithm>

#include "src/util/check.h"

namespace nymix {

namespace {

// Framing: u16 length | u32 checksum | payload (zero-padded).
constexpr size_t kFrameHeader = 2 + 4;

uint32_t FrameChecksum(ByteSpan payload) {
  return static_cast<uint32_t>(Fnv1a64(payload));
}

void XorInto(Bytes& accumulator, ByteSpan other) {
  NYMIX_CHECK(accumulator.size() == other.size());
  for (size_t i = 0; i < accumulator.size(); ++i) {
    accumulator[i] ^= other[i];
  }
}

}  // namespace

DcNetGroup::DcNetGroup(size_t member_count, size_t slot_bytes, uint64_t group_seed)
    : member_count_(member_count),
      slot_bytes_(slot_bytes),
      framed_bytes_(slot_bytes + kFrameHeader),
      group_seed_(group_seed) {
  NYMIX_CHECK(member_count_ >= 2);
  NYMIX_CHECK(slot_bytes_ > 0);
}

uint64_t DcNetGroup::PairSeed(size_t a, size_t b) const {
  if (a > b) {
    std::swap(a, b);
  }
  return Mix64(group_seed_ ^ (static_cast<uint64_t>(a) << 32) ^ b);
}

Bytes DcNetGroup::PadFor(size_t member, size_t other, uint64_t round) const {
  Prng prng(Mix64(PairSeed(member, other) ^ round));
  return prng.NextBytes(framed_bytes_ * member_count_);
}

Bytes DcNetGroup::FrameMessage(ByteSpan message) const {
  NYMIX_CHECK(message.size() <= slot_bytes_);
  Bytes framed;
  framed.reserve(framed_bytes_);
  AppendU16(framed, static_cast<uint16_t>(message.size()));
  AppendU32(framed, FrameChecksum(message));
  framed.insert(framed.end(), message.begin(), message.end());
  framed.resize(framed_bytes_, 0);
  return framed;
}

Result<Bytes> DcNetGroup::UnframeSlot(ByteSpan framed) const {
  if (framed.size() != framed_bytes_) {
    return DataLossError("bad slot size");
  }
  size_t offset = 0;
  NYMIX_ASSIGN_OR_RETURN(uint16_t length, ReadU16(framed, offset));
  NYMIX_ASSIGN_OR_RETURN(uint32_t checksum, ReadU32(framed, offset));
  if (length > slot_bytes_) {
    return DataLossError("slot length field corrupted");
  }
  Bytes payload(framed.begin() + kFrameHeader, framed.begin() + kFrameHeader + length);
  if (FrameChecksum(payload) != checksum) {
    return DataLossError("slot checksum mismatch (disruption)");
  }
  return payload;
}

Bytes DcNetGroup::HonestCiphertext(size_t member, size_t slot, ByteSpan framed,
                                   uint64_t round) const {
  Bytes ciphertext(framed_bytes_ * member_count_, 0);
  for (size_t other = 0; other < member_count_; ++other) {
    if (other == member) {
      continue;
    }
    XorInto(ciphertext, PadFor(member, other, round));
  }
  if (!framed.empty()) {
    for (size_t i = 0; i < framed.size(); ++i) {
      ciphertext[slot * framed_bytes_ + i] ^= framed[i];
    }
  }
  return ciphertext;
}

Result<Bytes> DcNetGroup::MemberCiphertext(size_t member, size_t slot, ByteSpan message,
                                           uint64_t round) const {
  if (member >= member_count_ || slot >= member_count_) {
    return InvalidArgumentError("member/slot out of range");
  }
  if (message.size() > slot_bytes_) {
    return InvalidArgumentError("message exceeds slot size");
  }
  Bytes framed = message.empty() ? Bytes() : FrameMessage(message);
  return HonestCiphertext(member, slot, framed, round);
}

Result<Bytes> DcNetGroup::CombineRound(const std::vector<Bytes>& ciphertexts) const {
  if (ciphertexts.size() != member_count_) {
    return InvalidArgumentError("need one ciphertext per member");
  }
  Bytes combined(framed_bytes_ * member_count_, 0);
  for (const Bytes& ciphertext : ciphertexts) {
    if (ciphertext.size() != combined.size()) {
      return InvalidArgumentError("ciphertext has wrong size");
    }
    XorInto(combined, ciphertext);
  }
  return combined;
}

Result<Bytes> DcNetGroup::SlotPayload(const Bytes& round_plaintext, size_t slot) const {
  if (slot >= member_count_ || round_plaintext.size() != framed_bytes_ * member_count_) {
    return InvalidArgumentError("bad slot or plaintext size");
  }
  ByteSpan framed(round_plaintext.data() + slot * framed_bytes_, framed_bytes_);
  // An untouched slot is all zeros: empty payload with zero checksum.
  bool all_zero = std::all_of(framed.begin(), framed.end(), [](uint8_t b) { return b == 0; });
  if (all_zero) {
    return Bytes{};
  }
  return UnframeSlot(framed);
}

DcNetGroup::RoundResult DcNetGroup::RunRound(const std::vector<Bytes>& messages,
                                             const std::vector<size_t>& slots, uint64_t round,
                                             std::optional<size_t> disruptor) const {
  NYMIX_CHECK(messages.size() == member_count_ && slots.size() == member_count_);
  std::vector<Bytes> transmissions;
  transmissions.reserve(member_count_);
  for (size_t member = 0; member < member_count_; ++member) {
    auto ciphertext = MemberCiphertext(member, slots[member], messages[member], round);
    NYMIX_CHECK(ciphertext.ok());
    transmissions.push_back(std::move(*ciphertext));
  }
  if (disruptor.has_value()) {
    // The disruptor flips bits across the round (jamming other slots).
    Prng noise(Mix64(round ^ 0xbadc0deULL));
    for (auto& byte : transmissions[*disruptor]) {
      byte ^= static_cast<uint8_t>(noise.NextBelow(256));
    }
  }
  auto combined = CombineRound(transmissions);
  NYMIX_CHECK(combined.ok());
  RoundResult result;
  result.plaintext = std::move(*combined);
  for (size_t slot = 0; slot < member_count_; ++slot) {
    auto payload = SlotPayload(result.plaintext, slot);
    if (!payload.ok()) {
      result.corrupted_slots.push_back(slot);
    }
  }
  return result;
}

std::vector<size_t> DcNetGroup::Blame(const std::vector<Bytes>& transmitted,
                                      const std::vector<Bytes>& messages,
                                      const std::vector<size_t>& slots, uint64_t round) const {
  NYMIX_CHECK(transmitted.size() == member_count_);
  std::vector<size_t> disruptors;
  for (size_t member = 0; member < member_count_; ++member) {
    auto honest = MemberCiphertext(member, slots[member], messages[member], round);
    NYMIX_CHECK(honest.ok());
    if (*honest != transmitted[member]) {
      disruptors.push_back(member);
    }
  }
  return disruptors;
}

std::vector<size_t> DcNetGroup::SlotPermutation(uint64_t round) const {
  std::vector<size_t> permutation(member_count_);
  for (size_t i = 0; i < member_count_; ++i) {
    permutation[i] = i;
  }
  // Fisher-Yates keyed by (group, round) — the shuffle's public output.
  Prng prng(Mix64(group_seed_ ^ Mix64(round ^ 0x5107f1e5ULL)));
  for (size_t i = member_count_ - 1; i > 0; --i) {
    size_t j = prng.NextBelow(i + 1);
    std::swap(permutation[i], permutation[j]);
  }
  return permutation;
}

}  // namespace nymix
