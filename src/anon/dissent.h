// Dissent model (§4.1): anonymous group communication in the anytrust
// model. A small set of servers runs DC-net rounds for a client group;
// every client transmits a fixed-size ciphertext per round whether or not
// it has data ("experimentally supports anonymous browsing via Dissent ...
// in principle offers formally provable traffic analysis resistance ...
// but is less mature and currently less scalable than Tor").
//
// Cost model: the group's aggregate DC-net throughput is the server
// bandwidth divided by the group size (every slot byte is covered by a
// same-size ciphertext from each member), surfaced as a shared group link;
// ciphertext expansion appears as a 2x per-byte overhead, and round
// batching as the group link's latency.
#ifndef SRC_ANON_DISSENT_H_
#define SRC_ANON_DISSENT_H_

#include <optional>

#include "src/anon/anonymizer.h"
#include "src/anon/dcnet.h"

namespace nymix {

class DissentServers {
 public:
  struct Config {
    size_t server_count = 3;  // anytrust: one honest server suffices
    size_t group_size = 16;   // clients sharing the DC-net
    uint64_t server_bandwidth_bps = 100'000'000;
    SimDuration server_link_latency = Millis(20);
    SimDuration round_interval = Millis(500);
    SimDuration key_ceremony = SecondsF(1.5);  // DH + shuffle setup
  };

  explicit DissentServers(Simulation& sim) : DissentServers(sim, Config{}) {}
  DissentServers(Simulation& sim, Config config);

  const Config& config() const { return config_; }
  Link* group_link() const { return group_link_; }
  Ipv4Address front_ip() const { return front_ip_; }
  Simulation& sim() { return sim_; }

  // Deterministic slot permutation for a joining client (models the
  // verifiable shuffle's output order).
  size_t AssignSlot(uint64_t client_nonce);

  size_t members_joined() const { return members_joined_; }

  // The group's live DC-net engine (real XOR rounds; see dcnet.h).
  DcNetGroup& dcnet() { return *dcnet_; }
  uint64_t NextRoundNumber() { return next_round_++; }

 private:
  class FrontServer : public InternetHost {
   public:
    explicit FrontServer(EventLoop& loop) : loop_(loop) {}
    void OnDatagram(const Packet& packet, const std::function<void(Packet)>& reply) override;

   private:
    EventLoop& loop_;
  };

  Simulation& sim_;
  Config config_;
  FrontServer front_;
  Ipv4Address front_ip_;
  Link* group_link_;
  size_t members_joined_ = 0;
  std::unique_ptr<DcNetGroup> dcnet_;
  uint64_t next_round_ = 1;
};

class DissentClient : public Anonymizer {
 public:
  DissentClient(ClientAttachment attachment, DissentServers& servers, uint64_t seed);

  AnonymizerKind kind() const override { return AnonymizerKind::kDissent; }
  std::string_view Name() const override { return "Dissent"; }
  void Start(std::function<void(Result<SimTime>)> ready) override;
  bool ready() const override { return joined_; }
  void Fetch(const std::string& host, uint64_t request_bytes, uint64_t response_bytes,
             std::function<void(Result<FetchReceipt>)> done) override;
  // DC-net ciphertext expansion.
  double OverheadFactor() const override { return 2.0; }
  bool ProtectsNetworkIdentity() const override { return true; }
  void HandlePacket(const Packet& packet) override;

  // Posts a small message through one REAL DC-net round: the other group
  // members transmit cover ciphertexts, the round is combined, and `done`
  // receives this member's slot payload as recovered from the mix —
  // exercising actual sender-anonymous transmission, not just its cost.
  void PostAnonymousMessage(ByteSpan message, std::function<void(Result<Bytes>)> done);

  std::optional<size_t> member_index() const { return member_index_; }
  std::optional<size_t> slot() const { return slot_; }
  // Rounds consumed by completed fetches (each round moves one slot's worth
  // of payload through the group link).
  uint64_t rounds_used() const { return *rounds_used_; }

 private:
  ClientAttachment attachment_;
  DissentServers& servers_;
  Prng prng_;
  bool joined_ = false;
  std::optional<size_t> member_index_;
  std::optional<size_t> slot_;
  uint64_t join_nonce_ = 0;
  int pending_exchange_ = 0;
  OnceCallback<Result<SimTime>> on_joined_;
  Port next_port_ = 42000;
  // Shared so a completion callback outliving the client stays safe.
  std::shared_ptr<uint64_t> rounds_used_ = std::make_shared<uint64_t>(0);

  void SendJoinPacket(int exchange);
};

}  // namespace nymix

#endif  // SRC_ANON_DISSENT_H_
