// GuestMemory: page-granular model of a VM's RAM. Pages carry 64-bit
// content identities instead of 4 KiB buffers — enough for the kernel
// samepage-merging (KSM) model to find duplicates within and across VMs
// (§4.2, Figure 3) without materializing gigabytes.
//
// Page classes:
//   zero        — untouched guest pages (all VMs share one zero page)
//   image       — pages backed by base-image blocks; identical across every
//                 VM booted from the same USB image
//   unique      — dirtied pages (heaps, browser state); never mergeable
#ifndef SRC_HV_GUEST_MEMORY_H_
#define SRC_HV_GUEST_MEMORY_H_

#include <cstdint>
#include <map>

#include "src/unionfs/disk_image.h"
#include "src/util/prng.h"

namespace nymix {

inline constexpr uint64_t kPageSize = 4096;

// Content id 0 is reserved for the zero page.
inline constexpr uint64_t kZeroPageContent = 0;

class GuestMemory {
 public:
  // All pages are obtained from the host at initialization ("KVM obtains
  // most of the requested memory for a VM at VM initialization", §5.2) and
  // start as zero pages. The single-argument form draws the id from a
  // process-wide counter (fine for standalone tests); loop-owned callers
  // (VirtualMachine) pass EventLoop::AllocateObjectId() so parallel shards
  // allocate ids without racing or depending on shard interleaving.
  explicit GuestMemory(uint64_t ram_bytes);
  GuestMemory(uint64_t ram_bytes, uint64_t id);

  uint64_t total_pages() const { return total_pages_; }
  uint64_t total_bytes() const { return total_pages_ * kPageSize; }

  // Creation-order sequence number (same contract as Link::id()): the KSM
  // daemon keys its per-memory delta state by this instead of by pointer,
  // so iteration order is reproducible run to run.
  uint64_t id() const { return id_; }

  // Monotonic write-generation, bumped by every mutation (image mapping,
  // page dirtying, wipe). KsmDaemon::ScanNow compares this against the
  // generation it last merged at and skips memories that have not changed —
  // the invariant is: equal generation ⇒ pages_by_content() is unchanged.
  uint64_t generation() const { return generation_; }

  uint64_t zero_pages() const { return zero_pages_; }
  uint64_t image_pages() const { return ImagePageCount(); }
  uint64_t unique_pages() const { return unique_pages_; }

  // Boot: maps `count` pages to base-image block contents (page cache,
  // text segments). Cycles deterministically through the image blocks so
  // two VMs on the same image produce identical ids.
  void MapImagePages(const BaseImage& image, uint64_t count);

  // Dirties pages into unique content: first consumes zero pages, then
  // converts image-backed pages (copy-on-write break), never un-dirties.
  void DirtyPages(uint64_t count, Prng& prng);

  // Shareable-content histogram merged by the KSM scanner: content id ->
  // page count, covering zero and image-backed pages. Unique pages never
  // merge, so they are tracked only as a count (unique_pages()) — this keeps
  // an 8-nym scan cheap instead of carrying ~100k singleton entries per VM.
  const std::map<uint64_t, uint64_t>& pages_by_content() const { return pages_by_content_; }

  // Secure erase at nym termination: every page becomes zero again and the
  // unique ids are discarded (§3.4 "securely erases the AnonVM's and
  // CommVM's memory").
  void Wipe();

 private:
  uint64_t ImagePageCount() const;

  uint64_t id_;
  uint64_t generation_ = 1;
  uint64_t total_pages_;
  uint64_t zero_pages_;
  uint64_t unique_pages_ = 0;
  std::map<uint64_t, uint64_t> pages_by_content_;
  // Image-backed content ids currently mapped (subset of pages_by_content_).
  std::map<uint64_t, uint64_t> image_contents_;
  uint64_t next_unique_tag_;
};

}  // namespace nymix

#endif  // SRC_HV_GUEST_MEMORY_H_
