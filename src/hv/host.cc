#include "src/hv/host.h"

#include <algorithm>

namespace nymix {

HostMachine::HostMachine(Simulation& sim, HostConfig config)
    : sim_(sim),
      config_(config),
      cpu_(sim.loop(), config.cores, config.virtualization_overhead),
      ksm_(sim.loop(),
           [this] {
             std::vector<const GuestMemory*> memories;
             memories.reserve(vms_.size());
             for (const auto& vm : vms_) {
               if (vm->state() != VmState::kStopped) {
                 memories.push_back(&vm->memory());
               }
             }
             return memories;
           }),
      uplink_(sim.CreateLink("host-uplink", config.uplink_one_way_latency,
                             config.uplink_bandwidth_bps)),
      public_ip_(sim.internet().AllocatePublicIp()) {
  sim.internet().AttachUplink(uplink_);
  router_ = std::make_unique<NatGateway>("host-router", uplink_, public_ip_);
}

Result<VirtualMachine*> HostMachine::CreateVm(VmConfig config,
                                              std::shared_ptr<const BaseImage> image,
                                              std::shared_ptr<const MemFs> config_layer) {
  // Admission control: a VM's RAM and full disk capacity both come out of
  // host RAM ("the host allocates disk and RAM from its own stash of RAM,
  // thus limiting the maximum number of nyms", §5.2).
  uint64_t needed = config.ram_bytes + config.disk_capacity;
  if (ReservedMemoryBytes() + needed > config_.ram_bytes) {
    return ResourceExhaustedError("host RAM exhausted creating " + config.name);
  }
  vms_.push_back(
      std::make_unique<VirtualMachine>(sim_, std::move(config), std::move(image),
                                       std::move(config_layer)));
  return vms_.back().get();
}

Status HostMachine::DestroyVm(VirtualMachine* vm, bool secure_wipe) {
  auto it = std::find_if(vms_.begin(), vms_.end(),
                         [vm](const auto& owned) { return owned.get() == vm; });
  if (it == vms_.end()) {
    return NotFoundError("VM not owned by this host");
  }
  if (!secure_wipe) {
    // The guest's private (dirtied) pages stay readable in free host RAM.
    residual_bytes_ += (*it)->memory().unique_pages() * kPageSize;
    residual_bytes_ += (*it)->disk().writable_used();
  }
  (*it)->Shutdown(secure_wipe);
  (*it)->DiscardDisk();
  vms_.erase(it);
  return OkStatus();
}

std::vector<VirtualMachine*> HostMachine::vms() const {
  std::vector<VirtualMachine*> out;
  out.reserve(vms_.size());
  for (const auto& vm : vms_) {
    out.push_back(vm.get());
  }
  return out;
}

uint64_t HostMachine::ReservedMemoryBytes() const {
  uint64_t total = config_.baseline_bytes;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kStopped) {
      continue;
    }
    total += vm->config().ram_bytes + vm->config().disk_capacity;
  }
  return total;
}

uint64_t HostMachine::AllocatedMemoryBytes() const {
  uint64_t total = config_.baseline_bytes;
  for (const auto& vm : vms_) {
    if (vm->state() == VmState::kStopped) {
      continue;
    }
    total += vm->memory().total_bytes();
    total += vm->disk().writable_used();
  }
  return total;
}

uint64_t HostMachine::UsedMemoryBytes() const {
  uint64_t allocated = AllocatedMemoryBytes();
  uint64_t saved = ksm_.stats().bytes_saved();
  return allocated > saved ? allocated - saved : 0;
}

uint64_t HostMachine::FreeMemoryBytes() const {
  uint64_t used = UsedMemoryBytes();
  return used >= config_.ram_bytes ? 0 : config_.ram_bytes - used;
}

Link* HostMachine::CreateVmUplink(const std::string& name) {
  // Guest-to-host virtual link: fast and local.
  Link* link = sim_.CreateLink(name, Micros(100), 1'000'000'000ULL);
  router_->AttachInside(link);
  return link;
}

void HostMachine::EmitDhcp() {
  Packet request;
  request.src_mac = MacAddress::StandardGuest();
  request.dst_mac = MacAddress::Broadcast();
  request.src_ip = Ipv4Address(0, 0, 0, 0);
  request.dst_ip = Ipv4Address(255, 255, 255, 255);
  request.src_port = 68;
  request.dst_port = 67;
  request.protocol = IpProtocol::kUdp;
  request.payload = BytesFromString("DHCPDISCOVER");
  request.annotation = "DHCP";
  uplink_->SendFromA(std::move(request));

  Packet ack = {};
  ack.src_ip = kLanRouterIp;
  ack.dst_ip = public_ip_;
  ack.src_port = 67;
  ack.dst_port = 68;
  ack.protocol = IpProtocol::kUdp;
  ack.payload = BytesFromString("DHCPACK");
  ack.annotation = "DHCP";
  uplink_->SendFromA(std::move(ack));
}

}  // namespace nymix
