// VirtualMachine: one QEMU/KVM guest in the model — RAM pages, a
// three-layer union disk, NIC attachments, VirtFS shares, and a timed boot
// sequence. The hypervisor (HostMachine) creates and destroys these; the
// Nym Manager wires pairs of them into nymboxes.
//
// Fingerprint homogeneity (§4.2): every guest reports the same CPU model,
// screen resolution, MAC and IP regardless of the underlying host.
#ifndef SRC_HV_VM_H_
#define SRC_HV_VM_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/hv/guest_memory.h"
#include "src/net/link.h"
#include "src/net/simulation.h"
#include "src/unionfs/disk_image.h"

namespace nymix {

enum class VmRole { kAnonVm, kCommVm, kSaniVm, kInstalledOs };
std::string_view VmRoleName(VmRole role);

enum class VmState { kCreated, kBooting, kRunning, kPaused, kStopped, kCrashed };

struct BootProfile {
  SimDuration bios = Millis(800);
  SimDuration kernel = Seconds(4);
  SimDuration services = Seconds(5);

  SimDuration Total() const { return bios + kernel + services; }
};

struct VmConfig {
  std::string name;
  VmRole role = VmRole::kAnonVm;
  uint64_t ram_bytes = 384 * kMiB;
  uint64_t disk_capacity = 128 * kMiB;
  uint32_t vcpus = 1;
  BootProfile boot;
  // Memory shape right after boot, as fractions of total pages.
  double boot_image_page_fraction = 0.10;  // page cache / text from base image
  double boot_dirty_page_fraction = 0.15;  // kernel + service heaps

  // Paper defaults: "allocated 16 MB disk space and 128 MB RAM to each
  // CommVM and 128 MB disk space to each AnonVM" (§5.2).
  static VmConfig AnonVm(std::string name);
  static VmConfig CommVm(std::string name);
  static VmConfig SaniVm(std::string name);
};

class VirtualMachine : public PacketSink {
 public:
  VirtualMachine(Simulation& sim, VmConfig config, std::shared_ptr<const BaseImage> image,
                 std::shared_ptr<const MemFs> config_layer);
  // Detaches all NICs so in-flight packets drop instead of dangling.
  ~VirtualMachine() override;

  const VmConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  VmRole role() const { return config_.role; }
  VmState state() const { return state_; }

  GuestMemory& memory() { return memory_; }
  const GuestMemory& memory() const { return memory_; }
  VmDisk& disk() { return disk_; }
  const VmDisk& disk() const { return disk_; }

  // --- Lifecycle -----------------------------------------------------
  // Boots through bios/kernel/services phases, maps image pages and
  // dirties boot heaps, then calls `on_ready`.
  void Boot(std::function<void(SimTime)> on_ready);
  void Pause();
  void Resume();
  // Stops the VM; with `secure_wipe` (the Nymix default) its memory is
  // zeroed immediately (§3.4). Passing false models a conventional
  // hypervisor that leaves guest pages in host RAM until reuse — the
  // remanence Dunn et al. [18] measure; see HostMachine::ColdBootScan().
  void Shutdown(bool secure_wipe = true);
  // Fault injection: the guest dies where it stands — mid-boot or running.
  // No secure wipe runs (a crash is precisely the case where nothing gets
  // to clean up), so guest pages stay in host RAM: the remanence window
  // §3.4's wipe-on-teardown is designed to close. Boot() accepts a crashed
  // VM, modeling a hypervisor restart of the same instance.
  void Crash();
  void DiscardDisk() { disk_.DiscardWritable(); }

  // --- Networking ----------------------------------------------------
  // A guest NIC bound to one side of a link. Guests forward received
  // packets to a role-specific handler installed by the Nym Manager.
  void AttachNic(Link* link, bool side_a);
  void SetPacketHandler(std::function<void(const Packet&, Link&, bool)> handler) {
    packet_handler_ = std::move(handler);
  }
  // Sends out the NIC attached to `link`; drops if the VM is not running.
  void SendPacket(Link* link, Packet packet);
  void OnPacket(const Packet& packet, Link& link, bool from_a) override;
  uint64_t packets_received() const { return packets_received_; }
  uint64_t packets_dropped_not_running() const { return packets_dropped_not_running_; }

  // --- VirtFS shares (§4.3) -------------------------------------------
  Status AttachShare(const std::string& tag, std::shared_ptr<MemFs> share);
  Result<std::shared_ptr<MemFs>> GetShare(const std::string& tag) const;
  Status DetachShare(const std::string& tag);

  // --- Homogeneous fingerprint surface (§4.2) --------------------------
  std::string CpuModelString() const { return "QEMU Virtual CPU version 2.0.0"; }
  std::string ScreenResolution() const { return "1024x768"; }
  MacAddress GuestMac() const { return MacAddress::StandardGuest(); }
  uint32_t VisibleCpuCount() const { return 1; }

 private:
  Simulation& sim_;
  VmConfig config_;
  VmState state_ = VmState::kCreated;
  GuestMemory memory_;
  VmDisk disk_;
  // link -> attached as side A; ordered by creation id (LinkIdLess) because
  // the destructor walks the NICs and detach order must not depend on
  // heap addresses.
  std::map<Link*, bool, LinkIdLess> nics_;
  std::function<void(const Packet&, Link&, bool)> packet_handler_;
  std::map<std::string, std::shared_ptr<MemFs>> shares_;
  std::shared_ptr<const BaseImage> image_;
  uint64_t boot_event_ = 0;
  bool boot_event_pending_ = false;
  uint64_t packets_received_ = 0;
  uint64_t packets_dropped_not_running_ = 0;
};

}  // namespace nymix

#endif  // SRC_HV_VM_H_
