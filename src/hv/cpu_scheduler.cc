#include "src/hv/cpu_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/check.h"

namespace nymix {

CpuScheduler::CpuScheduler(EventLoop& loop, uint32_t cores, double virtualization_overhead)
    : loop_(loop), cores_(cores), virt_overhead_(virtualization_overhead) {
  NYMIX_CHECK(cores_ > 0);
  NYMIX_CHECK(virt_overhead_ >= 0.0);
}

bool CpuScheduler::LoadPhase(Task& task) const {
  while (task.phase_index < task.phases.size()) {
    const CpuPhase& phase = task.phases[task.phase_index];
    double cost = static_cast<double>(phase.native_duration);
    if (task.virtualized) {
      // Guests pay the overhead on every phase: compute slows by trap/exit
      // cost, and "idle" render/IO phases slow at least as much under
      // device emulation. Wall time scales by (1 + overhead), the paper's
      // "about a 20% overhead".
      cost *= 1.0 + virt_overhead_;
    }
    if (cost > 0) {
      task.remaining_us = cost;
      return true;
    }
    ++task.phase_index;  // skip zero-length phases
  }
  return false;
}

CpuTaskId CpuScheduler::Submit(std::vector<CpuPhase> phases, bool virtualized,
                               std::function<void(SimTime)> done) {
  Settle();
  CpuTaskId id = next_id_++;
  Task task;
  task.phases = std::move(phases);
  task.virtualized = virtualized;
  task.done = std::move(done);
  if (!LoadPhase(task)) {
    // Empty task: completes immediately (still asynchronously).
    auto callback = std::move(task.done);
    loop_.ScheduleAfter(0, [callback, this] {
      if (callback) {
        callback(loop_.now());
      }
    });
    return id;
  }
  tasks_.emplace(id, std::move(task));
  Reschedule();
  return id;
}

bool CpuScheduler::CancelTask(CpuTaskId id) {
  Settle();
  auto it = tasks_.find(id);
  if (it == tasks_.end()) {
    return false;
  }
  tasks_.erase(it);
  Reschedule();
  return true;
}

size_t CpuScheduler::runnable_tasks() const {
  return static_cast<size_t>(
      std::count_if(tasks_.begin(), tasks_.end(), [](const auto& entry) {
        return entry.second.phases[entry.second.phase_index].is_compute;
      }));
}

void CpuScheduler::Settle() {
  SimTime now = loop_.now();
  if (now == last_settle_) {
    return;
  }
  double elapsed_us = static_cast<double>(now - last_settle_);
  last_settle_ = now;

  std::vector<CpuTaskId> finished;
  for (auto& [id, task] : tasks_) {
    const CpuPhase& phase = task.phases[task.phase_index];
    double progress = phase.is_compute ? elapsed_us * task.speed : elapsed_us;
    task.remaining_us -= progress;
    if (task.remaining_us <= 1e-6) {
      ++task.phase_index;
      if (!LoadPhase(task)) {
        finished.push_back(id);
      }
    }
  }
  for (CpuTaskId id : finished) {
    auto node = tasks_.extract(id);
    if (node.mapped().done) {
      node.mapped().done(now);
    }
  }
}

void CpuScheduler::Reschedule() {
  if (has_pending_event_) {
    loop_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  size_t runnable = runnable_tasks();
  double share = runnable == 0 ? 0.0
                               : std::min(1.0, static_cast<double>(cores_) /
                                                   static_cast<double>(runnable));

  double min_eta_us = std::numeric_limits<double>::infinity();
  for (auto& [id, task] : tasks_) {
    (void)id;
    const CpuPhase& phase = task.phases[task.phase_index];
    if (phase.is_compute) {
      task.speed = share;
      if (share > 0) {
        min_eta_us = std::min(min_eta_us, task.remaining_us / share);
      }
    } else {
      task.speed = 0;
      min_eta_us = std::min(min_eta_us, task.remaining_us);
    }
  }
  if (std::isfinite(min_eta_us)) {
    SimDuration delay = static_cast<SimDuration>(min_eta_us) + 1;
    pending_event_ = loop_.ScheduleAfter(delay, [this] {
      has_pending_event_ = false;
      Settle();
      Reschedule();
    });
    has_pending_event_ = true;
  }
}

}  // namespace nymix
