// Kernel samepage merging model (§4.2, Figure 3). The daemon periodically
// scans every VM's shareable pages and merges duplicates: n pages with the
// same content cost one physical page after merging. Because all Nymix VMs
// boot from the same base image, image-backed pages merge across nyms —
// the paper measures "over 5% saving at 8 nyms".
#ifndef SRC_HV_KSM_H_
#define SRC_HV_KSM_H_

#include <functional>
#include <vector>

#include "src/hv/guest_memory.h"
#include "src/util/event_loop.h"

namespace nymix {

struct KsmStats {
  // Physical pages holding merged content (kernel's pages_shared).
  uint64_t pages_shared = 0;
  // Guest pages mapped onto those (kernel's pages_sharing); the Figure 3
  // "shared pages" series.
  uint64_t pages_sharing = 0;
  // Host pages freed by merging: pages_sharing - pages_shared.
  uint64_t pages_saved() const { return pages_sharing - pages_shared; }
  uint64_t bytes_saved() const { return pages_saved() * kPageSize; }
};

class KsmDaemon {
 public:
  // `memories` enumerates the live VMs' guest memories at scan time.
  KsmDaemon(EventLoop& loop, std::function<std::vector<const GuestMemory*>()> memories);

  // One full scan pass (instantaneous in virtual time). Real ksmd sweeps
  // incrementally; Nymix's measurement points are all post-stabilization,
  // so a full pass at each tick is the faithful summary.
  KsmStats ScanNow();

  // Enables periodic scanning.
  void Start(SimDuration interval);
  void Stop();

  const KsmStats& stats() const { return stats_; }
  bool running() const { return running_; }

 private:
  void Tick();

  EventLoop& loop_;
  std::function<std::vector<const GuestMemory*>()> memories_;
  KsmStats stats_;
  SimDuration interval_ = 0;
  bool running_ = false;
  uint64_t pending_event_ = 0;
};

}  // namespace nymix

#endif  // SRC_HV_KSM_H_
