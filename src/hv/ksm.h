// Kernel samepage merging model (§4.2, Figure 3). The daemon periodically
// scans every VM's shareable pages and merges duplicates: n pages with the
// same content cost one physical page after merging. Because all Nymix VMs
// boot from the same base image, image-backed pages merge across nyms —
// the paper measures "over 5% saving at 8 nyms".
//
// Scans are incremental: the daemon keeps a host-level content-count index
// (content hash → pages across all tracked memories) plus, per memory, the
// write-generation and content histogram it last merged. A pass re-merges
// only memories whose GuestMemory::generation() moved, applying the
// histogram delta to the index and to the running shared/sharing
// aggregates. The invariant (docs/performance.md): after any pass, stats()
// is bit-identical to what a from-scratch merge over all live memories
// would produce — enforced by tests/perf_equivalence_test.cc against the
// reference full-rescan path kept behind set_full_rescan(true).
#ifndef SRC_HV_KSM_H_
#define SRC_HV_KSM_H_

#include <functional>
#include <map>
#include <vector>

#include "src/hv/guest_memory.h"
#include "src/util/event_loop.h"

namespace nymix {

struct KsmStats {
  // Physical pages holding merged content (kernel's pages_shared).
  uint64_t pages_shared = 0;
  // Guest pages mapped onto those (kernel's pages_sharing); the Figure 3
  // "shared pages" series.
  uint64_t pages_sharing = 0;
  // Host pages freed by merging: pages_sharing - pages_shared.
  uint64_t pages_saved() const { return pages_sharing - pages_shared; }
  uint64_t bytes_saved() const { return pages_saved() * kPageSize; }
};

class KsmDaemon {
 public:
  // `memories` enumerates the live VMs' guest memories at scan time.
  KsmDaemon(EventLoop& loop, std::function<std::vector<const GuestMemory*>()> memories);

  // One scan pass (instantaneous in virtual time). Real ksmd sweeps
  // incrementally; Nymix's measurement points are all post-stabilization,
  // so a full merge summary at each tick is the faithful result — this
  // implementation just reaches it by delta instead of by rescanning the
  // world.
  KsmStats ScanNow();

  // Enables periodic scanning. Calling Start while already running adopts
  // the new cadence immediately: the pending tick is rescheduled to fire
  // `interval` from now instead of riding out the old interval.
  void Start(SimDuration interval);
  void Stop();

  const KsmStats& stats() const { return stats_; }
  bool running() const { return running_; }

  // Reference implementation hook: rescan and re-merge everything on every
  // pass (the pre-incremental behavior). Benches use it for wall-clock
  // comparison; the equivalence tests assert bit-identical stats against
  // it. Enabling it drops the incremental state, so switching back starts
  // from a clean first-scan baseline.
  void set_full_rescan(bool full);
  bool full_rescan() const { return full_rescan_; }

  // Fleet-wide reconcile input (src/hv/ksm_fleet.h): the live content
  // histogram (content id → total pages) across every tracked memory,
  // rebuilt from the memories themselves so the result is independent of
  // scan mode (incremental vs full_rescan) and of when ScanNow last ran.
  std::map<uint64_t, uint64_t> ContentHistogram() const;

  // Scan-effort introspection (always counted, metrics attached or not).
  uint64_t passes() const { return passes_; }
  uint64_t memories_merged() const { return memories_merged_; }
  uint64_t memories_skipped() const { return memories_skipped_; }

 private:
  // Per-memory delta state, keyed by GuestMemory::id().
  struct TrackedMemory {
    uint64_t last_generation = 0;
    // The content histogram as of the last merge; diffed against the live
    // histogram to produce index deltas.
    std::map<uint64_t, uint64_t> last_contents;
  };

  void Tick();
  // Applies `next` minus `tracked.last_contents` to the content index and
  // aggregates, then snapshots `next` into the tracked state.
  void ApplyDelta(TrackedMemory& tracked, const std::map<uint64_t, uint64_t>& next);
  // Moves one content's total from `old_total` to `new_total`, maintaining
  // the shared/sharing aggregates.
  void RetotalContent(uint64_t content, uint64_t old_total, uint64_t new_total);
  KsmStats FullRescan(const std::vector<const GuestMemory*>& memories,
                      uint64_t* pages_scanned);
  void RefreshMeters();

  EventLoop& loop_;
  std::function<std::vector<const GuestMemory*>()> memories_;
  KsmStats stats_;
  SimDuration interval_ = 0;
  bool running_ = false;
  uint64_t pending_event_ = 0;

  // --- Incremental index -------------------------------------------------
  bool full_rescan_ = false;
  std::map<uint64_t, TrackedMemory> tracked_;      // by GuestMemory::id()
  std::map<uint64_t, uint64_t> content_counts_;    // content → total pages
  uint64_t shared_ = 0;   // contents with total > 1
  uint64_t sharing_ = 0;  // pages under those contents

  uint64_t passes_ = 0;
  uint64_t memories_merged_ = 0;
  uint64_t memories_skipped_ = 0;

  // Cached instruments, refreshed when the loop's observability epoch
  // moves (see EventLoop::observability_epoch()).
  uint64_t meters_epoch_ = 0;
  Counter* passes_counter_ = nullptr;
  Counter* pages_scanned_counter_ = nullptr;
  Counter* memories_skipped_counter_ = nullptr;
  Gauge* pages_shared_gauge_ = nullptr;
  Gauge* pages_sharing_gauge_ = nullptr;
};

}  // namespace nymix

#endif  // SRC_HV_KSM_H_
