#include "src/hv/guest_memory.h"

#include <algorithm>

namespace nymix {

namespace {
// Process-wide creation counter for the id-less constructor, used by
// standalone tests that build a GuestMemory without an EventLoop. Sim code
// paths (VirtualMachine) pass an explicit per-loop id instead, so parallel
// shards never touch this.
uint64_t next_memory_id = 1;
}  // namespace

GuestMemory::GuestMemory(uint64_t ram_bytes) : GuestMemory(ram_bytes, next_memory_id++) {}

GuestMemory::GuestMemory(uint64_t ram_bytes, uint64_t id)
    : id_(id),
      total_pages_((ram_bytes + kPageSize - 1) / kPageSize),
      zero_pages_(total_pages_),
      next_unique_tag_(1) {
  pages_by_content_[kZeroPageContent] = zero_pages_;
}

uint64_t GuestMemory::ImagePageCount() const {
  uint64_t count = 0;
  for (const auto& [content, pages] : image_contents_) {
    (void)content;
    count += pages;
  }
  return count;
}

void GuestMemory::MapImagePages(const BaseImage& image, uint64_t count) {
  ++generation_;
  count = std::min(count, zero_pages_);
  uint64_t blocks = image.block_count();
  NYMIX_CHECK(blocks > 0);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t content = image.BlockContentId(i % blocks);
    ++pages_by_content_[content];
    ++image_contents_[content];
  }
  zero_pages_ -= count;
  auto it = pages_by_content_.find(kZeroPageContent);
  it->second = zero_pages_;
  if (zero_pages_ == 0) {
    pages_by_content_.erase(it);
  }
}

void GuestMemory::DirtyPages(uint64_t count, Prng& prng) {
  (void)prng;  // unique pages are count-only; no ids needed
  ++generation_;
  count = std::min(count, zero_pages_ + ImagePageCount());

  uint64_t from_zero = std::min(count, zero_pages_);
  zero_pages_ -= from_zero;
  if (from_zero > 0) {
    auto it = pages_by_content_.find(kZeroPageContent);
    it->second = zero_pages_;
    if (zero_pages_ == 0) {
      pages_by_content_.erase(it);
    }
  }

  uint64_t remaining = count - from_zero;
  while (remaining > 0 && !image_contents_.empty()) {
    auto it = image_contents_.begin();
    uint64_t take = std::min(remaining, it->second);
    it->second -= take;
    auto shared_it = pages_by_content_.find(it->first);
    shared_it->second -= take;
    if (shared_it->second == 0) {
      pages_by_content_.erase(shared_it);
    }
    if (it->second == 0) {
      image_contents_.erase(it);
    }
    remaining -= take;
  }
  unique_pages_ += count;
  next_unique_tag_ += count;
}

void GuestMemory::Wipe() {
  ++generation_;
  pages_by_content_.clear();
  image_contents_.clear();
  zero_pages_ = total_pages_;
  unique_pages_ = 0;
  pages_by_content_[kZeroPageContent] = zero_pages_;
}

}  // namespace nymix
