// Fleet-wide KSM reconcile: what samepage merging *would* save if the whole
// fleet's memory sat on one machine.
//
// Each host's KsmDaemon only merges within its own machine — that is the
// real kernel's scope, and in the parallel executor it is also the shard
// boundary. The fleet index answers the cross-host question (every Nymix
// box boots the same release image, so image-backed pages duplicate across
// hosts exactly as they do across VMs): it folds per-host content
// histograms into one fleet histogram and re-derives shared/sharing totals.
//
// Determinism: Reconcile is pure — it reads per-host histograms (rebuilt
// from live memories, scan-mode independent) and merges std::maps in the
// order the daemons are passed. ShardedFleet passes hosts in creation
// order, so the result is byte-identical across thread counts and
// identical between a sharded run and an unsharded one with the same
// per-host contents.
#ifndef SRC_HV_KSM_FLEET_H_
#define SRC_HV_KSM_FLEET_H_

#include <vector>

#include "src/hv/ksm.h"

namespace nymix {

struct FleetKsmStats {
  uint64_t hosts = 0;
  // Fleet-wide merge result (KsmStats semantics, §4.2 / Figure 3, but over
  // every host's pages at once).
  uint64_t pages_shared = 0;
  uint64_t pages_sharing = 0;
  // Sum of what per-host merging already achieves on its own.
  uint64_t local_pages_sharing = 0;

  uint64_t pages_saved() const { return pages_sharing - pages_shared; }
  uint64_t bytes_saved() const { return pages_saved() * kPageSize; }
  // Sharing visible only fleet-wide: pages whose content is unique within
  // their host but duplicated on another host.
  uint64_t cross_host_extra_sharing() const { return pages_sharing - local_pages_sharing; }
};

class FleetKsmIndex {
 public:
  // Pass daemons in host creation order (the caller's stable order is part
  // of the determinism contract, though the merged totals are order-
  // independent anyway since histogram addition commutes). Reads the LIVE
  // histograms — a fleet whose nyms have all terminated reconciles to zero
  // by design (§3.4: wiped memory holds nothing to merge).
  static FleetKsmStats Reconcile(const std::vector<const KsmDaemon*>& daemons);

  // Same reconcile over captured per-host histograms (one per host, in
  // host creation order) — what ShardedFleet feeds it from its fixed-
  // virtual-time snapshots, taken while the nyms are still alive.
  static FleetKsmStats ReconcileHistograms(
      const std::vector<std::map<uint64_t, uint64_t>>& hosts);
};

}  // namespace nymix

#endif  // SRC_HV_KSM_FLEET_H_
