#include "src/hv/ksm_fleet.h"

namespace nymix {

namespace {

// Shared/sharing totals a merge pass over `histogram` would produce: every
// content with more than one page costs one physical page (shared) for all
// of its mappings (sharing).
void Totals(const std::map<uint64_t, uint64_t>& histogram, uint64_t* shared,
            uint64_t* sharing) {
  for (const auto& [content, pages] : histogram) {
    (void)content;
    if (pages > 1) {
      *shared += 1;
      *sharing += pages;
    }
  }
}

}  // namespace

FleetKsmStats FleetKsmIndex::Reconcile(const std::vector<const KsmDaemon*>& daemons) {
  std::vector<std::map<uint64_t, uint64_t>> hosts;
  hosts.reserve(daemons.size());
  for (const KsmDaemon* daemon : daemons) {
    hosts.push_back(daemon->ContentHistogram());
  }
  return ReconcileHistograms(hosts);
}

FleetKsmStats FleetKsmIndex::ReconcileHistograms(
    const std::vector<std::map<uint64_t, uint64_t>>& hosts) {
  FleetKsmStats stats;
  stats.hosts = hosts.size();
  std::map<uint64_t, uint64_t> fleet;
  for (const std::map<uint64_t, uint64_t>& host : hosts) {
    uint64_t host_shared = 0;
    uint64_t host_sharing = 0;
    Totals(host, &host_shared, &host_sharing);
    stats.local_pages_sharing += host_sharing;
    for (const auto& [content, pages] : host) {
      fleet[content] += pages;
    }
  }
  Totals(fleet, &stats.pages_shared, &stats.pages_sharing);
  return stats;
}

}  // namespace nymix
