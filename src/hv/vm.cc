#include "src/hv/vm.h"

namespace nymix {

std::string_view VmRoleName(VmRole role) {
  switch (role) {
    case VmRole::kAnonVm:
      return "AnonVM";
    case VmRole::kCommVm:
      return "CommVM";
    case VmRole::kSaniVm:
      return "SaniVM";
    case VmRole::kInstalledOs:
      return "InstalledOS";
  }
  return "?";
}

VmConfig VmConfig::AnonVm(std::string name) {
  VmConfig config;
  config.name = std::move(name);
  config.role = VmRole::kAnonVm;
  config.ram_bytes = 384 * kMiB;
  config.disk_capacity = 128 * kMiB;
  config.boot = BootProfile{Millis(800), Seconds(4), SecondsF(5.2)};
  // Post-boot page mix calibrated against Figure 3's KSM counts: most RAM
  // is dirtied by boot (ASLR, slab, tmpfs), ~3.5% stays backed by shared
  // base-image blocks and ~6% remains zero.
  config.boot_image_page_fraction = 0.035;
  config.boot_dirty_page_fraction = 0.905;
  return config;
}

VmConfig VmConfig::CommVm(std::string name) {
  VmConfig config;
  config.name = std::move(name);
  config.role = VmRole::kCommVm;
  config.ram_bytes = 128 * kMiB;
  config.disk_capacity = 16 * kMiB;
  // CommVMs run no GUI and few services; they boot faster.
  config.boot = BootProfile{Millis(800), SecondsF(2.5), SecondsF(1.7)};
  config.boot_image_page_fraction = 0.06;
  config.boot_dirty_page_fraction = 0.91;
  return config;
}

VmConfig VmConfig::SaniVm(std::string name) {
  VmConfig config;
  config.name = std::move(name);
  config.role = VmRole::kSaniVm;
  config.ram_bytes = 256 * kMiB;
  config.disk_capacity = 64 * kMiB;
  config.boot = BootProfile{Millis(800), SecondsF(3.5), SecondsF(2.7)};
  return config;
}

VirtualMachine::VirtualMachine(Simulation& sim, VmConfig config,
                               std::shared_ptr<const BaseImage> image,
                               std::shared_ptr<const MemFs> config_layer)
    : sim_(sim),
      config_(std::move(config)),
      // Loop-scoped id: KSM keys per-memory state by it, and parallel shards
      // must not share (or race on) a process-wide counter.
      memory_(config_.ram_bytes, sim.loop().AllocateObjectId()),
      disk_(image, std::move(config_layer), config_.disk_capacity),
      image_(std::move(image)) {}

VirtualMachine::~VirtualMachine() {
  // Cancel any pending boot completion and unhook NICs: packets already on
  // the wire must drop at the link, not chase a destroyed sink.
  if (boot_event_pending_) {
    sim_.loop().Cancel(boot_event_);
  }
  for (const auto& [link, side_a] : nics_) {
    if (side_a) {
      link->AttachA(nullptr);
    } else {
      link->AttachB(nullptr);
    }
  }
}

void VirtualMachine::Boot(std::function<void(SimTime)> on_ready) {
  NYMIX_CHECK_MSG(state_ == VmState::kCreated || state_ == VmState::kStopped ||
                      state_ == VmState::kCrashed,
                  "Boot() on a VM that is not cold");
  state_ = VmState::kBooting;
  SimDuration total = config_.boot.Total();
  SimTime boot_start = sim_.now();
  boot_event_pending_ = true;
  boot_event_ = sim_.loop().ScheduleAfter(total, [this, boot_start,
                                                  on_ready = std::move(on_ready)] {
    boot_event_pending_ = false;
    if (state_ != VmState::kBooting) {
      return;  // shut down mid-boot
    }
    // The boot finished uninterrupted, so the phase boundaries are known
    // exactly: emit the bios/kernel/services breakdown as nested spans.
    if (TraceRecorder* tracer = sim_.loop().tracer()) {
      const BootProfile& boot = config_.boot;
      tracer->AddComplete("hv", "vm_boot", config_.name, boot_start, boot.Total());
      tracer->AddComplete("hv", "bios", config_.name, boot_start, boot.bios);
      tracer->AddComplete("hv", "kernel", config_.name, boot_start + boot.bios, boot.kernel);
      tracer->AddComplete("hv", "services", config_.name, boot_start + boot.bios + boot.kernel,
                          boot.services);
    }
    if (MetricsRegistry* meters = sim_.loop().meters()) {
      meters->GetCounter("hv.vm_boots")->Increment();
      meters->GetHistogram("hv.vm_boot_us")
          ->Record(static_cast<double>(sim_.now() - boot_start));
    }
    // Boot populates the page cache from the shared base image and dirties
    // kernel/service heaps.
    auto image_pages =
        static_cast<uint64_t>(config_.boot_image_page_fraction * memory_.total_pages());
    auto dirty_pages =
        static_cast<uint64_t>(config_.boot_dirty_page_fraction * memory_.total_pages());
    memory_.MapImagePages(*image_, image_pages);
    memory_.DirtyPages(dirty_pages, sim_.prng());
    state_ = VmState::kRunning;
    if (on_ready) {
      on_ready(sim_.now());
    }
  });
}

void VirtualMachine::Pause() {
  NYMIX_CHECK(state_ == VmState::kRunning);
  state_ = VmState::kPaused;
}

void VirtualMachine::Resume() {
  NYMIX_CHECK(state_ == VmState::kPaused);
  state_ = VmState::kRunning;
}

void VirtualMachine::Shutdown(bool secure_wipe) {
  state_ = VmState::kStopped;
  if (secure_wipe) {
    memory_.Wipe();
  }
}

void VirtualMachine::Crash() {
  if (state_ == VmState::kStopped || state_ == VmState::kCrashed) {
    return;  // already dead
  }
  if (boot_event_pending_) {
    sim_.loop().Cancel(boot_event_);
    boot_event_pending_ = false;
  }
  state_ = VmState::kCrashed;
  if (MetricsRegistry* meters = sim_.loop().meters()) {
    meters->GetCounter("hv.vm_crashes")->Increment();
  }
  if (TraceRecorder* tracer = sim_.loop().tracer()) {
    tracer->AddInstant("fault", "vm_crash", config_.name, sim_.now());
  }
}

void VirtualMachine::AttachNic(Link* link, bool side_a) {
  NYMIX_CHECK(link != nullptr);
  nics_[link] = side_a;
  if (side_a) {
    link->AttachA(this);
  } else {
    link->AttachB(this);
  }
}

void VirtualMachine::SendPacket(Link* link, Packet packet) {
  auto it = nics_.find(link);
  NYMIX_CHECK_MSG(it != nics_.end(), "SendPacket on a link without an attached NIC");
  if (state_ != VmState::kRunning) {
    ++packets_dropped_not_running_;
    return;
  }
  if (it->second) {
    link->SendFromA(std::move(packet));
  } else {
    link->SendFromB(std::move(packet));
  }
}

void VirtualMachine::OnPacket(const Packet& packet, Link& link, bool from_a) {
  if (state_ != VmState::kRunning) {
    ++packets_dropped_not_running_;
    return;
  }
  ++packets_received_;
  if (packet_handler_) {
    packet_handler_(packet, link, from_a);
  }
}

Status VirtualMachine::AttachShare(const std::string& tag, std::shared_ptr<MemFs> share) {
  if (shares_.count(tag) > 0) {
    return AlreadyExistsError("share already attached: " + tag);
  }
  shares_.emplace(tag, std::move(share));
  return OkStatus();
}

Result<std::shared_ptr<MemFs>> VirtualMachine::GetShare(const std::string& tag) const {
  auto it = shares_.find(tag);
  if (it == shares_.end()) {
    return NotFoundError("no such share: " + tag);
  }
  return it->second;
}

Status VirtualMachine::DetachShare(const std::string& tag) {
  if (shares_.erase(tag) == 0) {
    return NotFoundError("no such share: " + tag);
  }
  return OkStatus();
}

}  // namespace nymix
