#include "src/hv/ksm.h"

#include <set>

namespace nymix {

KsmDaemon::KsmDaemon(EventLoop& loop, std::function<std::vector<const GuestMemory*>()> memories)
    : loop_(loop), memories_(std::move(memories)) {}

void KsmDaemon::RefreshMeters() {
  if (meters_epoch_ == loop_.observability_epoch()) {
    return;
  }
  meters_epoch_ = loop_.observability_epoch();
  passes_counter_ = nullptr;
  pages_scanned_counter_ = nullptr;
  memories_skipped_counter_ = nullptr;
  pages_shared_gauge_ = nullptr;
  pages_sharing_gauge_ = nullptr;
  if (MetricsRegistry* meters = loop_.meters()) {
    passes_counter_ = meters->GetCounter("hv.ksm.passes");
    pages_scanned_counter_ = meters->GetCounter("hv.ksm.pages_scanned");
    memories_skipped_counter_ = meters->GetCounter("hv.ksm.memories_skipped");
    pages_shared_gauge_ = meters->GetGauge("hv.ksm.pages_shared");
    pages_sharing_gauge_ = meters->GetGauge("hv.ksm.pages_sharing");
  }
}

void KsmDaemon::set_full_rescan(bool full) {
  if (full == full_rescan_) {
    return;
  }
  full_rescan_ = full;
  // Either direction invalidates the delta baseline: the full path does not
  // maintain it, so re-entering incremental mode must start from scratch.
  tracked_.clear();
  content_counts_.clear();
  shared_ = 0;
  sharing_ = 0;
}

void KsmDaemon::RetotalContent(uint64_t content, uint64_t old_total, uint64_t new_total) {
  if (old_total > 1) {
    shared_ -= 1;
    sharing_ -= old_total;
  }
  if (new_total > 1) {
    shared_ += 1;
    sharing_ += new_total;
  }
  if (new_total == 0) {
    content_counts_.erase(content);
  } else {
    content_counts_[content] = new_total;
  }
}

void KsmDaemon::ApplyDelta(TrackedMemory& tracked, const std::map<uint64_t, uint64_t>& next) {
  // Merge-walk the old and new histograms (both sorted by content id) and
  // re-total every content whose per-memory count moved.
  auto old_it = tracked.last_contents.begin();
  auto new_it = next.begin();
  auto retotal = [this](uint64_t content, uint64_t was, uint64_t now) {
    auto idx = content_counts_.find(content);
    uint64_t old_total = idx == content_counts_.end() ? 0 : idx->second;
    RetotalContent(content, old_total, old_total - was + now);
  };
  while (old_it != tracked.last_contents.end() || new_it != next.end()) {
    if (new_it == next.end() ||
        (old_it != tracked.last_contents.end() && old_it->first < new_it->first)) {
      retotal(old_it->first, old_it->second, 0);
      ++old_it;
    } else if (old_it == tracked.last_contents.end() || new_it->first < old_it->first) {
      retotal(new_it->first, 0, new_it->second);
      ++new_it;
    } else {
      if (old_it->second != new_it->second) {
        retotal(new_it->first, old_it->second, new_it->second);
      }
      ++old_it;
      ++new_it;
    }
  }
  tracked.last_contents = next;
}

KsmStats KsmDaemon::FullRescan(const std::vector<const GuestMemory*>& memories,
                               uint64_t* pages_scanned) {
  std::map<uint64_t, uint64_t> merged;
  for (const GuestMemory* memory : memories) {
    for (const auto& [content, count] : memory->pages_by_content()) {
      merged[content] += count;
      *pages_scanned += count;
    }
  }
  memories_merged_ += memories.size();
  KsmStats stats;
  for (const auto& [content, count] : merged) {
    (void)content;
    if (count > 1) {
      stats.pages_shared += 1;
      stats.pages_sharing += count;
    }
  }
  return stats;
}

KsmStats KsmDaemon::ScanNow() {
  TraceSpan span(loop_.tracer(), loop_.clock(), "hv", "ksm_scan", "ksm");
  RefreshMeters();
  ++passes_;
  uint64_t pages_scanned = 0;
  uint64_t skipped = 0;
  std::vector<const GuestMemory*> memories = memories_();

  if (full_rescan_) {
    stats_ = FullRescan(memories, &pages_scanned);
  } else {
    // Delta pass: re-merge only memories whose generation moved since the
    // last pass (all of them, on the first pass), and retire memories that
    // disappeared (VM stopped or destroyed). Deltas are integer-exact and
    // commutative, so the result is bit-identical to a full re-merge.
    std::set<uint64_t> seen;
    for (const GuestMemory* memory : memories) {
      seen.insert(memory->id());
      TrackedMemory& tracked = tracked_[memory->id()];
      if (tracked.last_generation == memory->generation()) {
        ++skipped;
        continue;
      }
      ++memories_merged_;
      for (const auto& [content, count] : memory->pages_by_content()) {
        (void)content;
        pages_scanned += count;
      }
      ApplyDelta(tracked, memory->pages_by_content());
      tracked.last_generation = memory->generation();
    }
    static const std::map<uint64_t, uint64_t> kEmptyContents;
    for (auto it = tracked_.begin(); it != tracked_.end();) {
      if (seen.count(it->first) == 0) {
        ApplyDelta(it->second, kEmptyContents);
        it = tracked_.erase(it);
      } else {
        ++it;
      }
    }
    stats_ = KsmStats{shared_, sharing_};
  }

  memories_skipped_ += skipped;
  if (passes_counter_ != nullptr) {
    passes_counter_->Increment();
    pages_scanned_counter_->Increment(pages_scanned);
    memories_skipped_counter_->Increment(skipped);
    pages_shared_gauge_->Set(static_cast<double>(stats_.pages_shared));
    pages_sharing_gauge_->Set(static_cast<double>(stats_.pages_sharing));
  }
  return stats_;
}

void KsmDaemon::Start(SimDuration interval) {
  NYMIX_CHECK(interval > 0);
  interval_ = interval;
  if (running_) {
    // Already running: adopt the new cadence now. Without this the pending
    // tick would still fire on the old interval (and the first Start's
    // cadence would persist forever, since Tick reschedules from interval_
    // only after the stale event fires).
    loop_.Cancel(pending_event_);
    pending_event_ = loop_.ScheduleAfter(interval_, [this] {
      if (running_) {
        Tick();
      }
    });
    return;
  }
  running_ = true;
  Tick();
}

void KsmDaemon::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_.Cancel(pending_event_);
  pending_event_ = 0;
}

std::map<uint64_t, uint64_t> KsmDaemon::ContentHistogram() const {
  // Rebuilt from the live memories, not from content_counts_: the
  // incremental index lags mutations made since the last ScanNow and is
  // empty entirely under full_rescan, while the fleet reconcile
  // (src/hv/ksm_fleet.h) must see the same histogram either way.
  std::map<uint64_t, uint64_t> histogram;
  for (const GuestMemory* memory : memories_()) {
    for (const auto& [content, pages] : memory->pages_by_content()) {
      histogram[content] += pages;
    }
  }
  return histogram;
}

void KsmDaemon::Tick() {
  ScanNow();
  pending_event_ = loop_.ScheduleAfter(interval_, [this] {
    if (running_) {
      Tick();
    }
  });
}

}  // namespace nymix
