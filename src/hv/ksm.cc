#include "src/hv/ksm.h"

#include <map>

namespace nymix {

KsmDaemon::KsmDaemon(EventLoop& loop, std::function<std::vector<const GuestMemory*>()> memories)
    : loop_(loop), memories_(std::move(memories)) {}

KsmStats KsmDaemon::ScanNow() {
  TraceSpan span(loop_.tracer(), loop_.clock(), "hv", "ksm_scan", "ksm");
  uint64_t pages_scanned = 0;
  std::map<uint64_t, uint64_t> merged;
  for (const GuestMemory* memory : memories_()) {
    for (const auto& [content, count] : memory->pages_by_content()) {
      merged[content] += count;
      pages_scanned += count;
    }
  }
  KsmStats stats;
  for (const auto& [content, count] : merged) {
    (void)content;
    if (count > 1) {
      stats.pages_shared += 1;
      stats.pages_sharing += count;
    }
  }
  stats_ = stats;
  if (MetricsRegistry* meters = loop_.meters()) {
    meters->GetCounter("hv.ksm.passes")->Increment();
    meters->GetCounter("hv.ksm.pages_scanned")->Increment(pages_scanned);
    meters->GetGauge("hv.ksm.pages_shared")->Set(static_cast<double>(stats.pages_shared));
    meters->GetGauge("hv.ksm.pages_sharing")->Set(static_cast<double>(stats.pages_sharing));
  }
  return stats;
}

void KsmDaemon::Start(SimDuration interval) {
  NYMIX_CHECK(interval > 0);
  interval_ = interval;
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void KsmDaemon::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_.Cancel(pending_event_);
}

void KsmDaemon::Tick() {
  ScanNow();
  pending_event_ = loop_.ScheduleAfter(interval_, [this] {
    if (running_) {
      Tick();
    }
  });
}

}  // namespace nymix
