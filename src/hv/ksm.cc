#include "src/hv/ksm.h"

#include <map>

namespace nymix {

KsmDaemon::KsmDaemon(EventLoop& loop, std::function<std::vector<const GuestMemory*>()> memories)
    : loop_(loop), memories_(std::move(memories)) {}

KsmStats KsmDaemon::ScanNow() {
  std::map<uint64_t, uint64_t> merged;
  for (const GuestMemory* memory : memories_()) {
    for (const auto& [content, count] : memory->pages_by_content()) {
      merged[content] += count;
    }
  }
  KsmStats stats;
  for (const auto& [content, count] : merged) {
    (void)content;
    if (count > 1) {
      stats.pages_shared += 1;
      stats.pages_sharing += count;
    }
  }
  stats_ = stats;
  return stats;
}

void KsmDaemon::Start(SimDuration interval) {
  NYMIX_CHECK(interval > 0);
  interval_ = interval;
  if (running_) {
    return;
  }
  running_ = true;
  Tick();
}

void KsmDaemon::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  loop_.Cancel(pending_event_);
}

void KsmDaemon::Tick() {
  ScanNow();
  pending_event_ = loop_.ScheduleAfter(interval_, [this] {
    if (running_) {
      Tick();
    }
  });
}

}  // namespace nymix
