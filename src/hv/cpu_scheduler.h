// CpuScheduler: proportional-share scheduling of compute tasks over a fixed
// core count, the substrate behind Figure 4. A task is a sequence of
// compute and idle phases (a Peacekeeper run alternates JavaScript kernels
// with DOM/paint idle gaps). Virtualized tasks pay a multiplicative
// overhead on compute time ("virtualization incurs about a 20% overhead").
// Because idle gaps of concurrent VMs interleave, N parallel runs finish
// sooner than the naive N/cores scaling predicts — exactly the paper's
// "actual performance outperforms the expected results".
#ifndef SRC_HV_CPU_SCHEDULER_H_
#define SRC_HV_CPU_SCHEDULER_H_

#include <functional>
#include <map>
#include <vector>

#include "src/util/event_loop.h"

namespace nymix {

struct CpuPhase {
  bool is_compute = true;
  // Duration when executed natively at full speed on one core.
  SimDuration native_duration = 0;

  static CpuPhase Compute(SimDuration d) { return CpuPhase{true, d}; }
  static CpuPhase Idle(SimDuration d) { return CpuPhase{false, d}; }
};

using CpuTaskId = uint64_t;

class CpuScheduler {
 public:
  CpuScheduler(EventLoop& loop, uint32_t cores, double virtualization_overhead);

  uint32_t cores() const { return cores_; }
  double virtualization_overhead() const { return virt_overhead_; }

  // Submits a task; `virtualized` applies the overhead factor to compute
  // phases. `done` fires with the completion time.
  CpuTaskId Submit(std::vector<CpuPhase> phases, bool virtualized,
                   std::function<void(SimTime)> done);

  bool CancelTask(CpuTaskId id);

  size_t active_tasks() const { return tasks_.size(); }
  size_t runnable_tasks() const;

 private:
  struct Task {
    std::vector<CpuPhase> phases;
    size_t phase_index = 0;
    double remaining_us = 0;  // remaining work/idle in current phase
    double speed = 0;         // core share while computing (0..1)
    bool virtualized = false;
    std::function<void(SimTime)> done;
  };

  void Settle();
  void Reschedule();
  // Loads the current phase's cost into remaining_us; true if a phase
  // exists, false if the task is complete.
  bool LoadPhase(Task& task) const;

  EventLoop& loop_;
  uint32_t cores_;
  double virt_overhead_;
  std::map<CpuTaskId, Task> tasks_;
  CpuTaskId next_id_ = 1;
  SimTime last_settle_ = 0;
  uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
};

}  // namespace nymix

#endif  // SRC_HV_CPU_SCHEDULER_H_
