// HostMachine: the physical laptop running the Nymix hypervisor. Owns RAM
// accounting (Figure 3's "used memory"), the KSM daemon, the CPU scheduler
// (Figure 4), the VM registry, and the host's network attachment: a router
// NAT that carries every CommVM's traffic onto the 10 Mbit uplink (the
// DeterLab-style bottleneck of Figure 5).
#ifndef SRC_HV_HOST_H_
#define SRC_HV_HOST_H_

#include <memory>
#include <vector>

#include "src/hv/cpu_scheduler.h"
#include "src/hv/ksm.h"
#include "src/hv/vm.h"
#include "src/net/nat.h"

namespace nymix {

struct HostConfig {
  // The evaluation desktop: "Intel I7 quad core ... 16 GB of RAM" (§5.2).
  uint64_t ram_bytes = 16 * kGiB;
  uint32_t cores = 4;
  double virtualization_overhead = 0.20;
  // Hypervisor + host desktop working set before any nym exists.
  uint64_t baseline_bytes = 1100 * kMiB;
  // Host uplink shaping: "round trip latency of 80ms and ... rate limited
  // to 10 Mbit/s" (§5.2).
  SimDuration uplink_one_way_latency = Millis(40);
  uint64_t uplink_bandwidth_bps = 10'000'000;
};

class HostMachine {
 public:
  HostMachine(Simulation& sim, HostConfig config);

  const HostConfig& config() const { return config_; }
  Simulation& sim() { return sim_; }
  CpuScheduler& cpu() { return cpu_; }
  KsmDaemon& ksm() { return ksm_; }

  // --- VM lifecycle ---------------------------------------------------
  Result<VirtualMachine*> CreateVm(VmConfig config, std::shared_ptr<const BaseImage> image,
                                   std::shared_ptr<const MemFs> config_layer);
  // Shuts the VM down, wipes memory and disk, removes it from the host.
  // With secure_wipe=false the guest's dirty pages linger in host RAM
  // (remanence, [18]); Nymix never does this, but the model lets tests
  // and benches quantify what the wipe buys.
  Status DestroyVm(VirtualMachine* vm, bool secure_wipe = true);

  // --- Memory remanence (§3.4 / Dunn [18]) ------------------------------
  // What a live-confiscation adversary scanning free host RAM finds:
  // bytes of former guest pages not yet wiped or reused.
  uint64_t ColdBootScanBytes() const { return residual_bytes_; }
  // Host reboot / explicit scrub clears residue.
  void ScrubFreeMemory() { residual_bytes_ = 0; }
  std::vector<VirtualMachine*> vms() const;
  size_t vm_count() const { return vms_.size(); }

  // --- Memory accounting (Figure 3) ------------------------------------
  // Host RAM in use: baseline + every VM's allocated RAM + every VM's
  // RAM-backed writable disk bytes, minus KSM savings.
  uint64_t UsedMemoryBytes() const;
  // The dashed "expected memory" line: baseline + per-VM (RAM + writable).
  uint64_t AllocatedMemoryBytes() const;
  // Admission-control view: baseline + per-VM (RAM + full disk capacity).
  uint64_t ReservedMemoryBytes() const;
  uint64_t FreeMemoryBytes() const;

  // --- Networking -------------------------------------------------------
  // The shaped physical uplink; Figure 5 routes pass through this link.
  Link* uplink() { return uplink_; }
  NatGateway& router() { return *router_; }
  Ipv4Address public_ip() const { return public_ip_; }
  // Creates a guest-side link wired into the host router (one per CommVM).
  Link* CreateVmUplink(const std::string& name);

  // Emits the host's DHCP exchange on the uplink — the only non-anonymizer
  // traffic an idle Nymix host produces (§5.1).
  void EmitDhcp();

 private:
  Simulation& sim_;
  HostConfig config_;
  CpuScheduler cpu_;
  KsmDaemon ksm_;
  std::vector<std::unique_ptr<VirtualMachine>> vms_;
  Link* uplink_;
  Ipv4Address public_ip_;
  std::unique_ptr<NatGateway> router_;
  uint64_t residual_bytes_ = 0;
};

}  // namespace nymix

#endif  // SRC_HV_HOST_H_
