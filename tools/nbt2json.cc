// nbt2json: exports an NBT binary trace/metrics artifact (src/store/nbt.h)
// as the byte-identical JSON the same run would have written with
// --trace-format=json. CI uses it to prove the NBT path lossless:
//   nbt2json run.nbt run.json && cmp run.json cold_run.json
//
// Usage: nbt2json <input.nbt> [output.json]
//   - with one argument the JSON goes to stdout
//   - --recover tolerates a torn/corrupted tail (longest valid prefix);
//     without it any damage is a hard error
#include <cstdio>
#include <cstring>
#include <string>

#include "src/store/file_io.h"
#include "src/store/nbt.h"

int main(int argc, char** argv) {
  bool recover = false;
  std::string in_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    } else if (in_path.empty()) {
      in_path = argv[i];
    } else if (out_path.empty()) {
      out_path = argv[i];
    } else {
      std::fprintf(stderr, "usage: nbt2json [--recover] <input.nbt> [output.json]\n");
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "usage: nbt2json [--recover] <input.nbt> [output.json]\n");
    return 2;
  }

  nymix::Result<nymix::Bytes> data = nymix::ReadFileBytes(in_path);
  if (!data.ok()) {
    std::fprintf(stderr, "nbt2json: %s\n", data.status().ToString().c_str());
    return 1;
  }

  nymix::NbtDocument doc;
  if (recover) {
    nymix::Result<nymix::NbtRecovered> recovered = nymix::RecoverNbt(*data);
    if (!recovered.ok()) {
      std::fprintf(stderr, "nbt2json: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    if (!recovered->clean) {
      std::fprintf(stderr, "nbt2json: recovered %zu events; %zu byte(s) of damaged tail dropped\n",
                   recovered->events_recovered, recovered->lost_bytes);
    }
    doc = std::move(recovered->doc);
  } else {
    nymix::Result<nymix::NbtDocument> strict = nymix::DecodeNbt(*data);
    if (!strict.ok()) {
      std::fprintf(stderr, "nbt2json: %s (re-run with --recover to salvage the valid prefix)\n",
                   strict.status().ToString().c_str());
      return 1;
    }
    doc = std::move(*strict);
  }

  std::string json = nymix::NbtToJson(doc);
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  nymix::Status written = nymix::WriteFileBytes(out_path, nymix::BytesFromString(json));
  if (!written.ok()) {
    std::fprintf(stderr, "nbt2json: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}
