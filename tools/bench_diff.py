#!/usr/bin/env python3
"""Compare a scale_fleet result against a checked-in baseline.

Reads the BENCH_scale.json written by bench/scale_fleet and compares the
incremental-mode events_per_sec for every N against the baseline file. The
check fails when any point drops below --min-ratio of its baseline (default
0.7: a >30% throughput regression). Faster-than-baseline results pass; use
--update-baseline to ratchet the baseline forward after a deliberate
improvement.

Wall-clock numbers differ between machines, so the baseline is a floor
against catastrophic regressions (an accidentally-disabled incremental
path shows up as a 2-7x drop), not a precise performance contract.

When the result carries a "threaded" series (scale_fleet --threads=...),
further gates apply:
  * every threads_speedup row must report trace_identical (the parallel
    executor's byte-identity contract) — unconditional;
  * the best multi-thread speedup must reach min(2.0, 0.5 * min(threads,
    hardware_threads)) — but only when the recorded hardware_threads >= 2,
    since a single-core machine (most CI containers) cannot exhibit any
    parallel speedup, only verify identity;
  * crossed-topology rows (--topology=crossed) carry a HARD x2.0 floor,
    armed only when hardware_threads >= 4 — that workload is built to
    parallelize, so failing to double on a quad is a regression;
  * when the baseline carries a "crossed" block, every crossed threaded
    row must satisfy its epochs_min / cross_deliveries_min floors. These
    are virtual-time workload-shape invariants (machine-independent): a
    run that collapses to one epoch or zero cross-shard deliveries is
    silently benchmarking the embarrassingly-parallel case, and its
    speedup number is meaningless.

A result file that is not valid JSON is a hard failure (exit 1), not a
usage error: the bench emitter wrote it, so broken JSON means the emitter
regressed (a stray separator once did exactly that) and CI must go red.

The store-layer columns (trace_encode_ms, checkpoint_restore_ms) are
warn-only: pathological values print a WARNING for the CI log but never
change the exit code — see warn_store_columns.

Usage:
  tools/bench_diff.py RESULT.json [--baseline=bench/baselines/scale_fleet.json]
                                  [--min-ratio=0.7] [--update-baseline]

Exit codes: 0 ok / baseline seeded or updated, 1 regression, 2 usage error.
Only the Python standard library is used.
"""

import json
import os
import sys


def load_points(path):
    """Returns {n: events_per_sec} for the incremental series in `path`."""
    with open(path) as fh:
        doc = json.load(fh)
    series = doc.get("incremental")
    if not series:
        raise ValueError(f"{path}: no incremental series; run with --mode=both or incremental")
    points = {}
    for point in series:
        points[int(point["n"])] = float(point["events_per_sec"])
    return points


def warn_store_columns(doc):
    """Warn-only visibility for the store-layer columns (PR 6).

    trace_encode_ms and checkpoint_restore_ms are wall-clock measurements of
    the trace serializer and the warm-start image restore. They vary too
    much across machines to gate hard, and a slow encode is a nuisance, not
    a correctness problem — so out-of-range values print a WARNING and never
    flip the exit code. The thresholds only exist to make a pathological
    regression (say, an accidentally quadratic encoder) visible in CI logs.
    """
    rows = list(doc.get("threaded") or []) + [
        dict(row, threads=1) for row in doc.get("incremental") or []
    ]
    for row in rows:
        n = int(row.get("n", 0))
        encode_ms = row.get("trace_encode_ms")
        if encode_ms is not None and row.get("events"):
            # >2 us per event is an order of magnitude beyond the measured
            # encoder cost; flag it, loudly but harmlessly.
            per_event_us = 1000.0 * float(encode_ms) / float(row["events"])
            if per_event_us > 2.0:
                print(
                    f"  WARNING n={n}: trace encode {float(encode_ms):.1f} ms "
                    f"({per_event_us:.2f} us/event) — encoder may have regressed"
                )
        restore_ms = row.get("checkpoint_restore_ms")
        if restore_ms is not None and float(restore_ms) > 1000.0:
            print(
                f"  WARNING n={n}: warm-start restore took {float(restore_ms):.0f} ms "
                f"— checkpoint decode should be far cheaper than a cold image build"
            )


def check_threaded(doc):
    """Gates the parallel-executor series. Returns True when it passes."""
    speedups = doc.get("threads_speedup")
    if not speedups:
        return True
    ok = True
    for row in speedups:
        if not row.get("trace_identical", False):
            print(
                f"  threads={row['threads']} n={row['n']}: trace NOT identical "
                f"to threads=1 — determinism violation",
                file=sys.stderr,
            )
            ok = False
    hardware = int(doc.get("hardware_threads", 1))
    if hardware < 2:
        print(f"  speedup gate skipped: {hardware} hardware thread(s); identity still checked")
        return ok
    # Best speedup per (topology, n); floors differ by topology.
    best = {}
    for row in speedups:
        key = (str(row.get("topology", "isolated")), int(row["n"]))
        if row["wall_clock"] > best.get(key, (0, 0))[0]:
            best[key] = (float(row["wall_clock"]), int(row["threads"]))
    for (topology, n), (speedup, threads) in sorted(best.items()):
        if topology == "crossed":
            # The crossed workload is the tentpole claim: >= 2x at 4 threads
            # on real multicore hardware, no scaling excuses.
            if hardware < 4:
                print(
                    f"  [{topology}] n={n}: speedup x{speedup:.2f} recorded; "
                    f"x2.0 floor needs >=4 hw threads (have {hardware}), skipped"
                )
                continue
            floor = 2.0
        else:
            floor = min(2.0, 0.5 * min(threads, hardware))
        status = "ok" if speedup >= floor else "TOO SLOW"
        print(
            f"  [{topology}] n={n}: best parallel speedup x{speedup:.2f} at {threads} "
            f"threads (floor x{floor:.2f}, {hardware} hw threads) {status}"
        )
        ok = ok and speedup >= floor
    return ok


def check_crossed_shape(doc, baseline_doc):
    """Workload-shape floors for crossed rows. Returns True when it passes.

    epochs and cross_deliveries are virtual-time quantities — identical on
    every machine for a fixed (seed, n, shards) — so the baseline can pin
    hard minimums. A crossed run that degrades to epochs=1 or
    cross_deliveries=0 has lost the cross-shard coupling entirely (the
    executor stopped windowing, or the workload stopped crossing), and the
    speedup it reports is for the wrong experiment.
    """
    mins = (baseline_doc or {}).get("crossed")
    rows = [r for r in doc.get("threaded") or [] if r.get("topology") == "crossed"]
    if not rows or not mins:
        return True
    epochs_min = int(mins.get("epochs_min", 2))
    deliveries_min = int(mins.get("cross_deliveries_min", 1))
    ok = True
    for row in rows:
        epochs = int(row.get("epochs", 0))
        deliveries = int(row.get("cross_deliveries", 0))
        if epochs < epochs_min or deliveries < deliveries_min:
            print(
                f"  [crossed] n={row['n']} threads={row['threads']}: epochs={epochs} "
                f"(min {epochs_min}), cross_deliveries={deliveries} (min {deliveries_min}) "
                f"— workload no longer crosses shards",
                file=sys.stderr,
            )
            ok = False
    if ok:
        print(
            f"  crossed shape ok: {len(rows)} row(s) >= {epochs_min} epochs, "
            f">= {deliveries_min} cross-deliveries"
        )
    return ok


def main(argv):
    baseline_path = os.path.join("bench", "baselines", "scale_fleet.json")
    min_ratio = 0.7
    update = False
    result_path = None
    for arg in argv[1:]:
        if arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif arg.startswith("--min-ratio="):
            min_ratio = float(arg.split("=", 1)[1])
        elif arg == "--update-baseline":
            update = True
        elif arg.startswith("--"):
            print(f"bench_diff: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            result_path = arg
    if result_path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        result = load_points(result_path)
        with open(result_path) as fh:
            result_doc = json.load(fh)
    except json.JSONDecodeError as err:
        # Not a usage error: the bench emitter WROTE this file, so broken
        # JSON means the emitter itself regressed. Fail the build, loudly.
        print(
            f"bench_diff: {result_path} is not valid JSON ({err}) — the bench "
            f"emitter produced corrupt output; every downstream consumer of "
            f"this file is now blind",
            file=sys.stderr,
        )
        return 1
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_diff: {err}", file=sys.stderr)
        return 2

    threaded_ok = check_threaded(result_doc)
    warn_store_columns(result_doc)

    if update or not os.path.exists(baseline_path):
        os.makedirs(os.path.dirname(baseline_path) or ".", exist_ok=True)
        new_baseline = {"bench": "scale_fleet", "events_per_sec": result}
        crossed_rows = [r for r in result_doc.get("threaded") or []
                        if r.get("topology") == "crossed"]
        if crossed_rows:
            # Conservative shape floors: half the observed minimum, but never
            # below the degenerate thresholds (epochs=1 / deliveries=0 must
            # always fail). epochs/cross_deliveries are virtual-time values,
            # stable across machines for a fixed workload.
            new_baseline["crossed"] = {
                "epochs_min": max(2, min(int(r.get("epochs", 0)) for r in crossed_rows) // 2),
                "cross_deliveries_min": max(
                    1, min(int(r.get("cross_deliveries", 0)) for r in crossed_rows) // 2),
            }
        with open(baseline_path, "w") as fh:
            json.dump(new_baseline, fh, indent=2)
            fh.write("\n")
        verb = "updated" if update else "seeded"
        print(f"bench_diff: {verb} baseline {baseline_path} from {result_path}")
        return 0 if threaded_ok else 1

    try:
        with open(baseline_path) as fh:
            baseline_doc = json.load(fh)
        baseline = {int(n): float(v) for n, v in baseline_doc["events_per_sec"].items()}
    except (OSError, ValueError, KeyError) as err:
        print(f"bench_diff: bad baseline {baseline_path}: {err}", file=sys.stderr)
        return 2

    crossed_ok = check_crossed_shape(result_doc, baseline_doc)

    failed = False
    for n in sorted(result):
        if n not in baseline:
            print(f"  n={n}: {result[n]:.0f} events/s (no baseline point, skipped)")
            continue
        ratio = result[n] / baseline[n] if baseline[n] > 0 else float("inf")
        status = "ok" if ratio >= min_ratio else "REGRESSION"
        failed = failed or ratio < min_ratio
        print(
            f"  n={n}: {result[n]:.0f} events/s vs baseline {baseline[n]:.0f} "
            f"(x{ratio:.2f}, floor x{min_ratio:.2f}) {status}"
        )
    if failed:
        print(f"bench_diff: below {min_ratio:.2f}x of baseline; investigate or "
              f"re-baseline deliberately with --update-baseline", file=sys.stderr)
        return 1
    if not threaded_ok:
        print("bench_diff: parallel executor gate failed", file=sys.stderr)
        return 1
    if not crossed_ok:
        print("bench_diff: crossed workload shape gate failed", file=sys.stderr)
        return 1
    print("bench_diff: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
