#!/usr/bin/env python3
"""CLI regression tests for the built binaries.

Covers the contracts a shell user (or CI script) relies on:
  * scale_fleet rejects unknown --topology= / --mode= values with exit 2
    and a usage line instead of silently falling back to a default.
  * nymfuzz --minimize re-shrinks a checked-in corpus entry: the rewritten
    file replays clean and carries a digest pin.

Binary paths come from argv (ctest passes $<TARGET_FILE:...>):
  cli_regression_test.py SCALE_FLEET_BIN NYMFUZZ_BIN CORPUS_DIR

Only the standard library is used.
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

SCALE_FLEET = None
NYMFUZZ = None
CORPUS_DIR = None


class ScaleFleetCliTest(unittest.TestCase):
    def run_bench(self, *args):
        return subprocess.run([SCALE_FLEET, *args], capture_output=True, text=True)

    def test_unknown_topology_exits_2_with_usage(self):
        proc = self.run_bench("--topology=bogus")
        self.assertEqual(proc.returncode, 2)
        self.assertIn('unknown --topology "bogus"', proc.stderr)
        self.assertIn("usage: scale_fleet [--topology=isolated|crossed]", proc.stderr)

    def test_unknown_mode_exits_2_with_usage(self):
        proc = self.run_bench("--mode=bogus")
        self.assertEqual(proc.returncode, 2)
        self.assertIn('unknown --mode "bogus"', proc.stderr)
        self.assertIn("usage: scale_fleet [--mode=both|incremental|full]", proc.stderr)


class NymfuzzMinimizeTest(unittest.TestCase):
    def test_minimize_rewrites_corpus_entry_that_still_replays(self):
        source = os.path.join(CORPUS_DIR, "adversary-planted-cookie-23.nymfuzz")
        with tempfile.TemporaryDirectory() as tmp:
            entry = os.path.join(tmp, "entry.nymfuzz")
            shutil.copy(source, entry)
            minimized = subprocess.run(
                [NYMFUZZ, "--minimize", entry, "--out=" + entry],
                capture_output=True, text=True)
            self.assertEqual(minimized.returncode, 0, minimized.stderr)
            with open(entry) as handle:
                text = handle.read()
            self.assertIn("family adversary", text)
            self.assertIn("digest ", text)
            replay = subprocess.run(
                [NYMFUZZ, "--replay", entry], capture_output=True, text=True)
            self.assertEqual(replay.returncode, 0, replay.stderr)
            self.assertIn("verified (clean)", replay.stdout)

    def test_minimize_unreadable_file_exits_2(self):
        proc = subprocess.run(
            [NYMFUZZ, "--minimize", "/nonexistent/no.nymfuzz"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2)


def main():
    global SCALE_FLEET, NYMFUZZ, CORPUS_DIR
    if len(sys.argv) != 4:
        print("usage: cli_regression_test.py SCALE_FLEET_BIN NYMFUZZ_BIN CORPUS_DIR",
              file=sys.stderr)
        return 2
    SCALE_FLEET, NYMFUZZ, CORPUS_DIR = sys.argv[1:4]
    sys.argv = sys.argv[:1]
    unittest.main()


if __name__ == "__main__":
    main()
