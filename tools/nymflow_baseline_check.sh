#!/usr/bin/env bash
# Checks that nymflow_baseline.json is exactly as large as it needs to be:
#
#   * every current nymflow finding is either fixed, suppressed with a
#     reasoned nymlint:allow, or baselined — a NEW finding fails the lint
#     run itself;
#   * every baseline entry still matches a finding — a STALE entry (the
#     flow was fixed but the entry lingers) fails here, so paid-down debt
#     gets deleted from the ledger instead of silently re-authorized.
#
# Run from anywhere; builds nymlint if the build directory lacks it.
#
# Usage: tools/nymflow_baseline_check.sh [build-dir]
# Exit codes: 0 baseline is tight, 1 stale entries or lint failure, 2 setup.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
NYMLINT="$BUILD_DIR/tools/nymlint/nymlint"

if [ ! -x "$NYMLINT" ]; then
  if [ ! -d "$BUILD_DIR" ]; then
    cmake -S . -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "$BUILD_DIR" --target nymlint -j "$(nproc)"
fi

REPORT="$(mktemp)"
trap 'rm -f "$REPORT"' EXIT

# The lint run already fails on non-baselined findings and reports each
# stale entry as a nymflow-stale-baseline diagnostic; the JSON report
# carries the counts this script gates on.
STATUS=0
"$NYMLINT" --root=. --json --out="$REPORT" || STATUS=$?
if [ "$STATUS" -ge 2 ]; then
  echo "nymflow_baseline_check: nymlint failed to run (exit $STATUS)" >&2
  exit 2
fi

python3 - "$REPORT" <<'EOF'
import json
import sys

with open(sys.argv[1]) as fh:
    report = json.load(fh)
flow = report.get("flow", {})
stale = int(flow.get("stale_baseline", 0))
fresh = int(flow.get("findings", 0))

print(f"nymflow_baseline_check: {flow.get('functions', 0)} functions, "
      f"{fresh} non-baselined finding(s), "
      f"{flow.get('baseline_suppressed', 0)} baselined, {stale} stale entr(ies)")

failed = False
for diag in report.get("violations", []):
    if diag["rule"] == "nymflow-stale-baseline":
        print(f"  STALE: {diag['message']}", file=sys.stderr)
        failed = True
    elif diag["rule"].startswith("nymflow-"):
        print(f"  NEW: {diag['path']}:{diag['line']}: {diag['message']}",
              file=sys.stderr)
        failed = True

if failed:
    print("nymflow_baseline_check: baseline is out of date — fix or baseline "
          "new flows (nymlint --write-baseline=... and edit the reasons), "
          "and delete entries for flows that no longer exist", file=sys.stderr)
    sys.exit(1)
print("nymflow_baseline_check: baseline is tight")
EOF
