// nymflow pass 1: a lightweight whole-program symbol model built from the
// lexer's token streams. A tolerant declaration recognizer — not a C++
// parser — extracts just enough structure for interprocedural dataflow:
// record types with typed fields, free functions and methods with typed
// parameters and body token ranges, and `nymlint:declassify` markers.
//
// Tolerance contract: anything the recognizer cannot classify is skipped,
// never fatal. A missed declaration degrades precision (a call site goes
// unresolved and propagates conservatively), it never wedges the analysis.
#ifndef TOOLS_NYMLINT_MODEL_H_
#define TOOLS_NYMLINT_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/nymlint/lexer.h"

namespace nymlint {

// A declared, typed name: a function parameter, a local, or a record field.
struct TypedName {
  std::string name;                     // may be empty (unnamed parameter)
  std::vector<std::string> type_idents; // identifiers in the type, e.g.
                                        // {"vector", "TorRelay"} — template
                                        // arguments included so a
                                        // container-of-identity is typed
  bool is_const = false;
  bool is_ref = false;      // declared with & or && at the top level
  bool is_pointer = false;  // declared with * at the top level
};

struct FunctionInfo {
  std::string qualified_name;  // "Class::Name" for methods, "Name" otherwise
  std::string bare_name;
  std::string class_name;  // innermost enclosing/explicit class, or ""
  int file = -1;           // index into SymbolModel::files
  int line = 1;
  int col = 1;
  std::vector<TypedName> params;
  // Body range [body_begin, body_end) into the file's significant tokens;
  // body_begin == body_end for declarations without a body.
  size_t body_begin = 0;
  size_t body_end = 0;
  bool has_body = false;
  // Rules this function declassifies, from a `// nymlint:declassify(rule):
  // reason` marker directly above/on the declaration.
  std::set<std::string> declassifies;
};

struct RecordInfo {
  std::string name;
  int file = -1;
  int line = 1;
  std::vector<TypedName> fields;
};

// One file's contribution to the model. Token storage is owned here (a
// copy of the significant stream) so the model is self-contained.
struct FileModel {
  std::string path;
  std::vector<Token> tokens;  // significant tokens (comments removed)
  std::vector<FunctionInfo> functions;
};

struct SymbolModel {
  std::vector<FileModel> files;
  std::map<std::string, RecordInfo> records;  // by bare type name
  // Function indices by qualified and bare name: (file index, fn index).
  std::map<std::string, std::vector<std::pair<int, int>>> by_qualified;
  std::map<std::string, std::vector<std::pair<int, int>>> by_bare;
  // Malformed declassify markers (unknown rule / missing reason) reported
  // as nymflow-registry-error by the driver.
  struct MarkerIssue {
    std::string path;
    int line = 1;
    std::string message;
  };
  std::vector<MarkerIssue> marker_issues;

  const RecordInfo* FindRecord(const std::string& name) const;
};

struct ModelInput {
  std::string path;
  const std::vector<Token>* significant = nullptr;  // comments removed
  const std::vector<Token>* all = nullptr;          // with comments (markers)
};

SymbolModel BuildModel(const std::vector<ModelInput>& inputs);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_MODEL_H_
