#include "tools/nymlint/lexer.h"

#include <cctype>

namespace nymlint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Raw-string introducers: R, uR, UR, LR, u8R immediately followed by '"'.
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "uR" || ident == "UR" || ident == "LR" || ident == "u8R";
}

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  std::vector<Token> Run() {
    while (pos_ < src_.size()) {
      LexOne();
    }
    return std::move(tokens_);
  }

 private:
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
      at_line_start_ = true;
    } else {
      ++col_;
    }
    return c;
  }

  void Emit(TokenKind kind, std::string text, int line, int col) {
    tokens_.push_back(Token{kind, std::move(text), line, col});
  }

  void LexOne() {
    char c = Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f') {
      Advance();
      return;
    }
    int line = line_;
    int col = col_;
    bool line_start = at_line_start_;
    at_line_start_ = false;

    if (c == '/' && Peek(1) == '/') {
      LexLineComment(line, col);
      return;
    }
    if (c == '/' && Peek(1) == '*') {
      LexBlockComment(line, col);
      return;
    }
    if (c == '#' && line_start) {
      LexDirective(line, col);
      return;
    }
    if (c == '"') {
      LexString(line, col);
      return;
    }
    if (c == '\'') {
      LexCharLiteral(line, col);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
      LexNumber(line, col);
      return;
    }
    if (IsIdentStart(c)) {
      LexIdentifier(line, col);
      return;
    }
    LexPunct(line, col);
  }

  void LexLineComment(int line, int col) {
    std::string text;
    while (pos_ < src_.size() && Peek() != '\n') {
      text.push_back(Advance());
    }
    Emit(TokenKind::kComment, std::move(text), line, col);
  }

  void LexBlockComment(int line, int col) {
    // C++ block comments do not nest: the first "*/" closes the comment no
    // matter how many "/*" appeared inside. Tolerates an unterminated
    // comment by ending at EOF.
    std::string text;
    text.push_back(Advance());  // '/'
    text.push_back(Advance());  // '*'
    while (pos_ < src_.size()) {
      if (Peek() == '*' && Peek(1) == '/') {
        text.push_back(Advance());
        text.push_back(Advance());
        break;
      }
      text.push_back(Advance());
    }
    Emit(TokenKind::kComment, std::move(text), line, col);
  }

  void LexDirective(int line, int col) {
    std::string text;
    text.push_back(Advance());  // '#'
    while (pos_ < src_.size() && (Peek() == ' ' || Peek() == '\t')) {
      Advance();
    }
    while (pos_ < src_.size() && IsIdentChar(Peek())) {
      text.push_back(Advance());
    }
    bool is_include = text == "#include" || text == "#include_next";
    Emit(TokenKind::kDirective, std::move(text), line, col);
    if (!is_include) {
      return;
    }
    // Fold an angle-bracket header-name into a single string token so its
    // spelling (e.g. <unordered_map>) is never lexed as identifiers.
    while (pos_ < src_.size() && (Peek() == ' ' || Peek() == '\t')) {
      Advance();
    }
    if (Peek() == '<') {
      int hline = line_;
      int hcol = col_;
      std::string header;
      while (pos_ < src_.size() && Peek() != '\n') {
        char h = Advance();
        header.push_back(h);
        if (h == '>') {
          break;
        }
      }
      Emit(TokenKind::kString, std::move(header), hline, hcol);
    }
  }

  void LexString(int line, int col) {
    std::string text;
    text.push_back(Advance());  // opening quote
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(Advance());
        text.push_back(Advance());
        continue;
      }
      if (c == '\n') {
        break;  // unterminated; recover at end of line
      }
      text.push_back(Advance());
      if (c == '"') {
        break;
      }
    }
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  void LexRawString(std::string prefix, int line, int col) {
    std::string text = std::move(prefix);
    text.push_back(Advance());  // '"'
    std::string delim;
    while (pos_ < src_.size() && Peek() != '(' && Peek() != '\n') {
      delim.push_back(Advance());
    }
    text += delim;
    if (Peek() == '(') {
      text.push_back(Advance());
    }
    const std::string closer = ")" + delim + "\"";
    while (pos_ < src_.size()) {
      if (Peek() == ')' && src_.compare(pos_, closer.size(), closer) == 0) {
        for (size_t i = 0; i < closer.size(); ++i) {
          text.push_back(Advance());
        }
        break;
      }
      text.push_back(Advance());
    }
    Emit(TokenKind::kString, std::move(text), line, col);
  }

  void LexCharLiteral(int line, int col) {
    std::string text;
    text.push_back(Advance());  // opening quote
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == '\\' && pos_ + 1 < src_.size()) {
        text.push_back(Advance());
        text.push_back(Advance());
        continue;
      }
      if (c == '\n') {
        break;
      }
      text.push_back(Advance());
      if (c == '\'') {
        break;
      }
    }
    Emit(TokenKind::kCharLiteral, std::move(text), line, col);
  }

  void LexNumber(int line, int col) {
    // Coarse: consume the maximal run of pp-number characters, including
    // digit separators (1'000'000) so the separator quote is never mistaken
    // for a character literal, and exponent signs (1e+9, 0x1p-3).
    std::string text;
    text.push_back(Advance());
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_') {
        text.push_back(Advance());
      } else if (c == '\'' && IsIdentChar(Peek(1))) {
        text.push_back(Advance());
      } else if ((c == '+' || c == '-') &&
                 (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
                  text.back() == 'P')) {
        text.push_back(Advance());
      } else {
        break;
      }
    }
    Emit(TokenKind::kNumber, std::move(text), line, col);
  }

  void LexIdentifier(int line, int col) {
    std::string text;
    while (pos_ < src_.size() && IsIdentChar(Peek())) {
      text.push_back(Advance());
    }
    if (IsRawStringPrefix(text) && Peek() == '"') {
      LexRawString(std::move(text), line, col);
      return;
    }
    // Encoding prefix of an ordinary string/char literal (u8"x", L'c'):
    // emit the literal as one token, not prefix + literal.
    if ((text == "u8" || text == "u" || text == "U" || text == "L")) {
      if (Peek() == '"') {
        LexString(line, col);
        tokens_.back().text = text + tokens_.back().text;
        return;
      }
      if (Peek() == '\'') {
        LexCharLiteral(line, col);
        tokens_.back().text = text + tokens_.back().text;
        return;
      }
    }
    Emit(TokenKind::kIdentifier, std::move(text), line, col);
  }

  void LexPunct(int line, int col) {
    char c = Advance();
    std::string text(1, c);
    // Only the two-char puncts rules care about are fused; "::" because
    // qualification matters to every matcher, "->" so member calls are
    // recognizable. Everything else stays single-char ("> >" style fusing
    // would complicate template-argument scanning).
    if ((c == ':' && Peek() == ':') || (c == '-' && Peek() == '>')) {
      text.push_back(Advance());
    }
    Emit(TokenKind::kPunct, std::move(text), line, col);
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> Lex(const std::string& source) { return Lexer(source).Run(); }

std::vector<Token> SignificantTokens(const std::vector<Token>& tokens) {
  std::vector<Token> out;
  out.reserve(tokens.size());
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kComment) {
      out.push_back(token);
    }
  }
  return out;
}

}  // namespace nymlint
