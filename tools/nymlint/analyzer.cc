#include "tools/nymlint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace nymlint {
namespace {

struct Suppression {
  std::vector<std::string> rules;
  int line = 0;       // line the comment starts on
  int end_line = 0;   // line the comment ends on (block comments span)
  bool file_level = false;
  bool has_reason = false;
  size_t uses = 0;
};

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

// Parses the suppression marker in one comment token, if any. A marker is
// only honored when it is the comment's very first content ("// nymlint:
// allow..." with nothing before it) — prose that merely *mentions* the
// syntax, like this paragraph or the docs, never suppresses anything.
void ParseSuppressions(const Token& comment, std::vector<Suppression>& out) {
  const std::string& text = comment.text;
  int end_line = comment.line +
                 static_cast<int>(std::count(text.begin(), text.end(), '\n'));
  // Strip exactly one comment opener, then whitespace. Stripping greedily
  // would also eat the inner "//" of doc lines quoting the syntax.
  size_t pos = text.rfind("//", 0) == 0 || text.rfind("/*", 0) == 0 ? 2 : 0;
  pos = text.find_first_not_of(" \t", pos);
  {
    if (pos == std::string::npos || text.compare(pos, 13, "nymlint:allow") != 0) {
      return;
    }
    size_t cursor = pos + std::string("nymlint:allow").size();
    Suppression sup;
    sup.line = comment.line;
    sup.end_line = end_line;
    if (text.compare(cursor, 5, "-file") == 0) {
      sup.file_level = true;
      cursor += 5;
    }
    if (cursor >= text.size() || text[cursor] != '(') {
      return;  // malformed marker; not a suppression
    }
    size_t close = text.find(')', cursor);
    if (close == std::string::npos) {
      return;
    }
    // Comma-separated rule list.
    std::string list = text.substr(cursor + 1, close - cursor - 1);
    size_t item_start = 0;
    while (item_start <= list.size()) {
      size_t comma = list.find(',', item_start);
      std::string rule = Trim(list.substr(
          item_start, comma == std::string::npos ? std::string::npos : comma - item_start));
      if (!rule.empty()) {
        sup.rules.push_back(rule);
      }
      if (comma == std::string::npos) {
        break;
      }
      item_start = comma + 1;
    }
    // Everything after the ')' (minus separators and a block-comment
    // terminator) is the mandatory reason.
    std::string reason = text.substr(close + 1);
    if (reason.size() >= 2 && reason.compare(reason.size() - 2, 2, "*/") == 0) {
      reason.resize(reason.size() - 2);
    }
    size_t reason_begin = reason.find_first_not_of(" \t:-—");
    reason = reason_begin == std::string::npos ? "" : Trim(reason.substr(reason_begin));
    sup.has_reason = reason.size() >= 3;
    out.push_back(std::move(sup));
  }
}

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    size_t n = std::string(suffix).size();
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp") || ends_with(".hh") || ends_with(".ipp");
}

void LintOneFile(const SourceFile& file, const std::set<std::string>& status_functions,
                 LintResult& result) {
  std::vector<Token> all_tokens = Lex(file.content);

  FileContext context;
  context.path = file.path;
  context.scope = ScopeForPath(file.path);
  context.is_header = IsHeaderPath(file.path);
  context.tokens = SignificantTokens(all_tokens);
  context.status_functions = &status_functions;

  std::vector<Diagnostic> raw;
  RunRules(context, raw);

  std::vector<Suppression> suppressions;
  for (const Token& token : all_tokens) {
    if (token.kind == TokenKind::kComment) {
      ParseSuppressions(token, suppressions);
    }
  }

  for (Diagnostic& diag : raw) {
    bool suppressed = false;
    for (Suppression& sup : suppressions) {
      bool rule_matches =
          std::find(sup.rules.begin(), sup.rules.end(), diag.rule) != sup.rules.end();
      bool line_matches = sup.file_level ||
                          (diag.line >= sup.line && diag.line <= sup.end_line + 1);
      if (rule_matches && line_matches) {
        ++sup.uses;
        suppressed = true;
        // Keep counting uses across all matching suppressions so none is
        // reported as unused just because a sibling matched first.
      }
    }
    if (suppressed) {
      ++result.suppressions_used;
    } else {
      result.diagnostics.push_back(std::move(diag));
    }
  }

  // Suppression hygiene: reasons are mandatory, rules must exist, and a
  // suppression that stopped matching anything must be deleted, not
  // left to rot. These meta diagnostics are themselves unsuppressible.
  for (const Suppression& sup : suppressions) {
    if (sup.rules.empty()) {
      result.diagnostics.push_back(
          {file.path, sup.line, 1, "suppression-unknown-rule",
           "nymlint:allow(...) names no rule"});
      continue;
    }
    if (!sup.has_reason) {
      result.diagnostics.push_back(
          {file.path, sup.line, 1, "suppression-missing-reason",
           "suppression must carry a written reason: // nymlint:allow(rule): why this is sound"});
    }
    for (const std::string& rule : sup.rules) {
      if (!IsKnownRule(rule)) {
        result.diagnostics.push_back({file.path, sup.line, 1, "suppression-unknown-rule",
                                      "unknown rule '" + rule + "' (see nymlint --list-rules)"});
      }
    }
    if (sup.uses == 0 && sup.has_reason) {
      result.diagnostics.push_back(
          {file.path, sup.line, 1, "suppression-unused",
           "suppression matched no diagnostic; delete it so allows stay load-bearing"});
    }
  }
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

unsigned ScopeForPath(const std::string& path) {
  std::string normalized = path;
  if (normalized.rfind("./", 0) == 0) {
    normalized = normalized.substr(2);
  }
  auto starts_with = [&](const char* prefix) { return normalized.rfind(prefix, 0) == 0; };
  if (starts_with("src/")) return kSrc;
  if (starts_with("bench/")) return kBench;
  if (starts_with("tests/")) return kTests;
  if (starts_with("tools/")) return kTools;
  if (starts_with("examples/")) return kExamples;
  return 0;
}

LintResult RunLint(const std::vector<SourceFile>& files) {
  LintResult result;

  // Pass 1: Status-returning function names, from every file regardless of
  // scope, so a src/ header's API is enforced at tests/ call sites too.
  // Names the repo also declares void-returning are subtracted — a lexical
  // pass cannot tell the two overloads apart at a call site.
  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  for (const SourceFile& file : files) {
    std::vector<Token> tokens = SignificantTokens(Lex(file.content));
    CollectStatusFunctions(tokens, status_functions);
    CollectVoidFunctions(tokens, void_functions);
  }
  for (const std::string& name : void_functions) {
    status_functions.erase(name);
  }

  // Pass 2: rules + suppressions per file.
  for (const SourceFile& file : files) {
    if (ScopeForPath(file.path) == 0) {
      continue;
    }
    ++result.files_scanned;
    LintOneFile(file, status_functions, result);
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  return result;
}

void WriteHumanReport(const LintResult& result, std::ostream& out) {
  for (const Diagnostic& diag : result.diagnostics) {
    out << diag.path << ":" << diag.line << ":" << diag.col << ": [" << diag.rule << "] "
        << diag.message << "\n";
  }
  out << "nymlint: " << result.diagnostics.size() << " violation(s), " << result.files_scanned
      << " file(s) scanned, " << result.suppressions_used << " suppression(s) honored\n";
}

void WriteJsonReport(const LintResult& result, std::ostream& out) {
  out << "{\n  \"version\": 1,\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"suppressions_used\": " << result.suppressions_used
      << ",\n  \"violation_count\": " << result.diagnostics.size() << ",\n  \"violations\": [";
  bool first = true;
  for (const Diagnostic& diag : result.diagnostics) {
    out << (first ? "" : ",") << "\n    {\"path\": \"" << JsonEscape(diag.path)
        << "\", \"line\": " << diag.line << ", \"col\": " << diag.col << ", \"rule\": \""
        << JsonEscape(diag.rule) << "\", \"message\": \"" << JsonEscape(diag.message) << "\"}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

}  // namespace nymlint
