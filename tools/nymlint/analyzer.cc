#include "tools/nymlint/analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>

#include "tools/nymlint/jsonlite.h"
#include "tools/nymlint/model.h"
#include "tools/nymlint/registry.h"

namespace nymlint {
namespace {

struct Suppression {
  std::vector<std::string> rules;
  int line = 0;       // line the comment starts on
  int end_line = 0;   // line the comment ends on (block comments span)
  bool file_level = false;
  bool has_reason = false;
  size_t uses = 0;
};

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

// Parses the suppression marker in one comment token, if any. A marker is
// only honored when it is the comment's very first content ("// nymlint:
// allow..." with nothing before it) — prose that merely *mentions* the
// syntax, like this paragraph or the docs, never suppresses anything.
void ParseSuppressions(const Token& comment, std::vector<Suppression>& out) {
  const std::string& text = comment.text;
  int end_line = comment.line +
                 static_cast<int>(std::count(text.begin(), text.end(), '\n'));
  // Strip exactly one comment opener, then whitespace. Stripping greedily
  // would also eat the inner "//" of doc lines quoting the syntax.
  size_t pos = text.rfind("//", 0) == 0 || text.rfind("/*", 0) == 0 ? 2 : 0;
  pos = text.find_first_not_of(" \t", pos);
  {
    if (pos == std::string::npos || text.compare(pos, 13, "nymlint:allow") != 0) {
      return;
    }
    size_t cursor = pos + std::string("nymlint:allow").size();
    Suppression sup;
    sup.line = comment.line;
    sup.end_line = end_line;
    if (text.compare(cursor, 5, "-file") == 0) {
      sup.file_level = true;
      cursor += 5;
    }
    if (cursor >= text.size() || text[cursor] != '(') {
      return;  // malformed marker; not a suppression
    }
    size_t close = text.find(')', cursor);
    if (close == std::string::npos) {
      return;
    }
    // Comma-separated rule list.
    std::string list = text.substr(cursor + 1, close - cursor - 1);
    size_t item_start = 0;
    while (item_start <= list.size()) {
      size_t comma = list.find(',', item_start);
      std::string rule = Trim(list.substr(
          item_start, comma == std::string::npos ? std::string::npos : comma - item_start));
      if (!rule.empty()) {
        sup.rules.push_back(rule);
      }
      if (comma == std::string::npos) {
        break;
      }
      item_start = comma + 1;
    }
    // Everything after the ')' (minus separators and a block-comment
    // terminator) is the mandatory reason.
    std::string reason = text.substr(close + 1);
    if (reason.size() >= 2 && reason.compare(reason.size() - 2, 2, "*/") == 0) {
      reason.resize(reason.size() - 2);
    }
    size_t reason_begin = reason.find_first_not_of(" \t:-—");
    reason = reason_begin == std::string::npos ? "" : Trim(reason.substr(reason_begin));
    sup.has_reason = reason.size() >= 3;
    out.push_back(std::move(sup));
  }
}

bool IsHeaderPath(const std::string& path) {
  auto ends_with = [&](const char* suffix) {
    size_t n = std::string(suffix).size();
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends_with(".h") || ends_with(".hpp") || ends_with(".hh") || ends_with(".ipp");
}

// Per-file state for the single-lex pipeline: every stage (Status
// collection, lexical rules, suppressions, nymflow model) reads these
// token vectors; no stage re-lexes.
struct FileWork {
  const SourceFile* file = nullptr;
  unsigned scope = 0;
  std::vector<Token> all_tokens;
  std::vector<Token> significant;
  std::vector<Suppression> suppressions;
};

// True (and counts the use) when any suppression in `sups` covers `diag`.
bool ApplySuppressions(std::vector<Suppression>& sups, const Diagnostic& diag) {
  bool suppressed = false;
  for (Suppression& sup : sups) {
    bool rule_matches =
        std::find(sup.rules.begin(), sup.rules.end(), diag.rule) != sup.rules.end();
    bool line_matches = sup.file_level ||
                        (diag.line >= sup.line && diag.line <= sup.end_line + 1);
    if (rule_matches && line_matches) {
      ++sup.uses;
      suppressed = true;
      // Keep counting uses across all matching suppressions so none is
      // reported as unused just because a sibling matched first.
    }
  }
  return suppressed;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Runs pass 2 of the analyzer: model build, registry parse, dataflow,
// baseline filtering. Surviving findings are appended to
// result.diagnostics by the caller after suppression filtering.
void RunFlowStage(const FlowOptions& options, std::vector<FileWork>& work,
                  std::map<std::string, FileWork*>& by_path, LintResult& result) {
  IdentityRegistry registry =
      ParseRegistry(options.registry_path, options.registry_text);

  std::vector<ModelInput> inputs;
  for (FileWork& file : work) {
    if (file.scope == 0) {
      continue;
    }
    inputs.push_back(ModelInput{file.file->path, &file.significant, &file.all_tokens});
  }
  SymbolModel model = BuildModel(inputs);

  FlowAnalysis analysis = RunFlow(model, registry);
  result.flow_functions = analysis.functions;
  result.flow_call_edges = analysis.call_edges;
  for (const Diagnostic& error : analysis.errors) {
    result.diagnostics.push_back(error);
  }

  std::vector<std::string> baseline;
  if (!options.baseline_path.empty()) {
    baseline = ParseBaseline(options.baseline_path, options.baseline_text,
                             result.diagnostics);
  }
  std::set<std::string> baseline_hits;

  for (FlowFinding& finding : analysis.findings) {
    // Flow findings are reported at src/ sites only: the model spans all
    // scopes (so a tests/ caller can complete a flow), but tests, benches,
    // and fixtures routinely handle identity on purpose.
    if ((ScopeForPath(finding.diag.path) & kSrc) == 0) {
      continue;
    }
    if (std::find(baseline.begin(), baseline.end(), finding.fingerprint) !=
        baseline.end()) {
      ++result.baseline_suppressed;
      baseline_hits.insert(finding.fingerprint);
      continue;
    }
    auto file = by_path.find(finding.diag.path);
    if (file != by_path.end() &&
        ApplySuppressions(file->second->suppressions, finding.diag)) {
      ++result.suppressions_used;
      continue;
    }
    result.diagnostics.push_back(finding.diag);
    result.flow_findings.push_back(std::move(finding));
  }

  // A baseline entry that no longer matches anything is debt that must be
  // paid down: report it so the entry gets deleted, not forgotten.
  for (const std::string& fingerprint : baseline) {
    if (baseline_hits.count(fingerprint)) {
      continue;
    }
    result.stale_baseline.push_back(fingerprint);
    if (options.report_stale) {
      result.diagnostics.push_back(
          Diagnostic{options.baseline_path, 1, 1, "nymflow-stale-baseline",
                     "baseline entry '" + fingerprint +
                         "' matches no current finding; delete it (tools/"
                         "nymflow_baseline_check.sh regenerates the list)"});
    }
  }
}

}  // namespace

unsigned ScopeForPath(const std::string& path) {
  std::string normalized = path;
  if (normalized.rfind("./", 0) == 0) {
    normalized = normalized.substr(2);
  }
  auto starts_with = [&](const char* prefix) { return normalized.rfind(prefix, 0) == 0; };
  if (starts_with("src/")) return kSrc;
  if (starts_with("bench/")) return kBench;
  if (starts_with("tests/")) return kTests;
  if (starts_with("tools/")) return kTools;
  if (starts_with("examples/")) return kExamples;
  return 0;
}

std::vector<std::string> ParseBaseline(const std::string& path, const std::string& text,
                                       std::vector<Diagnostic>& errors) {
  std::vector<std::string> fingerprints;
  if (Trim(text).empty()) {
    return fingerprints;
  }
  JsonParseResult parsed = ParseJson(text);
  if (!parsed.ok) {
    errors.push_back(Diagnostic{path, parsed.error_line, 1, "nymflow-registry-error",
                                "baseline is not valid JSON: " + parsed.error});
    return fingerprints;
  }
  const JsonValue& entries = parsed.value.at("entries");
  if (!entries.is_array()) {
    errors.push_back(Diagnostic{path, 1, 1, "nymflow-registry-error",
                                "baseline must be {\"version\":1,\"entries\":[...]}"});
    return fingerprints;
  }
  for (const JsonValue& entry : entries.array) {
    const JsonValue& fingerprint = entry.at("fingerprint");
    if (!fingerprint.is_string() || fingerprint.str.empty()) {
      errors.push_back(Diagnostic{path, 1, 1, "nymflow-registry-error",
                                  "baseline entry without a \"fingerprint\" string"});
      continue;
    }
    fingerprints.push_back(fingerprint.str);
  }
  return fingerprints;
}

std::string WriteBaseline(const std::vector<FlowFinding>& findings,
                          const std::string& reason) {
  std::string out = "{\n  \"version\": 1,\n  \"entries\": [";
  std::set<std::string> seen;
  bool first = true;
  for (const FlowFinding& finding : findings) {
    if (!seen.insert(finding.fingerprint).second) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"fingerprint\": \"" + JsonEscape(finding.fingerprint) +
           "\", \"rule\": \"" + JsonEscape(finding.diag.rule) + "\", \"reason\": \"" +
           JsonEscape(reason) + "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

LintResult RunLint(const std::vector<SourceFile>& files) {
  return RunLint(files, FlowOptions{});
}

LintResult RunLint(const std::vector<SourceFile>& files, const FlowOptions& flow) {
  LintResult result;

  // Lex every file exactly once. The token vectors feed all later stages.
  std::vector<FileWork> work(files.size());
  std::map<std::string, FileWork*> by_path;
  for (size_t i = 0; i < files.size(); ++i) {
    work[i].file = &files[i];
    work[i].scope = ScopeForPath(files[i].path);
    work[i].all_tokens = Lex(files[i].content);
    work[i].significant = SignificantTokens(work[i].all_tokens);
    by_path[files[i].path] = &work[i];
  }

  // Pass 1: Status-returning function names, from every file regardless of
  // scope, so a src/ header's API is enforced at tests/ call sites too.
  // Names the repo also declares void-returning are subtracted — a lexical
  // pass cannot tell the two overloads apart at a call site.
  std::set<std::string> status_functions;
  std::set<std::string> void_functions;
  for (const FileWork& file : work) {
    CollectStatusFunctions(file.significant, status_functions);
    CollectVoidFunctions(file.significant, void_functions);
  }
  for (const std::string& name : void_functions) {
    status_functions.erase(name);
  }

  // Lexical rules + suppression filtering per file.
  for (FileWork& file : work) {
    if (file.scope == 0) {
      continue;
    }
    ++result.files_scanned;

    FileContext context;
    context.path = file.file->path;
    context.scope = file.scope;
    context.is_header = IsHeaderPath(file.file->path);
    context.tokens = file.significant;
    context.status_functions = &status_functions;

    std::vector<Diagnostic> raw;
    RunRules(context, raw);

    for (const Token& token : file.all_tokens) {
      if (token.kind == TokenKind::kComment) {
        ParseSuppressions(token, file.suppressions);
      }
    }

    for (Diagnostic& diag : raw) {
      if (ApplySuppressions(file.suppressions, diag)) {
        ++result.suppressions_used;
      } else {
        result.diagnostics.push_back(std::move(diag));
      }
    }
  }

  // Pass 2: nymflow dataflow (interprocedural, whole-model). Runs before
  // suppression hygiene so an allow that only matches a flow finding is
  // still counted as used.
  if (flow.enabled) {
    RunFlowStage(flow, work, by_path, result);
  }

  // Suppression hygiene: reasons are mandatory, rules must exist, and a
  // suppression that stopped matching anything must be deleted, not
  // left to rot. These meta diagnostics are themselves unsuppressible.
  for (const FileWork& file : work) {
    for (const Suppression& sup : file.suppressions) {
      const std::string& path = file.file->path;
      if (sup.rules.empty()) {
        result.diagnostics.push_back(
            {path, sup.line, 1, "suppression-unknown-rule",
             "nymlint:allow(...) names no rule"});
        continue;
      }
      if (!sup.has_reason) {
        result.diagnostics.push_back(
            {path, sup.line, 1, "suppression-missing-reason",
             "suppression must carry a written reason: // nymlint:allow(rule): why this is sound"});
      }
      for (const std::string& rule : sup.rules) {
        if (!IsKnownRule(rule)) {
          result.diagnostics.push_back({path, sup.line, 1, "suppression-unknown-rule",
                                        "unknown rule '" + rule + "' (see nymlint --list-rules)"});
        }
      }
      if (sup.uses == 0 && sup.has_reason) {
        result.diagnostics.push_back(
            {path, sup.line, 1, "suppression-unused",
             "suppression matched no diagnostic; delete it so allows stay load-bearing"});
      }
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end());
  std::sort(result.flow_findings.begin(), result.flow_findings.end(),
            [](const FlowFinding& a, const FlowFinding& b) { return a.diag < b.diag; });
  return result;
}

void WriteHumanReport(const LintResult& result, std::ostream& out) {
  for (const Diagnostic& diag : result.diagnostics) {
    out << diag.path << ":" << diag.line << ":" << diag.col << ": [" << diag.rule << "] "
        << diag.message << "\n";
  }
  out << "nymlint: " << result.diagnostics.size() << " violation(s), " << result.files_scanned
      << " file(s) scanned, " << result.suppressions_used << " suppression(s) honored";
  if (result.flow_functions > 0) {
    out << "; nymflow: " << result.flow_functions << " function(s), "
        << result.flow_call_edges << " call edge(s), " << result.flow_findings.size()
        << " flow finding(s), " << result.baseline_suppressed << " baselined";
  }
  if (result.analysis_ms >= 0) {
    out << " [" << result.analysis_ms << " ms]";
  }
  out << "\n";
}

void WriteJsonReport(const LintResult& result, std::ostream& out) {
  out << "{\n  \"version\": 2,\n  \"files_scanned\": " << result.files_scanned
      << ",\n  \"suppressions_used\": " << result.suppressions_used
      << ",\n  \"analysis_ms\": " << result.analysis_ms
      << ",\n  \"flow\": {\"functions\": " << result.flow_functions
      << ", \"call_edges\": " << result.flow_call_edges
      << ", \"findings\": " << result.flow_findings.size()
      << ", \"baseline_suppressed\": " << result.baseline_suppressed
      << ", \"stale_baseline\": " << result.stale_baseline.size() << "}"
      << ",\n  \"violation_count\": " << result.diagnostics.size() << ",\n  \"violations\": [";
  bool first = true;
  for (const Diagnostic& diag : result.diagnostics) {
    out << (first ? "" : ",") << "\n    {\"path\": \"" << JsonEscape(diag.path)
        << "\", \"line\": " << diag.line << ", \"col\": " << diag.col << ", \"rule\": \""
        << JsonEscape(diag.rule) << "\", \"message\": \"" << JsonEscape(diag.message) << "\"}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

}  // namespace nymlint
