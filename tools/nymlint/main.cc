// nymlint CLI. Typical invocations:
//
//   nymlint --root=.                        # lint src bench tests tools examples
//   nymlint --root=. src/net                # lint one subtree
//   nymlint --root=. --json --out=report.json
//   nymlint --root=. --sarif=nymlint.sarif  # SARIF 2.1.0 for code scanning
//   nymlint --root=. --write-baseline=nymflow_baseline.json
//   nymlint --list-rules
//
// The nymflow dataflow stage runs whenever the identity registry is found
// (tools/nymlint/identity_registry.txt by default; override with
// --registry=PATH, disable with --no-flow). When nymflow_baseline.json
// exists at the repo root (or --baseline=PATH is given), baselined
// fingerprints are filtered and stale entries are reported.
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/nymlint/analyzer.h"
#include "tools/nymlint/sarif.h"

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp" || ext == ".hh" ||
         ext == ".cxx" || ext == ".ipp";
}

// Collects lintable files under `target` (file or directory), paths
// repo-relative to `root`. Results are sorted by the caller; directory
// iteration order is filesystem-dependent and must never reach the report.
bool CollectFiles(const fs::path& root, const std::string& target,
                  std::vector<std::string>& out) {
  std::error_code ec;
  fs::path full = root / target;
  if (fs::is_regular_file(full, ec)) {
    out.push_back(target);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::cerr << "nymlint: cannot read " << full.string() << "\n";
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
      out.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  return true;
}

bool ReadFile(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  out = content.str();
  return true;
}

int ListRules() {
  for (const nymlint::RuleInfo& rule : nymlint::AllRules()) {
    std::cout << rule.name << "\n    " << rule.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  bool no_flow = false;
  std::string root = ".";
  std::string out_path;
  std::string sarif_path;
  std::string registry_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--no-flow") {
      no_flow = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg.rfind("--registry=", 0) == 0) {
      registry_path = arg.substr(11);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: nymlint [--root=DIR] [--json] [--out=FILE] [--sarif=FILE]\n"
             "               [--registry=FILE] [--baseline=FILE] [--no-flow]\n"
             "               [--write-baseline=FILE] [--list-rules] [paths...]\n"
             "Lints src/ bench/ tests/ tools/ examples/ by default, then runs the\n"
             "nymflow identity-taint and shard-confinement dataflow stage. See\n"
             "docs/static-analysis.md for the rule reference.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "nymlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (list_rules) {
    return ListRules();
  }
  if (targets.empty()) {
    targets = {"src", "bench", "tests", "tools", "examples"};
  }

  std::vector<std::string> paths;
  for (const std::string& target : targets) {
    if (!CollectFiles(root, target, paths)) {
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<nymlint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string content;
    if (!ReadFile(fs::path(root) / path, content)) {
      std::cerr << "nymlint: cannot open " << path << "\n";
      return 2;
    }
    files.push_back(nymlint::SourceFile{path, std::move(content)});
  }

  // Assemble the nymflow stage inputs. A missing default registry degrades
  // to lexical-only linting (with a warning); a missing *explicit* registry
  // or baseline is a hard usage error.
  nymlint::FlowOptions flow;
  if (!no_flow) {
    bool explicit_registry = !registry_path.empty();
    if (!explicit_registry) {
      registry_path = "tools/nymlint/identity_registry.txt";
    }
    std::string registry_text;
    if (ReadFile(fs::path(root) / registry_path, registry_text)) {
      flow.enabled = true;
      flow.registry_path = registry_path;
      flow.registry_text = std::move(registry_text);
    } else if (explicit_registry) {
      std::cerr << "nymlint: cannot open registry " << registry_path << "\n";
      return 2;
    } else {
      std::cerr << "nymlint: no " << registry_path << "; nymflow stage skipped\n";
    }

    bool explicit_baseline = !baseline_path.empty();
    if (!explicit_baseline) {
      baseline_path = "nymflow_baseline.json";
    }
    std::string baseline_text;
    if (ReadFile(fs::path(root) / baseline_path, baseline_text)) {
      flow.baseline_path = baseline_path;
      flow.baseline_text = std::move(baseline_text);
    } else if (explicit_baseline) {
      std::cerr << "nymlint: cannot open baseline " << baseline_path << "\n";
      return 2;
    }
  }

  // determinism-wallclock deliberately exempts tools/: this is host-side
  // tooling measuring itself, not simulation logic.
  auto start = std::chrono::steady_clock::now();
  nymlint::LintResult result = nymlint::RunLint(files, flow);
  result.analysis_ms = static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                             std::chrono::steady_clock::now() - start)
                                             .count());

  if (!write_baseline_path.empty()) {
    std::ofstream baseline_out(write_baseline_path, std::ios::binary | std::ios::trunc);
    if (!baseline_out) {
      std::cerr << "nymlint: cannot write " << write_baseline_path << "\n";
      return 2;
    }
    baseline_out << nymlint::WriteBaseline(result.flow_findings,
                                           "REVIEW: justify or fix, then keep or delete");
    std::cerr << "nymlint: wrote " << result.flow_findings.size() << " baseline entr"
              << (result.flow_findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream sarif_out(sarif_path, std::ios::binary | std::ios::trunc);
    if (!sarif_out) {
      std::cerr << "nymlint: cannot write " << sarif_path << "\n";
      return 2;
    }
    sarif_out << nymlint::WriteSarif(result.diagnostics, result.flow_findings);
  }

  std::ostream* out = &std::cout;
  std::ofstream file_out;
  if (!out_path.empty()) {
    file_out.open(out_path, std::ios::binary | std::ios::trunc);
    if (!file_out) {
      std::cerr << "nymlint: cannot write " << out_path << "\n";
      return 2;
    }
    out = &file_out;
  }
  if (json) {
    nymlint::WriteJsonReport(result, *out);
  } else {
    nymlint::WriteHumanReport(result, *out);
  }
  // When writing a report file, still summarize to stderr so CI logs show
  // the verdict without opening the artifact.
  if (!out_path.empty()) {
    std::cerr << "nymlint: " << result.diagnostics.size() << " violation(s), report in "
              << out_path << "\n";
  }
  return result.diagnostics.empty() ? 0 : 1;
}
