// nymlint CLI. Typical invocations:
//
//   nymlint --root=.                        # lint src bench tests tools examples
//   nymlint --root=. src/net                # lint one subtree
//   nymlint --root=. --json --out=report.json
//   nymlint --list-rules
//
// Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/nymlint/analyzer.h"

namespace {

namespace fs = std::filesystem;

bool HasLintableExtension(const fs::path& path) {
  std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp" || ext == ".hh" ||
         ext == ".cxx" || ext == ".ipp";
}

// Collects lintable files under `target` (file or directory), paths
// repo-relative to `root`. Results are sorted by the caller; directory
// iteration order is filesystem-dependent and must never reach the report.
bool CollectFiles(const fs::path& root, const std::string& target,
                  std::vector<std::string>& out) {
  std::error_code ec;
  fs::path full = root / target;
  if (fs::is_regular_file(full, ec)) {
    out.push_back(target);
    return true;
  }
  if (!fs::is_directory(full, ec)) {
    std::cerr << "nymlint: cannot read " << full.string() << "\n";
    return false;
  }
  for (fs::recursive_directory_iterator it(full, ec), end; it != end && !ec; it.increment(ec)) {
    if (it->is_regular_file(ec) && HasLintableExtension(it->path())) {
      out.push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
  return true;
}

int ListRules() {
  for (const nymlint::RuleInfo& rule : nymlint::AllRules()) {
    std::cout << rule.name << "\n    " << rule.summary << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool list_rules = false;
  std::string root = ".";
  std::string out_path;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nymlint [--root=DIR] [--json] [--out=FILE] [--list-rules] [paths...]\n"
                   "Lints src/ bench/ tests/ tools/ examples/ by default. See "
                   "docs/static-analysis.md for the rule reference.\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "nymlint: unknown flag " << arg << "\n";
      return 2;
    } else {
      targets.push_back(arg);
    }
  }
  if (list_rules) {
    return ListRules();
  }
  if (targets.empty()) {
    targets = {"src", "bench", "tests", "tools", "examples"};
  }

  std::vector<std::string> paths;
  for (const std::string& target : targets) {
    if (!CollectFiles(root, target, paths)) {
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<nymlint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::ifstream in(fs::path(root) / path, std::ios::binary);
    if (!in) {
      std::cerr << "nymlint: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back(nymlint::SourceFile{path, content.str()});
  }

  nymlint::LintResult result = nymlint::RunLint(files);

  std::ostream* out = &std::cout;
  std::ofstream file_out;
  if (!out_path.empty()) {
    file_out.open(out_path, std::ios::binary | std::ios::trunc);
    if (!file_out) {
      std::cerr << "nymlint: cannot write " << out_path << "\n";
      return 2;
    }
    out = &file_out;
  }
  if (json) {
    nymlint::WriteJsonReport(result, *out);
  } else {
    nymlint::WriteHumanReport(result, *out);
  }
  // When writing a report file, still summarize to stderr so CI logs show
  // the verdict without opening the artifact.
  if (!out_path.empty()) {
    std::cerr << "nymlint: " << result.diagnostics.size() << " violation(s), report in "
              << out_path << "\n";
  }
  return result.diagnostics.empty() ? 0 : 1;
}
