#include "tools/nymlint/rules.h"

#include <array>
#include <cctype>

namespace nymlint {
namespace {

const std::vector<Token>& T(const FileContext& file) { return file.tokens; }

std::string TokText(const FileContext& file, size_t i) {
  return i < T(file).size() ? T(file)[i].text : std::string();
}

bool IsIdent(const FileContext& file, size_t i) {
  return i < T(file).size() && T(file)[i].kind == TokenKind::kIdentifier;
}

// True when token i is qualified as `std::X` or `std::chrono::X` (or is
// unqualified / globally qualified). Used to skip `other_ns::rand`.
bool QualifierAllowsMatch(const FileContext& file, size_t i) {
  if (i == 0 || TokText(file, i - 1) != "::") {
    return true;  // unqualified
  }
  if (i == 1 || !IsIdent(file, i - 2)) {
    return true;  // `::rand` — global namespace
  }
  const std::string& ns = T(file)[i - 2].text;
  if (ns == "std") {
    return true;
  }
  if (ns == "chrono" && i >= 4 && TokText(file, i - 3) == "::" && TokText(file, i - 4) == "std") {
    return true;
  }
  return false;
}

bool IsStdQualified(const FileContext& file, size_t i) {
  return i >= 2 && TokText(file, i - 1) == "::" && TokText(file, i - 2) == "std";
}

// Token i names a function being called: `name(` not behind `.`/`->`, and
// not in a foreign namespace.
bool IsCallPosition(const FileContext& file, size_t i) {
  if (TokText(file, i + 1) != "(") {
    return false;
  }
  std::string prev = i > 0 ? TokText(file, i - 1) : std::string();
  if (prev == "." || prev == "->") {
    return false;
  }
  return QualifierAllowsMatch(file, i);
}

template <size_t N>
bool InSet(const std::string& text, const std::array<const char*, N>& set) {
  for (const char* entry : set) {
    if (text == entry) {
      return true;
    }
  }
  return false;
}

// Stricter variant for bannable functions whose names are everyday words
// (`time`, `clock`): the token must sit where only a *call* can — after a
// statement boundary, an operator, or a qualifier — so declarations like
// `SimClock& clock()` never match.
bool IsStrictCallPosition(const FileContext& file, size_t i) {
  if (!IsCallPosition(file, i)) {
    return false;
  }
  if (i == 0) {
    return true;
  }
  static constexpr std::array<const char*, 18> kCallContexts = {
      ";", "{", "}", "(", ")", ",", "=", "return", "::", "<",
      ">", "+", "-", "/", "%", "!", "?", ":"};
  return InSet(TokText(file, i - 1), kCallContexts);
}

void Report(const FileContext& file, size_t i, const char* rule, std::string message,
            std::vector<Diagnostic>& out) {
  out.push_back(Diagnostic{file.path, T(file)[i].line, T(file)[i].col, rule, std::move(message)});
}

// Flags `#include <header>` tokens matching a banned set.
template <size_t N>
void CheckBannedIncludes(const FileContext& file, const char* rule,
                         const std::array<const char*, N>& headers, const char* why,
                         std::vector<Diagnostic>& out) {
  for (size_t i = 0; i + 1 < T(file).size(); ++i) {
    if (T(file)[i].kind == TokenKind::kDirective && T(file)[i].text == "#include" &&
        T(file)[i + 1].kind == TokenKind::kString && InSet(T(file)[i + 1].text, headers)) {
      Report(file, i + 1, rule, "banned include " + T(file)[i + 1].text + ": " + why, out);
    }
  }
}

// --- determinism-rand -----------------------------------------------------

constexpr std::array<const char*, 11> kRandTypes = {
    "random_device", "mt19937",      "mt19937_64",     "minstd_rand",
    "minstd_rand0",  "knuth_b",      "ranlux24",       "ranlux48",
    "ranlux24_base", "ranlux48_base", "default_random_engine"};
constexpr std::array<const char*, 9> kRandCalls = {
    "rand", "srand", "rand_r", "drand48", "srand48", "lrand48", "mrand48", "random",
    "random_shuffle"};
constexpr std::array<const char*, 1> kRandIncludes = {"<random>"};

void RuleDeterminismRand(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "determinism-rand";
  CheckBannedIncludes(file, kRule, kRandIncludes,
                      "all randomness must flow from an explicitly seeded nymix::Prng", out);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i)) {
      continue;
    }
    const std::string& text = T(file)[i].text;
    if (InSet(text, kRandTypes) && QualifierAllowsMatch(file, i)) {
      Report(file, i, kRule,
             "'" + text + "' is unseeded or machine-dependent randomness; use nymix::Prng "
             "(src/util/prng.h) so runs reproduce bit-for-bit",
             out);
    } else if (InSet(text, kRandCalls) && IsCallPosition(file, i)) {
      Report(file, i, kRule,
             "'" + text + "()' draws from hidden global state; use nymix::Prng "
             "(src/util/prng.h) so runs reproduce bit-for-bit",
             out);
    }
  }
}

// --- determinism-wallclock ------------------------------------------------

constexpr std::array<const char*, 17> kWallclockNames = {
    "system_clock", "steady_clock", "high_resolution_clock", "file_clock", "utc_clock",
    "tai_clock",    "gps_clock",    "gettimeofday",          "clock_gettime",
    "timespec_get", "localtime",    "localtime_r",           "gmtime",
    "gmtime_r",     "mktime",       "ftime",                 "asctime"};
constexpr std::array<const char*, 2> kWallclockCalls = {"time", "clock"};
constexpr std::array<const char*, 4> kWallclockIncludes = {"<ctime>", "<time.h>", "<sys/time.h>",
                                                           "<sys/timeb.h>"};

void RuleDeterminismWallclock(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "determinism-wallclock";
  CheckBannedIncludes(file, kRule, kWallclockIncludes,
                      "simulation timing must go through SimClock/EventLoop virtual time", out);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i)) {
      continue;
    }
    const std::string& text = T(file)[i].text;
    if (InSet(text, kWallclockNames) && QualifierAllowsMatch(file, i)) {
      Report(file, i, kRule,
             "'" + text + "' reads the host's wall clock; simulation time must come from "
             "SimClock (src/util/sim_clock.h) so results do not depend on the machine",
             out);
    } else if (InSet(text, kWallclockCalls) && IsStrictCallPosition(file, i)) {
      Report(file, i, kRule,
             "'" + text + "()' reads the host's wall clock; simulation time must come from "
             "SimClock (src/util/sim_clock.h) so results do not depend on the machine",
             out);
    }
  }
}

// --- determinism-env ------------------------------------------------------

constexpr std::array<const char*, 5> kEnvCalls = {"getenv", "secure_getenv", "setenv", "putenv",
                                                  "unsetenv"};

void RuleDeterminismEnv(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "determinism-env";
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (IsIdent(file, i) && InSet(T(file)[i].text, kEnvCalls) && IsCallPosition(file, i)) {
      Report(file, i, kRule,
             "'" + T(file)[i].text + "()' makes behavior depend on ambient environment "
             "variables; pass configuration explicitly (flags or constructor arguments)",
             out);
    }
  }
}

// --- determinism-unordered-container --------------------------------------

constexpr std::array<const char*, 4> kUnorderedNames = {"unordered_map", "unordered_set",
                                                        "unordered_multimap",
                                                        "unordered_multiset"};
constexpr std::array<const char*, 2> kUnorderedIncludes = {"<unordered_map>", "<unordered_set>"};

void RuleDeterminismUnordered(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "determinism-unordered-container";
  CheckBannedIncludes(file, kRule, kUnorderedIncludes,
                      "hash-table iteration order can leak into outputs; use std::map/std::set",
                      out);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (IsIdent(file, i) && InSet(T(file)[i].text, kUnorderedNames) &&
        QualifierAllowsMatch(file, i)) {
      Report(file, i, kRule,
             "'" + T(file)[i].text + "' iteration order depends on hashing and allocation; "
             "use std::map/std::set (or prove order never escapes and suppress with a reason)",
             out);
    }
  }
}

// --- determinism-pointer-key ----------------------------------------------

constexpr std::array<const char*, 4> kOrderedAssoc = {"map", "set", "multimap", "multiset"};

// `std::map<T*, V>` / `std::set<T*>` with the default comparator order by
// allocation address. A custom comparator (third/second template argument)
// is the sanctioned fix, so its presence clears the flag.
void RuleDeterminismPointerKey(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "determinism-pointer-key";
  for (size_t i = 0; i + 1 < T(file).size(); ++i) {
    if (!IsIdent(file, i) || !InSet(T(file)[i].text, kOrderedAssoc) || !IsStdQualified(file, i) ||
        TokText(file, i + 1) != "<") {
      continue;
    }
    bool is_map = T(file)[i].text == "map" || T(file)[i].text == "multimap";
    int depth = 1;
    size_t arg_count = 1;
    bool first_arg_has_pointer = false;
    bool parsed = false;
    for (size_t j = i + 2; j < T(file).size() && j < i + 120; ++j) {
      const std::string& text = T(file)[j].text;
      if (text == "<") {
        ++depth;
      } else if (text == ">") {
        if (--depth == 0) {
          parsed = true;
          break;
        }
      } else if (text == "(" || text == "[") {
        ++depth;  // parenthesized expressions inside args (rare)
      } else if (text == ")" || text == "]") {
        --depth;
      } else if (text == "," && depth == 1) {
        ++arg_count;
      } else if (text == "*" && arg_count == 1) {
        // Any depth: a pointer buried in a tuple/pair key still makes the
        // default comparator order by address.
        first_arg_has_pointer = true;
      } else if (text == ";" || text == "{") {
        break;  // malformed / operator< expression, not a template-id
      }
    }
    size_t max_default_args = is_map ? 2 : 1;
    if (parsed && first_arg_has_pointer && arg_count <= max_default_args) {
      Report(file, i, kRule,
             "pointer-keyed std::" + T(file)[i].text +
                 " orders by allocation address, which varies run to run; key by a stable id "
                 "or pass an explicit comparator (e.g. LinkIdLess in src/net/link.h)",
             out);
    }
  }
}

// --- sim-thread -----------------------------------------------------------

constexpr std::array<const char*, 24> kThreadStdNames = {
    "thread",        "jthread",         "mutex",
    "recursive_mutex", "timed_mutex",   "recursive_timed_mutex",
    "shared_mutex",  "shared_timed_mutex", "condition_variable",
    "condition_variable_any", "future", "shared_future",
    "promise",       "packaged_task",   "async",
    "atomic",        "atomic_flag",     "atomic_ref",
    "counting_semaphore", "binary_semaphore", "barrier",
    "latch",         "stop_token",      "stop_source"};
constexpr std::array<const char*, 10> kThreadBareNames = {
    "this_thread", "sleep_for",   "sleep_until", "lock_guard", "unique_lock",
    "scoped_lock", "shared_lock", "call_once",   "once_flag",  "hardware_concurrency"};
constexpr std::array<const char*, 10> kThreadIncludes = {
    "<thread>", "<mutex>", "<shared_mutex>", "<future>", "<condition_variable>",
    "<atomic>", "<semaphore>", "<barrier>",  "<latch>",  "<stop_token>"};

// Shared scanner behind sim-thread and thread-confinement: same token sets,
// different scopes and remediation text.
void ScanThreadPrimitives(const FileContext& file, const char* rule, const char* include_why,
                          const char* token_why, std::vector<Diagnostic>& out) {
  CheckBannedIncludes(file, rule, kThreadIncludes, include_why, out);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i)) {
      continue;
    }
    const std::string& text = T(file)[i].text;
    bool hit = (InSet(text, kThreadStdNames) && IsStdQualified(file, i)) ||
               (InSet(text, kThreadBareNames) && QualifierAllowsMatch(file, i));
    if (hit) {
      Report(file, i, rule, "'" + text + "' " + token_why, out);
    }
  }
}

void RuleSimThread(const FileContext& file, std::vector<Diagnostic>& out) {
  ScanThreadPrimitives(
      file, "sim-thread",
      "the sim core is single-threaded; concurrency is modeled as EventLoop "
      "events, never real threads",
      "introduces real concurrency or blocking into the single-threaded "
      "sim core; model time and parallelism with EventLoop (src/util/event_loop.h)",
      out);
}

// --- thread-confinement ---------------------------------------------------

bool PathStartsWith(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

// Real threading exists in exactly two places: src/util (ThreadPool) and
// src/parallel (the sharded executor built on it). Everywhere else — the
// sim core and the tests — must stay free of raw primitives so the
// byte-identity contract is auditable by construction: if a file outside
// the confinement boundary can't spawn a thread or take a lock, it can't
// introduce a scheduling-dependent result.
void RuleThreadConfinement(const FileContext& file, std::vector<Diagnostic>& out) {
  if (PathStartsWith(file.path, "src/parallel/") || PathStartsWith(file.path, "src/util/")) {
    return;  // the sanctioned homes of real concurrency
  }
  ScanThreadPrimitives(
      file, "thread-confinement",
      "raw threading is confined to src/parallel and src/util; drive parallel "
      "work through ShardedSimulation (src/parallel/sharded_sim.h) or ThreadPool",
      "is a raw threading primitive outside the confinement boundary "
      "(src/parallel, src/util); use ShardedSimulation or ThreadPool so "
      "determinism stays provable",
      out);
}

// --- store-raw-io ---------------------------------------------------------

constexpr std::array<const char*, 8> kRawIoNames = {
    "fstream",       "ifstream",       "ofstream",       "basic_fstream",
    "basic_ifstream", "basic_ofstream", "basic_filebuf",  "filebuf"};
constexpr std::array<const char*, 3> kRawIoCalls = {"fopen", "freopen", "tmpfile"};
constexpr std::array<const char*, 1> kRawIoIncludes = {"<fstream>"};

// All durable bytes flow through src/store's CRC-framed record log (or the
// legacy src/storage models built before it); scattering ad-hoc fstream /
// FILE* I/O through the sim core would let unframed, unchecksummed — and
// potentially nondeterministic — bytes reach disk where nymlint can't see
// the framing. bench/ and tools/ are exempt by scope: they are leaf
// consumers writing reports, not simulator state.
void RuleStoreRawIo(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "store-raw-io";
  if (PathStartsWith(file.path, "src/store/") || PathStartsWith(file.path, "src/storage/")) {
    return;  // the sanctioned persistence layer
  }
  CheckBannedIncludes(file, kRule, kRawIoIncludes,
                      "file I/O outside src/store|src/storage; go through ReadFileBytes/"
                      "WriteFileBytes (src/store/file_io.h) or a store record log",
                      out);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i)) {
      continue;
    }
    const std::string& text = T(file)[i].text;
    if ((InSet(text, kRawIoNames) || text == "FILE") && QualifierAllowsMatch(file, i)) {
      Report(file, i, kRule,
             "'" + text + "' is raw file I/O outside the persistence layer; use "
             "ReadFileBytes/WriteFileBytes (src/store/file_io.h) so every durable byte "
             "is framed and CRC-checked by src/store",
             out);
    } else if (InSet(text, kRawIoCalls) && IsCallPosition(file, i)) {
      Report(file, i, kRule,
             "'" + text + "()' opens a raw FILE* outside the persistence layer; use "
             "ReadFileBytes/WriteFileBytes (src/store/file_io.h) so every durable byte "
             "is framed and CRC-checked by src/store",
             out);
    }
  }
}

// --- error-throw ----------------------------------------------------------

constexpr std::array<const char*, 4> kAbortCalls = {"abort", "terminate", "quick_exit", "_Exit"};

void RuleErrorThrow(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "error-throw";
  if (file.path == "src/util/check.h") {
    return;  // the sanctioned invariant-abort site
  }
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i)) {
      continue;
    }
    const std::string& text = T(file)[i].text;
    if (text == "throw") {
      Report(file, i, kRule,
             "'throw' bypasses the Status/Result error contract; return a Status "
             "(src/util/status.h) for expected failures, NYMIX_CHECK for invariants",
             out);
    } else if (InSet(text, kAbortCalls) && IsCallPosition(file, i)) {
      Report(file, i, kRule,
             "'" + text + "()' outside src/util/check.h; use NYMIX_CHECK/NYMIX_CHECK_MSG for "
             "invariants so the failure is reported with file:line context",
             out);
    }
  }
}

// --- error-ignored-status -------------------------------------------------

// Walks a `a.b->C` chain leftwards from the called identifier at `i`;
// returns the index of the chain's first token, or SIZE_MAX to bail out
// (conservative: unflagged).
size_t ChainStart(const FileContext& file, size_t i) {
  size_t j = i;
  while (j >= 2) {
    const std::string& prev = TokText(file, j - 1);
    if (prev != "." && prev != "->") {
      break;
    }
    size_t k = j - 2;
    if (IsIdent(file, k)) {
      j = k;
      continue;
    }
    if (TokText(file, k) == ")") {
      // Skip back over a balanced call: `Foo(...).Bar()`.
      int depth = 0;
      while (true) {
        const std::string& text = TokText(file, k);
        if (text == ")") {
          ++depth;
        } else if (text == "(") {
          if (--depth == 0) {
            break;
          }
        }
        if (k == 0) {
          return static_cast<size_t>(-1);
        }
        --k;
      }
      if (k == 0 || !IsIdent(file, k - 1)) {
        return static_cast<size_t>(-1);
      }
      j = k - 1;
      continue;
    }
    return static_cast<size_t>(-1);
  }
  return j;
}

void RuleErrorIgnoredStatus(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "error-ignored-status";
  if (file.status_functions == nullptr || file.status_functions->empty()) {
    return;
  }
  for (size_t i = 0; i + 1 < T(file).size(); ++i) {
    if (!IsIdent(file, i) || TokText(file, i + 1) != "(" ||
        file.status_functions->count(T(file)[i].text) == 0) {
      continue;
    }
    size_t start = ChainStart(file, i);
    if (start == static_cast<size_t>(-1)) {
      continue;
    }
    // The chain must begin a statement for the value to be discarded.
    static constexpr std::array<const char*, 6> kStatementStarts = {";", "{", "}",
                                                                    ")", "else", "do"};
    if (start > 0 && !InSet(TokText(file, start - 1), kStatementStarts)) {
      continue;
    }
    // `(void)Foo()` is an explicit compiler-style discard; accepted.
    if (start >= 3 && TokText(file, start - 1) == ")" && TokText(file, start - 2) == "void" &&
        TokText(file, start - 3) == "(") {
      continue;
    }
    // Find the call's closing paren; the statement must end right after it.
    int depth = 0;
    size_t close = static_cast<size_t>(-1);
    for (size_t j = i + 1; j < T(file).size() && j < i + 600; ++j) {
      const std::string& text = T(file)[j].text;
      if (text == "(") {
        ++depth;
      } else if (text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == static_cast<size_t>(-1) || TokText(file, close + 1) != ";") {
      continue;
    }
    Report(file, i, kRule,
           "result of Status-returning call '" + T(file)[i].text +
               "' is discarded; handle it, NYMIX_RETURN_IF_ERROR it, or CHECK it",
           out);
  }
}

// --- include-guard --------------------------------------------------------

void RuleIncludeGuard(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "include-guard";
  size_t first = static_cast<size_t>(-1);
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (T(file)[i].kind == TokenKind::kDirective) {
      first = i;
      break;
    }
  }
  auto fail = [&](const std::string& why) {
    out.push_back(Diagnostic{file.path, 1, 1, kRule,
                             "header lacks a well-formed include guard (" + why +
                                 "); start with #ifndef GUARD / #define GUARD or #pragma once"});
  };
  if (first == static_cast<size_t>(-1)) {
    fail("no preprocessor directives at all");
    return;
  }
  const std::string& directive = T(file)[first].text;
  if (directive == "#pragma") {
    if (TokText(file, first + 1) != "once") {
      fail("#pragma before a guard is not #pragma once");
    }
    return;
  }
  if (directive != "#ifndef") {
    fail("first directive is " + directive);
    return;
  }
  if (!IsIdent(file, first + 1)) {
    fail("#ifndef without a guard macro");
    return;
  }
  const std::string& guard = T(file)[first + 1].text;
  // The next directive must immediately define the same macro.
  for (size_t i = first + 2; i < T(file).size(); ++i) {
    if (T(file)[i].kind != TokenKind::kDirective) {
      continue;
    }
    if (T(file)[i].text == "#define" && TokText(file, i + 1) == guard) {
      return;
    }
    fail("#ifndef " + guard + " is not followed by #define " + guard);
    return;
  }
  fail("#ifndef " + guard + " has no matching #define");
}

// --- using-namespace-header -----------------------------------------------

void RuleUsingNamespaceHeader(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "using-namespace-header";
  for (size_t i = 0; i + 1 < T(file).size(); ++i) {
    if (IsIdent(file, i) && T(file)[i].text == "using" && TokText(file, i + 1) == "namespace") {
      Report(file, i, kRule,
             "'using namespace' in a header pollutes every includer's scope; qualify names "
             "or alias the few you need",
             out);
    }
  }
}

// --- fuzz-entropy ---------------------------------------------------------

// The fuzzer's reproducibility contract (src/fuzz/entropy.h): every random
// draw flows from a recorded seed. AmbientSeed() is the one sanctioned
// escape hatch, callable only from its own definition and from tools/ (the
// nymfuzz --seed=random path, which prints the chosen seed). Anywhere else
// an ambient seed would silently make a run unreplayable.
void RuleFuzzEntropy(const FileContext& file, std::vector<Diagnostic>& out) {
  static const char* kRule = "fuzz-entropy";
  if (file.path.rfind("src/fuzz/entropy", 0) == 0 || file.path.rfind("tools/", 0) == 0) {
    return;
  }
  for (size_t i = 0; i < T(file).size(); ++i) {
    if (!IsIdent(file, i) || T(file)[i].text != "AmbientSeed" || TokText(file, i + 1) != "(") {
      continue;
    }
    const std::string prev = i > 0 ? TokText(file, i - 1) : std::string();
    if (prev == "." || prev == "->") {
      continue;  // member lookalike on some other type
    }
    if (prev == "::") {
      if (i >= 2 && IsIdent(file, i - 2) && T(file)[i - 2].text != "nymix") {
        continue;  // foreign namespace
      }
    } else if (!IsStrictCallPosition(file, i)) {
      continue;  // declaration shape: `uint64_t AmbientSeed();`
    }
    Report(file, i, kRule,
           "'AmbientSeed()' outside src/fuzz/entropy and tools/ makes the run "
           "unreplayable; take an explicit seed and record it (src/fuzz/entropy.h)",
           out);
  }
}

}  // namespace

const std::vector<RuleInfo>& AllRules() {
  static const std::vector<RuleInfo> kRules = {
      {"determinism-rand",
       "unseeded/global randomness (std::rand, random_device, <random> engines)", kEverywhere,
       false},
      {"determinism-wallclock",
       "wall-clock reads (system_clock, steady_clock, time(), gettimeofday)",
       kSrc | kBench | kExamples, false},
      {"determinism-env", "environment-variable reads (getenv and friends)", kEverywhere, false},
      {"determinism-unordered-container",
       "unordered_map/unordered_set in the sim core (iteration order can leak)", kSrc, false},
      {"determinism-pointer-key",
       "std::map/set keyed by pointer with the default comparator", kSrc, false},
      {"sim-thread", "threads, locks, atomics, sleeps in the single-threaded sim",
       kBench | kExamples, false},
      {"thread-confinement",
       "raw threading primitives outside src/parallel and src/util", kSrc | kTests, false},
      {"store-raw-io",
       "raw file I/O (fstream, fopen, FILE*) outside src/store and src/storage",
       kSrc | kTests | kExamples, false},
      {"error-throw", "throw/abort outside src/util/check.h", kEverywhere, false},
      {"error-ignored-status", "discarded result of a Status-returning call",
       kSrc | kBench | kTests | kExamples, false},
      {"include-guard", "headers must open with #ifndef/#define or #pragma once", kEverywhere,
       true},
      {"using-namespace-header", "no 'using namespace' in headers", kEverywhere, true},
      {"fuzz-entropy",
       "AmbientSeed() outside src/fuzz/entropy and tools/ (fuzz runs must replay from a "
       "recorded seed)",
       kEverywhere, false},
      // nymflow dataflow rules (tools/nymlint/flow.h). They run as the
      // analyzer's second stage, not through the per-file dispatch below,
      // but live in this table so --list-rules, IsKnownRule, and the
      // nymlint:allow / nymlint:declassify validators know them.
      {"nymflow-identity-taint",
       "identity-bearing value (cookie, evercookie, account, guard) reaches a "
       "cross-boundary sink without a declassifier",
       kSrc, false},
      {"nymflow-shard-confinement",
       "mutable state reachable from two shard contexts outside a CrossShardChannel", kSrc,
       false},
      {"nymflow-registry-error",
       "identity_registry.txt, a baseline, or a declassify marker failed to parse",
       kEverywhere, false},
      {"nymflow-stale-baseline",
       "nymflow_baseline.json entry that matches no current finding", kEverywhere, false},
      // Meta rules emitted by the suppression scanner itself; they are not
      // suppressible and exist so --list-rules documents every name that can
      // appear in a report.
      {"suppression-missing-reason", "nymlint:allow(...) without a written reason", kEverywhere,
       false},
      {"suppression-unknown-rule", "nymlint:allow(...) naming a rule that does not exist",
       kEverywhere, false},
      {"suppression-unused", "nymlint:allow(...) that matched no diagnostic", kEverywhere, false},
  };
  return kRules;
}

bool IsKnownRule(const std::string& name) {
  for (const RuleInfo& rule : AllRules()) {
    if (name == rule.name) {
      return true;
    }
  }
  return false;
}

namespace {

// Shared scanner behind CollectStatusFunctions/CollectVoidFunctions:
// `<ReturnKeyword> <PascalName>(` not behind `.`/`->`.
void CollectFunctionsReturning(const std::vector<Token>& tokens, const char* return_type,
                               std::set<std::string>& out) {
  for (size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == return_type &&
        tokens[i + 1].kind == TokenKind::kIdentifier && tokens[i + 2].text == "(" &&
        std::isupper(static_cast<unsigned char>(tokens[i + 1].text[0]))) {
      // `Status Foo(` — skip `foo->Status(...)`-style member calls on other
      // types by requiring the return type to be unqualified or std-free.
      if (i > 0 && (tokens[i - 1].text == "." || tokens[i - 1].text == "->")) {
        continue;
      }
      out.insert(tokens[i + 1].text);
    }
  }
}

}  // namespace

void CollectStatusFunctions(const std::vector<Token>& tokens, std::set<std::string>& out) {
  CollectFunctionsReturning(tokens, "Status", out);
}

void CollectVoidFunctions(const std::vector<Token>& tokens, std::set<std::string>& out) {
  CollectFunctionsReturning(tokens, "void", out);
}

void RunRules(const FileContext& file, std::vector<Diagnostic>& out) {
  struct Entry {
    const char* name;
    void (*fn)(const FileContext&, std::vector<Diagnostic>&);
  };
  static constexpr std::array<Entry, 13> kDispatch = {{
      {"determinism-rand", RuleDeterminismRand},
      {"determinism-wallclock", RuleDeterminismWallclock},
      {"determinism-env", RuleDeterminismEnv},
      {"determinism-unordered-container", RuleDeterminismUnordered},
      {"determinism-pointer-key", RuleDeterminismPointerKey},
      {"sim-thread", RuleSimThread},
      {"thread-confinement", RuleThreadConfinement},
      {"store-raw-io", RuleStoreRawIo},
      {"error-throw", RuleErrorThrow},
      {"error-ignored-status", RuleErrorIgnoredStatus},
      {"include-guard", RuleIncludeGuard},
      {"using-namespace-header", RuleUsingNamespaceHeader},
      {"fuzz-entropy", RuleFuzzEntropy},
  }};
  for (const Entry& entry : kDispatch) {
    const RuleInfo* info = nullptr;
    for (const RuleInfo& rule : AllRules()) {
      if (std::string(rule.name) == entry.name) {
        info = &rule;
        break;
      }
    }
    if (info == nullptr || (info->scopes & file.scope) == 0) {
      continue;
    }
    if (info->headers_only && !file.is_header) {
      continue;
    }
    entry.fn(file, out);
  }
}

}  // namespace nymlint
