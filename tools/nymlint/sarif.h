// SARIF 2.1.0 serialization for nymlint/nymflow results, consumable by
// GitHub code scanning (github/codeql-action/upload-sarif) and any SARIF
// viewer. Lexical diagnostics become plain results; nymflow findings carry
// codeFlows built from their step chains and a partialFingerprints entry
// ("nymflowFingerprint/v1") so baseline identity survives line drift.
#ifndef TOOLS_NYMLINT_SARIF_H_
#define TOOLS_NYMLINT_SARIF_H_

#include <string>
#include <vector>

#include "tools/nymlint/flow.h"
#include "tools/nymlint/rules.h"

namespace nymlint {

// Renders one SARIF run. `diagnostics` are lexical results (no code flow);
// `flow_findings` contribute codeFlows + fingerprints. Rule metadata is
// emitted for every rule that appears plus all registered rules, so
// dashboards can show help text even for clean runs.
std::string WriteSarif(const std::vector<Diagnostic>& diagnostics,
                       const std::vector<FlowFinding>& flow_findings);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_SARIF_H_
