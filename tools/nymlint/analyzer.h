// nymlint's driver: runs the rule engine over a set of sources, applies
// `// nymlint:allow(...)` suppressions, and renders reports. Pure —
// no filesystem access — so the gtest suite can lint inline fixtures;
// main.cc does the directory walking.
#ifndef TOOLS_NYMLINT_ANALYZER_H_
#define TOOLS_NYMLINT_ANALYZER_H_

#include <ostream>
#include <string>
#include <vector>

#include "tools/nymlint/rules.h"

namespace nymlint {

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/net/link.h"
  std::string content;  // full file text
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by path/line/col
  size_t files_scanned = 0;
  size_t suppressions_used = 0;
};

// Lints every file: pass 1 collects Status-returning function names across
// all files, pass 2 runs rules per file and applies suppressions.
//
// Suppression protocol (docs/static-analysis.md):
//   // nymlint:allow(rule-a, rule-b): reason why this is sound
//   // nymlint:allow-file(rule-name): reason — whole file
// A line suppression covers its own line and the next line (so it can sit
// above the offending statement). The reason is mandatory; a reasonless,
// unknown-rule, or unused suppression is itself a diagnostic.
LintResult RunLint(const std::vector<SourceFile>& files);

// `path:line:col: [rule] message` lines plus a one-line summary.
void WriteHumanReport(const LintResult& result, std::ostream& out);

// Machine-readable report consumed by the CI lint job.
void WriteJsonReport(const LintResult& result, std::ostream& out);

// Maps a repo-relative path to its rule scope bit; 0 = not linted.
unsigned ScopeForPath(const std::string& path);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_ANALYZER_H_
