// nymlint's driver: runs the rule engine over a set of sources, applies
// `// nymlint:allow(...)` suppressions, and renders reports. Pure —
// no filesystem access — so the gtest suite can lint inline fixtures;
// main.cc does the directory walking and file reading (including the
// identity registry and baseline handed in via FlowOptions).
#ifndef TOOLS_NYMLINT_ANALYZER_H_
#define TOOLS_NYMLINT_ANALYZER_H_

#include <ostream>
#include <string>
#include <vector>

#include "tools/nymlint/flow.h"
#include "tools/nymlint/rules.h"

namespace nymlint {

struct SourceFile {
  std::string path;     // repo-relative, e.g. "src/net/link.h"
  std::string content;  // full file text
};

// Configuration for the nymflow dataflow stage (pass 2 of the analyzer).
// Texts are passed in, not paths-to-read, to keep RunLint filesystem-free.
struct FlowOptions {
  bool enabled = false;
  std::string registry_path;  // position for registry parse diagnostics
  std::string registry_text;  // identity_registry.txt contents
  std::string baseline_path;  // "" = no baseline in play
  std::string baseline_text;  // nymflow_baseline.json contents
  bool report_stale = true;   // stale baseline entries become diagnostics
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // sorted by path/line/col
  size_t files_scanned = 0;
  size_t suppressions_used = 0;

  // nymflow stage results (empty/zero when the stage is disabled). Every
  // surviving flow finding also appears in `diagnostics`; this list keeps
  // the step chains and fingerprints for SARIF code flows.
  std::vector<FlowFinding> flow_findings;
  size_t baseline_suppressed = 0;          // findings matched by the baseline
  std::vector<std::string> stale_baseline; // baseline fingerprints w/o a match
  size_t flow_functions = 0;               // functions in the symbol model
  size_t flow_call_edges = 0;              // resolved call edges (report pass)
  long analysis_ms = -1;                   // wall time, set by main.cc
};

// Lints every file: one lex per file feeds (a) the cross-file Status
// collection pass, (b) the per-file lexical rules, and (c) the nymflow
// symbol model — files are never re-lexed per stage.
//
// Suppression protocol (docs/static-analysis.md):
//   // nymlint:allow(rule-a, rule-b): reason why this is sound
//   // nymlint:allow-file(rule-name): reason — whole file
// A line suppression covers its own line and the next line (so it can sit
// above the offending statement). The reason is mandatory; a reasonless,
// unknown-rule, or unused suppression is itself a diagnostic. Suppressions
// apply to nymflow findings too (matched at the finding's sink site).
LintResult RunLint(const std::vector<SourceFile>& files);
LintResult RunLint(const std::vector<SourceFile>& files, const FlowOptions& flow);

// `path:line:col: [rule] message` lines plus a one-line summary.
void WriteHumanReport(const LintResult& result, std::ostream& out);

// Machine-readable report consumed by the CI lint job.
void WriteJsonReport(const LintResult& result, std::ostream& out);

// Parses nymflow_baseline.json ({"version":1,"entries":[{"fingerprint":...,
// "rule":..., "reason":...}]}) into the fingerprint list. Malformed input
// yields a nymflow-registry-error diagnostic positioned at `path`.
std::vector<std::string> ParseBaseline(const std::string& path, const std::string& text,
                                       std::vector<Diagnostic>& errors);

// Renders a baseline file covering `findings`, one entry per fingerprint,
// with `reason` attached to each (reviewed-by-hand text goes in later).
std::string WriteBaseline(const std::vector<FlowFinding>& findings,
                          const std::string& reason);

// Maps a repo-relative path to its rule scope bit; 0 = not linted.
unsigned ScopeForPath(const std::string& path);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_ANALYZER_H_
