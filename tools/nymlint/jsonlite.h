// A minimal recursive-descent JSON reader for the analyzer's own inputs:
// nymflow baselines and (in tests) the SARIF it emits. Deliberately tiny —
// objects become std::map so iteration order is deterministic, numbers stay
// doubles, and parse failures return a positioned error instead of
// throwing. Like the lexer, this is self-contained so nymlint builds on
// any CI image that can build the simulator.
#ifndef TOOLS_NYMLINT_JSONLITE_H_
#define TOOLS_NYMLINT_JSONLITE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nymlint {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  // Object member lookup; returns a shared null value when absent or when
  // this value is not an object, so chained lookups never dereference junk.
  const JsonValue& at(const std::string& key) const;
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  // "line L: message" when !ok
  int error_line = 0;
};

JsonParseResult ParseJson(const std::string& text);

// Escapes a string for embedding in JSON output (no surrounding quotes).
std::string JsonEscapeString(const std::string& text);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_JSONLITE_H_
