#include "tools/nymlint/sarif.h"

#include <map>
#include <sstream>

#include "tools/nymlint/jsonlite.h"

namespace nymlint {
namespace {

void WriteLocation(std::ostream& out, const std::string& path, int line, int col) {
  out << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
      << JsonEscapeString(path)
      << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":" << (line > 0 ? line : 1)
      << ",\"startColumn\":" << (col > 0 ? col : 1) << "}}}";
}

void WriteResult(std::ostream& out, const Diagnostic& diag,
                 const std::map<std::string, size_t>& rule_index,
                 const FlowFinding* flow) {
  out << "{\"ruleId\":\"" << JsonEscapeString(diag.rule) << "\"";
  auto index = rule_index.find(diag.rule);
  if (index != rule_index.end()) {
    out << ",\"ruleIndex\":" << index->second;
  }
  out << ",\"level\":\"error\",\"message\":{\"text\":\"" << JsonEscapeString(diag.message)
      << "\"},\"locations\":[";
  WriteLocation(out, diag.path, diag.line, diag.col);
  out << "]";
  if (flow != nullptr) {
    out << ",\"partialFingerprints\":{\"nymflowFingerprint/v1\":\""
        << JsonEscapeString(flow->fingerprint) << "\"}";
    if (!flow->steps.empty()) {
      out << ",\"codeFlows\":[{\"threadFlows\":[{\"locations\":[";
      for (size_t i = 0; i < flow->steps.size(); ++i) {
        const FlowStep& step = flow->steps[i];
        if (i > 0) {
          out << ",";
        }
        out << "{\"location\":";
        std::ostringstream loc;
        WriteLocation(loc, step.path, step.line, step.col);
        std::string text = loc.str();
        // Splice the step note into the location as its message.
        text.insert(text.size() - 1,
                    ",\"message\":{\"text\":\"" + JsonEscapeString(step.note) + "\"}");
        out << text << "}";
      }
      out << "]}]}]";
    }
  }
  out << "}";
}

}  // namespace

std::string WriteSarif(const std::vector<Diagnostic>& diagnostics,
                       const std::vector<FlowFinding>& flow_findings) {
  std::ostringstream out;
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      << "\"name\":\"nymlint\",\"informationUri\":"
      << "\"https://example.invalid/nymix/docs/static-analysis.md\","
      << "\"version\":\"2.0.0\",\"rules\":[";
  std::map<std::string, size_t> rule_index;
  size_t count = 0;
  auto emit_rule = [&](const std::string& id, const std::string& summary) {
    if (rule_index.count(id)) {
      return;
    }
    if (count > 0) {
      out << ",";
    }
    rule_index[id] = count++;
    out << "{\"id\":\"" << JsonEscapeString(id) << "\",\"name\":\""
        << JsonEscapeString(id) << "\",\"shortDescription\":{\"text\":\""
        << JsonEscapeString(summary)
        << "\"},\"defaultConfiguration\":{\"level\":\"error\"}}";
  };
  for (const RuleInfo& rule : AllRules()) {
    emit_rule(rule.name, rule.summary);
  }
  out << "]}},\"columnKind\":\"utf16CodeUnits\","
      << "\"originalUriBaseIds\":{\"SRCROOT\":{\"description\":{\"text\":"
      << "\"repository root\"}}},\"results\":[";
  bool first = true;
  // Flow findings are indexed by diagnostic identity so the shared
  // diagnostics list (which already contains flow diags) gains code flows.
  std::map<std::string, const FlowFinding*> by_key;
  for (const FlowFinding& finding : flow_findings) {
    std::ostringstream key;
    key << finding.diag.path << ":" << finding.diag.line << ":" << finding.diag.col
        << ":" << finding.diag.rule;
    by_key[key.str()] = &finding;
  }
  for (const Diagnostic& diag : diagnostics) {
    if (!first) {
      out << ",";
    }
    first = false;
    std::ostringstream key;
    key << diag.path << ":" << diag.line << ":" << diag.col << ":" << diag.rule;
    auto flow = by_key.find(key.str());
    WriteResult(out, diag, rule_index,
                flow != by_key.end() ? flow->second : nullptr);
  }
  out << "]}]}";
  return out.str();
}

}  // namespace nymlint
