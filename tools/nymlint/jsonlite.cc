#include "tools/nymlint/jsonlite.h"

#include <cctype>
#include <cstdio>

namespace nymlint {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : src_(text) {}

  JsonParseResult Run() {
    JsonParseResult result;
    SkipWs();
    if (!ParseValue(result.value)) {
      result.error = error_;
      result.error_line = line_;
      return result;
    }
    SkipWs();
    if (pos_ != src_.size()) {
      result.error = "trailing content after document";
      result.error_line = line_;
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  void SkipWs() {
    while (pos_ < src_.size()) {
      char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        Advance();
      } else {
        break;
      }
    }
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message;
    }
    return false;
  }

  bool Expect(char c) {
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    Advance();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return ParseString(out.str);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    if (!Expect('{')) {
      return false;
    }
    SkipWs();
    if (Peek() == '}') {
      Advance();
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) {
        return false;
      }
      SkipWs();
      if (!Expect(':')) {
        return false;
      }
      JsonValue value;
      if (!ParseValue(value)) {
        return false;
      }
      out.object[key] = std::move(value);
      SkipWs();
      if (Peek() == ',') {
        Advance();
        continue;
      }
      return Expect('}');
    }
  }

  bool ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    if (!Expect('[')) {
      return false;
    }
    SkipWs();
    if (Peek() == ']') {
      Advance();
      return true;
    }
    while (true) {
      JsonValue value;
      if (!ParseValue(value)) {
        return false;
      }
      out.array.push_back(std::move(value));
      SkipWs();
      if (Peek() == ',') {
        Advance();
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string& out) {
    if (!Expect('"')) {
      return false;
    }
    while (pos_ < src_.size()) {
      char c = Advance();
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= src_.size()) {
          break;
        }
        char esc = Advance();
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              if (pos_ >= src_.size() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
                return Fail("bad \\u escape");
              }
              char h = Advance();
              code = code * 16 + static_cast<unsigned>(
                  h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // UTF-8 encode the BMP code point (surrogate pairs are beyond
            // what baselines/SARIF need; emitted as-is per half).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue& out) {
    out.kind = JsonValue::Kind::kBool;
    if (src_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out.boolean = true;
      return true;
    }
    if (src_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out.boolean = false;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNull(JsonValue& out) {
    if (src_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(JsonValue& out) {
    size_t start = pos_;
    if (Peek() == '-') {
      Advance();
    }
    while (pos_ < src_.size()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        Advance();
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(src_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& src_;
  size_t pos_ = 0;
  int line_ = 1;
  std::string error_;
};

const JsonValue kNullValue{};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (kind != Kind::kObject) {
    return kNullValue;
  }
  auto it = object.find(key);
  return it == object.end() ? kNullValue : it->second;
}

JsonParseResult ParseJson(const std::string& text) { return Parser(text).Run(); }

std::string JsonEscapeString(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace nymlint
