// The identity registry: the checked-in declaration of what nymflow
// considers identity-bearing (taint sources), cross-boundary (sinks),
// sanctioned scrubbing (declassifiers), and shard-confinement vocabulary.
// See tools/nymlint/identity_registry.txt for the live registry and
// docs/static-analysis.md for the format reference.
#ifndef TOOLS_NYMLINT_REGISTRY_H_
#define TOOLS_NYMLINT_REGISTRY_H_

#include <set>
#include <string>
#include <vector>

#include "tools/nymlint/rules.h"

namespace nymlint {

struct IdentityRegistry {
  // Identity-taint vocabulary. Function entries are either qualified
  // ("Class::Method", matched when the receiver's type resolves) or bare
  // ("Function", matched on unqualified calls).
  std::set<std::string> source_types;   // a value of this type IS identity
  std::set<std::string> source_fields;  // reading .field / ->field taints
  std::set<std::string> source_fns;     // the call's result is identity
  std::set<std::string> sinks;          // identity must not reach these
  std::set<std::string> declassifiers;  // calls return scrubbed (clean) data

  // Shard-confinement vocabulary.
  std::set<std::string> shard_roots;    // per-shard ownership roots
  std::set<std::string> channel_types;  // the sanctioned cross-shard conduit
  std::set<std::string> shared_safe;    // immutable/share-safe types

  // Parse problems, reported as nymflow-registry-error diagnostics.
  std::vector<Diagnostic> errors;

  bool empty() const {
    return source_types.empty() && source_fields.empty() && source_fns.empty() &&
           sinks.empty() && shard_roots.empty();
  }
};

// Parses the line-oriented registry format:
//   # comment
//   source-type  TypeName      # trailing comment
//   source-field field_name
//   source-fn    Class::Method
//   sink         Class::Method
//   declassify   FreeFunction
//   shard-root   Simulation
//   channel-type CrossShardChannel
//   shared-safe  Config
// Unknown directives and missing operands become errors positioned at
// `path`:line; parsing continues (one bad line never disables the stage).
IdentityRegistry ParseRegistry(const std::string& path, const std::string& text);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_REGISTRY_H_
