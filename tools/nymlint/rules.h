// nymlint's rule engine. Each rule is a token-shape matcher scoped to parts
// of the tree (src/, bench/, tests/, ...). Rules are deliberately lexical:
// they catch the constructs that break the simulator's determinism contract
// (see docs/static-analysis.md) without needing a compiler front end.
#ifndef TOOLS_NYMLINT_RULES_H_
#define TOOLS_NYMLINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "tools/nymlint/lexer.h"

namespace nymlint {

// Top-level directory scopes a rule can apply to.
enum Scope : unsigned {
  kSrc = 1u << 0,
  kBench = 1u << 1,
  kTests = 1u << 2,
  kTools = 1u << 3,
  kExamples = 1u << 4,
  kEverywhere = kSrc | kBench | kTests | kTools | kExamples,
};

struct RuleInfo {
  const char* name;
  const char* summary;
  unsigned scopes;
  bool headers_only;
};

// All rules, in reporting order. Stable: docs and tests index by name.
const std::vector<RuleInfo>& AllRules();
bool IsKnownRule(const std::string& name);

struct Diagnostic {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (path != other.path) return path < other.path;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return rule < other.rule;
  }
};

// Context for linting one file. `tokens` excludes comments.
struct FileContext {
  std::string path;  // normalized, repo-relative, forward slashes
  unsigned scope = 0;
  bool is_header = false;
  std::vector<Token> tokens;
  // Names of Status-returning functions collected across the whole run
  // (cross-file pass; see CollectStatusFunctions).
  const std::set<std::string>* status_functions = nullptr;
};

// Pass 1: record every `Status <Name>(`-shaped declaration in `tokens`.
// Only PascalCase names are kept — the repo's functions are PascalCase and
// the filter keeps paren-initialized local variables (`Status s(...)`) from
// being mistaken for declarations by a lexical pass.
void CollectStatusFunctions(const std::vector<Token>& tokens, std::set<std::string>& out);

// Companion to CollectStatusFunctions: records `void <Name>(` declarations.
// A name declared with both return types (e.g. a void KvStore::Put beside a
// Status LocalStore::Put) is ambiguous to a lexical pass, so the driver
// subtracts this set before handing names to error-ignored-status — a
// false "handle this Status" on a void call is worse than missing a
// discard on a name the repo itself overloads.
void CollectVoidFunctions(const std::vector<Token>& tokens, std::set<std::string>& out);

// Pass 2: run every applicable rule over the file, appending diagnostics.
void RunRules(const FileContext& file, std::vector<Diagnostic>& out);

}  // namespace nymlint

#endif  // TOOLS_NYMLINT_RULES_H_
